"""Consolidate benchmark series into a single RESULTS.md.

Usage::

    python benchmarks/make_report.py [output.md]

Reads every ``benchmarks/results/*.txt`` written by the bench modules
and assembles them — in the paper's figure order, then the ablations —
into one markdown report with fenced code blocks.  Regenerate after
``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Figure order: Table I, Figure 6, Figure 7, then extensions.
ORDER = (
    ["table1"]
    + [f"fig6{c}" for c in "abcdefghi"]
    + [f"fig7{c}" for c in "abcdefghijklmno"]
    + [
        "pipeline_trajectory",
        "ged_trajectory",
        "ablation_hash_keys",
        "ablation_minedit_solver",
        "ablation_heuristic_gate",
        "ablation_multicover_aids",
        "ablation_multicover_protein",
        "ablation_verifier",
        "parallel_join",
    ]
)


def build_report() -> str:
    sections = [
        "# Benchmark results",
        "",
        f"Generated {time.strftime('%Y-%m-%d %H:%M:%S')} from "
        "`benchmarks/results/`.  Regenerate the underlying series with "
        "`pytest benchmarks/ --benchmark-only`, then re-run "
        "`python benchmarks/make_report.py`.",
        "",
        "The machine-readable perf trajectory `BENCH_pipeline.json` (repo "
        "root) tracks the interned fast path against the object-key "
        "reference pipeline; regenerate it with `PYTHONPATH=src python "
        "benchmarks/bench_pipeline_trajectory.py` (also rewritten by the "
        "full benchmark run).  See `docs/PERFORMANCE.md` for the "
        "methodology.",
        "",
    ]
    seen = set()
    names = [n for n in ORDER if (RESULTS_DIR / f"{n}.txt").exists()]
    names += sorted(
        p.stem for p in RESULTS_DIR.glob("*.txt") if p.stem not in ORDER
    )
    for name in names:
        if name in seen:
            continue
        seen.add(name)
        text = (RESULTS_DIR / f"{name}.txt").read_text(encoding="utf-8").rstrip()
        sections.append(f"## {name}")
        sections.append("")
        sections.append("```")
        sections.append(text)
        sections.append("```")
        sections.append("")
    return "\n".join(sections) + "\n"


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    output = Path(argv[0]) if argv else RESULTS_DIR.parent / "RESULTS.md"
    if not RESULTS_DIR.exists():
        print("no benchmarks/results/ directory; run the benchmarks first",
              file=sys.stderr)
        return 1
    output.write_text(build_report(), encoding="utf-8")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
