"""Ablation — the multicover filter extension (beyond the paper).

Compares the paper-faithful full GSimJoin against the ``extended``
variant that additionally lower-bounds the edits behind *partially
matched* surplus q-gram keys with a set multicover (see
repro.setcover.multicover).  Reports Cand-2 and total time per τ on
both datasets; the join results are identical by construction.
"""

from workloads import AIDS_Q, PROT_Q, TAUS, dataset, format_table, write_series

from repro import GSimJoinOptions, gsim_join


def _rows(ds: str, q: int):
    graphs = list(dataset(ds))
    rows = []
    for tau in TAUS:
        full = gsim_join(graphs, tau, options=GSimJoinOptions.full(q=q))
        extended = gsim_join(graphs, tau, options=GSimJoinOptions.extended(q=q))
        assert full.pair_set() == extended.pair_set()
        rows.append(
            [
                tau,
                full.stats.cand2,
                extended.stats.cand2,
                f"{full.stats.total_time:.2f}",
                f"{extended.stats.total_time:.2f}",
            ]
        )
    return rows


COLUMNS = ["tau", "cand2 full", "cand2 +mc", "time full", "time +mc"]


def test_ablation_multicover_aids(benchmark):
    rows = benchmark.pedantic(lambda: _rows("aids", AIDS_Q), rounds=1, iterations=1)
    table = format_table("Ablation: multicover extension (AIDS)", COLUMNS, rows)
    write_series("ablation_multicover_aids", table, [])
    print("\n" + table)
    for _, full_c2, ext_c2, *_ in rows:
        assert ext_c2 <= full_c2


def test_ablation_multicover_protein(benchmark):
    rows = benchmark.pedantic(lambda: _rows("protein", PROT_Q), rounds=1, iterations=1)
    table = format_table("Ablation: multicover extension (PROTEIN)", COLUMNS, rows)
    write_series("ablation_multicover_protein", table, [])
    print("\n" + table)
    for _, full_c2, ext_c2, *_ in rows:
        assert ext_c2 <= full_c2
