"""Figure 6(h) — Cand-2 vs q-gram length on AIDS.

AIDS-like, q ∈ [2, 6], τ = 1..4, full GSimJoin.  Same U-shape as
Fig 6(g); all configurations return identical join results.
"""

from workloads import TAUS, format_table, gsim_run, write_series

Q_RANGE = (2, 3, 4, 5, 6)


def test_fig6h_cand2_vs_q(benchmark):
    def compute():
        rows = []
        for tau in TAUS:
            results = {gsim_run("aids", tau, q, "full").stats.results for q in Q_RANGE}
            assert len(results) == 1  # q never changes the answer
            row = [tau]
            for q in Q_RANGE:
                row.append(gsim_run("aids", tau, q, "full").stats.cand2)
            row.append(results.pop())
            rows.append(row)
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = format_table(
        "Fig 6(h) AIDS Cand-2 vs q",
        ["tau"] + [f"q={q}" for q in Q_RANGE] + ["real"],
        rows,
    )
    write_series("fig6h", table, [])
    print("\n" + table)
    assert len(rows) == len(TAUS)
