"""Figure 7(o) — scalability with dataset size, κ-AT vs GSimJoin.

AIDS-like at τ = 2, scale factors 0.2..1.0.  The paper plots the square
root of the running time: both algorithms grow quadratically (the result
size itself grows quadratically), with GSimJoin's curve flatter.
"""

import math

from workloads import AIDS_N, AIDS_Q, format_table, gsim_run, kat_run, write_series

SCALES = (0.2, 0.4, 0.6, 0.8, 1.0)
TAU = 2


def test_fig7o_scalability(benchmark):
    def compute():
        rows = []
        for scale in SCALES:
            n = max(2, int(round(AIDS_N * scale)))
            gs = gsim_run("aids", TAU, AIDS_Q, "full", n=n).stats
            at = kat_run("aids", TAU, n=n).stats
            assert gs.results == at.results
            rows.append(
                [
                    scale,
                    n,
                    f"{math.sqrt(at.total_time):.2f}",
                    f"{math.sqrt(gs.total_time):.2f}",
                    gs.results,
                ]
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = format_table(
        "Fig 7(o) AIDS scalability, sqrt(total time in s), tau=2",
        ["scale", "n", "kAT", "GSimJoin", "results"],
        rows,
    )
    write_series("fig7o", table, [])
    print("\n" + table)
    # The result size grows with scale (quadratic-ish growth).  Samples
    # at different scales are independent draws, so only the endpoints
    # are compared (tiny scales can be noisy).
    results = [r[-1] for r in rows]
    assert results[-1] >= results[0]
