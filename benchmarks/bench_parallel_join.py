"""Extension benchmark — multi-core verification speedup.

Not a paper figure: measures the parallel join (verification fanned out
over a process pool) against the sequential Algorithm 1 at the largest
τ, where the A* phase dominates and parallelism pays.  The speedup is
bounded by the machine's core count (printed in the table header) —
on a single-core box the pool can only add overhead, so this bench
asserts result equality, not speedup.
"""

import os
import time

from workloads import AIDS_Q, MAX_TAU, dataset, format_table, write_series

from repro import GSimJoinOptions, gsim_join
from repro.core.parallel import gsim_join_parallel


def test_parallel_join_speedup(benchmark):
    graphs = list(dataset("aids"))
    tau = MAX_TAU
    options = GSimJoinOptions.full(q=AIDS_Q)

    def compute():
        rows = []
        started = time.perf_counter()
        sequential = gsim_join(graphs, tau, options=options)
        t_seq = time.perf_counter() - started
        rows.append(["sequential", f"{t_seq:.2f}", "1.00", sequential.stats.results])
        for workers in (2, 4):
            started = time.perf_counter()
            parallel = gsim_join_parallel(
                graphs, tau, options=options, workers=workers
            )
            elapsed = time.perf_counter() - started
            assert parallel.pair_set() == sequential.pair_set()
            rows.append(
                [
                    f"workers={workers}",
                    f"{elapsed:.2f}",
                    f"{t_seq / elapsed:.2f}",
                    parallel.stats.results,
                ]
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    cores = os.cpu_count() or 1
    table = format_table(
        f"Extension: parallel join (AIDS, tau={tau}, {cores} cpu core(s))",
        ["mode", "time (s)", "speedup", "results"],
        rows,
    )
    write_series("parallel_join", table, [])
    print("\n" + table)
