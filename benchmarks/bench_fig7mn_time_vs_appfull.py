"""Figures 7(m)/(n) — running time, AppFull vs GSimJoin.

The paper compares AppFull's *filtering* time (its binary cannot
verify) against GSimJoin's *total* time; we report both AppFull's
filtering (candidate) time and its total including our A* verification
of its candidates.  Expected shape: AppFull's filtering time is nearly
constant in τ (all-pairs bipartite matching, no index) and larger than
GSimJoin's total except possibly at the largest τ on PROTEIN.
"""

from workloads import (
    AIDS_Q,
    APPFULL_AIDS_N,
    APPFULL_PROT_N,
    PROT_Q,
    TAUS,
    appfull_run,
    format_table,
    gsim_run,
    write_series,
)


def _rows(ds: str, q: int, n: int):
    rows = []
    for tau in TAUS:
        af = appfull_run(ds, tau, n).stats
        gs = gsim_run(ds, tau, q, "full", n=n).stats
        rows.append(
            [
                tau,
                f"{af.candidate_time:.2f}",
                f"{af.total_time:.2f}",
                f"{gs.total_time:.2f}",
            ]
        )
    return rows


COLUMNS = ["tau", "AppFull filter", "AppFull total", "GSimJoin total"]


def test_fig7m_aids_time_vs_appfull(benchmark):
    rows = benchmark.pedantic(
        lambda: _rows("aids", AIDS_Q, APPFULL_AIDS_N), rounds=1, iterations=1
    )
    table = format_table(
        f"Fig 7(m) AIDS running time (s, n={APPFULL_AIDS_N})", COLUMNS, rows
    )
    write_series("fig7m", table, [])
    print("\n" + table)


def test_fig7n_protein_time_vs_appfull(benchmark):
    rows = benchmark.pedantic(
        lambda: _rows("protein", PROT_Q, APPFULL_PROT_N), rounds=1, iterations=1
    )
    table = format_table(
        f"Fig 7(n) PROTEIN running time (s, n={APPFULL_PROT_N})", COLUMNS, rows
    )
    write_series("fig7n", table, [])
    print("\n" + table)
