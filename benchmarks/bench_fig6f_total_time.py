"""Figure 6(f) — total running time decomposed by phase: BG / ME / LL.

PROTEIN-like, q = 3, τ = 1..4.  BG = Basic GSimJoin with plain A*;
ME = + MinEdit prefixes with improved search order; LL = + Local Label
filtering with the improved heuristic.  Expected shape: BG wins on index
construction but loses overall at larger τ; LL fastest overall (paper:
up to 2.1x over ME, 31.4x over BG).
"""

from workloads import PROT_Q, TAUS, format_table, gsim_run, write_series


def test_fig6f_total_running_time(benchmark):
    def compute():
        rows = []
        for tau in TAUS:
            for label, variant in (("BG", "basic"), ("ME", "minedit"), ("LL", "full")):
                st = gsim_run("protein", tau, PROT_Q, variant).stats
                rows.append(
                    [
                        tau,
                        label,
                        f"{st.index_time:.2f}",
                        f"{st.candidate_time:.2f}",
                        f"{st.verify_time:.2f}",
                        f"{st.total_time:.2f}",
                    ]
                )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = format_table(
        "Fig 6(f) PROTEIN total running time by phase (s)",
        ["tau", "alg", "index", "candgen", "verify", "total"],
        rows,
    )
    write_series("fig6f", table, [])
    print("\n" + table)
    assert len(rows) == 3 * len(TAUS)
