"""Figure 6(g) — Cand-1 vs q-gram length on AIDS.

AIDS-like, q ∈ [2, 6], τ = 1..4, full GSimJoin.  Expected shape:
U-curve — short q-grams are frequent (long inverted lists), long
q-grams force long prefixes; the minimum sits near q = 3-4.
"""

from workloads import TAUS, format_table, gsim_run, write_series

Q_RANGE = (2, 3, 4, 5, 6)


def test_fig6g_cand1_vs_q(benchmark):
    def compute():
        rows = []
        for tau in TAUS:
            row = [tau]
            for q in Q_RANGE:
                row.append(gsim_run("aids", tau, q, "full").stats.cand1)
            rows.append(row)
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = format_table(
        "Fig 6(g) AIDS Cand-1 vs q",
        ["tau"] + [f"q={q}" for q in Q_RANGE],
        rows,
    )
    write_series("fig6g", table, [])
    print("\n" + table)
    assert len(rows) == len(TAUS)
