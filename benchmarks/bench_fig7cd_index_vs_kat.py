"""Figures 7(c)/(d) — index size, κ-AT vs GSimJoin.

Both algorithms keep small in-memory inverted indexes (paper: tens to a
few hundred kB); sizes are reported under the paper's cost model
(4-byte hashed gram + 4-byte graph id per posting).
"""

from workloads import AIDS_Q, PROT_Q, TAUS, format_table, gsim_run, kat_run, write_series


def _rows(ds: str, q: int):
    rows = []
    for tau in TAUS:
        kat = kat_run(ds, tau).stats
        gs = gsim_run(ds, tau, q, "full").stats
        rows.append(
            [tau, f"{kat.index_bytes / 1024.0:.1f}", f"{gs.index_bytes / 1024.0:.1f}"]
        )
    return rows


def test_fig7c_aids_index_size(benchmark):
    rows = benchmark.pedantic(lambda: _rows("aids", AIDS_Q), rounds=1, iterations=1)
    table = format_table("Fig 7(c) AIDS index size (kB)", ["tau", "kAT", "GSimJoin"], rows)
    write_series("fig7c", table, [])
    print("\n" + table)


def test_fig7d_protein_index_size(benchmark):
    rows = benchmark.pedantic(lambda: _rows("protein", PROT_Q), rounds=1, iterations=1)
    table = format_table(
        "Fig 7(d) PROTEIN index size (kB)", ["tau", "kAT", "GSimJoin"], rows
    )
    write_series("fig7d", table, [])
    print("\n" + table)
