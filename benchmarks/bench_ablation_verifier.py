"""Ablation — A* vs depth-first branch-and-bound verification.

Not a paper figure: verifies the full GSimJoin's candidate set with the
paper's best-first A* and with this library's DF-GED (depth-first with
a bipartite incumbent).  Both are exact; the comparison is time and
states expanded per τ, on the PROTEIN-like workload where verification
dominates.
"""

import time

from bench_fig6e_ged_time import candidate_pairs
from workloads import PROT_Q, TAUS, dataset, format_table, write_series

from repro.ged import graph_edit_distance_detailed, label_heuristic
from repro.ged.dfs import dfs_ged
from repro.ged.vertex_order import mismatch_vertex_order


def test_ablation_verifier(benchmark):
    graphs = list(dataset("protein"))

    def compute():
        rows = []
        for tau in TAUS:
            pairs = candidate_pairs(graphs, tau, PROT_Q)

            started = time.perf_counter()
            astar_exp = 0
            astar_results = 0
            for r, s, mm in pairs:
                order = mismatch_vertex_order(r, mm.mismatch_r)
                res = graph_edit_distance_detailed(
                    r, s, threshold=tau, heuristic=label_heuristic,
                    vertex_order=order,
                )
                astar_exp += res.expanded
                astar_results += res.distance <= tau
            astar_time = time.perf_counter() - started

            started = time.perf_counter()
            dfs_exp = 0
            dfs_results = 0
            for r, s, mm in pairs:
                order = mismatch_vertex_order(r, mm.mismatch_r)
                res = dfs_ged(
                    r, s, threshold=tau, heuristic=label_heuristic,
                    vertex_order=order,
                )
                dfs_exp += res.expanded
                dfs_results += res.distance <= tau
            dfs_time = time.perf_counter() - started

            assert astar_results == dfs_results
            rows.append(
                [
                    tau,
                    len(pairs),
                    f"{astar_time:.2f}s/{astar_exp}",
                    f"{dfs_time:.2f}s/{dfs_exp}",
                ]
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = format_table(
        "Ablation: verifier engine (PROTEIN, time/expansions)",
        ["tau", "cands", "A*", "DF-GED"],
        rows,
    )
    write_series("ablation_verifier", table, [])
    print("\n" + table)
