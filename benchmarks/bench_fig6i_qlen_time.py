"""Figure 6(i) — total running time vs q-gram length on AIDS.

AIDS-like, q ∈ [2, 6], τ = 1..4, full GSimJoin.  Expected shape: the
candidate-size U-curve translates into running time, with q = 3-4 most
competitive at τ >= 2 (at τ = 1 index construction dominates, favouring
short q-grams).
"""

from workloads import TAUS, format_table, gsim_run, write_series

Q_RANGE = (2, 3, 4, 5, 6)


def test_fig6i_time_vs_q(benchmark):
    def compute():
        rows = []
        for tau in TAUS:
            row = [tau]
            for q in Q_RANGE:
                st = gsim_run("aids", tau, q, "full").stats
                row.append(f"{st.total_time:.2f}")
            rows.append(row)
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = format_table(
        "Fig 6(i) AIDS total running time vs q (s)",
        ["tau"] + [f"q={q}" for q in Q_RANGE],
        rows,
    )
    write_series("fig6i", table, [])
    print("\n" + table)
    assert len(rows) == len(TAUS)
