"""GED-verification perf trajectory — compiled backend vs object A*.

Runs the same workload matrix as ``bench_pipeline_trajectory.py``
(AIDS-like q=4 and PROTEIN-like q=3; τ ∈ {1..3}; the *full* variant)
through both GED verification backends — ``verifier="compiled"`` (the
integer-array A* with per-collection graph compilation,
:mod:`repro.ged.compiled`) and ``verifier="object"`` (the object-graph
reference A*) — and records per-cell ``ged_time_s``, expansion counts
and the compile+cache overhead to ``BENCH_ged.json`` at the repository
root.  The ``summary`` block reports summed ``ged_time_s`` per backend
and their ratio; the compiled backend is expected to stay ≥ 2× ahead.
Per-cell result parity (pairs, cand2, expansions) is asserted in the
benchmark itself — the speedup is only meaningful if the two backends
did bit-identical work.

A separate *dispatcher* section runs a mixed-hardness workload — many
small label-diverse graphs (whose verify trees are tiny, so the DFS
backend's per-pair bipartite seeding is pure overhead) joined with a
few large single-label graphs (whose reject trees are huge, so the
DFS backend's cheaper per-node cost and constant memory win) — under
``verifier="compiled"``, ``"dfs"`` and ``"auto"``.  Each backend is
timed over ``DISPATCHER_REPS`` rotated repetitions (rotation cancels
the monotonic load drift of shared machines; the min is recorded).
The section asserts result-fingerprint parity across the three runs
and that the ``auto`` dispatcher's summed GED time stays within
``DISPATCHER_TOLERANCE`` of the best single backend — the hardness
dispatch must pay for itself.

Regenerate standalone (no pytest-benchmark needed)::

    PYTHONPATH=src python benchmarks/bench_ged_trajectory.py

or as part of the benchmark suite (``pytest benchmarks/
--benchmark-only``), which rewrites the same file.
"""

import json
import random
import sys
import time
from dataclasses import replace
from pathlib import Path

if __name__ == "__main__":  # `import workloads` without the conftest
    sys.path.insert(0, str(Path(__file__).resolve().parent))

from workloads import (
    AIDS_N,
    AIDS_Q,
    PROT_N,
    PROT_Q,
    dataset,
    format_table,
    write_series,
)

from repro import GSimJoinOptions, assign_ids, gsim_join
from repro.graph.generators import random_labeled_graph

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_ged.json"

TRAJECTORY_TAUS = (1, 2, 3)

MATRIX = (
    ("aids", AIDS_Q),
    ("protein", PROT_Q),
)

# ---- mixed-hardness dispatcher row ----------------------------------------
# Easy class: many small label-diverse graphs — surviving candidates
# decide in a handful of expansions, so the "dfs" backend's per-pair
# bipartite incumbent seeding is pure overhead and "compiled" is the
# right target.  Hard class: near-duplicate clusters of large
# single-label graphs — the accepting searches hit the wide f-tie
# plateau a label-starved A* must enumerate, while the DFS
# branch-and-bound's greedy descent plus incumbent cuts it, so "dfs"
# wins by a wide margin.  Cluster base sizes sit more than τ apart so
# cross-cluster candidates die in the size filter and each class
# reaches Verify undiluted.  "auto" must route each class to its
# winner and come out no slower than the best single backend.
DISPATCHER_TAU = 3
DISPATCHER_Q = 2
DISPATCHER_VERIFIERS = ("compiled", "dfs", "auto")
DISPATCHER_REPS = 4
# The dispatcher's structural margin over the best single backend is
# ~5-15%; shared-machine jitter on a ~3 s cell can approach that even
# after min-of-rotated-reps.  The assertion therefore allows the noise
# band — a regression that makes dispatch genuinely wrong (e.g.
# routing hard pairs to the frontier A*) overshoots it — while the
# recorded ``auto_vs_best`` in BENCH_ged.json tracks the real ratio.
DISPATCHER_TOLERANCE = 1.25
EASY_N, EASY_SEED = 48, 42
HARD_BASE_SIZES, HARD_COPIES, HARD_SEED = (10, 14), 4, 7


def mixed_hardness_dataset() -> list:
    """Easy/hard two-class collection exercising both dispatch targets."""
    from repro.graph.operations import perturb

    easy_rng = random.Random(EASY_SEED)
    graphs = [
        random_labeled_graph(easy_rng, 6, 8, ["A", "B", "C", "D"], ["x", "y"])
        for _ in range(EASY_N)
    ]
    hard_rng = random.Random(HARD_SEED)
    for base_n in HARD_BASE_SIZES:
        base = random_labeled_graph(
            hard_rng, base_n, int(1.5 * base_n), ["A"], ["x"]
        )
        for _ in range(HARD_COPIES):
            graphs.append(
                perturb(base, hard_rng.randrange(1, 3), hard_rng, ["A"], ["x"])
            )
    return assign_ids(graphs)


def _run_cell(ds: str, q: int, tau: int, verifier: str) -> dict:
    graphs = list(dataset(ds))
    options = replace(GSimJoinOptions.full(q=q), verifier=verifier)
    started = time.perf_counter()
    result = gsim_join(graphs, tau, options)
    wall = time.perf_counter() - started
    st = result.stats
    return {
        "dataset": ds,
        "q": q,
        "tau": tau,
        "backend": verifier,
        "ged_time_s": round(st.ged_time, 4),
        "compile_time_s": round(st.compile_time, 4),
        "compiled_graphs": st.compiled_graphs,
        "verify_time_s": round(st.verify_time, 4),
        "wall_time_s": round(wall, 4),
        "ged_calls": st.ged_calls,
        "ged_expansions": st.ged_expansions,
        "cand1": st.cand1,
        "cand2": st.cand2,
        "results": st.results,
        "pairs_sha": _pairs_fingerprint(result),
    }


def _pairs_fingerprint(result) -> str:
    import hashlib

    blob = repr(result.pairs).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


def collect_dispatcher() -> dict:
    """Time the mixed-hardness cell under every dispatcher verifier.

    Backends are interleaved and the visit order rotated every
    repetition, so slow monotonic machine drift hits each backend
    equally; the per-backend minimum over repetitions is recorded.
    """
    graphs = mixed_hardness_dataset()
    options = GSimJoinOptions.full(q=DISPATCHER_Q)
    timings = {verifier: [] for verifier in DISPATCHER_VERIFIERS}
    cells = {}
    for rep in range(DISPATCHER_REPS):
        shift = rep % len(DISPATCHER_VERIFIERS)
        rotation = DISPATCHER_VERIFIERS[shift:] + DISPATCHER_VERIFIERS[:shift]
        for verifier in rotation:
            result = gsim_join(
                graphs, DISPATCHER_TAU, replace(options, verifier=verifier)
            )
            st = result.stats
            timings[verifier].append(st.ged_time)
            cells[verifier] = {
                "dataset": "mixed-hardness",
                "q": DISPATCHER_Q,
                "tau": DISPATCHER_TAU,
                "backend": verifier,
                "ged_calls": st.ged_calls,
                "ged_expansions": st.ged_expansions,
                "cand1": st.cand1,
                "cand2": st.cand2,
                "results": st.results,
                "pairs_sha": _pairs_fingerprint(result),
                "verify_backends": dict(sorted(st.verify_backends.items())),
            }
    for verifier in DISPATCHER_VERIFIERS:
        cells[verifier]["ged_time_s"] = round(min(timings[verifier]), 4)
        cells[verifier]["reps"] = DISPATCHER_REPS
    auto_s = cells["auto"]["ged_time_s"]
    singles = {
        verifier: cells[verifier]["ged_time_s"]
        for verifier in DISPATCHER_VERIFIERS
        if verifier != "auto"
    }
    best_single = min(singles, key=singles.get)
    best_single_s = singles[best_single]
    return {
        "workload": {
            "easy": {"n": EASY_N, "seed": EASY_SEED,
                     "shape": "6v/8e, 4 vertex labels"},
            "hard": {
                "base_sizes": list(HARD_BASE_SIZES),
                "copies": HARD_COPIES,
                "seed": HARD_SEED,
                "shape": "single-label near-duplicate clusters",
            },
        },
        "tau": DISPATCHER_TAU,
        "q": DISPATCHER_Q,
        "reps": DISPATCHER_REPS,
        "cells": [cells[verifier] for verifier in DISPATCHER_VERIFIERS],
        "summary": {
            "auto_s": auto_s,
            "best_single": best_single,
            "best_single_s": best_single_s,
            "auto_vs_best": round(auto_s / best_single_s, 4)
            if best_single_s
            else 0.0,
            "auto_backends": cells["auto"]["verify_backends"],
        },
    }


def assert_dispatcher_parity(section: dict) -> None:
    """All three dispatcher runs must be bit-identical joins, and the
    ``auto`` run must actually have exercised both dispatch targets.

    ``ged_expansions`` is deliberately not compared: on accepting
    pairs the A* and the DFS branch-and-bound legitimately expand
    different node counts (only the decisions must agree).
    """
    reference = section["cells"][0]
    for cell in section["cells"][1:]:
        for field in (
            "cand1", "cand2", "results", "ged_calls", "pairs_sha",
        ):
            assert cell[field] == reference[field], (cell["backend"], field)
    auto = next(c for c in section["cells"] if c["backend"] == "auto")
    mix = auto["verify_backends"]
    assert mix.get("compiled", 0) > 0 and mix.get("dfs", 0) > 0, mix
    assert sum(mix.values()) == auto["ged_calls"], mix


def assert_dispatcher_speed(section: dict) -> None:
    """``auto`` must not lose to the best single backend (within the
    noise tolerance) — hardness dispatch has to pay for itself."""
    summary = section["summary"]
    assert summary["auto_vs_best"] <= DISPATCHER_TOLERANCE, summary


def collect() -> dict:
    cells = []
    for ds, q in MATRIX:
        for tau in TRAJECTORY_TAUS:
            for verifier in ("object", "compiled"):
                cells.append(_run_cell(ds, q, tau, verifier))
    ged_time = {"object": 0.0, "compiled": 0.0}
    for cell in cells:
        ged_time[cell["backend"]] += cell["ged_time_s"]
    speedup = (
        ged_time["object"] / ged_time["compiled"]
        if ged_time["compiled"]
        else float("inf")
    )
    return {
        "generated_by": "benchmarks/bench_ged_trajectory.py",
        "workloads": {
            "aids": {"n": AIDS_N, "q": AIDS_Q, "seed": 42},
            "protein": {"n": PROT_N, "q": PROT_Q, "seed": 7},
        },
        "taus": list(TRAJECTORY_TAUS),
        "variant": "full",
        "cells": cells,
        "summary": {
            "ged_object_s": round(ged_time["object"], 4),
            "ged_compiled_s": round(ged_time["compiled"], 4),
            "ged_speedup": round(speedup, 2),
        },
        "dispatcher": collect_dispatcher(),
    }


def assert_cell_parity(payload: dict) -> None:
    """Both backends must have produced bit-identical joins per cell."""
    by_key = {}
    for cell in payload["cells"]:
        by_key.setdefault((cell["dataset"], cell["tau"]), []).append(cell)
    for (ds, tau), pair in by_key.items():
        obj, fast = pair
        assert obj["backend"] == "object" and fast["backend"] == "compiled"
        for field in (
            "cand1", "cand2", "results", "ged_calls", "ged_expansions",
            "pairs_sha",
        ):
            assert obj[field] == fast[field], (ds, tau, field)


def _table(payload: dict) -> str:
    rows = []
    for cell in payload["cells"]:
        rows.append(
            [
                cell["dataset"],
                cell["tau"],
                cell["backend"],
                f"{cell['ged_time_s']:.3f}",
                f"{cell['compile_time_s']:.3f}",
                cell["ged_calls"],
                cell["ged_expansions"],
                cell["results"],
            ]
        )
    summary = payload["summary"]
    title = (
        "GED trajectory (full variant): ged_time "
        f"{summary['ged_object_s']:.2f}s -> "
        f"{summary['ged_compiled_s']:.2f}s "
        f"({summary['ged_speedup']:.2f}x)"
    )
    trajectory = format_table(
        title,
        ["ds", "tau", "backend", "ged", "compile", "calls", "expansions", "results"],
        rows,
    )
    section = payload["dispatcher"]
    dispatch_rows = [
        [
            cell["backend"],
            f"{cell['ged_time_s']:.3f}",
            cell["ged_calls"],
            cell["ged_expansions"],
            cell["results"],
            ",".join(
                f"{name}={count}"
                for name, count in cell["verify_backends"].items()
            ),
        ]
        for cell in section["cells"]
    ]
    summary = section["summary"]
    dispatch_title = (
        f"Mixed-hardness dispatcher (tau={section['tau']}): auto "
        f"{summary['auto_s']:.3f}s vs best single "
        f"{summary['best_single']} {summary['best_single_s']:.3f}s "
        f"(ratio {summary['auto_vs_best']:.3f})"
    )
    dispatcher = format_table(
        dispatch_title,
        ["backend", "ged", "calls", "expansions", "results", "dispatch"],
        dispatch_rows,
    )
    return trajectory + "\n\n" + dispatcher


def write_trajectory() -> dict:
    payload = collect()
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return payload


def test_ged_trajectory(benchmark):
    payload = benchmark.pedantic(write_trajectory, rounds=1, iterations=1)
    table = _table(payload)
    write_series("ged_trajectory", table, [])
    print("\n" + table)
    assert OUTPUT.exists()
    assert len(payload["cells"]) == 2 * len(TRAJECTORY_TAUS) * len(MATRIX)
    assert_cell_parity(payload)
    assert_dispatcher_parity(payload["dispatcher"])
    assert_dispatcher_speed(payload["dispatcher"])
    # The acceptance bar: the compiled backend at least halves the
    # summed A* verification time on these workloads.
    assert payload["summary"]["ged_speedup"] >= 2.0, payload["summary"]


if __name__ == "__main__":
    payload = write_trajectory()
    assert_cell_parity(payload)
    assert_dispatcher_parity(payload["dispatcher"])
    assert_dispatcher_speed(payload["dispatcher"])
    print(_table(payload))
    print(f"\nwrote {OUTPUT}")
