"""GED-verification perf trajectory — compiled backend vs object A*.

Runs the same workload matrix as ``bench_pipeline_trajectory.py``
(AIDS-like q=4 and PROTEIN-like q=3; τ ∈ {1..3}; the *full* variant)
through both GED verification backends — ``verifier="compiled"`` (the
integer-array A* with per-collection graph compilation,
:mod:`repro.ged.compiled`) and ``verifier="object"`` (the object-graph
reference A*) — and records per-cell ``ged_time_s``, expansion counts
and the compile+cache overhead to ``BENCH_ged.json`` at the repository
root.  The ``summary`` block reports summed ``ged_time_s`` per backend
and their ratio; the compiled backend is expected to stay ≥ 2× ahead.
Per-cell result parity (pairs, cand2, expansions) is asserted in the
benchmark itself — the speedup is only meaningful if the two backends
did bit-identical work.

Regenerate standalone (no pytest-benchmark needed)::

    PYTHONPATH=src python benchmarks/bench_ged_trajectory.py

or as part of the benchmark suite (``pytest benchmarks/
--benchmark-only``), which rewrites the same file.
"""

import json
import sys
import time
from dataclasses import replace
from pathlib import Path

if __name__ == "__main__":  # `import workloads` without the conftest
    sys.path.insert(0, str(Path(__file__).resolve().parent))

from workloads import (
    AIDS_N,
    AIDS_Q,
    PROT_N,
    PROT_Q,
    dataset,
    format_table,
    write_series,
)

from repro import GSimJoinOptions, gsim_join

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_ged.json"

TRAJECTORY_TAUS = (1, 2, 3)

MATRIX = (
    ("aids", AIDS_Q),
    ("protein", PROT_Q),
)


def _run_cell(ds: str, q: int, tau: int, verifier: str) -> dict:
    graphs = list(dataset(ds))
    options = replace(GSimJoinOptions.full(q=q), verifier=verifier)
    started = time.perf_counter()
    result = gsim_join(graphs, tau, options)
    wall = time.perf_counter() - started
    st = result.stats
    return {
        "dataset": ds,
        "q": q,
        "tau": tau,
        "backend": verifier,
        "ged_time_s": round(st.ged_time, 4),
        "compile_time_s": round(st.compile_time, 4),
        "compiled_graphs": st.compiled_graphs,
        "verify_time_s": round(st.verify_time, 4),
        "wall_time_s": round(wall, 4),
        "ged_calls": st.ged_calls,
        "ged_expansions": st.ged_expansions,
        "cand1": st.cand1,
        "cand2": st.cand2,
        "results": st.results,
        "pairs_sha": _pairs_fingerprint(result),
    }


def _pairs_fingerprint(result) -> str:
    import hashlib

    blob = repr(result.pairs).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


def collect() -> dict:
    cells = []
    for ds, q in MATRIX:
        for tau in TRAJECTORY_TAUS:
            for verifier in ("object", "compiled"):
                cells.append(_run_cell(ds, q, tau, verifier))
    ged_time = {"object": 0.0, "compiled": 0.0}
    for cell in cells:
        ged_time[cell["backend"]] += cell["ged_time_s"]
    speedup = (
        ged_time["object"] / ged_time["compiled"]
        if ged_time["compiled"]
        else float("inf")
    )
    return {
        "generated_by": "benchmarks/bench_ged_trajectory.py",
        "workloads": {
            "aids": {"n": AIDS_N, "q": AIDS_Q, "seed": 42},
            "protein": {"n": PROT_N, "q": PROT_Q, "seed": 7},
        },
        "taus": list(TRAJECTORY_TAUS),
        "variant": "full",
        "cells": cells,
        "summary": {
            "ged_object_s": round(ged_time["object"], 4),
            "ged_compiled_s": round(ged_time["compiled"], 4),
            "ged_speedup": round(speedup, 2),
        },
    }


def assert_cell_parity(payload: dict) -> None:
    """Both backends must have produced bit-identical joins per cell."""
    by_key = {}
    for cell in payload["cells"]:
        by_key.setdefault((cell["dataset"], cell["tau"]), []).append(cell)
    for (ds, tau), pair in by_key.items():
        obj, fast = pair
        assert obj["backend"] == "object" and fast["backend"] == "compiled"
        for field in (
            "cand1", "cand2", "results", "ged_calls", "ged_expansions",
            "pairs_sha",
        ):
            assert obj[field] == fast[field], (ds, tau, field)


def _table(payload: dict) -> str:
    rows = []
    for cell in payload["cells"]:
        rows.append(
            [
                cell["dataset"],
                cell["tau"],
                cell["backend"],
                f"{cell['ged_time_s']:.3f}",
                f"{cell['compile_time_s']:.3f}",
                cell["ged_calls"],
                cell["ged_expansions"],
                cell["results"],
            ]
        )
    summary = payload["summary"]
    title = (
        "GED trajectory (full variant): ged_time "
        f"{summary['ged_object_s']:.2f}s -> "
        f"{summary['ged_compiled_s']:.2f}s "
        f"({summary['ged_speedup']:.2f}x)"
    )
    return format_table(
        title,
        ["ds", "tau", "backend", "ged", "compile", "calls", "expansions", "results"],
        rows,
    )


def write_trajectory() -> dict:
    payload = collect()
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return payload


def test_ged_trajectory(benchmark):
    payload = benchmark.pedantic(write_trajectory, rounds=1, iterations=1)
    table = _table(payload)
    write_series("ged_trajectory", table, [])
    print("\n" + table)
    assert OUTPUT.exists()
    assert len(payload["cells"]) == 2 * len(TRAJECTORY_TAUS) * len(MATRIX)
    assert_cell_parity(payload)
    # The acceptance bar: the compiled backend at least halves the
    # summed A* verification time on these workloads.
    assert payload["summary"]["ged_speedup"] >= 2.0, payload["summary"]


if __name__ == "__main__":
    payload = write_trajectory()
    assert_cell_parity(payload)
    print(_table(payload))
    print(f"\nwrote {OUTPUT}")
