"""Table I — statistics of the datasets.

Paper values: AIDS |R|=4000, avg|V|=25.6, avg|E|=27.5, |l_V|=44, |l_E|=3;
PROTEIN |R|=600, avg|V|=32.6, avg|E|=62.1, |l_V|=3, |l_E|=2.  The
synthetic stand-ins match the per-graph profile at reduced collection
sizes (see workloads.py for scaling).
"""

from workloads import aids_dataset, protein_dataset, write_series

from repro.graph import collection_statistics


def test_table1_dataset_statistics(benchmark):
    def compute():
        rows = []
        for name, graphs in (
            ("AIDS-like", aids_dataset()),
            ("PROTEIN-like", protein_dataset()),
        ):
            stats = collection_statistics(list(graphs))
            rows.append(stats.as_table_row(name))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = write_series("table1", "Table I - dataset statistics", rows)
    print("\n" + text)
    assert len(rows) == 2
