"""Pipeline perf trajectory — interned fast path vs object-key reference.

Runs a fixed workload matrix (AIDS-like q=4 and PROTEIN-like q=3, the
Fig. 6(f)/7(i)(j) datasets; τ ∈ {1..3}; the *full* variant) through both
pipelines — ``interned=True`` (integer signatures, merge filters, direct
Algorithm 4) and ``interned=False`` (the retained object-key reference
path) — and records per-phase timings, candidate counts and the
engine's per-stage survivor trajectory (``stats.stages``) to
``BENCH_pipeline.json`` at the repository root.  The ``summary`` block
reports the summed non-GED time (index + candidate generation + filter
cascade, i.e. everything except ``ged_time``) for each pipeline and
their ratio; the interned pipeline is expected to stay ≥ 2× ahead.
When a previous ``BENCH_pipeline.json`` exists, the run also asserts
the new end-to-end wall time stays within noise
(``NOISE_FACTOR``×) of that baseline — a coarse regression gate on the
whole pipeline.

Regenerate standalone (no pytest-benchmark needed)::

    PYTHONPATH=src python benchmarks/bench_pipeline_trajectory.py

or as part of the benchmark suite (``pytest benchmarks/
--benchmark-only``), which rewrites the same file.
"""

import json
import sys
import time
from dataclasses import replace
from pathlib import Path

if __name__ == "__main__":  # `import workloads` without the conftest
    sys.path.insert(0, str(Path(__file__).resolve().parent))

from workloads import (
    AIDS_N,
    AIDS_Q,
    PROT_N,
    PROT_Q,
    dataset,
    format_table,
    write_series,
)

from repro import GSimJoinOptions, gsim_join

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"

TRAJECTORY_TAUS = (1, 2, 3)

#: Accepted end-to-end slowdown vs the committed baseline.  Generous on
#: purpose: the gate must catch structural regressions (a filter
#: re-running, a copy in the candidate loop), not scheduler jitter.
NOISE_FACTOR = 1.6

MATRIX = (
    ("aids", AIDS_Q),
    ("protein", PROT_Q),
)


def _run_cell(ds: str, q: int, tau: int, interned: bool) -> dict:
    graphs = list(dataset(ds))
    options = replace(GSimJoinOptions.full(q=q), interned=interned)
    started = time.perf_counter()
    result = gsim_join(graphs, tau, options)
    wall = time.perf_counter() - started
    st = result.stats
    filter_time = st.verify_time - st.ged_time
    return {
        "dataset": ds,
        "q": q,
        "tau": tau,
        "pipeline": "interned" if interned else "reference",
        "index_time_s": round(st.index_time, 4),
        "candidate_time_s": round(st.candidate_time, 4),
        "filter_time_s": round(filter_time, 4),
        "ged_time_s": round(st.ged_time, 4),
        "non_ged_time_s": round(wall - st.ged_time, 4),
        "wall_time_s": round(wall, 4),
        "cand1": st.cand1,
        "cand2": st.cand2,
        "results": st.results,
        "total_prefix_length": st.total_prefix_length,
        "index_bytes": st.index_bytes,
        "stages": [
            {"name": row.name, "input": row.input, "survivors": row.survivors}
            for row in st.stages
        ],
    }


def collect() -> dict:
    cells = []
    for ds, q in MATRIX:
        for tau in TRAJECTORY_TAUS:
            for interned in (False, True):
                cells.append(_run_cell(ds, q, tau, interned))
    non_ged = {"reference": 0.0, "interned": 0.0}
    for cell in cells:
        non_ged[cell["pipeline"]] += cell["non_ged_time_s"]
    speedup = (
        non_ged["reference"] / non_ged["interned"]
        if non_ged["interned"]
        else float("inf")
    )
    return {
        "generated_by": "benchmarks/bench_pipeline_trajectory.py",
        "workloads": {
            "aids": {"n": AIDS_N, "q": AIDS_Q, "seed": 42},
            "protein": {"n": PROT_N, "q": PROT_Q, "seed": 7},
        },
        "taus": list(TRAJECTORY_TAUS),
        "variant": "full",
        "cells": cells,
        "summary": {
            "non_ged_reference_s": round(non_ged["reference"], 4),
            "non_ged_interned_s": round(non_ged["interned"], 4),
            "non_ged_speedup": round(speedup, 2),
            "end_to_end_wall_s": round(
                sum(cell["wall_time_s"] for cell in cells), 4
            ),
        },
    }


def load_baseline() -> dict:
    """The committed ``BENCH_pipeline.json``, or ``{}`` if absent/unreadable."""
    try:
        return json.loads(OUTPUT.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}


def baseline_wall_s(baseline: dict) -> float:
    """End-to-end wall seconds of a baseline payload (0.0 if unknown)."""
    if not baseline:
        return 0.0
    summary = baseline.get("summary", {})
    if "end_to_end_wall_s" in summary:
        return float(summary["end_to_end_wall_s"])
    return float(
        sum(cell.get("wall_time_s", 0.0) for cell in baseline.get("cells", ()))
    )


def _table(payload: dict) -> str:
    rows = []
    for cell in payload["cells"]:
        rows.append(
            [
                cell["dataset"],
                cell["tau"],
                cell["pipeline"],
                f"{cell['index_time_s']:.3f}",
                f"{cell['candidate_time_s']:.3f}",
                f"{cell['filter_time_s']:.3f}",
                f"{cell['non_ged_time_s']:.3f}",
                cell["cand1"],
                cell["cand2"],
            ]
        )
    summary = payload["summary"]
    title = (
        "Pipeline trajectory (full variant): non-GED "
        f"{summary['non_ged_reference_s']:.2f}s -> "
        f"{summary['non_ged_interned_s']:.2f}s "
        f"({summary['non_ged_speedup']:.2f}x)"
    )
    return format_table(
        title,
        ["ds", "tau", "pipeline", "index", "candgen", "filter", "non-ged", "cand1", "cand2"],
        rows,
    )


def write_trajectory() -> dict:
    payload = collect()
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return payload


def test_pipeline_trajectory(benchmark):
    prior_wall = baseline_wall_s(load_baseline())
    payload = benchmark.pedantic(write_trajectory, rounds=1, iterations=1)
    table = _table(payload)
    write_series("pipeline_trajectory", table, [])
    print("\n" + table)
    assert OUTPUT.exists()
    assert len(payload["cells"]) == 2 * len(TRAJECTORY_TAUS) * len(MATRIX)
    # Both pipelines are exact: identical candidates, results and
    # per-stage survivor trajectories per cell.
    by_key = {}
    for cell in payload["cells"]:
        key = (cell["dataset"], cell["tau"])
        by_key.setdefault(key, []).append(cell)
    for (ds, tau), pair in by_key.items():
        ref, fast = pair
        for field in ("cand1", "cand2", "results", "total_prefix_length",
                      "stages"):
            assert ref[field] == fast[field], (ds, tau, field)
        verify_row = fast["stages"][-1]
        assert verify_row["name"] == "verify"
        assert verify_row["input"] == fast["cand2"]
        assert verify_row["survivors"] == fast["results"]
    # Coarse perf gate: no end-to-end slowdown beyond noise vs the
    # previously committed baseline.
    if prior_wall > 0.0:
        new_wall = payload["summary"]["end_to_end_wall_s"]
        assert new_wall <= prior_wall * NOISE_FACTOR, (
            f"pipeline slowed down: {new_wall:.2f}s vs baseline "
            f"{prior_wall:.2f}s (allowed {NOISE_FACTOR}x)"
        )


if __name__ == "__main__":
    print(_table(write_trajectory()))
    print(f"\nwrote {OUTPUT}")
