"""Pipeline perf trajectory — batched vs interned vs object-key reference.

Runs a fixed workload matrix (AIDS-like q=4 and PROTEIN-like q=3, the
Fig. 6(f)/7(i)(j) datasets; τ ∈ {1..4} — the τ=4 column is where
candidate blocks grow dense enough for the kernels to dominate; the
*full* variant) through
three pipelines — ``batched`` (interned signatures + the vectorized
block kernels of :mod:`repro.engine.batch` over the columnar store),
``interned`` (integer signatures, scalar merge filters — the batch
path's parity oracle) and ``reference`` (the retained object-key path)
— and records per-phase timings, candidate counts and the engine's
per-stage survivor trajectory (``stats.stages``) to
``BENCH_pipeline.json`` at the repository root.  Per-cell parity of
candidates, results and stage trajectories across all three pipelines
is asserted in-bench.  The ``summary`` block reports the summed non-GED
time (index + candidate generation + filter cascade, i.e. everything
except ``ged_time``) per pipeline plus three ratios: interned vs
reference on non-GED time (expected ≥ 2×), batched vs interned on
non-GED time (``batch_speedup`` — expected > 1, asserted not to
regress) and batched vs interned over candidate generation + filter
cascade only (``batch_hot_speedup`` — the phases the kernels actually
touch, asserted > 1 in-bench; the non-GED sum is dominated by the
mode-independent prepare phase, whose scheduler jitter would make a
hard end-to-end assertion flap).  When a previous
``BENCH_pipeline.json`` with the same cell matrix exists, the run also
asserts the new end-to-end wall time stays within noise
(``NOISE_FACTOR``×) of that baseline — a coarse regression gate on the
whole pipeline.  The ``batched`` pipeline needs numpy and drops out of
the matrix without it.

Regenerate standalone (no pytest-benchmark needed)::

    PYTHONPATH=src python benchmarks/bench_pipeline_trajectory.py

or as part of the benchmark suite (``pytest benchmarks/
--benchmark-only``), which rewrites the same file.
"""

import json
import sys
import time
from dataclasses import replace
from pathlib import Path

if __name__ == "__main__":  # `import workloads` without the conftest
    sys.path.insert(0, str(Path(__file__).resolve().parent))

from workloads import (
    AIDS_N,
    AIDS_Q,
    PROT_N,
    PROT_Q,
    dataset,
    format_table,
    write_series,
)

from repro import GSimJoinOptions, gsim_join
from repro.grams.columnar import HAVE_NUMPY

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"

TRAJECTORY_TAUS = (1, 2, 3, 4)

#: Per-pipeline option overrides applied to the *full* variant.
PIPELINES = {
    "reference": {"interned": False},
    "interned": {"interned": True, "batch": False},
    "batched": {"interned": True, "batch": True},
}

#: Accepted end-to-end slowdown vs the committed baseline.  Generous on
#: purpose: the gate must catch structural regressions (a filter
#: re-running, a copy in the candidate loop), not scheduler jitter.
NOISE_FACTOR = 1.6

#: Runs per cell.  Time fields record the per-field minimum across
#: rounds (scheduler noise on the prepare phase alone exceeds the
#: filter-stage deltas being measured); count fields must agree across
#: rounds — asserted — since every pipeline is deterministic.
ROUNDS = 3

MATRIX = (
    ("aids", AIDS_Q),
    ("protein", PROT_Q),
)


def _run_once(ds: str, q: int, tau: int, pipeline: str) -> dict:
    graphs = list(dataset(ds))
    options = replace(GSimJoinOptions.full(q=q), **PIPELINES[pipeline])
    started = time.perf_counter()
    result = gsim_join(graphs, tau, options)
    wall = time.perf_counter() - started
    st = result.stats
    filter_time = st.verify_time - st.ged_time
    return {
        "dataset": ds,
        "q": q,
        "tau": tau,
        "pipeline": pipeline,
        "index_time_s": round(st.index_time, 4),
        "candidate_time_s": round(st.candidate_time, 4),
        "filter_time_s": round(filter_time, 4),
        "ged_time_s": round(st.ged_time, 4),
        "non_ged_time_s": round(wall - st.ged_time, 4),
        "wall_time_s": round(wall, 4),
        "cand1": st.cand1,
        "cand2": st.cand2,
        "results": st.results,
        "total_prefix_length": st.total_prefix_length,
        "index_bytes": st.index_bytes,
        "stages": [
            {"name": row.name, "input": row.input, "survivors": row.survivors}
            for row in st.stages
        ],
    }


def _run_cell(ds: str, q: int, tau: int, pipeline: str) -> dict:
    """Best-of-:data:`ROUNDS` cell: min time fields, asserted counts."""
    cell = _run_once(ds, q, tau, pipeline)
    for _ in range(ROUNDS - 1):
        sample = _run_once(ds, q, tau, pipeline)
        for key, value in sample.items():
            if key.endswith("_s"):
                cell[key] = min(cell[key], value)
            else:
                assert cell[key] == value, (ds, q, tau, pipeline, key)
    return cell


def active_pipelines() -> tuple:
    """The pipeline columns this environment can run."""
    if HAVE_NUMPY:
        return tuple(PIPELINES)
    return tuple(name for name in PIPELINES if name != "batched")


def collect() -> dict:
    pipelines = active_pipelines()
    cells = []
    for ds, q in MATRIX:
        for tau in TRAJECTORY_TAUS:
            for pipeline in pipelines:
                cells.append(_run_cell(ds, q, tau, pipeline))
    non_ged = {name: 0.0 for name in pipelines}
    hot = {name: 0.0 for name in pipelines}
    for cell in cells:
        non_ged[cell["pipeline"]] += cell["non_ged_time_s"]
        hot[cell["pipeline"]] += (
            cell["candidate_time_s"] + cell["filter_time_s"]
        )

    def ratio(sums: dict, slow: str, fast: str) -> float:
        if fast not in sums or slow not in sums:
            return 0.0
        return sums[slow] / sums[fast] if sums[fast] else float("inf")

    summary = {
        f"non_ged_{name}_s": round(seconds, 4)
        for name, seconds in non_ged.items()
    }
    for name, seconds in hot.items():
        summary[f"hot_{name}_s"] = round(seconds, 4)
    summary["non_ged_speedup"] = round(
        ratio(non_ged, "reference", "interned"), 2
    )
    summary["batch_speedup"] = round(ratio(non_ged, "interned", "batched"), 3)
    summary["batch_hot_speedup"] = round(ratio(hot, "interned", "batched"), 3)
    summary["end_to_end_wall_s"] = round(
        sum(cell["wall_time_s"] for cell in cells), 4
    )
    return {
        "generated_by": "benchmarks/bench_pipeline_trajectory.py",
        "workloads": {
            "aids": {"n": AIDS_N, "q": AIDS_Q, "seed": 42},
            "protein": {"n": PROT_N, "q": PROT_Q, "seed": 7},
        },
        "taus": list(TRAJECTORY_TAUS),
        "variant": "full",
        "pipelines": list(pipelines),
        "cells": cells,
        "summary": summary,
    }


def load_baseline() -> dict:
    """The committed ``BENCH_pipeline.json``, or ``{}`` if absent/unreadable."""
    try:
        return json.loads(OUTPUT.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}


def baseline_wall_s(baseline: dict) -> float:
    """End-to-end wall seconds of a baseline payload (0.0 if unknown)."""
    if not baseline:
        return 0.0
    summary = baseline.get("summary", {})
    if "end_to_end_wall_s" in summary:
        return float(summary["end_to_end_wall_s"])
    return float(
        sum(cell.get("wall_time_s", 0.0) for cell in baseline.get("cells", ()))
    )


def _table(payload: dict) -> str:
    rows = []
    for cell in payload["cells"]:
        rows.append(
            [
                cell["dataset"],
                cell["tau"],
                cell["pipeline"],
                f"{cell['index_time_s']:.3f}",
                f"{cell['candidate_time_s']:.3f}",
                f"{cell['filter_time_s']:.3f}",
                f"{cell['non_ged_time_s']:.3f}",
                cell["cand1"],
                cell["cand2"],
            ]
        )
    summary = payload["summary"]
    title = (
        "Pipeline trajectory (full variant): non-GED "
        f"{summary['non_ged_reference_s']:.2f}s -> "
        f"{summary['non_ged_interned_s']:.2f}s "
        f"({summary['non_ged_speedup']:.2f}x)"
    )
    if "non_ged_batched_s" in summary:
        title += (
            f" -> {summary['non_ged_batched_s']:.2f}s batched "
            f"({summary['batch_speedup']:.2f}x, hot "
            f"{summary['batch_hot_speedup']:.3f}x)"
        )
    return format_table(
        title,
        ["ds", "tau", "pipeline", "index", "candgen", "filter", "non-ged", "cand1", "cand2"],
        rows,
    )


def write_trajectory() -> dict:
    payload = collect()
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return payload


def test_pipeline_trajectory(benchmark):
    baseline = load_baseline()
    prior_wall = baseline_wall_s(baseline)
    payload = benchmark.pedantic(write_trajectory, rounds=1, iterations=1)
    table = _table(payload)
    write_series("pipeline_trajectory", table, [])
    print("\n" + table)
    assert OUTPUT.exists()
    pipelines = payload["pipelines"]
    assert len(payload["cells"]) == (
        len(pipelines) * len(TRAJECTORY_TAUS) * len(MATRIX)
    )
    # All pipelines are exact: identical candidates, results and
    # per-stage survivor trajectories per cell — the batch kernels'
    # parity fingerprint, asserted in-bench.
    by_key = {}
    for cell in payload["cells"]:
        key = (cell["dataset"], cell["tau"])
        by_key.setdefault(key, []).append(cell)
    for (ds, tau), group in by_key.items():
        assert len(group) == len(pipelines)
        ref, rest = group[0], group[1:]
        for cell in rest:
            for field in ("cand1", "cand2", "results",
                          "total_prefix_length", "stages"):
                assert ref[field] == cell[field], (
                    ds, tau, cell["pipeline"], field
                )
        verify_row = ref["stages"][-1]
        assert verify_row["name"] == "verify"
        assert verify_row["input"] == ref["cand2"]
        assert verify_row["survivors"] == ref["results"]
    # The vectorized kernels must beat the scalar cascade on the phases
    # they touch (candidate generation + filter cascade), and must not
    # regress the end-to-end non-GED time beyond prepare-phase jitter.
    if "batched" in pipelines:
        assert payload["summary"]["batch_hot_speedup"] > 1.0
        assert payload["summary"]["batch_speedup"] > 0.95
    # Coarse perf gate: no end-to-end slowdown beyond noise vs the
    # previously committed baseline (comparable matrices only).
    if prior_wall > 0.0 and len(baseline.get("cells", ())) == len(
        payload["cells"]
    ):
        new_wall = payload["summary"]["end_to_end_wall_s"]
        assert new_wall <= prior_wall * NOISE_FACTOR, (
            f"pipeline slowed down: {new_wall:.2f}s vs baseline "
            f"{prior_wall:.2f}s (allowed {NOISE_FACTOR}x)"
        )


if __name__ == "__main__":
    print(_table(write_trajectory()))
    print(f"\nwrote {OUTPUT}")
