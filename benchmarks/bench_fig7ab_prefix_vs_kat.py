"""Figures 7(a)/(b) — average prefix length, κ-AT vs GSimJoin.

AIDS-like (q=4) and PROTEIN-like (q=3) vs κ-AT at its best setting
q = 1.  Note the paper's caveat: prefix lengths are not directly
comparable because GSimJoin has far more q-grams per graph — the
``grams/graph`` columns are printed alongside; the derived *required
common grams* (grams − prefix + 1) is what shows GSimJoin's stricter
count constraint (Section VII-E's 18.4 vs 63.6 discussion).
"""

from workloads import (
    AIDS_Q,
    PROT_Q,
    TAUS,
    dataset,
    format_table,
    gsim_run,
    kat_run,
    write_series,
)

from repro.core import extract_qgrams


def _rows(ds: str, q: int):
    graphs = list(dataset(ds))
    n = len(graphs)
    kat_grams = sum(g.num_vertices for g in graphs) / n
    gs_grams = sum(extract_qgrams(g, q).size for g in graphs) / n
    rows = []
    for tau in TAUS:
        kat = kat_run(ds, tau).stats
        gs = gsim_run(ds, tau, q, "full").stats
        rows.append(
            [
                tau,
                f"{kat.avg_prefix_length:.1f}",
                f"{gs.avg_prefix_length:.1f}",
                f"{kat_grams:.1f}",
                f"{gs_grams:.1f}",
                f"{kat_grams - kat.avg_prefix_length + 1:.1f}",
                f"{gs_grams - gs.avg_prefix_length + 1:.1f}",
            ]
        )
    return rows


COLUMNS = [
    "tau",
    "kAT prefix",
    "GS prefix",
    "kAT grams/g",
    "GS grams/g",
    "kAT req.common",
    "GS req.common",
]


def test_fig7a_aids_prefix_length(benchmark):
    rows = benchmark.pedantic(lambda: _rows("aids", AIDS_Q), rounds=1, iterations=1)
    table = format_table("Fig 7(a) AIDS avg prefix length", COLUMNS, rows)
    write_series("fig7a", table, [])
    print("\n" + table)
    assert len(rows) == len(TAUS)


def test_fig7b_protein_prefix_length(benchmark):
    rows = benchmark.pedantic(lambda: _rows("protein", PROT_Q), rounds=1, iterations=1)
    table = format_table("Fig 7(b) PROTEIN avg prefix length", COLUMNS, rows)
    write_series("fig7b", table, [])
    print("\n" + table)
    assert len(rows) == len(TAUS)
