"""Figure 6(d) — Cand-2 (pairs needing GED computation), + MinEdit vs
+ Local Label, against the real result count.

PROTEIN-like, q = 3, τ = 1..4.  Local label filtering prunes Cand-2
further (paper: up to 62% reduction), approaching the real result size.
"""

from workloads import PROT_Q, TAUS, format_table, gsim_run, write_series


def test_fig6d_cand2(benchmark):
    def compute():
        rows = []
        for tau in TAUS:
            minedit = gsim_run("protein", tau, PROT_Q, "minedit").stats
            full = gsim_run("protein", tau, PROT_Q, "full").stats
            assert full.results == minedit.results  # same join result
            rows.append([tau, minedit.cand2, full.cand2, full.results])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = format_table(
        "Fig 6(d) PROTEIN Cand-2 (q=3)",
        ["tau", "+MinEdit", "+LocalLabel", "RealResult"],
        rows,
    )
    write_series("fig6d", table, [])
    print("\n" + table)
    for _, minedit, full, real in rows:
        assert real <= full <= minedit
