"""Figures 7(i)/(j) — total running time by phase, κ-AT vs GSimJoin.

Expected shape: κ-AT has cheaper index construction / candidate
generation (no minimum edit or local label machinery) but loses on
total time through its larger Cand-2 and unoptimized GED search; the
gap grows with τ and is largest on the dense PROTEIN-like data (the
paper reports 6.6x on AIDS and 80.6x on PROTEIN).
"""

from workloads import AIDS_Q, PROT_Q, TAUS, format_table, gsim_run, kat_run, write_series


def _rows(ds: str, q: int):
    rows = []
    for tau in TAUS:
        for label, stats in (
            ("AT", kat_run(ds, tau).stats),
            ("GS", gsim_run(ds, tau, q, "full").stats),
        ):
            rows.append(
                [
                    tau,
                    label,
                    f"{stats.index_time:.2f}",
                    f"{stats.candidate_time:.2f}",
                    f"{stats.verify_time:.2f}",
                    f"{stats.total_time:.2f}",
                ]
            )
    return rows


COLUMNS = ["tau", "alg", "index", "candgen", "verify", "total"]


def test_fig7i_aids_total_time(benchmark):
    rows = benchmark.pedantic(lambda: _rows("aids", AIDS_Q), rounds=1, iterations=1)
    table = format_table("Fig 7(i) AIDS total running time (s)", COLUMNS, rows)
    write_series("fig7i", table, [])
    print("\n" + table)


def test_fig7j_protein_total_time(benchmark):
    rows = benchmark.pedantic(lambda: _rows("protein", PROT_Q), rounds=1, iterations=1)
    table = format_table("Fig 7(j) PROTEIN total running time (s)", COLUMNS, rows)
    write_series("fig7j", table, [])
    print("\n" + table)
