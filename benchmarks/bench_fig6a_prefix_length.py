"""Figure 6(a) — average prefix length, Basic GSimJoin vs + MinEdit.

PROTEIN-like, q = 3, τ = 1..4.  Expected shape: minimum edit filtering
shortens prefixes substantially, most dramatically at small τ (the paper
reports up to 95% reduction at τ = 1).
"""

from workloads import PROT_Q, TAUS, format_table, gsim_run, write_series


def test_fig6a_prefix_length(benchmark):
    def compute():
        rows = []
        for tau in TAUS:
            basic = gsim_run("protein", tau, PROT_Q, "basic").stats
            minedit = gsim_run("protein", tau, PROT_Q, "minedit").stats
            rows.append(
                [tau, f"{basic.avg_prefix_length:.1f}", f"{minedit.avg_prefix_length:.1f}"]
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = format_table(
        "Fig 6(a) PROTEIN avg prefix length (q=3)",
        ["tau", "Basic", "+MinEdit"],
        rows,
    )
    write_series("fig6a", table, [])
    print("\n" + table)
    # The headline claim: +MinEdit never lengthens the prefix.
    for _, basic, minedit in rows:
        assert float(minedit) <= float(basic)
