"""Ablation — minimum-edit prefix computation: two-round vs exact-only.

Algorithm 4 runs a cheap greedy/Slavík binary search first and the exact
bounded hitting-set search second.  This ablation compares that
two-round scheme against using the exact solver for the whole range,
measuring prefix computation time (the resulting prefixes are identical
— the greedy round is only an accelerator).
"""

import time

from workloads import PROT_Q, dataset, format_table, write_series

from repro.core import build_ordering, extract_qgrams, min_prefix_length
from repro.grams.minedit import min_edit_exact


def exact_only_prefix(sorted_grams, tau, d_path):
    """Single binary search with the exact solver (no greedy round)."""
    total = len(sorted_grams)
    hard_right = min(tau * d_path + 1, total)
    if hard_right == 0:
        return None
    if min_edit_exact(sorted_grams[:hard_right], tau) <= tau:
        return None
    left, right = min(tau + 1, hard_right), hard_right
    while left < right:
        mid = (left + right) // 2
        if min_edit_exact(sorted_grams[:mid], tau) > tau:
            right = mid
        else:
            left = mid + 1
    return left


def test_ablation_minedit_solver(benchmark):
    graphs = list(dataset("protein"))

    def compute():
        profiles = [extract_qgrams(g, PROT_Q) for g in graphs]
        ordering = build_ordering(profiles)
        for p in profiles:
            ordering.sort_profile(p)

        rows = []
        for tau in (1, 2, 3, 4):
            started = time.perf_counter()
            two_round = [
                min_prefix_length(p.grams, tau, p.d_path) for p in profiles
            ]
            t_two = time.perf_counter() - started

            started = time.perf_counter()
            exact_only = [
                exact_only_prefix(p.grams, tau, p.d_path) for p in profiles
            ]
            t_exact = time.perf_counter() - started

            assert two_round == exact_only  # same prefixes either way
            rows.append([tau, f"{t_two:.3f}", f"{t_exact:.3f}"])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = format_table(
        "Ablation: MinPrefixLen solver strategy (PROTEIN, seconds)",
        ["tau", "greedy+exact (Alg.4)", "exact-only"],
        rows,
    )
    write_series("ablation_minedit_solver", table, [])
    print("\n" + table)
