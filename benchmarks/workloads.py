"""Shared workloads and memoized join runs for the benchmark harness.

Every figure of the paper is a projection of a small set of join runs
(e.g. Figures 6(a)–6(f) all read the Basic/+MinEdit/+LocalLabel runs on
the PROTEIN-like dataset).  Runs are memoized here so each configuration
executes exactly once per benchmark session, and each ``bench_fig*``
module formats its own figure from the captured
:class:`~repro.core.result.JoinStatistics`.

Scales are environment-tunable (defaults keep the full harness at
laptop-scale; the paper's full sizes are |AIDS| = 4000, |PROTEIN| = 600):

* ``REPRO_BENCH_AIDS_N``          (default 200)
* ``REPRO_BENCH_PROT_N``          (default 80)
* ``REPRO_BENCH_MAX_TAU``         (default 4)
* ``REPRO_BENCH_APPFULL_AIDS_N``  (default 100)
* ``REPRO_BENCH_APPFULL_PROT_N``  (default 50)

Each figure's series is also written to ``benchmarks/results/<fig>.txt``
so EXPERIMENTS.md can reference concrete numbers.
"""

from __future__ import annotations

import os
from functools import lru_cache
from pathlib import Path
from typing import List, Sequence, Tuple

from repro import GSimJoinOptions, gsim_join
from repro.baselines import appfull_join, kat_join
from repro.core.result import JoinResult
from repro.datasets import aids_like, protein_like

RESULTS_DIR = Path(__file__).resolve().parent / "results"

AIDS_N = int(os.environ.get("REPRO_BENCH_AIDS_N", "200"))
PROT_N = int(os.environ.get("REPRO_BENCH_PROT_N", "80"))
MAX_TAU = int(os.environ.get("REPRO_BENCH_MAX_TAU", "4"))
APPFULL_AIDS_N = int(os.environ.get("REPRO_BENCH_APPFULL_AIDS_N", "100"))
APPFULL_PROT_N = int(os.environ.get("REPRO_BENCH_APPFULL_PROT_N", "50"))

TAUS: Tuple[int, ...] = tuple(range(1, MAX_TAU + 1))

#: The paper's best q-gram lengths per dataset (Section VII-D).
AIDS_Q = 4
PROT_Q = 3

VARIANTS = {
    "basic": GSimJoinOptions.basic,
    "minedit": GSimJoinOptions.minedit,
    "full": GSimJoinOptions.full,
}


@lru_cache(maxsize=None)
def aids_dataset(n: int = AIDS_N) -> tuple:
    return tuple(aids_like(num_graphs=n, seed=42))


@lru_cache(maxsize=None)
def protein_dataset(n: int = PROT_N) -> tuple:
    return tuple(protein_like(num_graphs=n, seed=7))


def dataset(name: str, n: int = None) -> tuple:
    if name == "aids":
        return aids_dataset(n) if n else aids_dataset()
    if name == "protein":
        return protein_dataset(n) if n else protein_dataset()
    raise ValueError(f"unknown dataset {name!r}")


@lru_cache(maxsize=None)
def gsim_run(ds: str, tau: int, q: int, variant: str, n: int = None) -> JoinResult:
    """Memoized GSimJoin run (one per configuration per session)."""
    graphs = list(dataset(ds, n))
    options = VARIANTS[variant](q=q)
    return gsim_join(graphs, tau, options=options)


@lru_cache(maxsize=None)
def kat_run(ds: str, tau: int, q: int = 1, n: int = None) -> JoinResult:
    graphs = list(dataset(ds, n))
    return kat_join(graphs, tau, q=q)


@lru_cache(maxsize=None)
def appfull_run(ds: str, tau: int, n: int) -> JoinResult:
    graphs = list(dataset(ds, n))
    return appfull_join(graphs, tau, verify=True)


def write_series(figure: str, header: str, rows: Sequence[str]) -> str:
    """Persist a figure's series to benchmarks/results/ and return it."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    text = "\n".join([header, *rows, ""])
    (RESULTS_DIR / f"{figure}.txt").write_text(text, encoding="utf-8")
    return text


def format_table(title: str, columns: List[str], rows: List[List[object]]) -> str:
    """Small fixed-width table formatter for the printed series."""
    widths = [
        max(len(str(col)), *(len(str(r[i])) for r in rows)) if rows else len(str(col))
        for i, col in enumerate(columns)
    ]
    lines = [title]
    lines.append("  ".join(str(c).ljust(w) for c, w in zip(columns, widths)))
    for row in rows:
        lines.append("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
