"""Extension benchmark — out-of-core sharded join under a memory cap.

Not a paper figure: demonstrates the robustness contract of
``gsim_join_sharded``.  Two claims are measured and asserted:

* **Bounded memory.**  Under a hard address-space cap (RLIMIT_AS set to
  the post-import footprint plus a fixed headroom) the in-memory join
  dies of ``MemoryError`` while the sharded join — streaming survey,
  size-banded shard files, spill-to-disk queues, logical memory budget
  — completes and reproduces the unrestricted run's result fingerprint.
* **Crash recovery.**  A sacrificial subprocess is killed at every
  lifecycle stage (first verification, mid-shard, last verification,
  the merge boundary) and resumed; each resume must land on the same
  fingerprint.
"""

import random
import subprocess
import sys
import time
from pathlib import Path

from workloads import format_table, write_series

from repro import gsim_join
from repro.core.sharded import gsim_join_sharded, result_fingerprint
from repro.graph import assign_ids, save_graphs
from repro.graph.generators import random_molecule

TAU = 1
SHARDS = 16
HEADROOM_MB = 48
NUM_GRAPHS = 700

SRC = str(Path(__file__).resolve().parent.parent / "src")

CAPPED_IN_MEMORY = """
import resource, sys
from repro.core.join import gsim_join
from repro.graph import load_graphs

collection, headroom_mb = sys.argv[1], int(sys.argv[2])
with open("/proc/self/statm") as f:
    vm_now = int(f.read().split()[0]) * resource.getpagesize()
cap = vm_now + headroom_mb * 2**20
resource.setrlimit(resource.RLIMIT_AS, (cap, cap))
try:
    gsim_join(load_graphs(collection), {tau})
except MemoryError:
    sys.exit(7)
sys.exit(0)
""".format(tau=TAU)

CAPPED_SHARDED = """
import resource, sys
from repro.core.sharded import gsim_join_sharded, result_fingerprint

collection, spill_dir, headroom_mb = sys.argv[1], sys.argv[2], int(sys.argv[3])
with open("/proc/self/statm") as f:
    vm_now = int(f.read().split()[0]) * resource.getpagesize()
cap = vm_now + headroom_mb * 2**20
resource.setrlimit(resource.RLIMIT_AS, (cap, cap))
result = gsim_join_sharded(
    collection, {tau}, spill_dir=spill_dir, shards={shards},
    memory_budget_mb=8,
)
print(result_fingerprint(result))
""".format(tau=TAU, shards=SHARDS)

KILLED_SHARDED = """
import sys
from repro.core.sharded import gsim_join_sharded
from repro.runtime import FaultPlan

collection, spill_dir, kill_at = sys.argv[1], sys.argv[2], int(sys.argv[3])
gsim_join_sharded(
    collection, {tau}, spill_dir=spill_dir, shards={shards},
    fault=FaultPlan("kill", at=kill_at),
)
""".format(tau=TAU, shards=SHARDS)


def _run(driver, *args, timeout=600):
    return subprocess.run(
        [sys.executable, "-c", driver, *[str(a) for a in args]],
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
        capture_output=True,
        timeout=timeout,
    )


def test_outofcore_sharded_join(benchmark, tmp_path):
    if sys.platform != "linux":
        import pytest

        pytest.skip("needs /proc and RLIMIT_AS")

    rng = random.Random(71)
    graphs = assign_ids(
        [random_molecule(rng, rng.randint(60, 120)) for _ in range(NUM_GRAPHS)]
    )
    collection = tmp_path / "collection.txt"
    save_graphs(graphs, collection)

    def compute():
        rows = []
        started = time.perf_counter()
        reference = gsim_join(graphs, TAU)
        fingerprint = result_fingerprint(reference)
        rows.append([
            "in-memory, uncapped", f"{time.perf_counter() - started:.2f}",
            "ok", reference.stats.results,
        ])

        started = time.perf_counter()
        capped = _run(CAPPED_IN_MEMORY, collection, HEADROOM_MB)
        assert capped.returncode != 0, "in-memory join survived the cap"
        rows.append([
            f"in-memory, {HEADROOM_MB}MB cap",
            f"{time.perf_counter() - started:.2f}", "MemoryError", "-",
        ])

        started = time.perf_counter()
        sharded = _run(
            CAPPED_SHARDED, collection, tmp_path / "spill-capped", HEADROOM_MB
        )
        assert sharded.returncode == 0, sharded.stderr.decode()
        assert sharded.stdout.decode().strip() == fingerprint
        rows.append([
            f"sharded, {HEADROOM_MB}MB cap",
            f"{time.perf_counter() - started:.2f}", "ok (fp match)",
            reference.stats.results,
        ])

        # Crash recovery: kill at each lifecycle stage, resume, compare.
        clean = gsim_join_sharded(
            collection, TAU, spill_dir=tmp_path / "spill-clean", shards=SHARDS
        )
        assert result_fingerprint(clean) == fingerprint
        total = clean.stats.cand1
        stages = [
            ("first verification", 1),
            ("mid-shard", max(1, total // 2)),
            ("last verification", max(1, total)),
            ("merge boundary", total + 1),
        ]
        for label, kill_at in stages:
            spill = tmp_path / f"spill-kill-{kill_at}"
            started = time.perf_counter()
            proc = _run(KILLED_SHARDED, collection, spill, kill_at)
            assert proc.returncode == 1, proc.stderr.decode()
            resumed = gsim_join_sharded(
                collection, TAU, spill_dir=spill, shards=SHARDS, resume=True
            )
            assert result_fingerprint(resumed) == fingerprint
            rows.append([
                f"kill at {label} + resume",
                f"{time.perf_counter() - started:.2f}", "ok (fp match)",
                resumed.stats.results,
            ])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = format_table(
        f"Extension: out-of-core sharded join "
        f"({NUM_GRAPHS} graphs, tau={TAU}, {SHARDS} shards)",
        ["mode", "time (s)", "outcome", "results"],
        rows,
    )
    write_series("outofcore", table, [])
    print("\n" + table)
