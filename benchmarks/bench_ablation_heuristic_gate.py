"""Ablation — the improved-h(x) remainder-size gate.

The paper evaluates Algorithm 8 at every A* state; in CPython the
per-state q-gram extraction dominates, so our heuristic gates the
local-label term to states whose remainders have at most
``max_remaining`` vertices (see repro.ged.heuristics).  This ablation
sweeps the gate on the PROTEIN candidate pairs at the largest τ,
reporting verification time and expansions per setting — including
``None`` (the paper's always-on behaviour).
"""

from bench_fig6e_ged_time import candidate_pairs
from workloads import MAX_TAU, PROT_Q, dataset, format_table, write_series

import time

from repro.ged import graph_edit_distance_detailed, make_local_label_heuristic, mismatch_vertex_order


def test_ablation_heuristic_gate(benchmark):
    graphs = list(dataset("protein"))
    tau = MAX_TAU

    def compute():
        pairs = candidate_pairs(graphs, tau, PROT_Q)
        rows = []
        for gate in (0, 8, 16, 24, None):
            started = time.perf_counter()
            expansions = 0
            results = 0
            for r, s, mm in pairs:
                heuristic = make_local_label_heuristic(PROT_Q, tau, max_remaining=gate)
                order = mismatch_vertex_order(r, mm.mismatch_r)
                search = graph_edit_distance_detailed(
                    r, s, threshold=tau, heuristic=heuristic, vertex_order=order
                )
                expansions += search.expanded
                if search.distance <= tau:
                    results += 1
            elapsed = time.perf_counter() - started
            rows.append(
                [str(gate), len(pairs), f"{elapsed:.2f}", expansions, results]
            )
        # Every gate setting is admissible, so results must agree.
        assert len({row[-1] for row in rows}) == 1
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = format_table(
        f"Ablation: improved-h gate (PROTEIN, tau={tau})",
        ["max_remaining", "cands", "time (s)", "expansions", "results"],
        rows,
    )
    write_series("ablation_heuristic_gate", table, [])
    print("\n" + table)
