"""Ablation — q-gram keys as label tuples vs 32-bit hashes.

The paper hashes each q-gram into a 4-byte integer to shrink the index
and speed up equality checks, accepting hash-collision false positives
in the candidates.  Our implementation keeps exact label-tuple keys;
this ablation quantifies both sides: probe/index timing and the number
of extra candidates collisions would admit at a deliberately tiny hash
space (to make collisions observable at benchmark scale).
"""

import time

from workloads import AIDS_Q, dataset, format_table, write_series

from repro.core import build_ordering, extract_qgrams


def _index_and_probe(profiles, key_of):
    """Build a postings dict and self-probe every profile; time it."""
    started = time.perf_counter()
    postings = {}
    for i, profile in enumerate(profiles):
        for gram in profile.grams:
            postings.setdefault(key_of(gram.key), []).append(i)
    hits = 0
    for profile in profiles:
        for gram in profile.grams:
            hits += len(postings[key_of(gram.key)])
    return time.perf_counter() - started, len(postings), hits


def test_ablation_hash_vs_tuple_keys(benchmark):
    graphs = list(dataset("aids"))

    def compute():
        profiles = [extract_qgrams(g, AIDS_Q) for g in graphs]
        ordering = build_ordering(profiles)
        for p in profiles:
            ordering.sort_profile(p)

        rows = []
        t_tuple, keys_tuple, hits_tuple = _index_and_probe(profiles, lambda k: k)
        rows.append(["tuple", f"{t_tuple:.3f}", keys_tuple, hits_tuple, 0])
        for bits in (32, 16, 12):
            mask = (1 << bits) - 1
            t_hash, keys_hash, hits_hash = _index_and_probe(
                profiles, lambda k, m=mask: hash(k) & m
            )
            rows.append(
                [
                    f"hash{bits}",
                    f"{t_hash:.3f}",
                    keys_hash,
                    hits_hash,
                    hits_hash - hits_tuple,  # collision-induced extra hits
                ]
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = format_table(
        "Ablation: q-gram key representation (AIDS)",
        ["keys", "time", "distinct", "probe hits", "false hits"],
        rows,
    )
    write_series("ablation_hash_keys", table, [])
    print("\n" + table)
    # Exact tuple keys admit zero false hits by construction.
    assert rows[0][-1] == 0
    # Collisions can only add hits, never remove them.
    for row in rows[1:]:
        assert row[-1] >= 0
