"""Figures 7(k)/(l) — Cand-2, AppFull vs GSimJoin.

AppFull's bipartite star bounds are tight, so its unresolved candidate
set (lower bound ≤ τ < upper bound) is small — often smaller than
GSimJoin's Cand-2 — but it pays an all-pairs matching cost to get there
(Figures 7(m)/(n)).  Run on reduced subsets (AppFull is quadratic with
a Hungarian call per pair; see workloads.py for the sizes).
"""

from workloads import (
    AIDS_Q,
    APPFULL_AIDS_N,
    APPFULL_PROT_N,
    PROT_Q,
    TAUS,
    appfull_run,
    format_table,
    gsim_run,
    write_series,
)


def _rows(ds: str, q: int, n: int):
    rows = []
    for tau in TAUS:
        af = appfull_run(ds, tau, n).stats
        gs = gsim_run(ds, tau, q, "full", n=n).stats
        assert af.results == gs.results
        rows.append([tau, af.cand2, gs.cand2, gs.results])
    return rows


def test_fig7k_aids_cand2_vs_appfull(benchmark):
    rows = benchmark.pedantic(
        lambda: _rows("aids", AIDS_Q, APPFULL_AIDS_N), rounds=1, iterations=1
    )
    table = format_table(
        f"Fig 7(k) AIDS Cand-2 (n={APPFULL_AIDS_N})",
        ["tau", "AppFull", "GSimJoin", "RealResult"],
        rows,
    )
    write_series("fig7k", table, [])
    print("\n" + table)


def test_fig7l_protein_cand2_vs_appfull(benchmark):
    rows = benchmark.pedantic(
        lambda: _rows("protein", PROT_Q, APPFULL_PROT_N), rounds=1, iterations=1
    )
    table = format_table(
        f"Fig 7(l) PROTEIN Cand-2 (n={APPFULL_PROT_N})",
        ["tau", "AppFull", "GSimJoin", "RealResult"],
        rows,
    )
    write_series("fig7l", table, [])
    print("\n" + table)
