"""Figures 7(g)/(h) — Cand-2 with the real result count, κ-AT vs GSimJoin.

Expected shape: GSimJoin's stricter count constraint and local label
filtering leave fewer pairs for the expensive GED computation; both
algorithms return the identical join result.
"""

from workloads import AIDS_Q, PROT_Q, TAUS, format_table, gsim_run, kat_run, write_series


def _rows(ds: str, q: int):
    rows = []
    for tau in TAUS:
        kat = kat_run(ds, tau).stats
        gs = gsim_run(ds, tau, q, "full").stats
        assert kat.results == gs.results  # identical join answers
        rows.append([tau, kat.cand2, gs.cand2, gs.results])
    return rows


def test_fig7g_aids_cand2(benchmark):
    rows = benchmark.pedantic(lambda: _rows("aids", AIDS_Q), rounds=1, iterations=1)
    table = format_table(
        "Fig 7(g) AIDS Cand-2", ["tau", "kAT", "GSimJoin", "RealResult"], rows
    )
    write_series("fig7g", table, [])
    print("\n" + table)
    for _, kat, gs, real in rows:
        assert real <= gs


def test_fig7h_protein_cand2(benchmark):
    rows = benchmark.pedantic(lambda: _rows("protein", PROT_Q), rounds=1, iterations=1)
    table = format_table(
        "Fig 7(h) PROTEIN Cand-2", ["tau", "kAT", "GSimJoin", "RealResult"], rows
    )
    write_series("fig7h", table, [])
    print("\n" + table)
    for _, kat, gs, real in rows:
        assert real <= gs
