"""Figure 6(b) — inverted index size, Basic GSimJoin vs + MinEdit.

PROTEIN-like, q = 3, τ = 1..4.  Index size follows prefix length; both
algorithms need little memory (the paper reports 76.6 kB for +MinEdit at
τ = 4 on the 600-graph PROTEIN dataset).
"""

from workloads import PROT_Q, TAUS, format_table, gsim_run, write_series


def test_fig6b_index_size(benchmark):
    def compute():
        rows = []
        for tau in TAUS:
            basic = gsim_run("protein", tau, PROT_Q, "basic").stats
            minedit = gsim_run("protein", tau, PROT_Q, "minedit").stats
            rows.append(
                [
                    tau,
                    f"{basic.index_bytes / 1024.0:.1f}",
                    f"{minedit.index_bytes / 1024.0:.1f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = format_table(
        "Fig 6(b) PROTEIN index size kB (q=3)",
        ["tau", "Basic", "+MinEdit"],
        rows,
    )
    write_series("fig6b", table, [])
    print("\n" + table)
    assert len(rows) == len(TAUS)
