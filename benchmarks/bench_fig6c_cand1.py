"""Figure 6(c) — Cand-1 (pairs surviving index probing), Basic vs + MinEdit.

PROTEIN-like, q = 3, τ = 1..4.  Shorter prefixes probe fewer inverted
lists, so +MinEdit generates fewer Cand-1 pairs (paper: up to 88% fewer
at τ = 1).
"""

from workloads import PROT_Q, TAUS, format_table, gsim_run, write_series


def test_fig6c_cand1(benchmark):
    def compute():
        rows = []
        for tau in TAUS:
            basic = gsim_run("protein", tau, PROT_Q, "basic").stats
            minedit = gsim_run("protein", tau, PROT_Q, "minedit").stats
            rows.append([tau, basic.cand1, minedit.cand1])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = format_table(
        "Fig 6(c) PROTEIN Cand-1 (q=3)", ["tau", "Basic", "+MinEdit"], rows
    )
    write_series("fig6c", table, [])
    print("\n" + table)
    for _, basic, minedit in rows:
        assert minedit <= basic
