"""Adaptive planner end-to-end — auto-plan vs every static cascade order.

Builds a *skewed* synthetic collection with two phases whose optimal
filter order differs, so no single static cascade wins both:

* **B phase** (processed first — smaller graphs, and the executor walks
  the collection in size order): 40-vertex paths made of a rich
  per-cluster anchor (40 unique labels) plus a shuffled 25-letter
  ``{c,n,o}`` body.  Intra-cluster pairs have identical label multisets
  (the global label filter passes every one, Γ = 0) while the shuffled
  body destroys q-gram alignment, so the count filter prunes robustly
  (common ≈ junction overlap ≪ LB).  Optimal order here:
  **count-first**.
* **A phase** (second — longer 150-vertex paths): per-cluster random
  ``{C,N,O,S}`` base with 3 *adjacent* substitutions at a fixed site,
  using per-mate-unique labels.  Γ = 3 > τ, so the global label filter
  prunes — cheaply, since the alphabet is tiny — while the adjacent
  damage keeps the q-gram intersection above the count bound
  (common = |Q|−7 ≥ |Q|−τ·D), making count merges both expensive
  (signature ≈ 146) and useless.  Optimal order here: **global-first**.

A static plan commits to one order for the whole join; ``plan="auto"``
calibrates on the first pairs (flipping to count-first during the B
phase) and re-plans on drift once the A phase starts (flipping back to
global-first), so it must beat *every* static permutation end-to-end —
asserted in-bench, along with per-cell result-fingerprint parity
against the default static plan and the presence of both re-plan
triggers (``calibration`` and ``drift``) in the auto cell's event
journal.  Skewed cells run the scalar cascade (``batch=False``) — the
per-pair filter costs the planner's model reasons about; a
``{default, auto}`` batch-mode pair rides along to show the planner
composes with the vectorized kernels (parity + noise-bounded wall).  A
paper-dataset matrix (AIDS-like, q = 4, τ = 2) checks the no-regression
side: on a uniform workload auto must stay within noise of the *best*
static order (it converges to one order and stops re-planning).

Writes ``BENCH_plan.json`` at the repository root.  When a previous
artifact with the same cell matrix exists, the new end-to-end wall must
stay within ``NOISE_FACTOR``× of it.

Smoke mode (CI)::

    REPRO_BENCH_PLANNER_SMOKE=1 PYTHONPATH=src python benchmarks/bench_planner.py

runs a scaled-down skewed workload with only the default and auto
plans, asserts parity, at least one re-plan event and a noise-bounded
gate (auto ≤ default × SMOKE_NOISE), and does *not* rewrite the
committed artifact.

Regenerate standalone (no pytest-benchmark needed)::

    PYTHONPATH=src python benchmarks/bench_planner.py
"""

import gc
import itertools
import json
import os
import random
import sys
import time
from dataclasses import replace
from pathlib import Path

if __name__ == "__main__":  # `import workloads` without the conftest
    sys.path.insert(0, str(Path(__file__).resolve().parent))

from workloads import dataset, format_table, write_series

from repro import GSimJoinOptions, gsim_join
from repro.core.sharded import result_fingerprint
from repro.graph import Graph, assign_ids
from repro.grams.columnar import HAVE_NUMPY

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_plan.json"

#: The full pair-filter cascade, in the model's default order.
FULL_STAGES = ("global-label-filter", "count-filter", "local-label-filter")

TAU = 2
Q = 4

#: Accepted end-to-end slowdown vs the committed baseline.
NOISE_FACTOR = 1.6

#: Smoke gate: auto may not exceed the default static plan by more than
#: this factor (it should *win*; the slack absorbs CI scheduler noise
#: plus auto's fixed prepare-time pair-sample cost, which at smoke
#: scale is a visible fraction of the sub-second wall).
SMOKE_NOISE = 1.4

#: Paper-dataset gate: on a uniform workload auto converges to one
#: order, so it must stay within noise of the best static permutation.
AIDS_NOISE = 1.15

#: Runs per cell; wall times record the minimum (the prepare phase's
#: scheduler jitter exceeds the cascade deltas being measured), count
#: fields and fingerprints must agree across rounds — asserted.
ROUNDS = 3

SMOKE = os.environ.get("REPRO_BENCH_PLANNER_SMOKE", "") not in ("", "0")

#: (b_clusters, b_mates, a_clusters, a_mates, a_len)
SKEWED_SCALE = (15, 80, 4, 100, 150)
SMOKE_SCALE = (6, 48, 2, 48, 100)

#: Large enough to amortize auto's fixed prepare-time sampling cost
#: (``estimate_pass_rates`` evaluates every filter on a capped pair
#: sample, ~25 ms) below the AIDS_NOISE margin.
AIDS_PLAN_N = int(os.environ.get("REPRO_BENCH_PLANNER_AIDS_N", "400"))


def _path(labels):
    g = Graph()
    for i, lbl in enumerate(labels):
        g.add_vertex(i, lbl)
    for i in range(len(labels) - 1):
        g.add_edge(i, i + 1, "-")
    return g


def skewed_collection(scale=SKEWED_SCALE, seed=7):
    """Two-phase collection whose optimal cascade order flips mid-join."""
    b_clusters, b_mates, a_clusters, a_mates, a_len = scale
    rng = random.Random(seed)
    graphs = []
    # B phase: count-prunable.  The rich anchor keeps prefixes
    # intra-cluster (anchor-gram df = cluster size < body-class df) and
    # the shuffled small-alphabet body wrecks gram alignment.
    for c in range(b_clusters):
        anchor = [f"B{c}.{j}" for j in range(40)]
        body = [rng.choice("cno") for _ in range(25)]
        for _ in range(b_mates):
            b = body[:]
            rng.shuffle(b)
            graphs.append(_path(anchor + b))
    # A phase: global-prunable.  Mates 0 and 1 are identical — one
    # GED-0 result pair per cluster; every other mate carries 3
    # adjacent per-mate-unique substitutions (Γ = 3 > τ, but only 7
    # damaged grams, inside the count budget τ·D = 10).
    for c in range(a_clusters):
        base = [rng.choice("CNOS") for _ in range(a_len)]
        site = rng.randrange(20, a_len - 20)
        for m in range(a_mates):
            labels = base[:]
            if m >= 2:
                for dj in range(3):
                    labels[site + dj] = f"a{c}.{m}.{dj}"
            graphs.append(_path(labels))
    return assign_ids(graphs)


def plan_matrix():
    """label -> plan option value, default (None) first."""
    plans = {"default": None, "auto": "auto"}
    for perm in itertools.permutations(FULL_STAGES):
        plans["static:" + ",".join(p.split("-")[0] for p in perm)] = perm
    return plans


def _run_once(graphs, plan, batch):
    options = replace(GSimJoinOptions.full(q=Q), plan=plan, batch=batch)
    gc.collect()
    started = time.perf_counter()
    result = gsim_join(graphs, TAU, options=options)
    wall = time.perf_counter() - started
    st = result.stats
    return {
        "wall_time_s": round(wall, 4),
        "cand1": st.cand1,
        "cand2": st.cand2,
        "results": st.results,
        "ged_calls": st.ged_calls,
        "fingerprint": result_fingerprint(result),
        "replan_events": [
            {
                "pair_index": ev["pair_index"],
                "trigger": ev["trigger"],
                "from": list(ev["from"]),
                "to": list(ev["to"]),
            }
            for ev in st.replan_events
        ],
        "stages": [
            {
                "name": row.name,
                "input": row.input,
                "survivors": row.survivors,
                "seconds": round(row.seconds, 4),
            }
            for row in st.stages
            if row.role == "pair-filter"
        ],
    }


def _run_cell(workload, graphs, label, plan, batch, rounds=ROUNDS):
    """Best-of-``rounds`` cell: min wall, asserted counts/fingerprint."""
    cell = _run_once(graphs, plan, batch)
    for _ in range(rounds - 1):
        sample = _run_once(graphs, plan, batch)
        cell["wall_time_s"] = min(cell["wall_time_s"], sample["wall_time_s"])
        for key in ("cand1", "cand2", "results", "ged_calls", "fingerprint",
                    "replan_events"):
            assert cell[key] == sample[key], (workload, label, key)
        for ours, theirs in zip(cell["stages"], sample["stages"]):
            assert ours["name"] == theirs["name"]
            assert ours["survivors"] == theirs["survivors"]
            ours["seconds"] = min(ours["seconds"], theirs["seconds"])
    cell.update(workload=workload, plan=label, batch=batch)
    return cell


def _check_parity(cells):
    """Every cell of a workload matches the default cell's fingerprint."""
    default = next(c for c in cells if c["plan"] == "default")
    for cell in cells:
        assert cell["fingerprint"] == default["fingerprint"], (
            cell["workload"], cell["plan"], "fingerprint mismatch")
        assert cell["results"] == default["results"], (
            cell["workload"], cell["plan"], "result count mismatch")


def collect_smoke():
    graphs = skewed_collection(SMOKE_SCALE)
    cells = [
        _run_cell("skewed-smoke", graphs, label, plan, False, rounds=3)
        for label, plan in (("default", None), ("auto", "auto"))
    ]
    _check_parity(cells)
    default, auto = cells
    assert auto["replan_events"], "auto plan never re-planned on smoke skew"
    assert auto["wall_time_s"] <= default["wall_time_s"] * SMOKE_NOISE, (
        f"auto {auto['wall_time_s']}s vs default {default['wall_time_s']}s "
        f"(allowed {SMOKE_NOISE}x)")
    return {
        "generated_by": "benchmarks/bench_planner.py",
        "mode": "smoke",
        "cells": cells,
        "summary": {
            "auto_wall_s": auto["wall_time_s"],
            "default_wall_s": default["wall_time_s"],
            "replan_events": len(auto["replan_events"]),
        },
    }


def collect():
    plans = plan_matrix()
    cells = []

    # Paper dataset (AIDS-like): uniform workload, no-regression side.
    # Measured first — the skewed collection below grows the heap
    # enough to inflate later sub-second cells.
    aids = list(dataset("aids", AIDS_PLAN_N))
    for label, plan in plans.items():
        cells.append(_run_cell("aids", aids, label, plan, False))

    # Skewed workload, scalar cascade: the headline matrix.
    graphs = skewed_collection()
    for label, plan in plans.items():
        cells.append(_run_cell("skewed", graphs, label, plan, False))

    # Skewed workload, batch kernels: planner composes with the
    # vectorized path (numpy-only).
    if HAVE_NUMPY:
        for label in ("default", "auto"):
            cells.append(
                _run_cell("skewed-batch", graphs, label, plans[label], True))

    by_workload = {}
    for cell in cells:
        by_workload.setdefault(cell["workload"], []).append(cell)
    for group in by_workload.values():
        _check_parity(group)

    skewed = by_workload["skewed"]
    auto = next(c for c in skewed if c["plan"] == "auto")
    statics = [c for c in skewed if c["plan"] != "auto"]
    triggers = {ev["trigger"] for ev in auto["replan_events"]}
    assert "calibration" in triggers, auto["replan_events"]
    assert "drift" in triggers, auto["replan_events"]
    for cell in statics:
        assert auto["wall_time_s"] < cell["wall_time_s"], (
            f"auto {auto['wall_time_s']}s did not beat {cell['plan']} "
            f"{cell['wall_time_s']}s on the skewed workload")

    aids_cells = by_workload["aids"]
    aids_auto = next(c for c in aids_cells if c["plan"] == "auto")
    aids_best = min(
        c["wall_time_s"] for c in aids_cells if c["plan"] != "auto")
    assert aids_auto["wall_time_s"] <= aids_best * AIDS_NOISE, (
        f"auto {aids_auto['wall_time_s']}s vs best static {aids_best}s "
        f"(allowed {AIDS_NOISE}x)")

    summary = {
        "skewed_auto_wall_s": auto["wall_time_s"],
        "skewed_best_static_wall_s": min(
            c["wall_time_s"] for c in statics),
        "skewed_worst_static_wall_s": max(
            c["wall_time_s"] for c in statics),
        "skewed_margin_vs_best_static": round(
            min(c["wall_time_s"] for c in statics) / auto["wall_time_s"], 3),
        "skewed_replan_triggers": sorted(triggers),
        "aids_auto_wall_s": aids_auto["wall_time_s"],
        "aids_best_static_wall_s": aids_best,
        "end_to_end_wall_s": round(
            sum(c["wall_time_s"] for c in cells), 4),
    }
    if HAVE_NUMPY:
        batch_cells = {c["plan"]: c for c in by_workload["skewed-batch"]}
        summary["skewed_batch_auto_wall_s"] = (
            batch_cells["auto"]["wall_time_s"])
        summary["skewed_batch_default_wall_s"] = (
            batch_cells["default"]["wall_time_s"])
        assert (batch_cells["auto"]["wall_time_s"]
                <= batch_cells["default"]["wall_time_s"] * SMOKE_NOISE)
    return {
        "generated_by": "benchmarks/bench_planner.py",
        "mode": "full",
        "tau": TAU,
        "q": Q,
        "rounds": ROUNDS,
        "workloads": {
            "skewed": {
                "scale": list(SKEWED_SCALE),
                "seed": 7,
                "graphs": len(graphs),
            },
            "aids": {"n": AIDS_PLAN_N, "seed": 42},
        },
        "cells": cells,
        "summary": summary,
    }


def load_baseline() -> dict:
    """The committed ``BENCH_plan.json``, or ``{}`` if absent/unreadable."""
    try:
        return json.loads(OUTPUT.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}


def _table(payload) -> str:
    rows = []
    for cell in payload["cells"]:
        events = ";".join(
            f"{ev['trigger']}@{ev['pair_index']}"
            for ev in cell["replan_events"]) or "-"
        rows.append([
            cell["workload"],
            cell["plan"],
            "batch" if cell["batch"] else "scalar",
            f"{cell['wall_time_s']:.3f}",
            cell["cand1"],
            cell["results"],
            events,
        ])
    summary = payload["summary"]
    if payload["mode"] == "full":
        title = (
            "Adaptive planner: skewed auto "
            f"{summary['skewed_auto_wall_s']:.3f}s vs best static "
            f"{summary['skewed_best_static_wall_s']:.3f}s "
            f"({summary['skewed_margin_vs_best_static']:.2f}x), worst "
            f"{summary['skewed_worst_static_wall_s']:.3f}s")
    else:
        title = (
            "Adaptive planner (smoke): auto "
            f"{summary['auto_wall_s']:.3f}s vs default "
            f"{summary['default_wall_s']:.3f}s")
    return format_table(
        title,
        ["workload", "plan", "mode", "wall_s", "cand1", "results", "replans"],
        rows,
    )


def write_plan_bench() -> dict:
    payload = collect()
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return payload


def test_planner_bench(benchmark):
    if SMOKE:
        payload = benchmark.pedantic(collect_smoke, rounds=1, iterations=1)
        print("\n" + _table(payload))
        return
    baseline = load_baseline()
    payload = benchmark.pedantic(write_plan_bench, rounds=1, iterations=1)
    table = _table(payload)
    write_series("planner", table, [])
    print("\n" + table)
    assert OUTPUT.exists()
    if baseline.get("mode") == "full" and len(baseline.get("cells", ())) == len(
        payload["cells"]
    ):
        prior = float(baseline["summary"]["end_to_end_wall_s"])
        new = payload["summary"]["end_to_end_wall_s"]
        assert new <= prior * NOISE_FACTOR, (
            f"planner bench slowed down: {new:.2f}s vs baseline "
            f"{prior:.2f}s (allowed {NOISE_FACTOR}x)")


if __name__ == "__main__":
    if SMOKE:
        print(_table(collect_smoke()))
        print("\nsmoke gate passed (artifact not rewritten)")
    else:
        print(_table(write_plan_bench()))
        print(f"\nwrote {OUTPUT}")
