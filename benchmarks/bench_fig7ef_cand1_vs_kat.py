"""Figures 7(e)/(f) — Cand-1, κ-AT vs GSimJoin.

Expected shape: GSimJoin's path 4-grams (3-grams on PROTEIN) are more
selective than κ-AT's tree 1-grams, giving fewer Cand-1 pairs,
especially on the denser PROTEIN-like data.
"""

from workloads import AIDS_Q, PROT_Q, TAUS, format_table, gsim_run, kat_run, write_series


def _rows(ds: str, q: int):
    rows = []
    for tau in TAUS:
        kat = kat_run(ds, tau).stats
        gs = gsim_run(ds, tau, q, "full").stats
        rows.append([tau, kat.cand1, gs.cand1])
    return rows


def test_fig7e_aids_cand1(benchmark):
    rows = benchmark.pedantic(lambda: _rows("aids", AIDS_Q), rounds=1, iterations=1)
    table = format_table("Fig 7(e) AIDS Cand-1", ["tau", "kAT", "GSimJoin"], rows)
    write_series("fig7e", table, [])
    print("\n" + table)


def test_fig7f_protein_cand1(benchmark):
    rows = benchmark.pedantic(lambda: _rows("protein", PROT_Q), rounds=1, iterations=1)
    table = format_table("Fig 7(f) PROTEIN Cand-1", ["tau", "kAT", "GSimJoin"], rows)
    write_series("fig7f", table, [])
    print("\n" + table)
