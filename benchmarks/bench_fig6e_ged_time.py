"""Figure 6(e) — GED computation time for the three verifier variants.

Following Section VII-C, a fixed candidate set (the pairs surviving the
complete filter cascade, i.e. the Cand-2 of the full GSimJoin) is
verified with three algorithms per τ:

* ``A*``              — plain search (input order, Γ label heuristic);
* ``+Improved Order`` — mismatching-q-gram vertices first (Algorithm 7);
* ``+Improved h(x)``  — additionally the local-label heuristic
  (Algorithm 8).

Expected shape: each optimization reduces time/expansions, with larger
margins at larger τ.
"""

import time

from workloads import PROT_Q, TAUS, dataset, format_table, write_series

from repro.core import (
    compare_qgrams,
    extract_qgrams,
    global_label_lower_bound,
    local_label_lower_bound,
    passes_size_filter,
)
from repro.ged import (
    graph_edit_distance_detailed,
    input_vertex_order,
    label_heuristic,
    make_local_label_heuristic,
    mismatch_vertex_order,
)


def candidate_pairs(graphs, tau, q):
    """Pairs surviving size, global label, count and local label
    filtering — the Verify cascade applied pairwise (a superset of the
    join's Cand-2, independent of prefix-filtering order)."""
    profiles = [extract_qgrams(g, q) for g in graphs]
    labels = [(g.vertex_label_multiset(), g.edge_label_multiset()) for g in graphs]
    pairs = []
    n = len(graphs)
    for i in range(n):
        for j in range(i + 1, n):
            r, s = graphs[i], graphs[j]
            if not passes_size_filter(r, s, tau):
                continue
            if global_label_lower_bound(r, s, labels[i], labels[j]) > tau:
                continue
            mm = compare_qgrams(profiles[i], profiles[j])
            if mm.epsilon_r > tau * profiles[i].d_path:
                continue
            if mm.epsilon_s > tau * profiles[j].d_path:
                continue
            if local_label_lower_bound(
                mm.mismatch_r, r, s, tau,
                other_labels=labels[j], required_keys=mm.absent_keys_r,
            ) > tau:
                continue
            if local_label_lower_bound(
                mm.mismatch_s, s, r, tau,
                other_labels=labels[i], required_keys=mm.absent_keys_s,
            ) > tau:
                continue
            pairs.append((r, s, mm))
    return pairs


def verify_with(pairs, tau, q, improved_order, improved_h):
    started = time.perf_counter()
    expansions = 0
    results = 0
    for r, s, mm in pairs:
        order = (
            mismatch_vertex_order(r, mm.mismatch_r)
            if improved_order
            else input_vertex_order(r)
        )
        heuristic = make_local_label_heuristic(q, tau) if improved_h else label_heuristic
        search = graph_edit_distance_detailed(
            r, s, threshold=tau, heuristic=heuristic, vertex_order=order
        )
        expansions += search.expanded
        if search.distance <= tau:
            results += 1
    return time.perf_counter() - started, expansions, results


def test_fig6e_ged_computation_time(benchmark):
    graphs = list(dataset("protein"))

    def compute():
        rows = []
        for tau in TAUS:
            pairs = candidate_pairs(graphs, tau, PROT_Q)
            t_plain, e_plain, res = verify_with(pairs, tau, PROT_Q, False, False)
            t_order, e_order, res2 = verify_with(pairs, tau, PROT_Q, True, False)
            t_h, e_h, res3 = verify_with(pairs, tau, PROT_Q, True, True)
            assert res == res2 == res3  # all verifiers agree
            rows.append(
                [
                    tau,
                    len(pairs),
                    f"{t_plain:.2f}s/{e_plain}",
                    f"{t_order:.2f}s/{e_order}",
                    f"{t_h:.2f}s/{e_h}",
                ]
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = format_table(
        "Fig 6(e) PROTEIN GED computation time (time/expansions)",
        ["tau", "cands", "A*", "+ImprovedOrder", "+Improved h(x)"],
        rows,
    )
    write_series("fig6e", table, [])
    print("\n" + table)
    assert len(rows) == len(TAUS)
