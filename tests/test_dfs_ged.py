"""Tests for the depth-first branch-and-bound GED verifier."""

import pytest
from hypothesis import given, settings

from repro.datasets import figure1_graphs
from repro.exceptions import ParameterError
from repro.ged import (
    brute_force_ged,
    dfs_ged,
    graph_edit_distance,
    label_heuristic,
    zero_heuristic,
)
from repro.graph.graph import Graph

from .conftest import graph_pairs_within, path_graph
from .test_directed import digraph, digraph_pairs_within


class TestBasics:
    def test_identical_graphs(self):
        g = path_graph(["A", "B", "C"])
        assert dfs_ged(g, g.copy()).distance == 0

    def test_figure1(self):
        r, s = figure1_graphs()
        result = dfs_ged(r, s)
        assert result.distance == 3
        assert not result.exceeded_threshold
        assert result.expanded > 0

    def test_empty_graphs(self):
        assert dfs_ged(Graph(), Graph()).distance == 0
        assert dfs_ged(Graph(), path_graph(["A", "B"])).distance == 3

    def test_threshold_contract(self):
        r, s = figure1_graphs()
        assert dfs_ged(r, s, threshold=3).distance == 3
        below = dfs_ged(r, s, threshold=2)
        assert below.distance == 3  # tau + 1
        assert below.exceeded_threshold

    def test_invalid_parameters(self):
        g = path_graph(["A", "B"])
        with pytest.raises(ParameterError):
            dfs_ged(g, g, threshold=-1)
        with pytest.raises(ParameterError, match="permutation"):
            dfs_ged(g, g, vertex_order=[0])

    def test_mixed_directedness_rejected(self):
        d = digraph(["A"], [])
        u = Graph()
        u.add_vertex(0, "A")
        with pytest.raises(ParameterError, match="directed"):
            dfs_ged(d, u)

    def test_explicit_upper_bound_used(self):
        r, s = figure1_graphs()
        assert dfs_ged(r, s, initial_upper_bound=3).distance == 3
        # A loose bound must not change the answer.
        assert dfs_ged(r, s, initial_upper_bound=50).distance == 3


class TestAgainstAStar:
    @settings(max_examples=40, deadline=None)
    @given(graph_pairs_within(tau_max=3, max_vertices=4))
    def test_matches_brute_force(self, pair):
        r, s, _ = pair
        assert dfs_ged(r, s).distance == brute_force_ged(r, s)

    @settings(max_examples=25, deadline=None)
    @given(graph_pairs_within(tau_max=2, max_vertices=4))
    def test_matches_astar_with_threshold(self, pair):
        r, s, _ = pair
        for tau in (0, 1, 2):
            assert (
                dfs_ged(r, s, threshold=tau).distance
                == graph_edit_distance(r, s, threshold=tau)
            )

    @settings(max_examples=20, deadline=None)
    @given(graph_pairs_within(tau_max=2, max_vertices=4))
    def test_heuristic_choice_does_not_change_answer(self, pair):
        r, s, _ = pair
        assert (
            dfs_ged(r, s, heuristic=zero_heuristic).distance
            == dfs_ged(r, s, heuristic=label_heuristic).distance
        )

    @settings(max_examples=20, deadline=None)
    @given(digraph_pairs_within(tau_max=2, max_vertices=4))
    def test_directed_graphs(self, pair):
        r, s, _ = pair
        assert dfs_ged(r, s).distance == brute_force_ged(r, s)


class TestDfsAsJoinVerifier:
    def test_join_with_dfs_verifier(self):
        import dataclasses

        from repro import GSimJoinOptions, gsim_join

        from .test_join import molecule_collection

        graphs = molecule_collection(16, seed=80)
        astar = gsim_join(graphs, tau=2, options=GSimJoinOptions.full(q=3))
        dfs_options = dataclasses.replace(
            GSimJoinOptions.full(q=3), verifier="dfs"
        )
        dfs = gsim_join(graphs, tau=2, options=dfs_options)
        assert dfs.pair_set() == astar.pair_set()

    def test_unknown_verifier_rejected(self):
        import dataclasses

        from repro import GSimJoinOptions, gsim_join

        from .test_join import molecule_collection

        graphs = molecule_collection(4, seed=81)
        bad = dataclasses.replace(GSimJoinOptions.full(q=1), verifier="nope")
        with pytest.raises(ParameterError, match="unknown verifier"):
            gsim_join(graphs, tau=1, options=bad)
