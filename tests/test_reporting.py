"""Tests for JSON/CSV reporting and DOT export."""

import csv
import io
import json

from repro import gsim_join
from repro.graph.dot import save_dot, to_dot
from repro.graph.graph import Graph
from repro.reporting import (
    dumps_pairs_csv,
    dumps_result_json,
    result_to_dict,
    save_pairs_csv,
    save_result_json,
    stats_to_dict,
)

from .conftest import build_graph, path_graph
from .test_join import molecule_collection


class TestReporting:
    def test_stats_dict_has_derived_fields(self):
        graphs = molecule_collection(10, seed=40)
        stats = gsim_join(graphs, tau=1).stats
        data = stats_to_dict(stats)
        assert data["cand1"] == stats.cand1
        assert data["total_time"] == stats.total_time
        assert data["avg_prefix_length"] == stats.avg_prefix_length

    def test_result_json_round_trip(self):
        graphs = molecule_collection(12, seed=41)
        result = gsim_join(graphs, tau=2)
        parsed = json.loads(dumps_result_json(result))
        assert {tuple(p) for p in parsed["pairs"]} == result.pair_set()
        assert parsed["stats"]["results"] == result.stats.results

    def test_result_dict_structure(self):
        graphs = molecule_collection(8, seed=42)
        data = result_to_dict(gsim_join(graphs, tau=1))
        assert set(data) == {"pairs", "undecided", "stats"}
        assert data["undecided"] == []  # no budget, no faults

    def test_csv_export(self):
        graphs = molecule_collection(12, seed=43)
        result = gsim_join(graphs, tau=2)
        rows = list(csv.reader(io.StringIO(dumps_pairs_csv(result))))
        assert rows[0] == ["r_id", "s_id"]
        assert len(rows) - 1 == len(result.pairs)

    def test_file_outputs(self, tmp_path):
        graphs = molecule_collection(8, seed=44)
        result = gsim_join(graphs, tau=1)
        json_path = tmp_path / "out.json"
        csv_path = tmp_path / "out.csv"
        save_result_json(result, json_path)
        save_pairs_csv(result, csv_path)
        assert json.loads(json_path.read_text())["stats"]["tau"] == 1
        assert csv_path.read_text().startswith("r_id,s_id")


class TestDot:
    def test_undirected_dot(self):
        g = build_graph(["C", "O"], [(0, 1, "=")], graph_id="mol")
        text = to_dot(g)
        assert text.startswith('graph "mol" {')
        assert 'n0 [label="C"];' in text
        assert 'n0 -- n1 [label="="];' in text

    def test_directed_dot(self):
        g = Graph("flow", directed=True)
        g.add_vertex(0, "read")
        g.add_vertex(1, "write")
        g.add_edge(0, 1, "stream")
        text = to_dot(g)
        assert text.startswith('digraph "flow" {')
        assert "n0 -> n1" in text

    def test_quoting(self):
        g = build_graph(['la"bel'], [])
        assert '\\"' in to_dot(g)

    def test_save_dot(self, tmp_path):
        g = path_graph(["A", "B"])
        path = tmp_path / "g.dot"
        save_dot(g, path, name="test")
        assert path.read_text().startswith('graph "test" {')
