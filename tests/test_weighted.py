"""Tests for weighted graph edit distance."""

import math
from itertools import permutations

import pytest
from hypothesis import given, settings

from repro.exceptions import ParameterError
from repro.ged import graph_edit_distance
from repro.ged.weighted import CostModel, weighted_ged, weighted_induced_cost
from repro.graph.graph import Graph

from .conftest import build_graph, graph_pairs_within, path_graph


def brute_force_weighted(r, s, costs):
    r_vertices = list(r.vertices())
    s_vertices = list(s.vertices())
    n = len(r_vertices)
    slots = s_vertices + [None] * n
    best = None
    seen = set()
    for arrangement in permutations(slots, n):
        if arrangement in seen:
            continue
        seen.add(arrangement)
        mapping = dict(zip(r_vertices, arrangement))
        cost = weighted_induced_cost(r, s, mapping, costs)
        if best is None or cost < best:
            best = cost
    if best is None:
        best = weighted_induced_cost(r, s, {}, costs)
    return best


def expensive_substitution_model():
    return CostModel(
        vertex_substitution=lambda a, b: 0.0 if a == b else 3.0,
        edge_substitution=lambda a, b: 0.0 if a == b else 0.5,
    )


class TestCostModel:
    def test_default_is_unit(self):
        model = CostModel()
        assert model.vertex_insertion("C") == 1.0
        assert model.vertex_substitution("C", "C") == 0.0
        assert model.vertex_substitution("C", "N") == 1.0

    def test_validation_rejects_negative(self):
        bad = CostModel(vertex_insertion=lambda label: -1.0)
        g = path_graph(["A"])
        with pytest.raises(ParameterError, match="negative"):
            weighted_ged(g, g, costs=bad)

    def test_validation_rejects_nonzero_identity_substitution(self):
        bad = CostModel(vertex_substitution=lambda a, b: 1.0)
        g = path_graph(["A"])
        with pytest.raises(ParameterError, match="itself"):
            weighted_ged(g, g, costs=bad)


class TestUnitCostsMatchUnweighted:
    @settings(max_examples=30, deadline=None)
    @given(graph_pairs_within(tau_max=2, max_vertices=4))
    def test_agrees_with_integer_ged(self, pair):
        r, s, _ = pair
        assert weighted_ged(r, s) == graph_edit_distance(r, s)

    def test_threshold_semantics(self):
        r = path_graph(["A", "B"])
        s = path_graph(["A", "C"])
        assert weighted_ged(r, s, threshold=1.0) == 1.0
        assert weighted_ged(r, s, threshold=0.5) == math.inf

    def test_negative_threshold_rejected(self):
        g = path_graph(["A"])
        with pytest.raises(ParameterError):
            weighted_ged(g, g, threshold=-0.5)


class TestNonUnitCosts:
    def test_expensive_substitution_prefers_cheap_edge_ops(self):
        costs = CostModel(
            vertex_substitution=lambda a, b: 0.0 if a == b else 10.0,
        )
        r = path_graph(["A", "B"])  # A-B
        s = build_graph(["A", "B"], [])  # A  B (no edge)
        # Only one edge deletion needed: cost 1, not a substitution.
        assert weighted_ged(r, s, costs=costs) == 1.0

    def test_fractional_costs(self):
        costs = CostModel(edge_deletion=lambda label: 0.25)
        r = path_graph(["A", "B"])
        s = build_graph(["A", "B"], [])
        assert weighted_ged(r, s, costs=costs) == 0.25

    def test_label_dependent_costs(self):
        costs = CostModel(
            vertex_deletion=lambda label: 5.0 if label == "precious" else 1.0,
        )
        r = build_graph(["precious"], [])
        s = Graph()
        assert weighted_ged(r, s, costs=costs) == 5.0

    @settings(max_examples=25, deadline=None)
    @given(graph_pairs_within(tau_max=2, max_vertices=3))
    def test_matches_brute_force_with_skewed_model(self, pair):
        r, s, _ = pair
        costs = expensive_substitution_model()
        assert weighted_ged(r, s, costs=costs) == pytest.approx(
            brute_force_weighted(r, s, costs)
        )

    @settings(max_examples=20, deadline=None)
    @given(graph_pairs_within(tau_max=2, max_vertices=3))
    def test_lower_costs_never_increase_distance(self, pair):
        r, s, _ = pair
        cheap = CostModel(
            vertex_insertion=lambda label: 0.5,
            vertex_deletion=lambda label: 0.5,
            edge_insertion=lambda label: 0.5,
            edge_deletion=lambda label: 0.5,
            vertex_substitution=lambda a, b: 0.0 if a == b else 0.5,
            edge_substitution=lambda a, b: 0.0 if a == b else 0.5,
        )
        assert weighted_ged(r, s, costs=cheap) <= weighted_ged(r, s)


class TestInducedCost:
    def test_validates_mapping(self):
        g = path_graph(["A", "B"])
        with pytest.raises(ParameterError, match="total"):
            weighted_induced_cost(g, g, {0: 0}, CostModel())
        with pytest.raises(ParameterError, match="injective"):
            weighted_induced_cost(g, g, {0: 0, 1: 0}, CostModel())

    def test_identity_mapping_is_free(self):
        g = path_graph(["A", "B", "C"])
        cost = weighted_induced_cost(g, g.copy(), {0: 0, 1: 1, 2: 2}, CostModel())
        assert cost == 0.0
