"""Fault-injection tests for the parallel join executor.

Each test arms a deterministic :class:`~repro.runtime.faults.FaultPlan`
on ``gsim_join_parallel`` and asserts the join survives — producing
exactly the sequential join's result — after a worker raises, dies like
an OOM kill, or hangs.  Latched plans fire once globally, so the retry
of the poisoned chunk succeeds; unlatched plans keep firing, driving
the chunk into the in-process fallback path.
"""

import errno

import pytest

from repro.core.join import gsim_join
from repro.core.parallel import gsim_join_parallel
from repro.exceptions import InjectedFaultError, ParameterError
from repro.runtime import FaultPlan, VerificationBudget

from .test_join import molecule_collection

TAU = 2


@pytest.fixture(scope="module")
def graphs():
    return molecule_collection(24, seed=17)


@pytest.fixture(scope="module")
def expected(graphs):
    return gsim_join(graphs, TAU)


def assert_matches_sequential(result, expected):
    """Pairs, undecided channel and deterministic counters all agree."""
    assert result.pairs == expected.pairs
    assert result.undecided == expected.undecided
    for field in ("cand1", "cand2", "results", "ged_calls",
                  "ged_expansions", "undecided", "pruned_by_count",
                  "pruned_by_global_label", "pruned_by_local_label"):
        assert getattr(result.stats, field) == getattr(expected.stats, field)


class TestCrashedWorker:
    def test_raise_fault_retries_to_parity(self, graphs, expected, tmp_path):
        fault = FaultPlan("raise", at=3, latch_path=str(tmp_path / "latch"))
        result = gsim_join_parallel(
            graphs, TAU, workers=2, chunk_size=4,
            fault=fault, retry_backoff=0.0,
        )
        assert_matches_sequential(result, expected)
        assert result.stats.chunk_retries >= 1
        assert result.stats.fallback_pairs == 0

    def test_killed_worker_retries_to_parity(self, graphs, expected, tmp_path):
        """os._exit(1) in a worker (OOM-like) breaks the pool; the join
        rebuilds it and still matches the sequential result."""
        fault = FaultPlan("kill", at=2, latch_path=str(tmp_path / "latch"))
        result = gsim_join_parallel(
            graphs, TAU, workers=2, chunk_size=4,
            fault=fault, retry_backoff=0.0,
        )
        assert_matches_sequential(result, expected)
        assert result.stats.chunk_retries >= 1

    def test_unlatched_raise_falls_back_in_process(self, graphs, expected):
        """A fault that fires on every attempt exhausts max_retries and
        the poisoned pairs are verified in-process — never lost."""
        result = gsim_join_parallel(
            graphs, TAU, workers=2, chunk_size=4,
            fault=FaultPlan("raise", at=1),
            max_retries=1, retry_backoff=0.0,
        )
        assert_matches_sequential(result, expected)
        assert result.stats.fallback_pairs > 0
        assert result.stats.failed_pairs == 0
        assert result.stats.chunk_retries >= 2


class TestHungWorker:
    def test_hung_worker_times_out_to_parity(self, graphs, expected, tmp_path):
        fault = FaultPlan(
            "hang", at=2, hang_seconds=60.0,
            latch_path=str(tmp_path / "latch"),
        )
        result = gsim_join_parallel(
            graphs, TAU, workers=2, chunk_size=4,
            fault=fault, chunk_timeout=1.5, retry_backoff=0.0,
        )
        assert_matches_sequential(result, expected)
        assert result.stats.chunk_retries >= 1


class TestInProcessSemantics:
    def test_workers_1_propagates_fault(self, graphs):
        """The in-process path keeps sequential semantics: no executor,
        no retry — the injected fault reaches the caller."""
        with pytest.raises(InjectedFaultError):
            gsim_join_parallel(
                graphs, TAU, workers=1, fault=FaultPlan("raise", at=1)
            )

    def test_workers_1_latched_fault_is_fatal_once(self, graphs, expected, tmp_path):
        latch = str(tmp_path / "latch")
        with pytest.raises(InjectedFaultError):
            gsim_join_parallel(
                graphs, TAU, workers=1, fault=FaultPlan("raise", at=1, latch_path=latch)
            )
        # The latch has fired; the same plan is now inert.
        result = gsim_join_parallel(
            graphs, TAU, workers=1,
            fault=FaultPlan("raise", at=1, latch_path=latch),
        )
        assert_matches_sequential(result, expected)


class TestIOFaultChannel:
    """The I/O kinds (``ioerror``/``enospc``) count durable writes via
    ``step_io`` and are invisible to the verification channel."""

    def test_io_kinds_ignore_verification_steps(self):
        injector = FaultPlan("enospc", at=1).start()
        for _ in range(10):
            injector.step()  # must never fire: wrong channel

    def test_verify_kinds_ignore_io_steps(self):
        injector = FaultPlan("raise", at=1).start()
        for _ in range(10):
            injector.step_io()  # must never fire: wrong channel

    def test_enospc_fires_at_the_armed_write_with_errno(self):
        injector = FaultPlan("enospc", at=3).start()
        injector.step_io()
        injector.step_io()
        with pytest.raises(OSError) as excinfo:
            injector.step_io()
        assert excinfo.value.errno == errno.ENOSPC

    def test_io_fault_is_persistent(self):
        """A full disk stays full: the plan fires on every write from
        the ``at``-th onward, not just once."""
        injector = FaultPlan("ioerror", at=1).start()
        for _ in range(3):
            with pytest.raises(OSError):
                injector.step_io()

    def test_latch_limits_io_fault_to_one_firing(self, tmp_path):
        plan = FaultPlan("enospc", at=1, latch_path=str(tmp_path / "latch"))
        injector = plan.start()
        with pytest.raises(OSError):
            injector.step_io()
        injector.step_io()  # space was "freed": the latch absorbed it
        # A fresh injector (a retry, possibly another process) sees the
        # same latch file and stays quiet too.
        plan.start().step_io()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ParameterError, match="kind"):
            FaultPlan("corrupt", at=1)

    def test_nonpositive_at_rejected(self):
        with pytest.raises(ParameterError, match="at"):
            FaultPlan("raise", at=0)


class TestFaultFreeParity:
    def test_budget_threads_through_workers(self, graphs):
        """Workers apply the budget; parallel undecided == sequential."""
        budget = VerificationBudget(max_expansions=2)
        sequential = gsim_join(graphs, TAU, budget=budget)
        parallel = gsim_join_parallel(
            graphs, TAU, workers=2, chunk_size=4, budget=budget
        )
        assert parallel.pairs == sequential.pairs
        assert parallel.undecided == sequential.undecided
        assert parallel.stats.undecided == sequential.stats.undecided
