"""Tests for minimum edit filtering (Section IV, Algorithms 2-4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    build_ordering,
    extract_qgrams,
    min_edit_exact,
    min_edit_lower_bound,
    min_prefix_length,
)
from repro.grams.mismatch import mismatching_grams
from repro.datasets import figure1_graphs, figure4_graphs
from repro.exceptions import ParameterError

from .conftest import path_graph, small_graphs


class TestMinEditExact:
    def test_empty_multiset(self):
        assert min_edit_exact([], cap=3) == 0

    def test_figure1_disjoint_mismatches(self):
        """Example 5: the two mismatching 1-grams of s (C-O, C-N) are
        disjoint, so two edit operations are needed."""
        r, s = figure1_graphs()
        pr, ps = extract_qgrams(r, 1), extract_qgrams(s, 1)
        mismatch = mismatching_grams(ps, pr)
        assert len(mismatch) == 2
        assert min_edit_exact(mismatch, cap=3) == 2

    def test_figure4_overlapping_mismatches(self):
        """Example 6: the mismatching 2-grams from s (toluidine) to r
        (phenol) include C-C-C, C-C-N and C=C-N and can be wiped out by
        exactly two vertex relabelings."""
        r, s = figure4_graphs()
        pr, ps = extract_qgrams(r, 2), extract_qgrams(s, 2)
        mismatch = mismatching_grams(ps, pr)
        keys = {g.key for g in mismatch}
        assert ("C", "-", "C", "-", "C") in keys
        assert ("C", "-", "C", "-", "N") in keys
        assert ("C", "=", "C", "-", "N") in keys
        assert min_edit_exact(mismatch, cap=4) == 2

    def test_single_gram_needs_one(self):
        g = path_graph(["A", "B"])
        profile = extract_qgrams(g, 1)
        assert min_edit_exact(profile.grams, cap=2) == 1

    def test_cap_saturation(self):
        g = path_graph(["A", "B", "C", "D", "E", "F"])
        profile = extract_qgrams(g, 1)  # 5 disjoint-ish grams need 3 hits
        exact = min_edit_exact(profile.grams, cap=10)
        assert min_edit_exact(profile.grams, cap=exact - 1) == exact  # == cap+1


class TestMinEditLowerBound:
    def test_empty(self):
        assert min_edit_lower_bound([]) == 0

    @settings(max_examples=30, deadline=None)
    @given(small_graphs(max_vertices=6))
    def test_lower_bound_sound(self, g):
        profile = extract_qgrams(g, 2)
        if not profile.grams:
            return
        exact = min_edit_exact(profile.grams, cap=10)
        bound = min_edit_lower_bound(profile.grams)
        assert 1 <= bound <= exact

    @settings(max_examples=30, deadline=None)
    @given(small_graphs(max_vertices=5))
    def test_monotonicity(self, g):
        """Proposition 1: min-edit is monotone under multiset inclusion."""
        profile = extract_qgrams(g, 1)
        grams = profile.grams
        if len(grams) < 2:
            return
        for cut in range(1, len(grams)):
            a = min_edit_exact(grams[:cut], cap=10)
            b = min_edit_exact(grams[: cut + 1], cap=10)
            assert a <= b


class TestMinPrefixLength:
    def _sorted_profile(self, g, q):
        profile = extract_qgrams(g, q)
        build_ordering([profile]).sort_profile(profile)
        return profile

    def test_example7_prefix_length(self):
        """Example 7: s's five 1-grams in the listed order (C-N, C-O,
        C-C x3) give a minimum prefix length of 2 at tau = 1."""
        _, s = figure1_graphs()
        profile = extract_qgrams(s, 1)
        listed = sorted(
            profile.grams,
            key=lambda gr: {"N": 0, "O": 1, "C": 2}[gr.key[-1]],
        )
        assert [g.key[-1] for g in listed[:2]] == ["N", "O"]
        length = min_prefix_length(listed, tau=1, d_path=profile.d_path)
        assert length == 2

    def test_prefix_never_exceeds_basic(self):
        _, s = figure1_graphs()
        profile = self._sorted_profile(s, 1)
        length = min_prefix_length(profile.grams, tau=1, d_path=profile.d_path)
        assert length is not None
        assert length <= 1 * profile.d_path + 1

    def test_underflow_returns_none(self):
        # A 2-vertex path: every 1-gram contains both vertices, so one
        # relabel kills the whole multiset -> no valid prefix at tau=1.
        g = path_graph(["A", "B"])
        profile = self._sorted_profile(g, 1)
        assert min_prefix_length(profile.grams, tau=1, d_path=profile.d_path) is None

    def test_empty_multiset_returns_none(self):
        assert min_prefix_length([], tau=1, d_path=0) is None

    def test_negative_tau_rejected(self):
        with pytest.raises(ParameterError):
            min_prefix_length([], tau=-1, d_path=1)

    @settings(max_examples=30, deadline=None)
    @given(small_graphs(max_vertices=6), st.integers(min_value=0, max_value=2))
    def test_returned_prefix_requires_tau_plus_one_edits(self, g, tau):
        """Soundness of Lemma 3's precondition: the returned prefix cannot
        be fully affected by tau operations."""
        profile = self._sorted_profile(g, 2)
        length = min_prefix_length(profile.grams, tau=tau, d_path=profile.d_path)
        if length is None:
            # Underflow: the entire admissible prefix is killable.
            limit = min(tau * profile.d_path + 1, profile.size)
            assert min_edit_exact(profile.grams[:limit], cap=tau) <= tau
        else:
            assert min_edit_exact(profile.grams[:length], cap=tau) > tau
            # Minimality: one gram shorter must be killable.
            if length > tau + 1:
                assert min_edit_exact(profile.grams[: length - 1], cap=tau) <= tau
