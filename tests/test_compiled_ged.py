"""Differential property suite: compiled vs object GED backends.

The compiled integer-array A* (``repro.ged.compiled``) must be
*bit-identical* to the object-graph reference backend: the same
distances, the same ``exceeded_threshold`` decisions, the same
expansion/generation counts, and — through the join — the same
``JoinResult`` pairs, statistics and budgeted ``undecided`` brackets,
across seeds, q-gram lengths, thresholds, sequential and parallel
executors, with and without budgets and checkpointing.  Only the
optional anchor-aware bound may change (reduce) expansion counts.
"""

import random
from dataclasses import replace

import pytest

from repro import GSimJoinOptions, assign_ids, gsim_join, gsim_join_rs
from repro.core.parallel import gsim_join_parallel
from repro.core.search import GSimIndex
from repro.exceptions import ParameterError
from repro.ged.astar import graph_edit_distance_detailed
from repro.ged.compiled import (
    CompiledGraph,
    LabelInterner,
    VerificationCache,
    compile_graph,
    compiled_ged_detailed,
)
from repro.ged.heuristics import label_heuristic, make_local_label_heuristic
from repro.ged.vertex_order import input_vertex_order, mismatch_vertex_order
from repro.grams.mismatch import compare_qgrams
from repro.grams.qgrams import extract_qgrams
from repro.graph.graph import Graph
from repro.runtime import FaultPlan
from repro.runtime.budget import VerificationBudget

from .test_join import molecule_collection
from .test_vocab import assert_stat_parity, labeled_collection

SEARCH_FIELDS = (
    "distance",
    "expanded",
    "generated",
    "exceeded_threshold",
    "budget_exhausted",
    "lower",
    "upper",
)


def random_pair_graph(rng, n, directed, num_vlabels=3, num_elabels=2, p=0.4):
    g = Graph(directed=directed)
    names = [f"v{i}" for i in range(n)]
    for name in names:
        g.add_vertex(name, label=rng.randrange(num_vlabels))
    for i in range(n):
        for j in range(i + 1, n):
            ends = [(i, j), (j, i)] if directed else [(i, j)]
            for a, b in ends:
                if rng.random() < p:
                    g.add_edge(names[a], names[b], label=rng.randrange(num_elabels))
    return g


def run_both(r, s, *, tau, q, improved, use_mismatch_order, budget, cache):
    """One object run and one compiled run over the same configuration."""
    cr, cs = cache.compile(r), cache.compile(s)
    if use_mismatch_order:
        mm = compare_qgrams(extract_qgrams(r, q), extract_qgrams(s, q))
        order = mismatch_vertex_order(r, mm.mismatch_r)
    else:
        order = input_vertex_order(r)
    h_tau = tau if tau is not None else 10**9
    heuristic = make_local_label_heuristic(q, h_tau) if improved else label_heuristic
    obj = graph_edit_distance_detailed(
        r, s, threshold=tau, heuristic=heuristic, vertex_order=order, budget=budget
    )
    comp = compiled_ged_detailed(
        cr,
        cs,
        threshold=tau,
        vertex_order=[cr.index_of[v] for v in order],
        budget=budget,
        improved_h=improved,
        q=q,
        h_tau=h_tau,
        subgraph_cache=cache.subgraph_cache,
    )
    return obj, comp, cr, cs, order


# --------------------------------------------------------------- compilation


class TestCompilation:
    def test_interner_assigns_dense_first_seen_ids(self):
        interner = LabelInterner()
        assert interner.intern("C") == 0
        assert interner.intern("N") == 1
        assert interner.intern("C") == 0
        assert len(interner) == 2

    def test_compiled_graph_mirrors_object_graph(self):
        rng = random.Random(3)
        g = random_pair_graph(rng, 6, directed=False)
        compiled = compile_graph(g, LabelInterner(), LabelInterner())
        assert isinstance(compiled, CompiledGraph)
        assert compiled.graph is g
        assert compiled.n == g.num_vertices
        assert compiled.num_edges == g.num_edges
        assert compiled.vertices == list(g.vertices())
        for v, i in compiled.index_of.items():
            assert compiled.vertices[i] == v
        # Flattened adjacency agrees with has_edge, both orientations.
        n = compiled.n
        for a in range(n):
            for b in range(n):
                has = g.has_edge(compiled.vertices[a], compiled.vertices[b])
                assert (compiled.adj[a * n + b] != 0) == has
        assert sum(compiled.vlab_counts.values()) == g.num_vertices
        assert sum(compiled.elab_counts.values()) == g.num_edges

    def test_directed_compilation_separates_orientations(self):
        g = Graph(directed=True)
        g.add_vertex("a", label="X")
        g.add_vertex("b", label="Y")
        g.add_edge("a", "b", label="e")
        compiled = compile_graph(g, LabelInterner(), LabelInterner())
        assert compiled.adj[0 * 2 + 1] != 0
        assert compiled.adj[1 * 2 + 0] == 0
        assert compiled.out_nbrs[0] == [1]
        assert compiled.in_nbrs[1] == [0]

    def test_cache_compiles_each_graph_once(self):
        graphs = molecule_collection(5, seed=2)
        distinct = len({id(g) for g in graphs})
        cache = VerificationCache()
        first = [cache.compile(g) for g in graphs]
        second = [cache.compile(g) for g in graphs]
        assert all(a is b for a, b in zip(first, second))
        assert cache.misses == distinct
        assert cache.hits == 2 * len(graphs) - distinct
        assert len(cache) == distinct
        assert cache.compile_seconds >= 0.0


# ------------------------------------------------------------ search parity


class TestSearchParity:
    @pytest.mark.parametrize("directed", [False, True])
    def test_randomized_bit_identical_searches(self, directed):
        rng = random.Random(99 if directed else 42)
        cache = VerificationCache()
        for _ in range(150):
            r = random_pair_graph(rng, rng.randrange(0, 7), directed)
            s = random_pair_graph(rng, rng.randrange(0, 7), directed)
            tau = rng.choice([0, 1, 2, 3, None])
            q = rng.choice([1, 2, 3])
            improved = rng.random() < 0.5
            budget = (
                VerificationBudget(max_expansions=rng.choice([1, 4, 25]))
                if tau is not None and rng.random() < 0.4
                else None
            )
            obj, comp, _, _, _ = run_both(
                r, s, tau=tau, q=q, improved=improved,
                use_mismatch_order=tau is not None and rng.random() < 0.5,
                budget=budget, cache=cache,
            )
            for field in SEARCH_FIELDS:
                assert getattr(obj, field) == getattr(comp, field), field

    def test_anchor_bound_same_answers_never_more_expansions(self):
        rng = random.Random(7)
        cache = VerificationCache()
        checked = 0
        for _ in range(80):
            r = random_pair_graph(rng, rng.randrange(1, 7), False)
            s = random_pair_graph(rng, rng.randrange(1, 7), False)
            tau = rng.choice([1, 2, 3, None])
            obj, _, cr, cs, order = run_both(
                r, s, tau=tau, q=2, improved=False,
                use_mismatch_order=False, budget=None, cache=cache,
            )
            anchored = compiled_ged_detailed(
                cr, cs, threshold=tau,
                vertex_order=[cr.index_of[v] for v in order],
                anchor_bound=True,
            )
            assert anchored.distance == obj.distance
            assert anchored.exceeded_threshold == obj.exceeded_threshold
            assert anchored.expanded <= obj.expanded
            if anchored.expanded < obj.expanded:
                checked += 1
        assert checked > 0  # the tighter bound actually pruned somewhere

    def test_parameter_validation(self):
        g = random_pair_graph(random.Random(1), 3, False)
        d = random_pair_graph(random.Random(1), 3, True)
        cache = VerificationCache()
        cg, cd = cache.compile(g), cache.compile(d)
        with pytest.raises(ParameterError, match="threshold"):
            compiled_ged_detailed(cg, cg, threshold=-1)
        with pytest.raises(ParameterError, match="directed"):
            compiled_ged_detailed(cg, cd)
        with pytest.raises(ParameterError, match="permutation"):
            compiled_ged_detailed(cg, cg, vertex_order=[0, 0, 2])


# -------------------------------------------------------------- join parity


def join_pair(graphs, tau, compiled_options, **kwargs):
    """Run one compiled and one object join over the same inputs."""
    compiled = gsim_join(graphs, tau, options=compiled_options, **kwargs)
    reference = gsim_join(
        graphs, tau, options=replace(compiled_options, verifier="object"), **kwargs
    )
    return compiled, reference


def assert_same_join(compiled, reference):
    assert compiled.pairs == reference.pairs
    assert compiled.undecided == reference.undecided
    assert_stat_parity(compiled.stats, reference.stats)
    assert compiled.stats.undecided == reference.stats.undecided


class TestJoinParity:
    def test_default_options_select_compiled_verifier(self):
        assert GSimJoinOptions().verifier == "compiled"
        assert GSimJoinOptions.full().verifier == "compiled"

    @pytest.mark.parametrize("q", [1, 2, 3, 4])
    @pytest.mark.parametrize("tau", [0, 1, 2, 3])
    def test_grid_bit_identical_joins(self, q, tau):
        graphs = labeled_collection(12, seed=5)
        compiled, reference = join_pair(
            graphs, tau, GSimJoinOptions.full(q=q)
        )
        assert_same_join(compiled, reference)

    @pytest.mark.parametrize("seed", [3, 11])
    @pytest.mark.parametrize(
        "variant",
        [GSimJoinOptions.basic, GSimJoinOptions.minedit,
         GSimJoinOptions.full, GSimJoinOptions.extended],
    )
    def test_variants_and_seeds(self, seed, variant):
        graphs = molecule_collection(14, seed=seed)
        compiled, reference = join_pair(graphs, 2, variant(q=3))
        assert_same_join(compiled, reference)

    def test_directed_collection(self):
        graphs = labeled_collection(10, seed=13, directed=True)
        compiled, reference = join_pair(graphs, 2, GSimJoinOptions.full(q=2))
        assert_same_join(compiled, reference)

    def test_rs_join_parity(self):
        outer = labeled_collection(8, seed=17)
        inner = labeled_collection(9, seed=19)
        options = GSimJoinOptions.full(q=2)
        compiled = gsim_join_rs(outer, inner, 2, options=options)
        reference = gsim_join_rs(
            outer, inner, 2, options=replace(options, verifier="object")
        )
        assert_same_join(compiled, reference)

    def test_object_and_astar_are_the_same_backend(self):
        graphs = labeled_collection(10, seed=23)
        a = gsim_join(graphs, 2, options=GSimJoinOptions.full(q=2))
        for alias in ("object", "astar"):
            b = gsim_join(
                graphs, 2,
                options=replace(GSimJoinOptions.full(q=2), verifier=alias),
            )
            assert a.pairs == b.pairs
            assert_stat_parity(a.stats, b.stats)

    def test_compile_statistics_populated(self):
        graphs = molecule_collection(10, seed=29)
        compiled, reference = join_pair(graphs, 2, GSimJoinOptions.full(q=3))
        assert compiled.stats.cand2 > 0  # some pairs actually reached GED
        assert 0 < compiled.stats.compiled_graphs <= len(graphs)
        assert compiled.stats.compile_time >= 0.0
        assert reference.stats.compiled_graphs == 0

    def test_anchor_bound_join_same_pairs_fewer_or_equal_expansions(self):
        graphs = labeled_collection(12, seed=31)
        options = GSimJoinOptions.full(q=2)
        plain = gsim_join(graphs, 3, options=options)
        anchored = gsim_join(
            graphs, 3, options=replace(options, anchor_bound=True)
        )
        assert anchored.pairs == plain.pairs
        assert anchored.stats.ged_expansions <= plain.stats.ged_expansions

    def test_anchor_bound_requires_compiled_verifier(self):
        graphs = labeled_collection(6, seed=1)
        bad = replace(GSimJoinOptions.full(), verifier="object", anchor_bound=True)
        with pytest.raises(ParameterError, match="anchor_bound"):
            gsim_join(graphs, 1, options=bad)


# ------------------------------------------------------- budgets, executors


class TestBudgetedParity:
    @pytest.mark.parametrize("max_expansions", [2, 6, 40])
    def test_bounded_verdicts_bit_identical(self, max_expansions):
        graphs = labeled_collection(12, seed=37)
        budget = VerificationBudget(max_expansions=max_expansions)
        compiled, reference = join_pair(
            graphs, 3, GSimJoinOptions.full(q=2), budget=budget
        )
        assert_same_join(compiled, reference)

    def test_budget_allowed_for_every_registered_verifier(self):
        """Every portfolio backend — DFS included — honours budgets.

        Under a tight cap the backends may exhaust on different pairs,
        so exact parity is not required; soundness is: accepted pairs
        are true results, and every true result is either accepted or
        reported undecided with a bracket spanning tau.
        """
        graphs = labeled_collection(6, seed=2)
        budget = VerificationBudget(max_expansions=10)
        truth = gsim_join(graphs, 1, options=GSimJoinOptions.full(q=2))
        true_pairs = truth.pair_set()
        for verifier in ("compiled", "object", "astar", "dfs", "auto"):
            options = replace(GSimJoinOptions.full(q=2), verifier=verifier)
            result = gsim_join(graphs, 1, options=options, budget=budget)
            accepted = result.pair_set()
            assert accepted <= true_pairs, verifier
            undecided = {(b.r_id, b.s_id) for b in result.undecided}
            assert true_pairs - accepted <= undecided, verifier


class TestParallelParity:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_parallel_compiled_matches_sequential_object(self, workers):
        graphs = molecule_collection(16, seed=41)
        options = GSimJoinOptions.full(q=3)
        parallel = gsim_join_parallel(
            graphs, 2, options=options, workers=workers, chunk_size=4
        )
        reference = gsim_join(
            graphs, 2, options=replace(options, verifier="object")
        )
        assert parallel.pairs == reference.pairs
        assert parallel.undecided == reference.undecided
        for field in ("cand2", "results", "ged_calls", "ged_expansions"):
            assert getattr(parallel.stats, field) == getattr(reference.stats, field)

    def test_parallel_budgeted_compiled_matches_object(self):
        graphs = labeled_collection(12, seed=43)
        budget = VerificationBudget(max_expansions=5)
        options = GSimJoinOptions.full(q=2)
        compiled = gsim_join_parallel(
            graphs, 3, options=options, workers=2, chunk_size=4, budget=budget
        )
        reference = gsim_join_parallel(
            graphs, 3, options=replace(options, verifier="object"),
            workers=2, chunk_size=4, budget=budget,
        )
        assert compiled.pairs == reference.pairs
        assert compiled.undecided == reference.undecided
        assert compiled.stats.undecided == reference.stats.undecided


class TestCheckpointParity:
    def test_fault_then_resume_matches_object_clean_run(self, tmp_path):
        graphs = molecule_collection(18, seed=47)
        options = GSimJoinOptions.full(q=3)
        journal = tmp_path / "join.jsonl"
        from repro.exceptions import InjectedFaultError

        with pytest.raises(InjectedFaultError):
            gsim_join(graphs, 2, options=options, checkpoint=journal,
                      fault=FaultPlan("raise", at=6))
        resumed = gsim_join(graphs, 2, options=options, checkpoint=journal)
        reference = gsim_join(
            graphs, 2, options=replace(options, verifier="object")
        )
        assert resumed.pairs == reference.pairs
        assert resumed.undecided == reference.undecided
        assert resumed.stats.replayed_pairs == 5
        for field in ("cand2", "results", "ged_calls", "ged_expansions"):
            assert getattr(resumed.stats, field) == getattr(reference.stats, field)


class TestIndexParity:
    def test_query_results_identical_and_cache_reused(self):
        graphs = molecule_collection(15, seed=53)
        compiled_index = GSimIndex(graphs, tau_max=2, options=GSimJoinOptions.full(q=3))
        object_index = GSimIndex(
            graphs, tau_max=2,
            options=replace(GSimJoinOptions.full(q=3), verifier="object"),
        )
        # Every backend gets a cache now: the compiled one for graph
        # compilation reuse, all of them for the verdict memo.
        assert compiled_index._cache is not None
        assert object_index._cache is not None
        for g in graphs[:6]:
            for tau in (0, 1, 2):
                assert compiled_index.query(g, tau) == object_index.query(g, tau)
        # The cache persisted across queries: data graphs compiled once,
        # later queries hit.
        assert len(compiled_index._cache) <= len(graphs)
        assert compiled_index._cache.hits > 0
