"""Tests for graph collection serialization."""

import pytest
from hypothesis import given, settings

from repro.exceptions import GraphFormatError, ParameterError
from repro.graph import (
    assign_ids,
    dumps_graphs,
    from_networkx,
    load_graphs,
    load_graphs_iter,
    loads_graphs,
    save_graphs,
    to_networkx,
)

from .conftest import build_graph, small_graphs

SAMPLE = """
t # 0
v 0 C
v 1 C
v 2 O
e 0 1 -
e 1 2 =
t # 1
v 0 N
"""


class TestParsing:
    def test_parse_sample(self):
        graphs = loads_graphs(SAMPLE)
        assert len(graphs) == 2
        g = graphs[0]
        assert g.graph_id == 0
        assert g.num_vertices == 3
        assert g.edge_label(1, 2) == "="
        assert graphs[1].vertex_label(0) == "N"

    def test_comments_and_blank_lines_skipped(self):
        graphs = loads_graphs("# a comment\n\nt # 5\nv 0 X\n")
        assert len(graphs) == 1
        assert graphs[0].graph_id == 5

    def test_string_graph_ids(self):
        graphs = loads_graphs("t # mol-1\nv 0 C\n")
        assert graphs[0].graph_id == "mol-1"

    def test_labels_with_spaces(self):
        graphs = loads_graphs("t # 0\nv 0 alpha helix\n")
        assert graphs[0].vertex_label(0) == "alpha helix"

    def test_vertex_before_graph_rejected(self):
        with pytest.raises(GraphFormatError, match="'v' before 't'"):
            loads_graphs("v 0 C\n")

    def test_edge_before_graph_rejected(self):
        with pytest.raises(GraphFormatError, match="'e' before 't'"):
            loads_graphs("e 0 1 -\n")

    def test_unknown_record_rejected(self):
        with pytest.raises(GraphFormatError, match="unknown record"):
            loads_graphs("t # 0\nx nonsense\n")

    def test_malformed_vertex_rejected(self):
        with pytest.raises(GraphFormatError, match="malformed"):
            loads_graphs("t # 0\nv zero C\n")

    def test_duplicate_edge_rejected(self):
        with pytest.raises(GraphFormatError):
            loads_graphs("t # 0\nv 0 C\nv 1 C\ne 0 1 -\ne 1 0 -\n")


CORRUPT = """
t # 0
v 0 C
v zero N
e 0 1 -
t # 1
v 0 N
t # 2
v 0 O
v 0 O
"""


class TestLenientParsing:
    def test_skip_drops_corrupt_graphs_whole(self):
        errors = []
        graphs = loads_graphs(CORRUPT, on_error="skip", errors=errors)
        # Graph 0 (malformed vertex) and graph 2 (duplicate vertex) are
        # dropped whole; the clean graph 1 survives intact.
        assert [g.graph_id for g in graphs] == [1]
        assert graphs[0].vertex_label(0) == "N"
        linenos = [lineno for lineno, _ in errors]
        assert linenos == [4, 10]
        assert "malformed" in errors[0][1]
        assert "0" in errors[1][1]  # duplicate-vertex reason names the id

    def test_skip_swallows_rest_of_dropped_graph(self):
        errors = []
        # The 'e' after the corrupt 'v' belongs to the dropped graph and
        # must produce no extra report.
        graphs = loads_graphs(
            "t # 0\nv zero C\ne 0 1 -\nt # 1\nv 0 C\n",
            on_error="skip",
            errors=errors,
        )
        assert [g.graph_id for g in graphs] == [1]
        assert len(errors) == 1

    def test_skip_reports_records_before_any_graph(self):
        errors = []
        graphs = loads_graphs("v 0 C\nt # 0\nv 0 C\n", on_error="skip", errors=errors)
        assert [g.graph_id for g in graphs] == [0]
        assert errors == [(1, "'v' before 't'")]

    def test_skip_without_errors_list(self):
        assert [g.graph_id for g in loads_graphs(CORRUPT, on_error="skip")] == [1]

    def test_skip_on_clean_input_reports_nothing(self):
        errors = []
        graphs = loads_graphs(SAMPLE, on_error="skip", errors=errors)
        assert len(graphs) == 2 and errors == []

    def test_lenient_file_loading(self, tmp_path):
        path = tmp_path / "corrupt.txt"
        path.write_text(CORRUPT, encoding="utf-8")
        errors = []
        graphs = load_graphs(path, on_error="skip", errors=errors)
        assert [g.graph_id for g in graphs] == [1]
        assert len(errors) == 2

    def test_unknown_on_error_rejected(self):
        with pytest.raises(ParameterError, match="on_error"):
            loads_graphs(SAMPLE, on_error="ignore")


class TestStreamingLoad:
    """``load_graphs_iter`` is the lazy sibling of ``load_graphs``:
    same graphs, same error semantics, one graph resident at a time."""

    def test_streaming_matches_eager(self, tmp_path):
        path = tmp_path / "graphs.txt"
        path.write_text(SAMPLE, encoding="utf-8")
        assert list(load_graphs_iter(path)) == load_graphs(path)

    def test_graphs_yielded_before_the_file_ends(self, tmp_path):
        """The first graph arrives as soon as it is complete — a parse
        error later in the file surfaces only when iteration reaches
        it, proving the loader never slurps the whole file."""
        path = tmp_path / "graphs.txt"
        path.write_text("t # 0\nv 0 C\nt # 1\nv zero N\n", encoding="utf-8")
        stream = load_graphs_iter(path)
        assert next(stream).graph_id == 0
        with pytest.raises(GraphFormatError, match="malformed"):
            next(stream)

    def test_streaming_skip_matches_eager_skip(self, tmp_path):
        path = tmp_path / "corrupt.txt"
        path.write_text(CORRUPT, encoding="utf-8")
        eager_errors, lazy_errors = [], []
        eager = load_graphs(path, on_error="skip", errors=eager_errors)
        lazy = list(load_graphs_iter(path, on_error="skip", errors=lazy_errors))
        assert lazy == eager
        assert lazy_errors == eager_errors

    def test_unknown_on_error_rejected_before_iteration(self, tmp_path):
        path = tmp_path / "graphs.txt"
        path.write_text(SAMPLE, encoding="utf-8")
        # The ParameterError must come from the call, not the first next().
        with pytest.raises(ParameterError, match="on_error"):
            load_graphs_iter(path, on_error="ignore")

    def test_closing_early_releases_the_file(self, tmp_path):
        path = tmp_path / "graphs.txt"
        path.write_text(SAMPLE, encoding="utf-8")
        stream = load_graphs_iter(path)
        next(stream)
        stream.close()  # generator close must not leak the handle
        with pytest.raises(StopIteration):
            next(stream)


class TestRoundTrip:
    def test_file_round_trip(self, tmp_path):
        graphs = loads_graphs(SAMPLE)
        path = tmp_path / "out.txt"
        save_graphs(graphs, path)
        back = load_graphs(path)
        assert len(back) == len(graphs)
        assert back[0] == graphs[0]
        assert back[1] == graphs[1]

    @settings(max_examples=25, deadline=None)
    @given(small_graphs(max_vertices=6))
    def test_dumps_loads_preserves_structure(self, g):
        g.graph_id = 0
        # Serialized labels come back as strings; compare via string form.
        expected = build_graph(
            [str(g.vertex_label(v)) for v in g.vertices()],
            [],
        )
        back = loads_graphs(dumps_graphs([g]))[0]
        assert back.num_vertices == g.num_vertices
        assert back.num_edges == g.num_edges
        assert back.vertex_label_multiset() == expected.vertex_label_multiset()


class TestAssignIds:
    def test_fills_missing_ids(self):
        graphs = loads_graphs("t\nv 0 C\nt\nv 0 C\n")
        assert graphs[0].graph_id is None
        assign_ids(graphs)
        assert [g.graph_id for g in graphs] == [0, 1]

    def test_keeps_existing_distinct_ids(self):
        graphs = loads_graphs("t # 7\nv 0 C\nt # 9\nv 0 C\n")
        assign_ids(graphs)
        assert [g.graph_id for g in graphs] == [7, 9]

    def test_resolves_duplicates(self):
        graphs = loads_graphs("t # 7\nv 0 C\nt # 7\nv 0 C\n")
        assign_ids(graphs)
        ids = [g.graph_id for g in graphs]
        assert len(set(ids)) == 2


class TestNetworkxInterop:
    def test_round_trip_through_networkx(self):
        g = build_graph(["C", "O"], [(0, 1, "=")], graph_id="m")
        nx_graph = to_networkx(g)
        back = from_networkx(nx_graph, graph_id="m")
        assert back == g

    def test_missing_attributes_default_empty(self):
        import networkx as nx

        raw = nx.Graph()
        raw.add_node(0)
        raw.add_edge(0, 1)
        g = from_networkx(raw)
        assert g.vertex_label(0) == ""
        assert g.edge_label(0, 1) == ""
