"""Tests for simple-path enumeration."""

import pytest
from hypothesis import given, settings

from repro.exceptions import ParameterError
from repro.graph import count_simple_paths, simple_paths
from repro.graph.graph import Graph

from .conftest import build_graph, cycle_graph, path_graph, small_graphs, star_graph


class TestKnownCounts:
    def test_q0_yields_vertices(self):
        g = path_graph(["A", "B", "C"])
        assert sorted(simple_paths(g, 0)) == [(0,), (1,), (2,)]

    def test_path_graph_counts(self):
        g = path_graph(["A"] * 5)  # P5: 4 edges
        assert count_simple_paths(g, 1) == 4
        assert count_simple_paths(g, 2) == 3
        assert count_simple_paths(g, 3) == 2
        assert count_simple_paths(g, 4) == 1
        assert count_simple_paths(g, 5) == 0

    def test_cycle_graph_counts(self):
        g = cycle_graph(["A"] * 5)  # C5
        # In C_n there are exactly n simple paths of each length 1..n-1.
        for q in range(1, 5):
            assert count_simple_paths(g, q) == 5

    def test_star_graph_counts(self):
        g = star_graph("A", ["B", "C", "D"])  # K1,3
        assert count_simple_paths(g, 1) == 3
        assert count_simple_paths(g, 2) == 3  # leaf-centre-leaf pairs
        assert count_simple_paths(g, 3) == 0

    def test_triangle(self):
        g = cycle_graph(["A", "B", "C"])
        assert count_simple_paths(g, 1) == 3
        assert count_simple_paths(g, 2) == 3

    def test_complete_graph_k4(self):
        edges = [(i, j, "x") for i in range(4) for j in range(i + 1, 4)]
        g = build_graph(["A"] * 4, edges)
        assert count_simple_paths(g, 1) == 6
        assert count_simple_paths(g, 2) == 12  # 4 * C(3,2) * 2 orderings / ...
        assert count_simple_paths(g, 3) == 12  # 4!/2

    def test_empty_graph(self):
        g = Graph()
        assert count_simple_paths(g, 0) == 0
        assert count_simple_paths(g, 1) == 0


class TestProperties:
    def test_negative_q_rejected(self):
        with pytest.raises(ParameterError):
            list(simple_paths(Graph(), -1))

    @settings(max_examples=30, deadline=None)
    @given(small_graphs(max_vertices=6))
    def test_paths_are_simple_and_connected(self, g):
        for q in (1, 2, 3):
            for path in simple_paths(g, q):
                assert len(path) == q + 1
                assert len(set(path)) == q + 1  # no repeated vertex
                for i in range(q):
                    assert g.has_edge(path[i], path[i + 1])

    @settings(max_examples=30, deadline=None)
    @given(small_graphs(max_vertices=6))
    def test_each_undirected_path_reported_once(self, g):
        for q in (1, 2):
            seen = set()
            for path in simple_paths(g, q):
                key = frozenset([path, tuple(reversed(path))])
                assert key not in seen
                seen.add(key)

    @settings(max_examples=30, deadline=None)
    @given(small_graphs(max_vertices=6))
    def test_q1_count_equals_edge_count(self, g):
        assert count_simple_paths(g, 1) == g.num_edges
