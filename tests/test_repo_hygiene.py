"""Repository hygiene: no compiled bytecode may ever be tracked.

Mirrors the CI "No tracked bytecode" step so the guard also runs in the
tier-1 suite (skipped outside a git checkout, e.g. from an sdist).
"""

import shutil
import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_no_tracked_bytecode():
    if not (REPO_ROOT / ".git").exists() or shutil.which("git") is None:
        pytest.skip("not a git checkout")
    listing = subprocess.run(
        ["git", "ls-files", "--", "*.pyc", "*.pyo", "*__pycache__*"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        check=True,
    )
    tracked = [line for line in listing.stdout.splitlines() if line]
    assert tracked == [], f"tracked bytecode files: {tracked}"


def test_gitignore_excludes_bytecode():
    patterns = (REPO_ROOT / ".gitignore").read_text().splitlines()
    assert "__pycache__/" in patterns
    assert "*.pyc" in patterns
