"""Fixture ``repro.grams`` package."""
