"""Fixture: hot-path allocations inside grams.vocab merge loops."""


def merge(ids_r, ids_s, grams):
    out = []
    for i in ids_r:
        snapshot = list(grams)
        lookup = dict(grams)
        out.append(set(ids_s))
    while ids_s:
        profile = extract_qgrams(grams, 3)
        cached = list(grams)  # repro: ignore[hot-path-alloc]
        ids_s = ids_s[:-1]
    return out
