"""Fixture: hot-path allocations inside the columnar store builder."""


def build(profiles, labels):
    rows = []
    for profile in profiles:
        sig = list(profile.signature)
        counts = dict(labels)
        grams = extract_qgrams(profile, 3)  # noqa: F821
        rows.append((sig, counts, grams))
    while rows:
        flat = list(rows)  # repro: ignore[hot-path-alloc]
        rows.pop()
    return rows
