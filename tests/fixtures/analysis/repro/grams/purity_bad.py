"""Fixture: a filter that mutates its parameter graph."""


def bad_filter(g, tau):
    """Mutates its input — must be flagged."""
    g.add_vertex(9, "X")  # line 6: filter-purity
    g.graph_id = None  # line 7: filter-purity (attribute write)
    g.add_edge(1, 9, "y")  # repro: ignore[filter-purity]  line 8: waived

    def inner():
        g.remove_vertex(9)  # line 11: filter-purity (enclosing parameter)

    inner()
    return 0


def ok_filter(g, tau):
    """Copies before editing — clean."""
    scratch = g.copy()
    scratch.add_vertex(9, "X")  # fine: not a parameter
    counts = {}
    counts[tau] = 1  # fine: subscript writes are accumulator idiom
    return scratch.num_vertices
