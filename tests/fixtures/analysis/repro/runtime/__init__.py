"""Fixture ``repro.runtime`` package."""
