"""Fixture: hot-path allocations inside the spill-queue replay loop."""


def replay(lines):
    out = []
    for line in lines:
        fields = tuple(line.split())
        extras = frozenset(fields)
        out.append((fields, extras))
    while out:
        last = list(out)  # repro: ignore[hot-path-alloc]
        out.pop()
    return out
