"""Fixture ``repro.ged`` package."""
