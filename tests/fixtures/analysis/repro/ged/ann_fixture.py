"""Fixture: annotation coverage of public functions."""


def public_fn(a, b: int):  # line 4: annotations (a, return)
    """Documented but unannotated."""
    return a, b


def _private(a):  # fine: private helper
    return a


class Thing:
    """A public class."""

    def __init__(self, x):  # line 16: annotations (x, return)
        self.x = x

    def method(self):  # line 19: annotations (return)
        """Documented but unannotated."""
        return self.x

    def _hidden(self, y):  # fine: private method
        return y


def annotated(a: int) -> int:
    """Fully annotated — clean."""
    return a


def waived(a):  # repro: ignore[annotations]
    """Justified waiver."""
    return a
