"""Fixture: hot-path allocations inside the compiled A* inner loops."""


def expand(heap, cs, used, mapping):
    while heap:
        remainder = frozenset(cs)
        state = tuple(mapping)
        for v in cs:
            snapshot = list(used)
            image_map = dict(used)
            scratch = list(used)  # repro: ignore[hot-path-alloc]
    return heap
