"""Fixture: ``ged`` importing upward — the historical core<->ged cycle."""

from repro.core.label_filter import gamma  # noqa: F401  line 3: layering
from repro import gsim_join  # noqa: F401  line 4: layering (facade)
import repro.cli  # noqa: F401  line 5: layering
import repro.newpkg  # noqa: F401  line 6: layering (unknown layer)
from repro.grams.labels import local_label_lower_bound  # noqa: F401  fine
from repro.core.verify import verify_pair  # noqa: F401  # repro: ignore[layering]
