"""Fixture: hot-path allocations in a module named like the real join."""


def run(graphs, q, counts):
    """Copies and re-extraction inside loops."""
    profiles = [extract_qgrams(g, q) for g in graphs]  # noqa: F821  fine
    for g in graphs:
        profile = extract_qgrams(g, q)  # noqa: F821  line 8: hot-path-alloc
        items = list(profile.grams)  # line 9: hot-path-alloc
        table = dict(counts)  # line 10: hot-path-alloc
        fresh = []  # fine: literal
        keep = list(profile.grams)  # repro: ignore[hot-path-alloc]  line 12
        fresh.append((items, table, keep))
    while counts:
        snapshot = set(counts)  # line 15: hot-path-alloc
        counts.pop(next(iter(snapshot)))
    return profiles
