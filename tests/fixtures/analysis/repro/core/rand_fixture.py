"""Fixture: process-global randomness."""

import random
from random import choice  # noqa: F401  line 4: determinism


def draw(values):
    """Various RNG sins."""
    x = random.random()  # line 9: determinism
    rng = random.Random()  # line 10: determinism (unseeded)
    good = random.Random(42)  # fine: seeded
    y = rng.choice(values)  # fine: instance method
    z = random.shuffle(values)  # repro: ignore[determinism]  line 13: waived
    return x, rng, good, y, z
