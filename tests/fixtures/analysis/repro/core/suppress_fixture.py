"""Fixture: suppression edge cases — multi-rule brackets, decorated defs, stale waivers."""

import random


def multi() -> bool:
    """One line violating two rules; one bracket waives both."""
    return random.random() == 0.5  # repro: ignore[determinism, float-equality]


def partial() -> bool:
    """Same double violation, but only one rule is waived."""
    return random.random() == 0.5  # repro: ignore[determinism]


@staticmethod
def decorated(cost: float) -> bool:  # repro: ignore[docstrings]
    return cost < 1.0


def stale(cost: float) -> bool:
    """Three rotted waivers: explicit, blanket, and self-excused."""
    a = cost < 1.0  # repro: ignore[float-equality]
    b = cost < 2.0  # repro: ignore
    c = cost < 3.0  # repro: ignore[float-equality, unused-suppression]
    return a and b and c
