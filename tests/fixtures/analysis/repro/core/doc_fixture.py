__all__ = ["exported", "Wanted", "waived"]


def exported():  # line 4: docstrings
    return 1


def unlisted():  # fine: not in __all__
    return 2


class Wanted:  # line 12: docstrings
    pass


def waived():  # repro: ignore[docstrings]  line 16: waived
    return 3
