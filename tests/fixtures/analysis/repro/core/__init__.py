"""Fixture ``repro.core`` package."""
