"""Fixture: float equality on distances and costs."""


def compare(cost, r, s):
    """Equality against float values."""
    a = cost == 1.5  # line 6: float-equality
    b = 0.0 != cost  # line 7: float-equality
    c = weighted_ged(r, s) == cost  # noqa: F821  line 8: float-equality
    d = cost <= 1.5  # fine: ordering comparison
    e = cost == 1  # fine: integer
    f = cost == 2.0  # repro: ignore[float-equality]  line 11: waived
    g = cost == 3.0  # repro: ignore  line 12: blanket waiver
    return a, b, c, d, e, f, g
