"""Fixture: exception discipline."""

from repro.exceptions import ParameterError


def divide(x):
    """Bare except and a foreign raise."""
    try:
        return 1 / x
    except:  # line 10: exceptions (bare except)
        raise ValueError("bad")  # line 11: exceptions


def validate(tau):
    """Raising a library type is fine."""
    if tau < 0:
        raise ParameterError("negative tau")
    raise NotImplementedError  # fine: programmer-error escape


def reraise():
    """Re-raising a handler-bound name is fine."""
    try:
        return divide(0)
    except ZeroDivisionError as err:
        raise err


def waived():
    """A justified foreign raise can be waived."""
    raise RuntimeError("no")  # repro: ignore[exceptions]


def unreachable():
    """AssertionError is no longer a sanctioned escape."""
    raise AssertionError("impossible")  # line 36: exceptions
