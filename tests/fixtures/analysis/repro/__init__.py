"""Fixture tree: a fake ``repro`` package with known rule violations."""
