"""Fixture: planner violations — hot-path copies and an upward import."""

from repro.core.search import GSimIndex  # noqa: F401  line 3: layering


def observe_stream(tags, order, costs):
    entered = {}
    for tag in tags:
        names = list(order)
        weights = dict(costs)
        entered[tag] = (names, weights)
    while tags:
        frozen = tuple(entered)  # repro: ignore[hot-path-alloc]
        tags.pop()
    return entered
