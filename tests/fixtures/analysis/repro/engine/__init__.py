"""Fixture ``repro.engine`` package."""
