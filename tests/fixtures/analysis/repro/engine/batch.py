"""Fixture: hot-path allocations inside the batch kernel loops."""


def evaluate(store, blocks, tau):
    verdicts = []
    for rows in blocks:
        gathered = list(store.sig_flat)
        lens = dict(store.sig_offsets)
        verdicts.append((gathered, lens))
    while blocks:
        snapshot = tuple(verdicts)  # repro: ignore[hot-path-alloc]
        blocks.pop()
    return verdicts
