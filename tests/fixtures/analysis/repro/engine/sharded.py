"""Fixture: hot-path allocations inside the sharded-join combo loops."""


def run_combo(positions, graphs, journal):
    records = []
    for i, g in enumerate(graphs):
        resident = list(graphs)
        keys = dict(journal)
        profile = extract_qgrams(g, 4)  # noqa: F821
        records.append((resident, keys, profile, positions[i]))
    while records:
        batch = set(records)  # repro: ignore[hot-path-alloc]
        records.pop()
    return records
