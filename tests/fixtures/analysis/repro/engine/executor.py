"""Fixture: hot-path allocations inside the engine executor loops."""


def collect(profiles, index, tau):
    candidates = []
    for profile in profiles:
        postings = list(index)
        seen = set(profile.grams)
        grams = extract_qgrams(profile, 3)  # noqa: F821
        candidates.append((postings, seen, grams))
    while candidates:
        row = dict(candidates)  # repro: ignore[hot-path-alloc]
        candidates.pop()
    return candidates
