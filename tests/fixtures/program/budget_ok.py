"""Fixture: the verification budget threaded end to end (clean)."""


def dfs_ged(g1, g2, budget=None):
    """Stand-in A* verifier accepting a budget."""
    return 0


def verify_pair(g1, g2, budget=None):
    """Budgeted wrapper on the verifier path."""
    return dfs_ged(g1, g2, budget=budget)


def run_stage(pairs, budget):
    """Threads the in-scope budget into every verification."""
    out = []
    for g1, g2 in pairs:
        out.append(verify_pair(g1, g2, budget=budget))
    return out


class Verify:
    """Stand-in verify stage."""

    def run(self, ctx, budget=None):
        """Verify one pair under the budget."""
        return dfs_ged(ctx, ctx, budget=budget)


class Executor:
    """Stand-in staged executor holding a budget attribute."""

    def __init__(self, budget=None):
        """Store the join-wide budget."""
        self.budget = budget

    def verify_candidate(self, ctx):
        """Passes self.budget when delegating."""
        verify = Verify()
        return verify.run(ctx, budget=self.budget)
