"""Fixture: the same flows, sanitized by ordering functions (clean)."""


class StageStatistics:
    """Stand-in for the engine's per-stage statistics record."""

    def __init__(self, first_id=0):
        """Record the first candidate id seen."""
        self.first_id = first_id


class JoinJournal:
    """Stand-in for the checkpoint journal."""

    def append(self, entry):
        """Accept one journal record."""


def ordered_ids(items):
    """Return ids deterministically ordered."""
    return sorted(set(items))


def good_collect(graph_ids):
    """Every unordered container is sorted before it reaches a sink."""
    ids = set(graph_ids)
    pairs = []
    for i in sorted(ids):
        pairs.append((i, i + 1))
    journal = JoinJournal()
    journal.append(min(ids))
    stats = StageStatistics(first_id=len(ids))
    return pairs, stats


def indirect(items):
    """Sanitized return value keeps the caller clean."""
    pairs = []
    pairs.append(ordered_ids(items))
    return pairs
