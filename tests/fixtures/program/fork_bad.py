"""Fixture: worker-reachable functions that are not fork-safe."""

import threading
from concurrent.futures import ProcessPoolExecutor

_CACHE: dict = {}
_LOCK = threading.Lock()


def _init(seed):
    """Pool initializer: its own global writes are sanctioned setup."""
    _CACHE["seed"] = seed


def _helper(i, acc=[]):
    """Worker-reachable; every write below is a fork-safety violation."""
    _CACHE[i] = i * 2
    acc.append(i)
    with _LOCK:
        return _CACHE[i]


def _work(chunk):
    """The submitted worker function."""
    return [_helper(i) for i in chunk]


def run(chunks):
    """Drive the pool."""
    out = []
    with ProcessPoolExecutor(initializer=_init, initargs=(1,)) as ex:
        futures = [ex.submit(_work, c) for c in chunks]
        for f in futures:
            out.extend(f.result())
    return out
