"""Fixture: a naive sharded-join worker that spills through shared state.

Models the mistake the out-of-core driver must not make: workers
verifying a shard pair's candidate chunk record results into parent
state (a module-level spill index, a shared buffer default, a captured
file handle) instead of returning them for the parent to spill.
"""

import threading
from concurrent.futures import ProcessPoolExecutor

_SPILL_INDEX: dict = {}
_SPILL_LOCK = threading.Lock()


def _record(key, record, buffer=[]):
    """Worker-reachable; every write below is a fork-safety violation."""
    _SPILL_INDEX[key] = record
    buffer.append(record)
    with _SPILL_LOCK:
        return len(buffer)


def _verify_chunk(chunk):
    """The submitted worker function: verify and (wrongly) spill."""
    return [_record(key, {"lo": key[1], "hi": key[0]}) for key in chunk]


def run(chunks):
    """Drive the shard pair's worker pool."""
    out = []
    with ProcessPoolExecutor() as pool:
        for future in [pool.submit(_verify_chunk, c) for c in chunks]:
            out.extend(future.result())
    return out
