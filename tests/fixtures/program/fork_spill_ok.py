"""Fixture: the fork-safe sharded-join worker protocol.

Workers return their verification records; only the parent touches the
spill queues and the manifest — exactly the real driver's contract
(``repro.engine.sharded`` dispatches chunks and applies the returned
records itself).
"""

from concurrent.futures import ProcessPoolExecutor


def _verify_chunk(chunk):
    """The submitted worker function: pure compute, no shared state."""
    return [{"lo": key[1], "hi": key[0]} for key in chunk]


def run(chunks, spill):
    """Parent-side spill: the only writer of durable state."""
    with ProcessPoolExecutor() as pool:
        for future in [pool.submit(_verify_chunk, c) for c in chunks]:
            for record in future.result():
                spill.append(record)
    return spill
