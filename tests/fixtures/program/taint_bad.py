"""Fixture: unordered-container values reaching ordering-sensitive sinks."""


class StageStatistics:
    """Stand-in for the engine's per-stage statistics record."""

    def __init__(self, first_id=0):
        """Record the first candidate id seen."""
        self.first_id = first_id


class JoinJournal:
    """Stand-in for the checkpoint journal."""

    def append(self, entry):
        """Accept one journal record."""


def unordered_ids(items):
    """Return ids in set order — taints the caller's value."""
    return list(set(items))


def bad_collect(graph_ids):
    """Set iteration and set.pop() flow into pairs/journal/stats sinks."""
    ids = set(graph_ids)
    pairs = []
    for i in ids:
        pairs.append((i, i + 1))
    journal = JoinJournal()
    journal.append(ids.pop())
    stats = StageStatistics(first_id=next(iter(ids)))
    return pairs, stats


def indirect(items):
    """Taint arriving through another function's return value."""
    pairs = []
    pairs.append(unordered_ids(items))
    return pairs
