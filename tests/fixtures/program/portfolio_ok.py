"""Fixture: the budget bound at every portfolio ``.verify`` call (clean)."""


class DfsBackend:
    """Stand-in portfolio backend with the uniform verify surface."""

    def verify(self, r, s, tau, budget=None):
        """Decide the pair, bounded under the budget."""
        return 0


def select_backend(r, s, tau):
    """Stand-in hardness dispatcher."""
    return DfsBackend()


def run_verify_stage(pairs, tau, budget):
    """Threads the in-scope budget through every dispatch."""
    out = []
    for r, s in pairs:
        backend = select_backend(r, s, tau)
        out.append(backend.verify(r, s, tau, budget))
    return out


def run_verify_stage_keyword(pairs, tau, budget):
    """Keyword binding is equally fine."""
    out = []
    for r, s in pairs:
        backend = select_backend(r, s, tau)
        out.append(backend.verify(r, s, tau, budget=budget))
    return out
