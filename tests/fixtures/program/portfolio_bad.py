"""Fixture: budget drops at the portfolio ``.verify`` dispatch point."""


class DfsBackend:
    """Stand-in portfolio backend with the uniform verify surface."""

    def verify(self, r, s, tau, budget=None):
        """Decide the pair, bounded under the budget."""
        return 0


def select_backend(r, s, tau):
    """Stand-in hardness dispatcher."""
    return DfsBackend()


def run_verify_stage(pairs, tau, budget):
    """Has a budget in scope but drops it at the dispatch point."""
    out = []
    for r, s in pairs:
        backend = select_backend(r, s, tau)
        out.append(backend.verify(r, s, tau))
    return out
