"""Fixture: the same pool shape, kept fork-safe (clean counterpart)."""

from concurrent.futures import ProcessPoolExecutor

_CACHE: dict = {}


def _init(seed):
    """Pool initializer: per-process setup writes are sanctioned."""
    _CACHE["seed"] = seed
    _CACHE["table"] = {}


def _helper(i, acc=None):
    """Worker-reachable, but touches only per-call local state."""
    local = [] if acc is None else list(acc)
    local.append(i)
    return i * 2 + len(local)


def _work(chunk):
    """The submitted worker function: pure over its chunk."""
    return [_helper(i) for i in chunk]


def run(chunks):
    """Drive the pool."""
    out = []
    with ProcessPoolExecutor(initializer=_init, initargs=(1,)) as ex:
        futures = [ex.submit(_work, c) for c in chunks]
        for f in futures:
            out.extend(f.result())
    return out
