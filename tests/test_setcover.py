"""Tests for the hitting-set substrate."""

from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ParameterError
from repro.setcover import (
    exact_min_hitting_set,
    greedy_hitting_set,
    greedy_lower_bound,
    slavik_ratio,
)


def brute_force_min_hitting_set(sets):
    """Smallest hitting set by subset enumeration (tests only)."""
    universe = sorted({e for s in sets for e in s}, key=repr)
    if not sets:
        return 0
    for k in range(1, len(universe) + 1):
        for pick in combinations(universe, k):
            chosen = set(pick)
            if all(chosen & s for s in sets):
                return k
    return len(universe)


@st.composite
def hitting_instances(draw):
    num_sets = draw(st.integers(min_value=0, max_value=6))
    sets = []
    for _ in range(num_sets):
        size = draw(st.integers(min_value=1, max_value=4))
        elements = draw(
            st.lists(st.integers(min_value=0, max_value=8), min_size=size,
                     max_size=size, unique=True)
        )
        sets.append(frozenset(elements))
    return sets


class TestGreedy:
    def test_empty_input(self):
        assert greedy_hitting_set([]) == []

    def test_single_set(self):
        chosen = greedy_hitting_set([frozenset({1, 2})])
        assert len(chosen) == 1
        assert chosen[0] in {1, 2}

    def test_shared_element_chosen_first(self):
        sets = [frozenset({1, 2}), frozenset({1, 3}), frozenset({1, 4})]
        assert greedy_hitting_set(sets) == [1]

    def test_empty_set_rejected(self):
        with pytest.raises(ParameterError, match="empty set"):
            greedy_hitting_set([frozenset()])

    @settings(max_examples=50, deadline=None)
    @given(hitting_instances())
    def test_greedy_is_a_hitting_set(self, sets):
        chosen = set(greedy_hitting_set(sets))
        assert all(chosen & s for s in sets)


class TestExact:
    def test_empty_input_is_zero(self):
        assert exact_min_hitting_set([], cap=3) == 0

    def test_cap_zero(self):
        assert exact_min_hitting_set([frozenset({1})], cap=0) == 1

    def test_negative_cap_rejected(self):
        with pytest.raises(ParameterError):
            exact_min_hitting_set([], cap=-1)

    def test_disjoint_sets_need_one_each(self):
        sets = [frozenset({1}), frozenset({2}), frozenset({3})]
        assert exact_min_hitting_set(sets, cap=5) == 3

    def test_cap_truncates(self):
        sets = [frozenset({1}), frozenset({2}), frozenset({3})]
        assert exact_min_hitting_set(sets, cap=1) == 2  # cap + 1 sentinel

    def test_overlapping_sets(self):
        sets = [frozenset({1, 2}), frozenset({2, 3}), frozenset({3, 4})]
        assert exact_min_hitting_set(sets, cap=5) == 2

    @settings(max_examples=60, deadline=None)
    @given(hitting_instances())
    def test_exact_matches_brute_force(self, sets):
        expected = brute_force_min_hitting_set(sets)
        cap = 8
        assert exact_min_hitting_set(sets, cap=cap) == min(expected, cap + 1)

    @settings(max_examples=40, deadline=None)
    @given(hitting_instances())
    def test_greedy_never_below_exact(self, sets):
        exact = exact_min_hitting_set(sets, cap=10)
        greedy = len(greedy_hitting_set(sets))
        assert greedy >= exact


class TestLowerBound:
    def test_slavik_ratio_clamped(self):
        assert slavik_ratio(0) == 1.0
        assert slavik_ratio(1) == 1.0
        assert slavik_ratio(2) >= 1.0
        assert slavik_ratio(1000) > 1.0

    def test_ratio_increases_eventually(self):
        assert slavik_ratio(10000) > slavik_ratio(100) > slavik_ratio(10)

    def test_empty_lower_bound(self):
        assert greedy_lower_bound([]) == 0

    @settings(max_examples=60, deadline=None)
    @given(hitting_instances())
    def test_lower_bound_is_sound(self, sets):
        """The central property: the bound never exceeds the optimum."""
        if not sets:
            assert greedy_lower_bound(sets) == 0
            return
        optimum = brute_force_min_hitting_set(sets)
        assert greedy_lower_bound(sets) <= optimum
