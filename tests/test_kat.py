"""Tests for the κ-AT baseline."""

import pytest

from repro import naive_join
from repro.baselines import d_tree, kat_join, tree_gram_key, tree_gram_multiset
from repro.datasets import figure1_graphs
from repro.exceptions import ParameterError

from .conftest import path_graph, star_graph
from .test_join import molecule_collection


class TestDTree:
    def test_q0_is_one(self):
        assert d_tree(5, 0) == 1

    def test_isolated_vertices(self):
        # Edge insertion can still affect both endpoints' grams.
        assert d_tree(0, 1) == 2
        assert d_tree(0, 3) == 2

    def test_degree_one(self):
        assert d_tree(1, 1) == 2
        assert d_tree(1, 3) == max(2, 2 * 2)

    def test_degree_two_path(self):
        # N_q = 1 + 2q vs 2 * N_{q-1} = 2 * (2q - 1).
        assert d_tree(2, 1) == 3
        assert d_tree(2, 2) == max(5, 6)
        assert d_tree(2, 3) == max(7, 10)

    def test_general_formula(self):
        # gamma=3, q=2: 1 + 3*(1 + 2) = 10.
        assert d_tree(3, 2) == 10

    def test_grows_exponentially_with_q(self):
        assert d_tree(4, 4) > d_tree(4, 3) > d_tree(4, 2)

    def test_negative_q_rejected(self):
        with pytest.raises(ParameterError):
            d_tree(3, -1)


class TestTreeGrams:
    def test_q1_is_star(self):
        g = star_graph("A", ["B", "C"])
        key = tree_gram_key(g, 0, 1)
        label, children = key
        assert label == repr("A")
        assert len(children) == 2

    def test_q0_is_vertex_label(self):
        g = path_graph(["A", "B"])
        assert tree_gram_key(g, 0, 0) == (repr("A"),)

    def test_multiset_one_gram_per_vertex(self):
        r, _ = figure1_graphs()
        counts = tree_gram_multiset(r, 1)
        assert sum(counts.values()) == r.num_vertices

    def test_isomorphism_invariance(self):
        g = path_graph(["A", "B", "C"])
        h = g.relabel_vertices({0: 10, 1: 11, 2: 12})
        for q in (1, 2, 3):
            assert tree_gram_multiset(g, q) == tree_gram_multiset(h, q)

    def test_structure_sensitivity(self):
        p = path_graph(["A", "A", "A", "A"])
        s = star_graph("A", ["A", "A", "A"])
        assert tree_gram_multiset(p, 1) != tree_gram_multiset(s, 1)

    def test_negative_q_rejected(self):
        with pytest.raises(ParameterError):
            tree_gram_multiset(path_graph(["A"]), -1)


class TestKatJoin:
    def test_missing_ids_rejected(self):
        with pytest.raises(ParameterError):
            kat_join([path_graph(["A"])], tau=1)

    @pytest.mark.parametrize("tau", [0, 1, 2])
    def test_matches_naive(self, tau):
        graphs = molecule_collection(20, seed=tau + 30)
        expected = naive_join(graphs, tau, use_size_filter=False).pair_set()
        assert kat_join(graphs, tau, q=1).pair_set() == expected

    def test_longer_tree_grams_still_correct(self):
        graphs = molecule_collection(14, seed=50)
        expected = naive_join(graphs, 1).pair_set()
        for q in (2, 3):
            assert kat_join(graphs, 1, q=q).pair_set() == expected, f"q={q}"

    def test_underflow_grows_with_q(self):
        """The paper's criticism: longer tree q-grams underflow and force
        all-pair comparisons."""
        graphs = molecule_collection(20, seed=51)
        stats_q1 = kat_join(graphs, 2, q=1).stats
        stats_q3 = kat_join(graphs, 2, q=3).stats
        assert stats_q3.unprunable_graphs >= stats_q1.unprunable_graphs

    def test_statistics_populated(self):
        graphs = molecule_collection(16, seed=52)
        st = kat_join(graphs, 1, q=1).stats
        assert st.cand1 >= st.cand2 >= st.results
        assert st.total_prefix_length > 0
