"""Tests for GXL serialization (the IAM repository format)."""

import pytest

from repro.exceptions import GraphFormatError
from repro.graph.gxl import dumps_gxl, load_gxl, loads_gxl, save_gxl

from .conftest import build_graph, path_graph

IAM_STYLE = """<?xml version="1.0"?>
<gxl>
  <graph id="protein_1" edgeids="false" edgemode="undirected">
    <node id="_0"><attr name="type"><string>helix</string></attr>
                  <attr name="length"><int>12</int></attr></node>
    <node id="_1"><attr name="type"><string>sheet</string></attr></node>
    <node id="_2"><attr name="type"><string>loop</string></attr></node>
    <edge from="_0" to="_1"><attr name="type"><string>seq</string></attr></edge>
    <edge from="_1" to="_2"><attr name="type"><string>space</string></attr></edge>
  </graph>
  <graph id="protein_2" edgemode="undirected">
    <node id="a"/>
  </graph>
</gxl>
"""


class TestParsing:
    def test_iam_style_document(self):
        graphs = loads_gxl(IAM_STYLE, vertex_attr="type", edge_attr="type")
        assert len(graphs) == 2
        g = graphs[0]
        assert g.graph_id == "protein_1"
        assert g.num_vertices == 3 and g.num_edges == 2
        assert g.vertex_label("_0") == "helix"
        assert g.edge_label("_1", "_2") == "space"

    def test_default_attr_is_first(self):
        graphs = loads_gxl(IAM_STYLE)
        assert graphs[0].vertex_label("_0") == "helix"

    def test_named_attr_selects_value(self):
        graphs = loads_gxl(IAM_STYLE, vertex_attr="length")
        assert graphs[0].vertex_label("_0") == 12  # <int> parsed
        assert graphs[0].vertex_label("_1") == ""  # missing attr -> ""

    def test_node_without_attrs_gets_empty_label(self):
        graphs = loads_gxl(IAM_STYLE)
        assert graphs[1].vertex_label("a") == ""

    def test_invalid_xml_rejected(self):
        with pytest.raises(GraphFormatError, match="invalid XML"):
            loads_gxl("<gxl><graph>")

    def test_edge_to_unknown_node_rejected(self):
        bad = "<gxl><graph id='g'><node id='a'/><edge from='a' to='zz'/></graph></gxl>"
        with pytest.raises(GraphFormatError, match="malformed"):
            loads_gxl(bad)

    def test_node_without_id_rejected(self):
        bad = "<gxl><graph id='g'><node/></graph></gxl>"
        with pytest.raises(GraphFormatError, match="without id"):
            loads_gxl(bad)

    def test_bad_int_value_rejected(self):
        bad = (
            "<gxl><graph id='g'><node id='a'>"
            "<attr name='x'><int>oops</int></attr></node></graph></gxl>"
        )
        with pytest.raises(GraphFormatError, match="bad GXL int"):
            loads_gxl(bad)


class TestRoundTrip:
    def test_dumps_loads(self):
        g = build_graph(["C", "N"], [(0, 1, "-")], graph_id="mol")
        back = loads_gxl(dumps_gxl([g]))[0]
        assert back.graph_id == "mol"
        assert back.num_vertices == 2 and back.num_edges == 1
        assert back.vertex_label_multiset() == {"C": 1, "N": 1}
        assert back.edge_label_multiset() == {"-": 1}

    def test_file_round_trip(self, tmp_path):
        graphs = [
            path_graph(["A", "B", "C"], graph_id="p1"),
            path_graph(["X"], graph_id="p2"),
        ]
        path = tmp_path / "graphs.gxl"
        save_gxl(graphs, path)
        back = load_gxl(path)
        assert [g.graph_id for g in back] == ["p1", "p2"]
        assert back[0].num_edges == 2

    def test_numeric_labels_round_trip_types(self):
        g = build_graph([1, 2.5], [(0, 1, True)])
        g.graph_id = "nums"
        back = loads_gxl(dumps_gxl([g]))[0]
        labels = sorted(back.vertex_label_multiset(), key=repr)
        assert labels == [1, 2.5]
        assert list(back.edge_label_multiset()) == [True]
