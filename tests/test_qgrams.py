"""Tests for path-based q-gram extraction, anchored to the paper's examples."""

import pytest
from hypothesis import given, settings

from repro.core import extract_qgrams
from repro.grams.qgrams import qgram_key
from repro.datasets import figure1_graphs
from repro.exceptions import ParameterError
from repro.graph.graph import Graph

from .conftest import build_graph, cycle_graph, path_graph, small_graphs


class TestPaperExamples:
    """Example 3 / Example 4 of the paper, verbatim."""

    def test_figure1_one_grams_of_r(self):
        r, _ = figure1_graphs()
        profile = extract_qgrams(r, 1)
        assert profile.key_counts == {
            ("C", "-", "C"): 3,
            ("C", "=", "O"): 1,
        }
        assert profile.size == 4

    def test_figure1_one_grams_of_s(self):
        _, s = figure1_graphs()
        profile = extract_qgrams(s, 1)
        assert profile.key_counts == {
            ("C", "-", "C"): 3,
            ("C", "-", "O"): 1,
            ("C", "-", "N"): 1,
        }
        assert profile.size == 5

    def test_figure1_d_path_q1(self):
        # Example 4: changing the label of C1 gives max |Q_u| = 3 for both.
        r, s = figure1_graphs()
        assert extract_qgrams(r, 1).d_path == 3
        assert extract_qgrams(s, 1).d_path == 3

    def test_figure1_q2_sizes_and_dpath(self):
        # Example 4 (q=2): lower bound max(5-5, 7-6) = 1 at tau=1.
        r, s = figure1_graphs()
        pr, ps = extract_qgrams(r, 2), extract_qgrams(s, 2)
        assert (pr.size, pr.d_path) == (5, 5)
        assert (ps.size, ps.d_path) == (7, 6)


class TestExtraction:
    def test_q0_grams_are_vertex_labels(self):
        g = path_graph(["A", "B", "A"])
        profile = extract_qgrams(g, 0)
        assert profile.key_counts == {("A",): 2, ("B",): 1}
        assert profile.d_path == 1

    def test_negative_q_rejected(self):
        with pytest.raises(ParameterError):
            extract_qgrams(Graph(), -1)

    def test_empty_graph(self):
        profile = extract_qgrams(Graph(), 2)
        assert profile.size == 0
        assert profile.d_path == 0

    def test_graph_smaller_than_q_has_no_grams(self):
        g = path_graph(["A", "B"])
        profile = extract_qgrams(g, 3)
        assert profile.size == 0
        assert profile.vertex_counts == {0: 0, 1: 0}

    def test_canonical_orientation(self):
        # Path A-x-B read from either end: key must be the lexicographically
        # smaller sequence regardless of construction order.
        g1 = path_graph(["A", "B"])
        g2 = path_graph(["B", "A"])
        k1 = list(extract_qgrams(g1, 1).key_counts)[0]
        k2 = list(extract_qgrams(g2, 1).key_counts)[0]
        assert k1 == k2 == ("A", "x", "B")

    def test_qgram_key_includes_edge_labels(self):
        g = build_graph(["A", "A"], [(0, 1, "x")])
        h = build_graph(["A", "A"], [(0, 1, "y")])
        assert list(extract_qgrams(g, 1).key_counts) != list(
            extract_qgrams(h, 1).key_counts
        )

    def test_vertex_counts_sum(self):
        g = cycle_graph(["A", "B", "C", "D"])
        profile = extract_qgrams(g, 2)
        # Each q-gram covers q+1 vertices.
        assert sum(profile.vertex_counts.values()) == profile.size * 3

    def test_gram_paths_are_real_paths(self):
        g = cycle_graph(["A", "B", "C", "D", "E"])
        profile = extract_qgrams(g, 3)
        for gram in profile.grams:
            assert len(gram.path) == 4
            for i in range(3):
                assert g.has_edge(gram.path[i], gram.path[i + 1])
            assert qgram_key(g, gram.path) == gram.key

    def test_edge_pairs(self):
        g = path_graph(["A", "B", "C"])
        profile = extract_qgrams(g, 2)
        gram = profile.grams[0]
        assert len(gram.edge_pairs()) == 2
        assert gram.vertex_set == frozenset({0, 1, 2})


class TestInvariance:
    @settings(max_examples=30, deadline=None)
    @given(small_graphs(max_vertices=6))
    def test_key_multiset_is_isomorphism_invariant(self, g):
        h = g.relabel_vertices({v: v + 100 for v in g.vertices()})
        for q in (1, 2):
            assert extract_qgrams(g, q).key_counts == extract_qgrams(h, q).key_counts

    @settings(max_examples=30, deadline=None)
    @given(small_graphs(max_vertices=6))
    def test_d_path_bounds_vertex_counts(self, g):
        profile = extract_qgrams(g, 2)
        assert all(c <= profile.d_path for c in profile.vertex_counts.values())

    def test_count_lower_bound_method(self):
        r, _ = figure1_graphs()
        profile = extract_qgrams(r, 1)
        assert profile.count_lower_bound(1) == 4 - 3
