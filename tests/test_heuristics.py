"""Direct tests for the A* heuristics and mapping orders."""

from hypothesis import given, settings

from repro.core import compare_qgrams, extract_qgrams
from repro.datasets import figure1_graphs
from repro.ged import graph_edit_distance
from repro.ged.heuristics import (
    label_heuristic,
    make_local_label_heuristic,
    zero_heuristic,
)
from repro.ged.vertex_order import (
    input_vertex_order,
    mismatch_vertex_order,
    spanning_tree_vertex_order,
)

from .conftest import build_graph, graph_pairs_within, path_graph


def full_rest(r, s):
    return list(r.vertices()), set(s.vertices())


class TestZeroHeuristic:
    def test_always_zero(self):
        r, s = figure1_graphs()
        r_rest, s_rest = full_rest(r, s)
        assert zero_heuristic(r, s, r_rest, s_rest) == 0


class TestLabelHeuristic:
    def test_full_remainder_equals_global_filter(self):
        r, s = figure1_graphs()
        r_rest, s_rest = full_rest(r, s)
        assert label_heuristic(r, s, r_rest, s_rest) == 3

    def test_empty_remainders(self):
        r, s = figure1_graphs()
        assert label_heuristic(r, s, [], set()) == 0

    def test_one_side_empty_counts_insertions(self):
        r = path_graph(["A", "B"])
        s = path_graph(["A", "B"])
        # r fully mapped, s untouched: 2 vertices + 1 edge remaining.
        assert label_heuristic(r, s, [], {0, 1}) == 3

    def test_partial_remainder_counts_resident_edges(self):
        r = path_graph(["A", "B", "C"])
        s = path_graph(["A", "B", "C"])
        # Unmapped {2} on both sides: resident edges (1,2) match.
        value = label_heuristic(r, s, [2], {2})
        assert value == 0

    @settings(max_examples=30, deadline=None)
    @given(graph_pairs_within(tau_max=2, max_vertices=4))
    def test_admissible_at_root(self, pair):
        """h at the initial state never exceeds the true distance."""
        r, s, _ = pair
        r_rest, s_rest = full_rest(r, s)
        assert label_heuristic(r, s, r_rest, s_rest) <= graph_edit_distance(r, s)


class TestLocalLabelHeuristic:
    @settings(max_examples=25, deadline=None)
    @given(graph_pairs_within(tau_max=2, max_vertices=4))
    def test_admissible_at_root(self, pair):
        r, s, _ = pair
        true = graph_edit_distance(r, s)
        h = make_local_label_heuristic(q=1, tau=true, max_remaining=None)
        r_rest, s_rest = full_rest(r, s)
        assert h(r, s, r_rest, s_rest) <= true

    def test_gate_falls_back_to_label_bound(self):
        r, s = figure1_graphs()
        gated = make_local_label_heuristic(q=1, tau=4, max_remaining=0)
        r_rest, s_rest = full_rest(r, s)
        assert gated(r, s, r_rest, s_rest) == label_heuristic(r, s, r_rest, s_rest)

    def test_never_below_label_bound(self):
        r, s = figure1_graphs()
        h = make_local_label_heuristic(q=1, tau=4, max_remaining=None)
        r_rest, s_rest = full_rest(r, s)
        assert h(r, s, r_rest, s_rest) >= label_heuristic(r, s, r_rest, s_rest)

    def test_profile_cache_reused(self):
        r, s = figure1_graphs()
        h = make_local_label_heuristic(q=1, tau=4, max_remaining=None)
        r_rest, s_rest = full_rest(r, s)
        first = h(r, s, r_rest, s_rest)
        second = h(r, s, r_rest, s_rest)  # cache hit path
        assert first == second


class TestVertexOrders:
    def test_input_order(self):
        g = path_graph(["A", "B", "C"])
        assert input_vertex_order(g) == [0, 1, 2]

    def test_spanning_tree_order_is_permutation(self):
        g = build_graph(["A"] * 4, [(0, 2, "x"), (2, 3, "x")])
        order = spanning_tree_vertex_order(g)
        assert sorted(order) == [0, 1, 2, 3]

    def test_mismatch_order_puts_mismatching_vertices_first(self):
        r, s = figure1_graphs()
        mismatch = compare_qgrams(extract_qgrams(r, 1), extract_qgrams(s, 1))
        order = mismatch_vertex_order(r, mismatch.mismatch_r)
        assert sorted(order) == sorted(r.vertices())
        covered = set()
        for gram in mismatch.mismatch_r:
            covered |= gram.vertex_set
        assert set(order[: len(covered)]) == covered

    def test_mismatch_order_with_no_mismatches(self):
        g = path_graph(["A", "B", "C"])
        order = mismatch_vertex_order(g, [])
        assert sorted(order) == [0, 1, 2]
