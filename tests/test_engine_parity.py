"""Differential parity: the staged engine vs the frozen pre-refactor drivers.

``tests/legacy_drivers.py`` is a verbatim copy of the four hand-rolled
drivers as they stood before ``repro.engine`` existed.  Every test here
runs the same workload through both and asserts *bit-identical* output:
result pairs, query distances, every integer statistics counter
(candidates, prune counters, GED calls and expansion counts), bounded
verdicts under a budget, and journal files interchangeable in both
directions.  Wall-clock fields are the only tolerated difference.
"""

import dataclasses

import pytest

from repro.core.join import GSimJoinOptions, gsim_join, gsim_join_rs
from repro.core.parallel import gsim_join_parallel
from repro.core.result import JoinStatistics
from repro.core.search import GSimIndex
from repro.exceptions import InjectedFaultError
from repro.runtime import FaultPlan, VerificationBudget

from .legacy_drivers import (
    LegacyGSimIndex,
    legacy_gsim_join,
    legacy_gsim_join_rs,
    legacy_gsim_join_serial_parallel,
)
from .test_join import molecule_collection

TAU = 2


def comparable_stats(stats):
    """Every non-wall-clock statistics field (stage rows and the
    per-backend verify attribution are engine-only)."""
    data = dataclasses.asdict(stats)
    return {
        key: value
        for key, value in data.items()
        if key not in ("stages", "verify_backends")
        and not isinstance(value, float)
    }


def assert_parity(new, old):
    assert new.pairs == old.pairs
    assert new.undecided == old.undecided
    assert comparable_stats(new.stats) == comparable_stats(old.stats)


# --------------------------------------------------------------- self-join


@pytest.mark.parametrize("tau", [0, 1, 2, 3])
@pytest.mark.parametrize("q", [1, 2, 3, 4])
def test_self_join_parity_grid(q, tau):
    graphs = molecule_collection(12, seed=3)
    options = GSimJoinOptions.full(q=q)
    assert_parity(
        gsim_join(graphs, tau, options=options),
        legacy_gsim_join(graphs, tau, options=options),
    )


@pytest.mark.parametrize("variant", ["basic", "minedit", "full", "extended"])
@pytest.mark.parametrize("seed", [7, 11])
def test_self_join_parity_variants(variant, seed):
    graphs = molecule_collection(14, seed=seed)
    options = getattr(GSimJoinOptions, variant)()
    assert_parity(
        gsim_join(graphs, TAU, options=options),
        legacy_gsim_join(graphs, TAU, options=options),
    )


@pytest.mark.parametrize("verifier", ["compiled", "object"])
def test_self_join_parity_verifiers(verifier):
    graphs = molecule_collection(14, seed=7)
    options = dataclasses.replace(GSimJoinOptions.full(), verifier=verifier)
    assert_parity(
        gsim_join(graphs, TAU, options=options),
        legacy_gsim_join(graphs, TAU, options=options),
    )


@pytest.mark.parametrize("verifier", ["compiled", "object"])
def test_budget_verdict_parity(verifier):
    """Bounded verdicts (undecided pairs + GED bounds) match exactly."""
    graphs = molecule_collection(16, seed=5)
    options = dataclasses.replace(GSimJoinOptions.full(), verifier=verifier)
    budget = VerificationBudget(max_expansions=4)
    new = gsim_join(graphs, TAU, options=options, budget=budget)
    old = legacy_gsim_join(graphs, TAU, options=options, budget=budget)
    assert_parity(new, old)
    # The budget is tight enough that the test means something.
    assert new.stats.undecided > 0


# ----------------------------------------------------------------- R x S


@pytest.mark.parametrize("tau", [1, 2])
def test_rs_join_parity(tau):
    outer = molecule_collection(10, seed=13)
    inner = molecule_collection(12, seed=17)
    assert_parity(
        gsim_join_rs(outer, inner, tau),
        legacy_gsim_join_rs(outer, inner, tau),
    )


def test_rs_join_parity_with_budget():
    outer = molecule_collection(10, seed=13)
    inner = molecule_collection(12, seed=17)
    budget = VerificationBudget(max_expansions=4)
    assert_parity(
        gsim_join_rs(outer, inner, TAU, budget=budget),
        legacy_gsim_join_rs(outer, inner, TAU, budget=budget),
    )


# -------------------------------------------------------------- parallel


def test_parallel_serial_parity():
    graphs = molecule_collection(16, seed=19)
    new = gsim_join_parallel(graphs, TAU, workers=1, chunk_size=4)
    old = legacy_gsim_join_serial_parallel(graphs, TAU, chunk_size=4)
    assert_parity(new, old)


def test_parallel_serial_parity_with_budget():
    graphs = molecule_collection(16, seed=5)
    budget = VerificationBudget(max_expansions=4)
    new = gsim_join_parallel(graphs, TAU, workers=1, chunk_size=4, budget=budget)
    old = legacy_gsim_join_serial_parallel(
        graphs, TAU, chunk_size=4, budget=budget
    )
    assert_parity(new, old)


# ----------------------------------------------------------------- index


@pytest.mark.parametrize("verifier", ["compiled", "object"])
def test_index_query_parity(verifier):
    """Queries return identical matches *and* distances, with identical
    filter/verification counters."""
    options = dataclasses.replace(GSimJoinOptions.full(), verifier=verifier)
    graphs = molecule_collection(14, seed=23)
    new_index = GSimIndex(graphs, tau_max=2, options=options)
    old_index = LegacyGSimIndex(graphs, tau_max=2, options=options)
    probes = molecule_collection(6, seed=29)
    for g in probes:
        for tau in (0, 1, 2):
            new_stats = JoinStatistics()
            old_stats = JoinStatistics()
            assert new_index.query(g, tau, stats=new_stats) == old_index.query(
                g, tau, stats=old_stats
            )
            assert comparable_stats(new_stats) == comparable_stats(old_stats)


# --------------------------------------------------------------- journals


def journal_fields(stats):
    return {
        field: getattr(stats, field)
        for field in (
            "cand1", "cand2", "results", "ged_calls", "ged_expansions",
            "undecided", "pruned_by_count", "pruned_by_global_label",
            "pruned_by_local_label",
        )
    }


def test_legacy_journal_resumes_engine_driver(tmp_path):
    """A journal left by an interrupted pre-refactor run feeds the new
    engine driver with no conversion step."""
    graphs = molecule_collection(16, seed=31)
    journal = tmp_path / "join.jsonl"
    with pytest.raises(InjectedFaultError):
        legacy_gsim_join(
            graphs, TAU, checkpoint=journal, fault=FaultPlan("raise", at=5)
        )
    clean = legacy_gsim_join(graphs, TAU)
    resumed = gsim_join(graphs, TAU, checkpoint=journal)
    assert resumed.pairs == clean.pairs
    assert journal_fields(resumed.stats) == journal_fields(clean.stats)
    assert resumed.stats.replayed_pairs == 4


def test_engine_journal_resumes_legacy_driver(tmp_path):
    graphs = molecule_collection(16, seed=31)
    journal = tmp_path / "join.jsonl"
    with pytest.raises(InjectedFaultError):
        gsim_join(graphs, TAU, checkpoint=journal, fault=FaultPlan("raise", at=5))
    clean = gsim_join(graphs, TAU)
    resumed = legacy_gsim_join(graphs, TAU, checkpoint=journal)
    assert resumed.pairs == clean.pairs
    assert journal_fields(resumed.stats) == journal_fields(clean.stats)
    assert resumed.stats.replayed_pairs == 4


def test_completed_journals_replay_across_drivers(tmp_path):
    """Full-run journals are byte-compatible in both directions (headers
    included: same meta, same collection hash, same options encoding)."""
    graphs = molecule_collection(14, seed=37)
    old_journal = tmp_path / "old.jsonl"
    new_journal = tmp_path / "new.jsonl"
    old = legacy_gsim_join(graphs, TAU, checkpoint=old_journal)
    new = gsim_join(graphs, TAU, checkpoint=new_journal)
    assert_parity(new, old)

    replay_new = gsim_join(graphs, TAU, checkpoint=old_journal)
    replay_old = legacy_gsim_join(graphs, TAU, checkpoint=new_journal)
    assert replay_new.pairs == replay_old.pairs == old.pairs
    assert replay_new.stats.replayed_pairs == old.stats.cand1
    assert replay_old.stats.replayed_pairs == new.stats.cand1


# --------------------------------------- satellite: index completeness


@pytest.mark.parametrize("seed", [41, 43, 47])
@pytest.mark.parametrize("tau_max", [2, 3])
def test_index_query_finds_every_join_pair(seed, tau_max):
    """Property: each pair the self-join reports at tau must come back
    from ``index.query(r, tau)`` for any ``tau_max >= tau``."""
    graphs = molecule_collection(14, seed=seed)
    index = GSimIndex(graphs, tau_max=tau_max)
    by_id = {g.graph_id: g for g in graphs}
    for tau in range(tau_max + 1):
        result = gsim_join(graphs, tau)
        for r_id, s_id in result.pairs:
            matches = {m for m, _ in index.query(by_id[r_id], tau)}
            assert s_id in matches, (tau, r_id, s_id)
            matches = {m for m, _ in index.query(by_id[s_id], tau)}
            assert r_id in matches, (tau, s_id, r_id)
