"""Deprecation policy for the old ``repro.core`` q-gram shim modules.

``repro.core.qgrams`` / ``mismatch`` / ``minedit`` / ``label_filter``
re-export from :mod:`repro.grams` and warn on import.  Two invariants:
importing a shim raises under ``-W error::DeprecationWarning``, and no
internal module does (i.e. the library itself is fully migrated off the
shims).  Both run in subprocesses so module caching in this test
process cannot mask a warning.
"""

import subprocess
import sys
from pathlib import Path

import pytest

SRC = str(Path(__file__).parent.parent / "src")

SHIMS = [
    "repro.core.qgrams",
    "repro.core.mismatch",
    "repro.core.minedit",
    "repro.core.label_filter",
]

#: Every package/module a user could reasonably import; none of them
#: may pull in a deprecated shim.
INTERNAL_IMPORTS = [
    "repro",
    "repro.core",
    "repro.core.join",
    "repro.core.parallel",
    "repro.core.search",
    "repro.core.verify",
    "repro.engine",
    "repro.engine.executor",
    "repro.engine.parallel",
    "repro.engine.plan",
    "repro.grams",
    "repro.ged",
    "repro.baselines",
    "repro.reporting",
    "repro.analysis",
    "repro.cli",
]


def _run(code):
    return subprocess.run(
        [sys.executable, "-W", "error::DeprecationWarning", "-c", code],
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
        timeout=120,
    )


@pytest.mark.parametrize("shim", SHIMS)
def test_importing_shim_warns(shim):
    proc = _run(f"import {shim}")
    assert proc.returncode != 0
    assert "DeprecationWarning" in proc.stderr
    assert "repro.grams" in proc.stderr  # the message names the new home


def test_internal_modules_never_import_shims():
    code = "; ".join(f"import {module}" for module in INTERNAL_IMPORTS)
    proc = _run(code)
    assert proc.returncode == 0, proc.stderr


def test_shim_reexports_match_new_home():
    """The shims must stay faithful: same objects, not copies."""
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        from repro.core import label_filter, minedit, mismatch, qgrams
    import repro.grams.labels
    import repro.grams.minedit
    import repro.grams.mismatch
    import repro.grams.qgrams

    for shim, home in [
        (qgrams, repro.grams.qgrams),
        (mismatch, repro.grams.mismatch),
        (minedit, repro.grams.minedit),
        (label_filter, repro.grams.labels),
    ]:
        for name in shim.__all__:
            assert getattr(shim, name) is getattr(home, name)
