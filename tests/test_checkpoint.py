"""Checkpoint/resume tests: a join killed mid-run resumes bit-identically.

The hard case runs in a sacrificial subprocess that ``os._exit(1)``\\ s
mid-verification (via the ``kill`` fault), leaving a write-through
journal behind; the parent resumes from that journal and must produce
exactly the result of an uninterrupted run, on both the interned and
the object-key pipeline.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.join import GSimJoinOptions, gsim_join, gsim_join_rs
from repro.core.parallel import gsim_join_parallel
from repro.exceptions import CheckpointError, InjectedFaultError, ParameterError
from repro.graph import assign_ids, load_graphs, save_graphs
from repro.runtime import FaultPlan
from repro.runtime.journal import JoinJournal, VerificationRecord, replace_file

from .test_join import molecule_collection

SRC = str(Path(__file__).parent.parent / "src")
TAU = 2
KILL_AT = 5

DRIVER = """
import sys
from repro.core.join import GSimJoinOptions, gsim_join
from repro.graph import assign_ids, load_graphs
from repro.runtime import FaultPlan

collection, checkpoint, interned = sys.argv[1], sys.argv[2], sys.argv[3] == "1"
graphs = assign_ids(load_graphs(collection))
gsim_join(
    graphs,
    {tau},
    options=GSimJoinOptions(interned=interned),
    checkpoint=checkpoint,
    fault=FaultPlan("kill", at={kill_at}),
)
""".format(tau=TAU, kill_at=KILL_AT)

RS_DRIVER = """
import sys
from repro.core.join import GSimJoinOptions, gsim_join_rs
from repro.graph import assign_ids, load_graphs
from repro.runtime import FaultPlan

outer, inner, checkpoint, interned = (
    sys.argv[1], sys.argv[2], sys.argv[3], sys.argv[4] == "1"
)
gsim_join_rs(
    assign_ids(load_graphs(outer)),
    assign_ids(load_graphs(inner)),
    {tau},
    options=GSimJoinOptions(interned=interned),
    checkpoint=checkpoint,
    fault=FaultPlan("kill", at={kill_at}),
)
""".format(tau=TAU, kill_at=KILL_AT)


def assert_same_result(resumed, clean):
    assert resumed.pairs == clean.pairs
    assert resumed.undecided == clean.undecided
    for field in ("cand1", "cand2", "results", "ged_calls",
                  "ged_expansions", "undecided", "pruned_by_count",
                  "pruned_by_global_label", "pruned_by_local_label"):
        assert getattr(resumed.stats, field) == getattr(clean.stats, field)


@pytest.fixture
def collection(tmp_path):
    path = tmp_path / "graphs.txt"
    save_graphs(molecule_collection(20, seed=23), path)
    return path


@pytest.mark.parametrize("interned", [True, False])
class TestKilledJoinResumes:
    def test_subprocess_kill_then_resume(self, collection, tmp_path, interned):
        journal = tmp_path / "join.jsonl"
        proc = subprocess.run(
            [sys.executable, "-c", DRIVER, str(collection), str(journal),
             "1" if interned else "0"],
            env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
            capture_output=True,
            timeout=120,
        )
        # The injected kill is an os._exit(1): no traceback, just death.
        assert proc.returncode == 1
        assert journal.exists()

        graphs = assign_ids(load_graphs(collection))
        options = GSimJoinOptions(interned=interned)
        clean = gsim_join(graphs, TAU, options=options)
        resumed = gsim_join(graphs, TAU, options=options, checkpoint=journal)
        assert_same_result(resumed, clean)
        # The kill fired at verification KILL_AT, after KILL_AT - 1
        # records had been flushed — all of them must be replayed.
        assert resumed.stats.replayed_pairs == KILL_AT - 1


@pytest.mark.parametrize("interned", [True, False])
class TestKilledRSJoinResumes:
    def test_subprocess_kill_then_resume(self, tmp_path, interned):
        outer_path = tmp_path / "outer.txt"
        inner_path = tmp_path / "inner.txt"
        save_graphs(molecule_collection(12, seed=47), outer_path)
        save_graphs(molecule_collection(12, seed=53), inner_path)
        journal = tmp_path / "rs.jsonl"
        proc = subprocess.run(
            [sys.executable, "-c", RS_DRIVER, str(outer_path), str(inner_path),
             str(journal), "1" if interned else "0"],
            env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
            capture_output=True,
            timeout=120,
        )
        assert proc.returncode == 1
        assert journal.exists()

        outer = assign_ids(load_graphs(outer_path))
        inner = assign_ids(load_graphs(inner_path))
        options = GSimJoinOptions(interned=interned)
        clean = gsim_join_rs(outer, inner, TAU, options=options)
        resumed = gsim_join_rs(
            outer, inner, TAU, options=options, checkpoint=journal
        )
        assert_same_result(resumed, clean)
        assert resumed.stats.replayed_pairs == KILL_AT - 1

    def test_rs_journal_guards_against_swapped_sides(self, tmp_path, interned):
        outer = molecule_collection(12, seed=47)
        inner = molecule_collection(12, seed=53)
        options = GSimJoinOptions(interned=interned)
        journal = tmp_path / "rs.jsonl"
        gsim_join_rs(outer, inner, TAU, options=options, checkpoint=journal)
        with pytest.raises(CheckpointError, match="different run"):
            gsim_join_rs(inner, outer, TAU, options=options, checkpoint=journal)


@pytest.mark.parametrize("interned", [True, False])
class TestInProcessFaultResumes:
    def test_raise_fault_then_resume(self, tmp_path, interned):
        graphs = molecule_collection(20, seed=23)
        options = GSimJoinOptions(interned=interned)
        journal = tmp_path / "join.jsonl"
        with pytest.raises(InjectedFaultError):
            gsim_join(graphs, TAU, options=options, checkpoint=journal,
                      fault=FaultPlan("raise", at=KILL_AT))
        clean = gsim_join(graphs, TAU, options=options)
        resumed = gsim_join(graphs, TAU, options=options, checkpoint=journal)
        assert_same_result(resumed, clean)
        assert resumed.stats.replayed_pairs == KILL_AT - 1


class TestResumeGuards:
    def test_resume_with_different_tau_refused(self, tmp_path):
        graphs = molecule_collection(12, seed=29)
        journal = tmp_path / "join.jsonl"
        gsim_join(graphs, 1, checkpoint=journal)
        with pytest.raises(CheckpointError, match="different run"):
            gsim_join(graphs, 2, checkpoint=journal)

    def test_resume_with_different_collection_refused(self, tmp_path):
        journal = tmp_path / "join.jsonl"
        gsim_join(molecule_collection(12, seed=29), 1, checkpoint=journal)
        with pytest.raises(CheckpointError, match="different run"):
            gsim_join(molecule_collection(12, seed=31), 1, checkpoint=journal)

    def test_completed_run_resumes_as_pure_replay(self, tmp_path):
        graphs = molecule_collection(16, seed=37)
        journal = tmp_path / "join.jsonl"
        first = gsim_join(graphs, TAU, checkpoint=journal)
        second = gsim_join(graphs, TAU, checkpoint=journal)
        assert_same_result(second, first)
        assert second.stats.replayed_pairs == first.stats.cand1
        assert first.stats.replayed_pairs == 0


class TestJournalDurability:
    """The fsync-interval knob and the atomic header publication."""

    META = {"kind": "test", "tau": 2}

    def test_fsync_interval_validation(self, tmp_path):
        with pytest.raises(ParameterError, match="fsync_interval"):
            JoinJournal.open(tmp_path / "j.jsonl", self.META, fsync_interval=0)

    def test_fsync_interval_journal_replays_identically(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with JoinJournal.open(path, self.META, fsync_interval=1) as journal:
            journal.append(VerificationRecord(i=1, j=0, is_result=True))
            journal.append(VerificationRecord(i=2, j=0, is_result=False,
                                              pruned_by="count"))
        reopened = JoinJournal.open(path, self.META)
        assert reopened.completed[(1, 0)].is_result
        assert reopened.completed[(2, 0)].pruned_by == "count"
        reopened.close()

    def test_torn_final_line_is_dropped_and_truncated(self, tmp_path):
        """A record cut before its newline (power loss mid-write) is
        discarded on reopen — its pair simply re-verifies — and the
        file is repaired so later appends start on a clean line."""
        path = tmp_path / "j.jsonl"
        with JoinJournal.open(path, self.META) as journal:
            journal.append(VerificationRecord(i=1, j=0, is_result=True))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"i": 2, "j": 0, "is_res')
        reopened = JoinJournal.open(path, self.META)
        assert set(reopened.completed) == {(1, 0)}
        reopened.close()
        assert path.read_text().endswith("\n")

    def test_header_published_atomically(self, tmp_path):
        """Creating a journal leaves no tempfile droppings, and the
        one-line header is already a complete, resumable journal."""
        path = tmp_path / "j.jsonl"
        JoinJournal.open(path, self.META).close()
        assert [p.name for p in tmp_path.iterdir()] == ["j.jsonl"]
        JoinJournal.open(path, self.META).close()  # resumes cleanly

    def test_replace_file_survives_failed_write(self, tmp_path):
        """replace_file keeps the old contents when publication fails
        partway and removes its temporary."""
        path = tmp_path / "doc.json"
        replace_file(str(path), "old\n")
        with pytest.raises(TypeError):
            replace_file(str(path), 42)  # not a str: write() blows up
        assert path.read_text() == "old\n"
        assert [p.name for p in tmp_path.iterdir()] == ["doc.json"]


class TestParallelCheckpoint:
    def test_parallel_writes_and_replays_journal(self, tmp_path):
        graphs = molecule_collection(20, seed=41)
        journal = tmp_path / "join.jsonl"
        first = gsim_join_parallel(
            graphs, TAU, workers=2, chunk_size=4, checkpoint=journal
        )
        second = gsim_join_parallel(
            graphs, TAU, workers=2, chunk_size=4, checkpoint=journal
        )
        assert_same_result(second, first)
        assert second.stats.replayed_pairs == first.stats.cand1

    def test_sequential_journal_resumes_parallel_and_back(self, tmp_path):
        """The journal is executor-agnostic: records only depend on the
        deterministic scan, so sequential and parallel runs share it."""
        graphs = molecule_collection(20, seed=43)
        journal = tmp_path / "join.jsonl"
        clean = gsim_join(graphs, TAU)
        first = gsim_join(graphs, TAU, checkpoint=journal)
        resumed = gsim_join_parallel(
            graphs, TAU, workers=2, chunk_size=4, checkpoint=journal
        )
        assert_same_result(resumed, clean)
        assert resumed.stats.replayed_pairs == first.stats.cand1
