"""Checkpoint/resume tests: a join killed mid-run resumes bit-identically.

The hard case runs in a sacrificial subprocess that ``os._exit(1)``\\ s
mid-verification (via the ``kill`` fault), leaving a write-through
journal behind; the parent resumes from that journal and must produce
exactly the result of an uninterrupted run, on both the interned and
the object-key pipeline.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.join import GSimJoinOptions, gsim_join, gsim_join_rs
from repro.core.parallel import gsim_join_parallel
from repro.exceptions import CheckpointError, InjectedFaultError
from repro.graph import assign_ids, load_graphs, save_graphs
from repro.runtime import FaultPlan

from .test_join import molecule_collection

SRC = str(Path(__file__).parent.parent / "src")
TAU = 2
KILL_AT = 5

DRIVER = """
import sys
from repro.core.join import GSimJoinOptions, gsim_join
from repro.graph import assign_ids, load_graphs
from repro.runtime import FaultPlan

collection, checkpoint, interned = sys.argv[1], sys.argv[2], sys.argv[3] == "1"
graphs = assign_ids(load_graphs(collection))
gsim_join(
    graphs,
    {tau},
    options=GSimJoinOptions(interned=interned),
    checkpoint=checkpoint,
    fault=FaultPlan("kill", at={kill_at}),
)
""".format(tau=TAU, kill_at=KILL_AT)

RS_DRIVER = """
import sys
from repro.core.join import GSimJoinOptions, gsim_join_rs
from repro.graph import assign_ids, load_graphs
from repro.runtime import FaultPlan

outer, inner, checkpoint, interned = (
    sys.argv[1], sys.argv[2], sys.argv[3], sys.argv[4] == "1"
)
gsim_join_rs(
    assign_ids(load_graphs(outer)),
    assign_ids(load_graphs(inner)),
    {tau},
    options=GSimJoinOptions(interned=interned),
    checkpoint=checkpoint,
    fault=FaultPlan("kill", at={kill_at}),
)
""".format(tau=TAU, kill_at=KILL_AT)


def assert_same_result(resumed, clean):
    assert resumed.pairs == clean.pairs
    assert resumed.undecided == clean.undecided
    for field in ("cand1", "cand2", "results", "ged_calls",
                  "ged_expansions", "undecided", "pruned_by_count",
                  "pruned_by_global_label", "pruned_by_local_label"):
        assert getattr(resumed.stats, field) == getattr(clean.stats, field)


@pytest.fixture
def collection(tmp_path):
    path = tmp_path / "graphs.txt"
    save_graphs(molecule_collection(20, seed=23), path)
    return path


@pytest.mark.parametrize("interned", [True, False])
class TestKilledJoinResumes:
    def test_subprocess_kill_then_resume(self, collection, tmp_path, interned):
        journal = tmp_path / "join.jsonl"
        proc = subprocess.run(
            [sys.executable, "-c", DRIVER, str(collection), str(journal),
             "1" if interned else "0"],
            env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
            capture_output=True,
            timeout=120,
        )
        # The injected kill is an os._exit(1): no traceback, just death.
        assert proc.returncode == 1
        assert journal.exists()

        graphs = assign_ids(load_graphs(collection))
        options = GSimJoinOptions(interned=interned)
        clean = gsim_join(graphs, TAU, options=options)
        resumed = gsim_join(graphs, TAU, options=options, checkpoint=journal)
        assert_same_result(resumed, clean)
        # The kill fired at verification KILL_AT, after KILL_AT - 1
        # records had been flushed — all of them must be replayed.
        assert resumed.stats.replayed_pairs == KILL_AT - 1


@pytest.mark.parametrize("interned", [True, False])
class TestKilledRSJoinResumes:
    def test_subprocess_kill_then_resume(self, tmp_path, interned):
        outer_path = tmp_path / "outer.txt"
        inner_path = tmp_path / "inner.txt"
        save_graphs(molecule_collection(12, seed=47), outer_path)
        save_graphs(molecule_collection(12, seed=53), inner_path)
        journal = tmp_path / "rs.jsonl"
        proc = subprocess.run(
            [sys.executable, "-c", RS_DRIVER, str(outer_path), str(inner_path),
             str(journal), "1" if interned else "0"],
            env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
            capture_output=True,
            timeout=120,
        )
        assert proc.returncode == 1
        assert journal.exists()

        outer = assign_ids(load_graphs(outer_path))
        inner = assign_ids(load_graphs(inner_path))
        options = GSimJoinOptions(interned=interned)
        clean = gsim_join_rs(outer, inner, TAU, options=options)
        resumed = gsim_join_rs(
            outer, inner, TAU, options=options, checkpoint=journal
        )
        assert_same_result(resumed, clean)
        assert resumed.stats.replayed_pairs == KILL_AT - 1

    def test_rs_journal_guards_against_swapped_sides(self, tmp_path, interned):
        outer = molecule_collection(12, seed=47)
        inner = molecule_collection(12, seed=53)
        options = GSimJoinOptions(interned=interned)
        journal = tmp_path / "rs.jsonl"
        gsim_join_rs(outer, inner, TAU, options=options, checkpoint=journal)
        with pytest.raises(CheckpointError, match="different run"):
            gsim_join_rs(inner, outer, TAU, options=options, checkpoint=journal)


@pytest.mark.parametrize("interned", [True, False])
class TestInProcessFaultResumes:
    def test_raise_fault_then_resume(self, tmp_path, interned):
        graphs = molecule_collection(20, seed=23)
        options = GSimJoinOptions(interned=interned)
        journal = tmp_path / "join.jsonl"
        with pytest.raises(InjectedFaultError):
            gsim_join(graphs, TAU, options=options, checkpoint=journal,
                      fault=FaultPlan("raise", at=KILL_AT))
        clean = gsim_join(graphs, TAU, options=options)
        resumed = gsim_join(graphs, TAU, options=options, checkpoint=journal)
        assert_same_result(resumed, clean)
        assert resumed.stats.replayed_pairs == KILL_AT - 1


class TestResumeGuards:
    def test_resume_with_different_tau_refused(self, tmp_path):
        graphs = molecule_collection(12, seed=29)
        journal = tmp_path / "join.jsonl"
        gsim_join(graphs, 1, checkpoint=journal)
        with pytest.raises(CheckpointError, match="different run"):
            gsim_join(graphs, 2, checkpoint=journal)

    def test_resume_with_different_collection_refused(self, tmp_path):
        journal = tmp_path / "join.jsonl"
        gsim_join(molecule_collection(12, seed=29), 1, checkpoint=journal)
        with pytest.raises(CheckpointError, match="different run"):
            gsim_join(molecule_collection(12, seed=31), 1, checkpoint=journal)

    def test_completed_run_resumes_as_pure_replay(self, tmp_path):
        graphs = molecule_collection(16, seed=37)
        journal = tmp_path / "join.jsonl"
        first = gsim_join(graphs, TAU, checkpoint=journal)
        second = gsim_join(graphs, TAU, checkpoint=journal)
        assert_same_result(second, first)
        assert second.stats.replayed_pairs == first.stats.cand1
        assert first.stats.replayed_pairs == 0


class TestParallelCheckpoint:
    def test_parallel_writes_and_replays_journal(self, tmp_path):
        graphs = molecule_collection(20, seed=41)
        journal = tmp_path / "join.jsonl"
        first = gsim_join_parallel(
            graphs, TAU, workers=2, chunk_size=4, checkpoint=journal
        )
        second = gsim_join_parallel(
            graphs, TAU, workers=2, chunk_size=4, checkpoint=journal
        )
        assert_same_result(second, first)
        assert second.stats.replayed_pairs == first.stats.cand1

    def test_sequential_journal_resumes_parallel_and_back(self, tmp_path):
        """The journal is executor-agnostic: records only depend on the
        deterministic scan, so sequential and parallel runs share it."""
        graphs = molecule_collection(20, seed=43)
        journal = tmp_path / "join.jsonl"
        clean = gsim_join(graphs, TAU)
        first = gsim_join(graphs, TAU, checkpoint=journal)
        resumed = gsim_join_parallel(
            graphs, TAU, workers=2, chunk_size=4, checkpoint=journal
        )
        assert_same_result(resumed, clean)
        assert resumed.stats.replayed_pairs == first.stats.cand1
