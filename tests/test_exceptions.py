"""Tests for the exception hierarchy and error-path consistency."""

import pytest

from repro.exceptions import (
    CheckpointError,
    GraphError,
    GraphFormatError,
    InjectedFaultError,
    ParameterError,
    ReproError,
    SearchExhaustedError,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc_type in (
            GraphError,
            GraphFormatError,
            ParameterError,
            SearchExhaustedError,
            CheckpointError,
            InjectedFaultError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_repro_error_is_exception(self):
        assert issubclass(ReproError, Exception)

    def test_single_except_catches_library_errors(self):
        from repro.graph.graph import Graph

        caught = []
        for action in (
            lambda: Graph().vertex_label(0),
            lambda: __import__("repro.graph.io", fromlist=["loads_graphs"]).loads_graphs("x y"),
        ):
            try:
                action()
            except ReproError as exc:
                caught.append(type(exc))
        assert caught == [GraphError, GraphFormatError]


class TestParameterValidationSurface:
    """Every public algorithm must reject out-of-domain parameters with
    ParameterError (not assertion failures or silent misbehaviour)."""

    def test_core_entry_points(self):
        from repro import (
            GSimIndex,
            gsim_join,
            gsim_join_parallel,
            naive_join,
        )
        from repro.core import extract_qgrams
        from repro.graph.graph import Graph

        cases = [
            lambda: gsim_join([], tau=-1),
            lambda: gsim_join_parallel([], tau=1, workers=0),
            lambda: naive_join([], tau=-2),
            lambda: extract_qgrams(Graph(), -1),
            lambda: GSimIndex(tau_max=-1),
        ]
        for case in cases:
            with pytest.raises(ParameterError):
                case()

    def test_ged_entry_points(self):
        from repro.ged import beam_search_ged, graph_edit_distance
        from repro.graph.graph import Graph

        g = Graph()
        with pytest.raises(ParameterError):
            graph_edit_distance(g, g, threshold=-1)
        with pytest.raises(ParameterError):
            beam_search_ged(g, g, beam_width=0)
