"""Tests for the SARIF 2.1.0 reporter.

Reports are validated against a vendored subset of the OASIS SARIF
2.1.0 schema (``tests/data/sarif-2.1.0-subset.schema.json``) so the
suite works offline: the subset mirrors the published schema's
constraints for the elements repro-analysis emits (run / tool driver /
rule table / results with physical locations).
"""

import json
from pathlib import Path

import jsonschema
import pytest

from repro.analysis.cli import main
from repro.analysis.engine import Finding, run_analysis
from repro.analysis.registry import all_rules
from repro.analysis.reporters import SARIF_SCHEMA_URI, render_sarif

FIXTURES = Path(__file__).parent / "fixtures"
SCHEMA = json.loads(
    (Path(__file__).parent / "data" / "sarif-2.1.0-subset.schema.json").read_text()
)


def validate(document):
    """Validate a SARIF document (dict or JSON text) against the schema."""
    if isinstance(document, str):
        document = json.loads(document)
    jsonschema.validate(document, SCHEMA)
    return document


def test_sarif_report_with_findings_validates():
    findings = run_analysis([FIXTURES / "program" / "fork_bad.py"])
    assert findings
    doc = validate(render_sarif(findings))
    results = doc["runs"][0]["results"]
    assert len(results) == len(findings)


def test_sarif_empty_report_validates_and_keeps_rule_table():
    doc = validate(render_sarif([]))
    run = doc["runs"][0]
    assert run["results"] == []
    listed = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    # A clean run still documents every registered rule plus the
    # engine-synthesized syntax-error check.
    assert listed == set(all_rules()) | {"syntax-error"}


def test_sarif_header_fields():
    doc = validate(render_sarif([]))
    assert doc["version"] == "2.1.0"
    assert doc["$schema"] == SARIF_SCHEMA_URI
    assert "sarif" in SARIF_SCHEMA_URI
    assert doc["runs"][0]["tool"]["driver"]["name"] == "repro-analysis"


def test_sarif_result_shape_and_rule_index():
    findings = run_analysis([FIXTURES / "program" / "taint_bad.py"])
    doc = validate(render_sarif(findings))
    run = doc["runs"][0]
    rule_ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
    for result, finding in zip(run["results"], findings):
        assert result["ruleId"] == finding.rule
        assert rule_ids[result["ruleIndex"]] == finding.rule
        assert result["message"]["text"] == finding.message
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("taint_bad.py")
        assert location["region"]["startLine"] == finding.line


def test_sarif_syntax_error_reports_as_error_level():
    findings = [Finding(path="x.py", line=0, rule="syntax-error", message="boom")]
    doc = validate(render_sarif(findings))
    result = doc["runs"][0]["results"][0]
    assert result["level"] == "error"
    # Line 0 (whole-file findings) is clamped to SARIF's 1-based regions.
    assert result["locations"][0]["physicalLocation"]["region"]["startLine"] == 1
    other = validate(render_sarif(run_analysis([FIXTURES / "program" / "fork_bad.py"])))
    assert {r["level"] for r in other["runs"][0]["results"]} == {"warning"}


def test_cli_writes_valid_sarif(tmp_path, capsys):
    out_file = tmp_path / "report.sarif"
    code = main(
        [
            str(FIXTURES / "program" / "budget_bad.py"),
            "--format",
            "sarif",
            "--output",
            str(out_file),
        ]
    )
    assert code == 1  # findings present
    doc = validate(out_file.read_text())
    assert doc["runs"][0]["results"]
    assert str(out_file) in capsys.readouterr().out


def test_cli_sarif_to_stdout(capsys):
    code = main(
        [str(FIXTURES / "program" / "budget_ok.py"), "--format", "sarif"]
    )
    assert code == 0
    validate(capsys.readouterr().out)


def test_subset_schema_rejects_malformed_documents():
    """The vendored schema has teeth: broken documents must fail."""
    good = json.loads(render_sarif([]))
    for mutate in (
        lambda d: d.pop("runs"),
        lambda d: d.__setitem__("version", "2.0.0"),
        lambda d: d["runs"][0].pop("tool"),
        lambda d: d["runs"][0]["tool"]["driver"].pop("name"),
    ):
        broken = json.loads(json.dumps(good))
        mutate(broken)
        with pytest.raises(jsonschema.ValidationError):
            jsonschema.validate(broken, SCHEMA)
