"""Tests for the global document-frequency q-gram ordering."""

from repro.core import build_ordering, extract_qgrams

from .conftest import path_graph


class TestDocumentFrequency:
    def test_counts_graphs_not_instances(self):
        # A-A occurs twice inside g1 but only in one graph.
        g1 = path_graph(["A", "A", "A"])
        g2 = path_graph(["A", "B"])
        g3 = path_graph(["A", "B"])
        profiles = [extract_qgrams(g, 1) for g in (g1, g2, g3)]
        ordering = build_ordering(profiles)
        df = ordering.document_frequency
        assert df[("A", "x", "A")] == 1
        assert df[("A", "x", "B")] == 2

    def test_rare_grams_sort_first(self):
        g1 = path_graph(["A", "A", "B"])
        g2 = path_graph(["A", "B"])
        profiles = [extract_qgrams(g, 1) for g in (g1, g2)]
        ordering = build_ordering(profiles)
        sorted_grams = ordering.sort_profile(profiles[0])
        # A-A appears in 1 graph, A-B in 2 -> A-A first.
        assert sorted_grams[0].key == ("A", "x", "A")
        assert sorted_grams[1].key == ("A", "x", "B")

    def test_sort_profile_mutates_in_place(self):
        g = path_graph(["A", "A", "B"])
        profile = extract_qgrams(g, 1)
        ordering = build_ordering([profile])
        returned = ordering.sort_profile(profile)
        assert returned is profile.grams

    def test_unknown_keys_sort_last(self):
        g = path_graph(["A", "B"])
        ordering = build_ordering([extract_qgrams(g, 1)])
        known = ordering.sort_token(("A", "x", "B"))
        unknown = ordering.sort_token(("Z", "z", "Z"))
        assert known < unknown

    def test_tokens_are_deterministic_and_key_injective(self):
        g1 = path_graph(["A", "B"])
        g2 = path_graph(["C", "D"])
        ordering = build_ordering([extract_qgrams(g, 1) for g in (g1, g2)])
        t1 = ordering.sort_token(("A", "x", "B"))
        t2 = ordering.sort_token(("C", "x", "D"))
        # Same document frequency, distinct keys -> distinct tokens
        # (prefix filtering soundness relies on a total order over keys).
        assert t1 != t2
        assert ordering.sort_token(("A", "x", "B")) == t1
