"""Tests for directed graph support — the paper's footnote-1 extension.

Everything in the core pipeline (paths, q-grams, filters, A*, joins)
honours ``Graph(directed=True)``; the κ-AT/AppFull baselines are
undirected-only like their original publications and must refuse.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    GSimIndex,
    GSimJoinOptions,
    assign_ids,
    gsim_join,
    naive_join,
)
from repro.baselines import appfull_join, kat_join
from repro.core import extract_qgrams
from repro.exceptions import GraphError, ParameterError
from repro.ged import (
    beam_search_ged,
    brute_force_ged,
    graph_edit_distance,
    induced_edit_cost,
)
from repro.graph import are_isomorphic, loads_graphs, dumps_graphs, perturb
from repro.graph.generators import random_labeled_graph
from repro.graph.graph import Graph
from repro.graph.gxl import dumps_gxl, loads_gxl
from repro.graph.paths import count_simple_paths

VERTEX_LABELS = ["A", "B", "C"]
EDGE_LABELS = ["x", "y"]


def digraph(vertex_labels, edges, graph_id=None) -> Graph:
    g = Graph(graph_id, directed=True)
    for v, label in enumerate(vertex_labels):
        g.add_vertex(v, label)
    for u, v, label in edges:
        g.add_edge(u, v, label)
    return g


@st.composite
def small_digraphs(draw, max_vertices=4):
    n = draw(st.integers(min_value=0, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=n * (n - 1)))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = random.Random(seed)
    return random_labeled_graph(
        rng, n, m, VERTEX_LABELS, EDGE_LABELS, directed=True
    )


@st.composite
def digraph_pairs_within(draw, tau_max=2, max_vertices=4):
    g = draw(small_digraphs(max_vertices=max_vertices))
    k = draw(st.integers(min_value=0, max_value=tau_max))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = random.Random(seed)
    return g, perturb(g, k, rng, VERTEX_LABELS, EDGE_LABELS), k


class TestDirectedGraphType:
    def test_directional_edges(self):
        g = digraph(["A", "B"], [(0, 1, "x")])
        assert g.is_directed
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)
        assert g.out_degree(0) == 1 and g.in_degree(0) == 0
        assert g.degree(1) == 1

    def test_antiparallel_edges_allowed(self):
        g = digraph(["A", "B"], [(0, 1, "x"), (1, 0, "y")])
        assert g.num_edges == 2
        assert g.edge_label(0, 1) == "x"
        assert g.edge_label(1, 0) == "y"

    def test_parallel_edge_rejected(self):
        g = digraph(["A", "B"], [(0, 1, "x")])
        with pytest.raises(GraphError, match="already exists"):
            g.add_edge(0, 1, "y")

    def test_remove_vertex_cleans_both_directions(self):
        g = digraph(["A", "B", "C"], [(0, 1, "x"), (2, 0, "y")])
        g.remove_vertex(0)
        assert g.num_edges == 0
        assert g.num_vertices == 2

    def test_remove_and_relabel_edge(self):
        g = digraph(["A", "B"], [(0, 1, "x")])
        g.set_edge_label(0, 1, "y")
        assert g.edge_label(0, 1) == "y"
        assert list(g.in_neighbor_items(1)) == [(0, "y")]
        g.remove_edge(0, 1)
        assert g.num_edges == 0
        assert list(g.in_neighbors(1)) == []

    def test_neighbors_views(self):
        g = digraph(["A", "B", "C"], [(0, 1, "x"), (2, 0, "y")])
        assert sorted(g.neighbors(0)) == [1]
        assert sorted(g.in_neighbors(0)) == [2]
        assert sorted(g.all_neighbors(0)) == [1, 2]

    def test_weak_connectivity(self):
        g = digraph(["A", "B", "C"], [(0, 1, "x")])
        comps = sorted(g.connected_components(), key=len)
        assert comps == [{2}, {0, 1}]

    def test_copy_and_subgraph_preserve_directedness(self):
        g = digraph(["A", "B", "C"], [(0, 1, "x"), (1, 2, "y")])
        assert g.copy().is_directed
        sub = g.subgraph([0, 1])
        assert sub.is_directed and sub.has_edge(0, 1) and not sub.has_edge(1, 0)

    def test_not_equal_to_undirected_twin(self):
        d = digraph(["A"], [])
        u = Graph()
        u.add_vertex(0, "A")
        assert d != u

    def test_repr_shows_digraph(self):
        assert "DiGraph" in repr(digraph(["A"], []))


class TestDirectedPathsAndQGrams:
    def test_paths_follow_direction(self):
        g = digraph(["A", "B", "C"], [(0, 1, "x"), (1, 2, "x")])
        assert count_simple_paths(g, 1) == 2
        assert count_simple_paths(g, 2) == 1  # only 0 -> 1 -> 2

    def test_opposite_chain_has_no_long_path(self):
        g = digraph(["A", "B", "C"], [(1, 0, "x"), (1, 2, "x")])
        assert count_simple_paths(g, 2) == 0  # 1 is a source both ways

    def test_directed_keys_keep_orientation(self):
        forward = digraph(["A", "B"], [(0, 1, "x")])
        backward = digraph(["A", "B"], [(1, 0, "x")])
        kf = list(extract_qgrams(forward, 1).key_counts)[0]
        kb = list(extract_qgrams(backward, 1).key_counts)[0]
        assert kf == ("A", "x", "B")
        assert kb == ("B", "x", "A")
        assert kf != kb

    def test_cycle_paths(self):
        g = digraph(["A", "B", "C"], [(0, 1, "x"), (1, 2, "x"), (2, 0, "x")])
        assert count_simple_paths(g, 1) == 3
        assert count_simple_paths(g, 2) == 3


class TestDirectedIsomorphism:
    def test_orientation_matters(self):
        a = digraph(["A", "B"], [(0, 1, "x")])
        b = digraph(["A", "B"], [(1, 0, "x")])
        assert not are_isomorphic(a, b)

    def test_relabeled_copy_isomorphic(self):
        g = digraph(["A", "B", "C"], [(0, 1, "x"), (2, 1, "y")])
        h = g.relabel_vertices({0: 10, 1: 11, 2: 12})
        assert are_isomorphic(g, h)

    def test_directed_vs_undirected_never_isomorphic(self):
        d = digraph(["A"], [])
        u = Graph()
        u.add_vertex(0, "A")
        assert not are_isomorphic(d, u)


class TestDirectedGed:
    def test_edge_reversal_costs_two(self):
        a = digraph(["A", "B"], [(0, 1, "x")])
        b = digraph(["A", "B"], [(1, 0, "x")])
        # Mapping A->A, B->B: delete 0->1, insert 1->0.
        assert graph_edit_distance(a, b) == 2

    def test_antiparallel_pair(self):
        a = digraph(["A", "A"], [(0, 1, "x")])
        b = digraph(["A", "A"], [(0, 1, "x"), (1, 0, "x")])
        assert graph_edit_distance(a, b) == 1

    def test_mixed_directedness_rejected(self):
        d = digraph(["A"], [])
        u = Graph()
        u.add_vertex(0, "A")
        with pytest.raises(ParameterError, match="directed"):
            graph_edit_distance(d, u)
        with pytest.raises(ParameterError, match="directed"):
            induced_edit_cost(d, u, {0: 0})

    @settings(max_examples=40, deadline=None)
    @given(digraph_pairs_within(tau_max=2, max_vertices=4))
    def test_astar_matches_brute_force(self, pair):
        r, s, _ = pair
        assert graph_edit_distance(r, s) == brute_force_ged(r, s)

    @settings(max_examples=20, deadline=None)
    @given(digraph_pairs_within(tau_max=2, max_vertices=4))
    def test_symmetry(self, pair):
        r, s, _ = pair
        assert graph_edit_distance(r, s) == graph_edit_distance(s, r)

    @settings(max_examples=20, deadline=None)
    @given(digraph_pairs_within(tau_max=2, max_vertices=4))
    def test_beam_search_upper_bounds(self, pair):
        r, s, _ = pair
        assert beam_search_ged(r, s, beam_width=4) >= brute_force_ged(r, s)


class TestDirectedJoins:
    def random_digraph_collection(self, seed, size=8):
        rng = random.Random(seed)
        graphs = []
        while len(graphs) < size:
            n = rng.randint(1, 5)
            m = rng.randint(0, n * (n - 1))
            g = random_labeled_graph(
                rng, n, m, VERTEX_LABELS, EDGE_LABELS, directed=True
            )
            graphs.append(g)
            if rng.random() < 0.5 and len(graphs) < size:
                graphs.append(
                    perturb(g, rng.randint(1, 2), rng, VERTEX_LABELS, EDGE_LABELS)
                )
        return assign_ids(graphs)

    @pytest.mark.parametrize("tau", [0, 1, 2])
    def test_gsimjoin_matches_naive_on_digraphs(self, tau):
        graphs = self.random_digraph_collection(seed=tau + 7)
        expected = naive_join(graphs, tau, use_size_filter=False).pair_set()
        for options in (
            GSimJoinOptions.basic(q=2),
            GSimJoinOptions.full(q=2),
            GSimJoinOptions.extended(q=2),
        ):
            got = gsim_join(graphs, tau, options=options).pair_set()
            assert got == expected

    @settings(max_examples=8, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=1, max_value=2),
    )
    def test_property_equivalence(self, seed, tau, q):
        graphs = self.random_digraph_collection(seed=seed)
        expected = naive_join(graphs, tau, use_size_filter=False).pair_set()
        got = gsim_join(graphs, tau, options=GSimJoinOptions.full(q=q)).pair_set()
        assert got == expected

    def test_mixed_collections_rejected(self):
        d = digraph(["A"], [], graph_id=0)
        u = Graph(1)
        u.add_vertex(0, "A")
        with pytest.raises(ParameterError, match="mix"):
            gsim_join([d, u], tau=1)

    def test_baselines_reject_directed(self):
        graphs = self.random_digraph_collection(seed=3, size=4)
        with pytest.raises(ParameterError, match="undirected"):
            kat_join(graphs, tau=1)
        with pytest.raises(ParameterError, match="undirected"):
            appfull_join(graphs, tau=1)

    def test_search_index_on_digraphs(self):
        graphs = self.random_digraph_collection(seed=5, size=10)
        index = GSimIndex(graphs, tau_max=2, options=GSimJoinOptions.full(q=2))
        from repro.ged import ged_within

        for query in graphs[:3]:
            got = {gid for gid, _ in index.query(query, tau=2)}
            expected = {
                g.graph_id
                for g in graphs
                if g.graph_id != query.graph_id and ged_within(query, g, 2)
            }
            assert got == expected


class TestDirectedSerialization:
    def test_text_round_trip(self):
        g = digraph(["A", "B"], [(1, 0, "x")], graph_id=0)
        back = loads_graphs(dumps_graphs([g]))[0]
        assert back.is_directed
        assert back.num_edges == 1
        # Orientation preserved: exactly one directed edge.
        (u, v, _), = list(back.edges())
        assert back.has_edge(u, v) and not back.has_edge(v, u)

    def test_gxl_round_trip(self):
        g = digraph(["A", "B"], [(0, 1, "x")], graph_id="d1")
        back = loads_gxl(dumps_gxl([g]))[0]
        assert back.is_directed
        assert back.num_edges == 1

    def test_gxl_edgemode_parsing(self):
        text = (
            "<gxl><graph id='g' edgemode='directed'>"
            "<node id='a'/><node id='b'/>"
            "<edge from='a' to='b'/></graph></gxl>"
        )
        g = loads_gxl(text)[0]
        assert g.is_directed
        assert g.has_edge("a", "b") and not g.has_edge("b", "a")
