"""Tests for the Hungarian algorithm substrate."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ParameterError
from repro.matching import assignment_cost, hungarian


class TestKnownInstances:
    def test_empty(self):
        assignment, total = hungarian([])
        assert assignment == [] and total == 0.0

    def test_one_by_one(self):
        assignment, total = hungarian([[7.0]])
        assert assignment == [0] and total == 7.0

    def test_identity_is_optimal(self):
        cost = [[0, 9, 9], [9, 0, 9], [9, 9, 0]]
        assignment, total = hungarian(cost)
        assert assignment == [0, 1, 2]
        assert total == 0

    def test_classic_3x3(self):
        cost = [[4, 1, 3], [2, 0, 5], [3, 2, 2]]
        _, total = hungarian(cost)
        assert total == 5  # 1 + 2 + 2

    def test_rectangular_rows_less_than_cols(self):
        cost = [[10, 1, 10], [1, 10, 10]]
        assignment, total = hungarian(cost)
        assert total == 2
        assert sorted(assignment) == [0, 1]

    def test_negative_costs(self):
        cost = [[-5, 0], [0, -5]]
        _, total = hungarian(cost)
        assert total == -10

    def test_more_rows_than_cols_rejected(self):
        with pytest.raises(ParameterError, match="rows <= cols"):
            hungarian([[1], [2]])

    def test_ragged_rejected(self):
        with pytest.raises(ParameterError, match="ragged"):
            hungarian([[1, 2], [3]])


class TestAgainstScipy:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=1, max_value=7),
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_matches_linear_sum_assignment(self, n, extra, seed):
        scipy_optimize = pytest.importorskip(
            "scipy.optimize", exc_type=ImportError
        )
        linear_sum_assignment = scipy_optimize.linear_sum_assignment

        rng = random.Random(seed)
        m = n + extra
        cost = [[rng.randint(0, 20) for _ in range(m)] for _ in range(n)]
        _, ours = hungarian(cost)
        rows, cols = linear_sum_assignment(cost)
        expected = sum(cost[i][j] for i, j in zip(rows, cols))
        assert ours == expected

    def test_assignment_is_valid_permutation(self):
        rng = random.Random(99)
        cost = [[rng.random() for _ in range(6)] for _ in range(6)]
        assignment, total = hungarian(cost)
        assert sorted(assignment) == list(range(6))
        assert total == pytest.approx(sum(cost[i][assignment[i]] for i in range(6)))

    def test_assignment_cost_helper(self):
        assert assignment_cost([[1, 2], [2, 1]]) == 2
