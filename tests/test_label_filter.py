"""Tests for global and local label filtering (Section V)."""

from collections import Counter

from hypothesis import given, settings

from repro.core import (
    compare_qgrams,
    connected_gram_components,
    extract_qgrams,
    gamma,
    global_label_lower_bound,
    local_label_lower_bound,
)
from repro.datasets import figure1_graphs, figure4_graphs
from repro.ged import graph_edit_distance

from .conftest import graph_pairs_within, path_graph


class TestGamma:
    def test_identical_multisets(self):
        assert gamma(Counter("AAB"), Counter("AAB")) == 0

    def test_disjoint_multisets(self):
        assert gamma(Counter("AA"), Counter("BB")) == 2

    def test_partial_overlap(self):
        assert gamma(Counter("AAB"), Counter("ABC")) == 1

    def test_size_difference(self):
        assert gamma(Counter("AAAA"), Counter("A")) == 3

    def test_empty(self):
        assert gamma(Counter(), Counter()) == 0
        assert gamma(Counter("A"), Counter()) == 1


class TestGlobalLabelFilter:
    def test_figure1_bound(self):
        r, s = figure1_graphs()
        # L_V: {C:3, O:1} vs {C:3, O:1, N:1} -> Gamma = max(4,5) - 4 = 1
        # L_E: {-:3, =:1} vs {-:5}           -> Gamma = max(4,5) - 3 = 2
        assert global_label_lower_bound(r, s) == 3  # == ged(r, s)

    def test_precomputed_labels_match(self):
        r, s = figure1_graphs()
        rl = (r.vertex_label_multiset(), r.edge_label_multiset())
        sl = (s.vertex_label_multiset(), s.edge_label_multiset())
        assert global_label_lower_bound(r, s, rl, sl) == global_label_lower_bound(r, s)

    @settings(max_examples=40, deadline=None)
    @given(graph_pairs_within(tau_max=3, max_vertices=5))
    def test_sound_lower_bound(self, pair):
        r, s, _ = pair
        assert global_label_lower_bound(r, s) <= graph_edit_distance(r, s)


class TestComponents:
    def test_disjoint_grams_separate_components(self):
        _, s = figure1_graphs()
        pr, _ = None, None
        r, s = figure1_graphs()
        mismatch = compare_qgrams(extract_qgrams(s, 1), extract_qgrams(r, 1))
        components = connected_gram_components(mismatch.mismatch_r)
        # C-O and C-N attach to different ring carbons -> 2 components.
        assert len(components) == 2

    def test_overlapping_grams_merge(self):
        g = path_graph(["A", "B", "C"])
        profile = extract_qgrams(g, 1)
        components = connected_gram_components(profile.grams)
        assert len(components) == 1  # both grams share vertex 1

    def test_empty(self):
        assert connected_gram_components([]) == []


class TestLocalLabelFilter:
    def test_figure1_example8(self):
        """Example 8: the C-N mismatching 1-gram of s incurs an edit
        because r has no nitrogen; C-O overlaps r's labels, and the two
        components together give a lower bound of 2 > tau = 1."""
        r, s = figure1_graphs()
        mismatch = compare_qgrams(extract_qgrams(s, 1), extract_qgrams(r, 1))
        bound = local_label_lower_bound(
            mismatch.mismatch_r, s, r, tau=1, required_keys=mismatch.absent_keys_r
        )
        assert bound == 2

    def test_empty_mismatch_is_zero(self):
        r, _ = figure1_graphs()
        assert local_label_lower_bound([], r, r, tau=2) == 0

    def test_greedy_variant_not_larger(self):
        r, s = figure4_graphs()
        mismatch = compare_qgrams(extract_qgrams(s, 2), extract_qgrams(r, 2))
        exact = local_label_lower_bound(
            mismatch.mismatch_r, s, r, tau=4,
            required_keys=mismatch.absent_keys_r, exact=True,
        )
        greedy = local_label_lower_bound(
            mismatch.mismatch_r, s, r, tau=4,
            required_keys=mismatch.absent_keys_r, exact=False,
        )
        assert greedy <= exact or greedy <= 4

    @settings(max_examples=50, deadline=None)
    @given(graph_pairs_within(tau_max=3, max_vertices=5))
    def test_sound_lower_bound_both_directions(self, pair):
        """The regression property behind the PROTEIN bug: the local
        label bound must never exceed the true edit distance."""
        r, s, _ = pair
        ged = graph_edit_distance(r, s)
        for q in (1, 2):
            mismatch = compare_qgrams(extract_qgrams(r, q), extract_qgrams(s, q))
            b_r = local_label_lower_bound(
                mismatch.mismatch_r, r, s, tau=ged,
                required_keys=mismatch.absent_keys_r,
            )
            b_s = local_label_lower_bound(
                mismatch.mismatch_s, s, r, tau=ged,
                required_keys=mismatch.absent_keys_s,
            )
            assert b_r <= ged
            assert b_s <= ged
