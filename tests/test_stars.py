"""Tests for star structures and the star-based GED bounds."""

from hypothesis import given, settings

from repro.ged import brute_force_ged, induced_edit_cost
from repro.matching import (
    mapping_distance,
    star_deletion_cost,
    star_distance,
    star_ged_lower_bound,
    star_multiset,
    star_of,
)

from .conftest import build_graph, graph_pairs_within, path_graph, star_graph


class TestStarStructure:
    def test_star_of_isolated_vertex(self):
        g = build_graph(["A"], [])
        root, leaves = star_of(g, 0)
        assert root == "A" and leaves == ()

    def test_star_of_center(self):
        g = star_graph("A", ["C", "B"])
        root, leaves = star_of(g, 0)
        assert root == "A"
        assert leaves == (repr("B"), repr("C"))  # sorted

    def test_star_multiset_alignment(self):
        g = path_graph(["A", "B", "C"])
        stars = star_multiset(g)
        assert len(stars) == 3
        assert stars[0][0] == "A" and stars[1][0] == "B"


class TestStarDistance:
    def test_identical_stars(self):
        s = ("A", ("'B'", "'C'"))
        assert star_distance(s, s) == 0

    def test_root_mismatch(self):
        assert star_distance(("A", ()), ("B", ())) == 1

    def test_leaf_mismatch(self):
        # d = ||L1|-|L2|| + max(|L1|,|L2|) - |intersection| = 0 + 2 - 1 = 1
        assert star_distance(("A", ("'B'", "'C'")), ("A", ("'B'", "'D'"))) == 1

    def test_degree_difference(self):
        # d = |2-0| + 2 - 0 = 4, plus matching roots = 4
        assert star_distance(("A", ("'B'", "'C'")), ("A", ())) == 4

    def test_deletion_cost(self):
        assert star_deletion_cost(("A", ())) == 1
        assert star_deletion_cost(("A", ("'B'", "'C'"))) == 5  # 1 + 2*2


class TestMappingDistance:
    def test_identical_graphs_zero(self):
        g = path_graph(["A", "B", "C"])
        mu, mapping = mapping_distance(g, g.copy())
        assert mu == 0
        assert set(mapping) == {0, 1, 2}

    def test_empty_graphs(self):
        from repro.graph.graph import Graph

        mu, mapping = mapping_distance(Graph(), Graph())
        assert mu == 0 and mapping == {}

    def test_mapping_covers_all_r_vertices(self):
        r = path_graph(["A", "B", "C", "D"])
        s = path_graph(["A", "B"])
        _, mapping = mapping_distance(r, s)
        assert set(mapping) == set(r.vertices())
        images = [v for v in mapping.values() if v is not None]
        assert len(images) == len(set(images))  # injective


class TestBounds:
    @settings(max_examples=30, deadline=None)
    @given(graph_pairs_within(tau_max=2, max_vertices=4))
    def test_lower_bound_never_exceeds_ged(self, pair):
        r, s, _ = pair
        assert star_ged_lower_bound(r, s) <= brute_force_ged(r, s)

    @settings(max_examples=30, deadline=None)
    @given(graph_pairs_within(tau_max=2, max_vertices=4))
    def test_induced_cost_upper_bounds_ged(self, pair):
        r, s, _ = pair
        _, mapping = mapping_distance(r, s)
        assert induced_edit_cost(r, s, mapping) >= brute_force_ged(r, s)

    def test_bounds_bracket_known_distance(self):
        r = path_graph(["A", "B", "C"])
        s = path_graph(["A", "B", "D"])
        ged = brute_force_ged(r, s)  # 1: relabel C -> D
        assert ged == 1
        assert star_ged_lower_bound(r, s) <= 1
        _, mapping = mapping_distance(r, s)
        assert induced_edit_cost(r, s, mapping) >= 1
