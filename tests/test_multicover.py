"""Tests for the set-multicover solver and the extended join variant."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from itertools import combinations

from repro import GSimJoinOptions, gsim_join, naive_join
from repro.core import compare_qgrams, extract_qgrams
from repro.grams.labels import multicover_min_edit_bound
from repro.exceptions import ParameterError
from repro.ged import graph_edit_distance
from repro.setcover import exact_min_multicover, multicover_coverage_bound

from .conftest import graph_pairs_within, path_graph
from .test_join import molecule_collection
from .test_soundness import random_collection


def brute_force_multicover(groups):
    universe = sorted({v for insts, _ in groups for s in insts for v in s}, key=repr)
    total_demand = sum(need for _, need in groups)
    if total_demand == 0:
        return 0
    for k in range(1, len(universe) + 1):
        for pick in combinations(universe, k):
            chosen = set(pick)
            if all(
                sum(1 for inst in insts if chosen & inst) >= need
                for insts, need in groups
            ):
                return k
    return len(universe)


@st.composite
def multicover_instances(draw):
    num_groups = draw(st.integers(min_value=0, max_value=4))
    groups = []
    for _ in range(num_groups):
        size = draw(st.integers(min_value=1, max_value=4))
        instances = []
        for _ in range(size):
            inst_size = draw(st.integers(min_value=1, max_value=3))
            inst = draw(
                st.lists(st.integers(min_value=0, max_value=6), min_size=inst_size,
                         max_size=inst_size, unique=True)
            )
            instances.append(frozenset(inst))
        need = draw(st.integers(min_value=0, max_value=size))
        groups.append((instances, need))
    return groups


class TestExactMultiCover:
    def test_empty(self):
        assert exact_min_multicover([], cap=3) == 0

    def test_zero_demand_groups(self):
        assert exact_min_multicover([([frozenset({1})], 0)], cap=3) == 0

    def test_full_demand_equals_hitting_set(self):
        groups = [([frozenset({1}), frozenset({2})], 2)]
        assert exact_min_multicover(groups, cap=5) == 2

    def test_partial_demand(self):
        # Three disjoint instances, any one suffices.
        groups = [([frozenset({1}), frozenset({2}), frozenset({3})], 1)]
        assert exact_min_multicover(groups, cap=5) == 1

    def test_shared_vertex_covers_two_groups(self):
        groups = [
            ([frozenset({1, 2})], 1),
            ([frozenset({2, 3})], 1),
        ]
        assert exact_min_multicover(groups, cap=5) == 1  # vertex 2

    def test_cap_saturation(self):
        groups = [([frozenset({i})], 1) for i in range(4)]
        assert exact_min_multicover(groups, cap=2) == 3  # cap + 1

    def test_invalid_demand_rejected(self):
        with pytest.raises(ParameterError, match="demand"):
            exact_min_multicover([([frozenset({1})], 2)], cap=3)
        with pytest.raises(ParameterError):
            exact_min_multicover([([frozenset({1})], -1)], cap=3)

    def test_empty_instance_rejected(self):
        with pytest.raises(ParameterError, match="empty"):
            exact_min_multicover([([frozenset()], 1)], cap=3)

    def test_negative_cap_rejected(self):
        with pytest.raises(ParameterError):
            exact_min_multicover([], cap=-1)

    @settings(max_examples=60, deadline=None)
    @given(multicover_instances())
    def test_matches_brute_force(self, groups):
        expected = brute_force_multicover(groups)
        cap = 8
        assert exact_min_multicover(groups, cap=cap) == min(expected, cap + 1)

    @settings(max_examples=40, deadline=None)
    @given(multicover_instances())
    def test_coverage_bound_sound(self, groups):
        assert multicover_coverage_bound(groups) <= brute_force_multicover(groups)


class TestMulticoverFilterBound:
    @settings(max_examples=40, deadline=None)
    @given(graph_pairs_within(tau_max=3, max_vertices=5), st.sampled_from([1, 2]))
    def test_never_exceeds_true_distance(self, pair, q):
        r, s, _ = pair
        ged = graph_edit_distance(r, s)
        p_r, p_s = extract_qgrams(r, q), extract_qgrams(s, q)
        mm = compare_qgrams(p_r, p_s)
        assert multicover_min_edit_bound(mm.surplus_groups_r(p_r, p_s), ged) <= ged
        assert multicover_min_edit_bound(mm.surplus_groups_s(p_r, p_s), ged) <= ged

    def test_catches_partial_surplus(self):
        """Two A-A grams vs one: one edit must explain the surplus."""
        a = path_graph(["A", "A", "A"])
        b = path_graph(["A", "A"])
        pa, pb = extract_qgrams(a, 1), extract_qgrams(b, 1)
        mm = compare_qgrams(pa, pb)
        # The surplus key A-A is partially matched: the absent-keys
        # filter sees nothing, the multicover bound still certifies 1.
        assert mm.absent_keys_r == frozenset()
        assert multicover_min_edit_bound(mm.surplus_groups_r(pa, pb), 3) >= 1


class TestExtendedJoin:
    @pytest.mark.parametrize("tau", [0, 1, 2])
    def test_extended_variant_matches_naive(self, tau):
        graphs = molecule_collection(18, seed=tau + 90)
        expected = naive_join(graphs, tau, use_size_filter=False).pair_set()
        got = gsim_join(graphs, tau, options=GSimJoinOptions.extended(q=2))
        assert got.pair_set() == expected

    def test_extended_never_increases_cand2(self):
        graphs = molecule_collection(24, seed=95)
        full = gsim_join(graphs, 2, options=GSimJoinOptions.full(q=3)).stats
        extended = gsim_join(graphs, 2, options=GSimJoinOptions.extended(q=3)).stats
        assert extended.cand2 <= full.cand2

    @settings(max_examples=8, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=0, max_value=2),
    )
    def test_extended_on_random_collections(self, seed, tau):
        graphs = random_collection(seed, size=8)
        expected = naive_join(graphs, tau, use_size_filter=False).pair_set()
        got = gsim_join(graphs, tau, options=GSimJoinOptions.extended(q=2))
        assert got.pair_set() == expected
