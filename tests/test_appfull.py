"""Tests for the AppFull (star-bound) baseline."""

import pytest
from hypothesis import given, settings

from repro import naive_join
from repro.baselines import appfull_bounds, appfull_join
from repro.datasets import figure1_graphs
from repro.exceptions import ParameterError
from repro.ged import graph_edit_distance

from .conftest import graph_pairs_within, path_graph
from .test_join import molecule_collection


class TestBounds:
    def test_identical_graphs(self):
        g = path_graph(["A", "B", "C"])
        bounds = appfull_bounds(g, g.copy())
        assert bounds.lower_bound == 0
        assert bounds.upper_bound == 0

    def test_figure1_brackets_ged(self):
        r, s = figure1_graphs()
        bounds = appfull_bounds(r, s)
        assert bounds.lower_bound <= 3 <= bounds.upper_bound

    @settings(max_examples=30, deadline=None)
    @given(graph_pairs_within(tau_max=2, max_vertices=4))
    def test_bounds_always_bracket(self, pair):
        r, s, _ = pair
        ged = graph_edit_distance(r, s)
        bounds = appfull_bounds(r, s)
        assert bounds.lower_bound <= ged <= bounds.upper_bound


class TestJoin:
    def test_missing_ids_rejected(self):
        with pytest.raises(ParameterError):
            appfull_join([path_graph(["A"])], tau=1)

    def test_negative_tau_rejected(self):
        with pytest.raises(ParameterError):
            appfull_join([], tau=-1)

    @pytest.mark.parametrize("tau", [0, 1, 2])
    def test_matches_naive_with_verification(self, tau):
        graphs = molecule_collection(18, seed=tau + 60)
        expected = naive_join(graphs, tau, use_size_filter=False).pair_set()
        assert appfull_join(graphs, tau, verify=True).pair_set() == expected

    def test_without_verification_results_are_subset(self):
        graphs = molecule_collection(18, seed=64)
        full = appfull_join(graphs, 2, verify=True)
        partial = appfull_join(graphs, 2, verify=False)
        assert partial.pair_set() <= full.pair_set()
        # Every accepted-without-verification pair is certain.
        assert len(full.pair_set() - partial.pair_set()) <= partial.stats.cand2

    def test_nested_loop_considers_all_pairs(self):
        graphs = molecule_collection(10, seed=65)
        st = appfull_join(graphs, 1).stats
        n = len(graphs)
        assert st.cand1 == n * (n - 1) // 2
