"""Tests for the verification cascade (Algorithm 6)."""

from hypothesis import given, settings

from repro.core import JoinStatistics, extract_qgrams, verify_pair
from repro.datasets import figure1_graphs
from repro.ged import graph_edit_distance

from .conftest import graph_pairs_within, path_graph


def labels_of(g):
    return (g.vertex_label_multiset(), g.edge_label_multiset())


def run_verify(r, s, tau, q=1, **kwargs):
    p_r, p_s = extract_qgrams(r, q), extract_qgrams(s, q)
    defaults = dict(use_local_label=True, improved_order=True, improved_h=True)
    defaults.update(kwargs)
    return verify_pair(p_r, p_s, tau, labels_of(r), labels_of(s), **defaults)


class TestOutcomes:
    def test_figure1_accepted_at_tau3(self):
        r, s = figure1_graphs()
        outcome = run_verify(r, s, tau=3)
        assert outcome.is_result
        assert outcome.pruned_by is None
        assert outcome.ged == 3

    def test_figure1_rejected_at_tau1(self):
        r, s = figure1_graphs()
        outcome = run_verify(r, s, tau=1)
        assert not outcome.is_result
        # Global label bound is 3 > 1, so the cheapest filter fires.
        assert outcome.pruned_by == "global_label"

    def test_figure1_rejected_at_tau2_by_some_filter(self):
        r, s = figure1_graphs()
        outcome = run_verify(r, s, tau=2)
        assert not outcome.is_result
        assert outcome.pruned_by in {"global_label", "count", "local_label", "ged"}

    def test_identical_graphs_accepted_at_tau0(self):
        g = path_graph(["A", "B", "C"])
        outcome = run_verify(g, g.copy(), tau=0)
        assert outcome.is_result and outcome.ged == 0

    def test_stats_accumulation(self):
        r, s = figure1_graphs()
        stats = JoinStatistics()
        run_verify(r, s, tau=3, stats=stats)
        assert stats.cand2 == 1
        assert stats.ged_calls == 1
        assert stats.ged_time >= 0.0
        stats2 = JoinStatistics()
        run_verify(r, s, tau=1, stats=stats2)
        assert stats2.pruned_by_global_label == 1
        assert stats2.cand2 == 0


class TestFilterConfigurations:
    @settings(max_examples=25, deadline=None)
    @given(graph_pairs_within(tau_max=2, max_vertices=5))
    def test_all_configurations_agree_on_membership(self, pair):
        """Filters must never change the decision, only its cost."""
        r, s, _ = pair
        tau = 2
        expected = graph_edit_distance(r, s) <= tau
        for local in (False, True):
            for order in (False, True):
                for imp_h in (False, True):
                    outcome = run_verify(
                        r, s, tau,
                        use_local_label=local,
                        improved_order=order,
                        improved_h=imp_h,
                    )
                    assert outcome.is_result == expected
