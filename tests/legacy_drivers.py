"""Frozen pre-refactor join/search drivers — the parity oracle.

This module is a faithful copy of the four hand-rolled drivers as they
stood *before* the ``repro.engine`` staged-execution refactor:

* ``legacy_gsim_join``      — ``repro.core.join.gsim_join``
* ``legacy_gsim_join_rs``   — ``repro.core.join.gsim_join_rs``
* ``legacy_gsim_join_serial_parallel`` — the ``workers=1`` in-process
  path of ``repro.core.parallel.gsim_join_parallel`` (phase-1 candidate
  collection, chunked verification in scan order, journal write-through,
  final assembly).  The process-pool path was proven bit-identical to
  this path by the PR 3 suite and is therefore represented by it.
* ``LegacyGSimIndex``       — ``repro.core.search.GSimIndex``

``legacy_verify_pair`` (Algorithm 6) is inlined as well, so the oracle
depends only on layers the refactor does not restructure: the filter
primitives re-exported by ``repro.core`` (size/prefix/ordering/index —
byte-identical code that merely moved), ``repro.grams``, ``repro.ged``
and ``repro.runtime``.  ``tests/test_engine_parity.py`` runs these
drivers against the engine-backed ones and asserts bit-identical pairs,
statistics, expansion counts, bounded verdicts and journal interop.

Do not "improve" this file; it is deliberately frozen history.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import time
from typing import Dict, Hashable, List, Optional, Sequence, Tuple, Union

from repro.core import (
    InvertedIndex,
    basic_prefix,
    build_ordering,
    minedit_prefix,
    passes_size_filter,
)
from repro.core.prefix import PrefixInfo
from repro.core.result import BoundedPair, JoinResult, JoinStatistics
from repro.exceptions import ParameterError
from repro.ged.astar import graph_edit_distance_detailed
from repro.ged.compiled import VerificationCache, compiled_ged_detailed
from repro.ged.heuristics import label_heuristic, make_local_label_heuristic
from repro.ged.vertex_order import input_vertex_order, mismatch_vertex_order
from repro.grams.labels import (
    global_label_lower_bound,
    local_label_lower_bound,
    multicover_min_edit_bound,
)
from repro.grams.mismatch import compare_qgrams
from repro.grams.qgrams import QGramProfile, extract_qgrams
from repro.grams.vocab import build_vocabulary
from repro.graph.graph import Graph
from repro.runtime.budget import VerificationBudget
from repro.runtime.faults import FaultPlan
from repro.runtime.journal import JoinJournal, VerificationRecord

BUDGETED_VERIFIERS = frozenset({"astar", "object", "compiled"})

_PRUNE_COUNTERS: Dict[str, str] = {
    "global_label": "pruned_by_global_label",
    "count": "pruned_by_count",
    "local_label": "pruned_by_local_label",
    "multicover": "pruned_by_local_label",
}


@dataclasses.dataclass(frozen=True)
class LegacyVerifyOutcome:
    """Pre-refactor ``repro.core.verify.VerifyOutcome``."""

    is_result: bool
    pruned_by: Optional[str]
    ged: Optional[int] = None
    undecided: bool = False
    lower: Optional[int] = None
    upper: Optional[int] = None
    expansions: int = 0
    ged_seconds: float = 0.0


def legacy_verify_pair(
    p_r,
    p_s,
    tau,
    labels_r,
    labels_s,
    use_local_label,
    improved_order,
    improved_h,
    stats=None,
    use_multicover=False,
    verifier="astar",
    budget=None,
    cache=None,
    anchor_bound=False,
):
    """Pre-refactor Algorithm 6 cascade, copied verbatim."""
    r, s = p_r.graph, p_s.graph

    eps1 = global_label_lower_bound(r, s, labels_r, labels_s)
    if eps1 > tau:
        if stats:
            stats.pruned_by_global_label += 1
        return LegacyVerifyOutcome(False, "global_label")

    mismatch = compare_qgrams(p_r, p_s, tau)
    if mismatch.count_pruned:
        if stats:
            stats.pruned_by_count += 1
        return LegacyVerifyOutcome(False, "count")

    if use_local_label:
        eps4 = local_label_lower_bound(
            mismatch.mismatch_r, r, s, tau,
            other_labels=labels_s, required_mask=mismatch.required_mask_r,
        )
        if eps4 > tau:
            if stats:
                stats.pruned_by_local_label += 1
            return LegacyVerifyOutcome(False, "local_label")
        eps5 = local_label_lower_bound(
            mismatch.mismatch_s, s, r, tau,
            other_labels=labels_r, required_mask=mismatch.required_mask_s,
        )
        if eps5 > tau:
            if stats:
                stats.pruned_by_local_label += 1
            return LegacyVerifyOutcome(False, "local_label")

    if use_multicover:
        if (
            multicover_min_edit_bound(mismatch.surplus_groups_r(p_r, p_s), tau) > tau
            or multicover_min_edit_bound(mismatch.surplus_groups_s(p_r, p_s), tau) > tau
        ):
            if stats:
                stats.pruned_by_local_label += 1
            return LegacyVerifyOutcome(False, "multicover")

    if stats:
        stats.cand2 += 1
    order = (
        mismatch_vertex_order(r, mismatch.mismatch_r)
        if improved_order
        else input_vertex_order(r)
    )
    if anchor_bound and verifier != "compiled":
        raise ParameterError("anchor_bound requires the 'compiled' verifier")
    started = time.perf_counter()
    if verifier == "dfs":
        if budget is not None:
            raise ParameterError(
                "budgeted verification requires an A*-family verifier "
                "('astar'/'object'/'compiled')"
            )
        from repro.ged.dfs import dfs_ged

        heuristic = (
            make_local_label_heuristic(p_r.q, tau) if improved_h else label_heuristic
        )
        search = dfs_ged(
            r, s, threshold=tau, heuristic=heuristic, vertex_order=order
        )
    elif verifier == "compiled":
        if cache is None:
            cache = VerificationCache()
        cr = cache.compile(r)
        cs = cache.compile(s)
        index_of = cr.index_of
        int_order = [index_of[v] for v in order]
        search = compiled_ged_detailed(
            cr, cs, threshold=tau, vertex_order=int_order, budget=budget,
            improved_h=improved_h, q=p_r.q, h_tau=tau,
            subgraph_cache=cache.subgraph_cache, anchor_bound=anchor_bound,
        )
    elif verifier in ("astar", "object"):
        heuristic = (
            make_local_label_heuristic(p_r.q, tau) if improved_h else label_heuristic
        )
        search = graph_edit_distance_detailed(
            r, s, threshold=tau, heuristic=heuristic, vertex_order=order,
            budget=budget,
        )
    else:
        raise ParameterError(f"unknown verifier {verifier!r}")
    elapsed = time.perf_counter() - started
    if stats:
        stats.ged_time += elapsed
        stats.ged_calls += 1
        stats.ged_expansions += search.expanded
    if getattr(search, "budget_exhausted", False):
        lower, upper = search.lower, search.upper
        if upper is not None and upper <= tau:
            return LegacyVerifyOutcome(
                True, None, None, lower=lower, upper=upper,
                expansions=search.expanded, ged_seconds=elapsed,
            )
        if lower is not None and lower > tau:
            return LegacyVerifyOutcome(
                False, "ged", None, lower=lower, upper=upper,
                expansions=search.expanded, ged_seconds=elapsed,
            )
        if stats:
            stats.undecided += 1
        return LegacyVerifyOutcome(
            False, None, None, undecided=True, lower=lower, upper=upper,
            expansions=search.expanded, ged_seconds=elapsed,
        )
    if search.distance <= tau:
        return LegacyVerifyOutcome(
            True, None, search.distance,
            expansions=search.expanded, ged_seconds=elapsed,
        )
    return LegacyVerifyOutcome(
        False, "ged", search.distance,
        expansions=search.expanded, ged_seconds=elapsed,
    )


def _validate(graphs, tau, options):
    if tau < 0:
        raise ParameterError(f"tau must be >= 0, got {tau}")
    if options.q < 0:
        raise ParameterError(f"q must be >= 0, got {options.q}")
    ids = [g.graph_id for g in graphs]
    if any(gid is None for gid in ids):
        raise ParameterError(
            "all graphs need ids; use repro.graph.assign_ids(graphs) first"
        )
    if len(set(ids)) != len(ids):
        raise ParameterError("graph ids must be distinct")
    if len({g.is_directed for g in graphs}) > 1:
        raise ParameterError("cannot mix directed and undirected graphs in a join")
    if options.anchor_bound and options.verifier != "compiled":
        raise ParameterError("anchor_bound requires the 'compiled' verifier")


def _build_sorter(profiles, options):
    if options.interned:
        return build_vocabulary(profiles)
    return build_ordering(profiles)


def _journal_meta(graphs, tau, options, budget):
    ids_blob = repr(
        [
            (
                g.graph_id,
                g.num_vertices,
                g.num_edges,
                sorted(g.vertex_label_multiset().items()),
            )
            for g in graphs
        ]
    ).encode("utf-8")
    # The pre-refactor GSimJoinOptions had no ``plan`` or ``batch`` field;
    # strip them so the header reproduces the historical journal
    # byte-for-byte.
    options_dict = dataclasses.asdict(options)
    options_dict.pop("plan", None)
    options_dict.pop("batch", None)
    return {
        "kind": "self-join",
        "n": len(graphs),
        "tau": tau,
        "ids_sha": hashlib.sha256(ids_blob).hexdigest()[:16],
        "options": options_dict,
        "budget": (
            None
            if budget is None
            else [budget.max_expansions, budget.max_seconds]
        ),
    }


def _record_of(i, j, outcome):
    return VerificationRecord(
        i=i,
        j=j,
        is_result=outcome.is_result,
        pruned_by=outcome.pruned_by,
        ged=outcome.ged,
        expansions=outcome.expansions,
        ged_seconds=outcome.ged_seconds,
        undecided=outcome.undecided,
        lower=outcome.lower,
        upper=outcome.upper,
    )


def _replay_record(stats, rec):
    counter = _PRUNE_COUNTERS.get(rec.pruned_by or "")
    if counter is not None:
        setattr(stats, counter, getattr(stats, counter) + 1)
    if rec.ran_ged:
        stats.cand2 += 1
        stats.ged_calls += 1
        stats.ged_expansions += rec.expansions
        stats.ged_time += rec.ged_seconds
    if rec.undecided:
        stats.undecided += 1
    stats.replayed_pairs += 1


def _prepare_profiles(graphs, tau, options, stats):
    profiles = [extract_qgrams(g, options.q) for g in graphs]
    sorter = _build_sorter(profiles, options)
    prefixes = []
    for profile in profiles:
        sorter.sort_profile(profile)
        info = (
            minedit_prefix(profile, tau)
            if options.minedit_prefix
            else basic_prefix(profile, tau)
        )
        prefixes.append(info)
        stats.total_prefix_length += info.length
        if not info.prunable:
            stats.unprunable_graphs += 1
    labels = [
        (g.vertex_label_multiset(), g.edge_label_multiset()) for g in graphs
    ]
    return profiles, prefixes, labels, sorter


def legacy_gsim_join(
    graphs,
    tau,
    options=None,
    budget=None,
    checkpoint=None,
    fault=None,
):
    """Pre-refactor ``gsim_join`` (Algorithm 1), copied verbatim."""
    from repro.core.join import GSimJoinOptions

    if options is None:
        options = GSimJoinOptions()
    _validate(graphs, tau, options)
    if budget is not None and options.verifier not in BUDGETED_VERIFIERS:
        raise ParameterError(
            "budgeted verification requires an A*-family verifier "
            "('astar'/'object'/'compiled')"
        )

    stats = JoinStatistics(num_graphs=len(graphs), tau=tau, q=options.q)
    result = JoinResult(stats=stats)

    started = time.perf_counter()
    profiles, prefixes, labels, _sorter = _prepare_profiles(
        graphs, tau, options, stats
    )
    stats.index_time += time.perf_counter() - started

    index = InvertedIndex()
    unprunable = []
    cache = VerificationCache() if options.verifier == "compiled" else None
    journal = (
        JoinJournal.open(checkpoint, _journal_meta(graphs, tau, options, budget))
        if checkpoint is not None
        else None
    )
    injector = fault.start() if fault is not None else None

    try:
        for i, profile in enumerate(profiles):
            info = prefixes[i]
            r = profile.graph

            started = time.perf_counter()
            candidate_ids = {}
            if info.prunable:
                for key in profile.prefix_keys(info.length):
                    for j in index.probe(key):
                        if j not in candidate_ids and passes_size_filter(
                            r, profiles[j].graph, tau
                        ):
                            candidate_ids[j] = True
                for j in unprunable:
                    if j not in candidate_ids and passes_size_filter(
                        r, profiles[j].graph, tau
                    ):
                        candidate_ids[j] = True
            else:
                for j in range(i):
                    if passes_size_filter(r, profiles[j].graph, tau):
                        candidate_ids[j] = True
            stats.cand1 += len(candidate_ids)
            stats.candidate_time += time.perf_counter() - started

            started = time.perf_counter()
            for j in candidate_ids:
                rec = (
                    journal.completed.get((i, j))
                    if journal is not None
                    else None
                )
                if rec is None:
                    if injector is not None:
                        injector.step()
                    outcome = legacy_verify_pair(
                        profile,
                        profiles[j],
                        tau,
                        labels[i],
                        labels[j],
                        use_local_label=options.local_label,
                        improved_order=options.improved_order,
                        improved_h=options.improved_h,
                        stats=stats,
                        use_multicover=options.multicover,
                        verifier=options.verifier,
                        budget=budget,
                        cache=cache,
                        anchor_bound=options.anchor_bound,
                    )
                    if journal is not None:
                        journal.append(_record_of(i, j, outcome))
                    is_result, undecided = outcome.is_result, outcome.undecided
                    lower, upper = outcome.lower, outcome.upper
                else:
                    _replay_record(stats, rec)
                    is_result, undecided = rec.is_result, rec.undecided
                    lower, upper = rec.lower, rec.upper
                if is_result:
                    result.pairs.append((profiles[j].graph.graph_id, r.graph_id))
                elif undecided:
                    result.undecided.append(
                        BoundedPair(
                            profiles[j].graph.graph_id, r.graph_id, lower, upper
                        )
                    )
            stats.verify_time += time.perf_counter() - started

            started = time.perf_counter()
            if info.prunable:
                for key in profile.prefix_keys(info.length):
                    index.add(key, i)
            else:
                unprunable.append(i)
            stats.index_time += time.perf_counter() - started
    finally:
        if journal is not None:
            journal.close()

    stats.results = len(result.pairs)
    stats.index_distinct_keys = index.num_distinct_keys
    stats.index_postings = index.num_postings
    stats.index_bytes = index.size_bytes
    if cache is not None:
        stats.compile_time = cache.compile_seconds
        stats.compiled_graphs = len(cache)
    return result


def legacy_gsim_join_rs(outer, inner, tau, options=None, budget=None):
    """Pre-refactor ``gsim_join_rs``, copied verbatim (no checkpoint)."""
    from repro.core.join import GSimJoinOptions

    if options is None:
        options = GSimJoinOptions()
    _validate(outer, tau, options)
    _validate(inner, tau, options)
    if budget is not None and options.verifier not in BUDGETED_VERIFIERS:
        raise ParameterError(
            "budgeted verification requires an A*-family verifier "
            "('astar'/'object'/'compiled')"
        )

    stats = JoinStatistics(
        num_graphs=len(outer) + len(inner), tau=tau, q=options.q
    )
    result = JoinResult(stats=stats)

    started = time.perf_counter()
    all_graphs = list(outer) + list(inner)
    profiles_all = [extract_qgrams(g, options.q) for g in all_graphs]
    sorter = _build_sorter(profiles_all, options)
    prefixes_all = []
    for profile in profiles_all:
        sorter.sort_profile(profile)
        info = (
            minedit_prefix(profile, tau)
            if options.minedit_prefix
            else basic_prefix(profile, tau)
        )
        prefixes_all.append(info)
        stats.total_prefix_length += info.length
        if not info.prunable:
            stats.unprunable_graphs += 1
    labels_all = [
        (g.vertex_label_multiset(), g.edge_label_multiset()) for g in all_graphs
    ]
    n_outer = len(outer)
    outer_profiles = profiles_all[:n_outer]
    inner_profiles = profiles_all[n_outer:]

    index = InvertedIndex()
    cache = VerificationCache() if options.verifier == "compiled" else None
    inner_unprunable = []
    for j, profile in enumerate(inner_profiles):
        info = prefixes_all[n_outer + j]
        if info.prunable:
            for key in profile.prefix_keys(info.length):
                index.add(key, j)
        else:
            inner_unprunable.append(j)
    stats.index_time += time.perf_counter() - started

    for i, profile in enumerate(outer_profiles):
        info = prefixes_all[i]
        r = profile.graph

        started = time.perf_counter()
        candidate_ids = {}
        if info.prunable:
            for key in profile.prefix_keys(info.length):
                for j in index.probe(key):
                    if j not in candidate_ids and passes_size_filter(
                        r, inner_profiles[j].graph, tau
                    ):
                        candidate_ids[j] = True
            for j in inner_unprunable:
                if j not in candidate_ids and passes_size_filter(
                    r, inner_profiles[j].graph, tau
                ):
                    candidate_ids[j] = True
        else:
            for j in range(len(inner_profiles)):
                if passes_size_filter(r, inner_profiles[j].graph, tau):
                    candidate_ids[j] = True
        stats.cand1 += len(candidate_ids)
        stats.candidate_time += time.perf_counter() - started

        started = time.perf_counter()
        for j in candidate_ids:
            outcome = legacy_verify_pair(
                profile,
                inner_profiles[j],
                tau,
                labels_all[i],
                labels_all[n_outer + j],
                use_local_label=options.local_label,
                improved_order=options.improved_order,
                improved_h=options.improved_h,
                stats=stats,
                use_multicover=options.multicover,
                verifier=options.verifier,
                budget=budget,
                cache=cache,
                anchor_bound=options.anchor_bound,
            )
            if outcome.is_result:
                result.pairs.append(
                    (r.graph_id, inner_profiles[j].graph.graph_id)
                )
            elif outcome.undecided:
                result.undecided.append(
                    BoundedPair(
                        r.graph_id,
                        inner_profiles[j].graph.graph_id,
                        outcome.lower,
                        outcome.upper,
                    )
                )
        stats.verify_time += time.perf_counter() - started

    stats.results = len(result.pairs)
    stats.index_distinct_keys = index.num_distinct_keys
    stats.index_postings = index.num_postings
    stats.index_bytes = index.size_bytes
    if cache is not None:
        stats.compile_time = cache.compile_seconds
        stats.compiled_graphs = len(cache)
    return result


def legacy_gsim_join_serial_parallel(
    graphs,
    tau,
    options=None,
    chunk_size=8,
    budget=None,
    checkpoint=None,
):
    """Pre-refactor ``gsim_join_parallel`` with ``workers=1``.

    The phase-1 candidate collection, chunked in-scan-order
    verification, journal write-through and final assembly are the
    verbatim pre-refactor control flow; the process pool (proven
    bit-identical to this path by the PR 3 suite) is elided.
    """
    from repro.core.join import GSimJoinOptions

    if options is None:
        options = GSimJoinOptions()
    _validate(graphs, tau, options)

    stats = JoinStatistics(num_graphs=len(graphs), tau=tau, q=options.q)
    result = JoinResult(stats=stats)

    started = time.perf_counter()
    profiles, prefixes, labels, sorter = _prepare_profiles(
        graphs, tau, options, stats
    )
    stats.index_time += time.perf_counter() - started

    started = time.perf_counter()
    index = InvertedIndex()
    unprunable = []
    pairs = []
    for i, profile in enumerate(profiles):
        info = prefixes[i]
        r = profile.graph
        candidate_ids = {}
        if info.prunable:
            for key in profile.prefix_keys(info.length):
                for j in index.probe(key):
                    if j not in candidate_ids and passes_size_filter(
                        r, profiles[j].graph, tau
                    ):
                        candidate_ids[j] = True
            for j in unprunable:
                if j not in candidate_ids and passes_size_filter(
                    r, profiles[j].graph, tau
                ):
                    candidate_ids[j] = True
        else:
            for j in range(i):
                if passes_size_filter(r, profiles[j].graph, tau):
                    candidate_ids[j] = True
        pairs.extend((i, j) for j in candidate_ids)
        if info.prunable:
            for key in profile.prefix_keys(info.length):
                index.add(key, i)
        else:
            unprunable.append(i)
    stats.cand1 = len(pairs)
    stats.candidate_time += time.perf_counter() - started
    stats.index_distinct_keys = index.num_distinct_keys
    stats.index_postings = index.num_postings
    stats.index_bytes = index.size_bytes

    journal = (
        JoinJournal.open(checkpoint, _journal_meta(graphs, tau, options, budget))
        if checkpoint is not None
        else None
    )
    records = {}
    cache = VerificationCache() if options.verifier == "compiled" else None
    try:
        todo = []
        for key in pairs:
            rec = journal.completed.get(key) if journal is not None else None
            if rec is not None:
                _replay_record(stats, rec)
                records[key] = rec
            else:
                todo.append(key)

        started = time.perf_counter()
        chunks = [
            todo[k: k + chunk_size] for k in range(0, len(todo), chunk_size)
        ]
        for chunk in chunks:
            for i, j in chunk:
                outcome = legacy_verify_pair(
                    profiles[i],
                    profiles[j],
                    tau,
                    labels[i],
                    labels[j],
                    use_local_label=options.local_label,
                    improved_order=options.improved_order,
                    improved_h=options.improved_h,
                    stats=None,
                    use_multicover=options.multicover,
                    verifier=options.verifier,
                    budget=budget,
                    cache=cache,
                    anchor_bound=options.anchor_bound,
                )
                rec = _record_of(i, j, outcome)
                _replay_record(stats, rec)
                stats.replayed_pairs -= 1  # fresh work, not a replay
                records[(rec.i, rec.j)] = rec
                if journal is not None:
                    journal.append(rec)
        stats.verify_time += time.perf_counter() - started
    finally:
        if journal is not None:
            journal.close()

    for i, j in pairs:
        rec = records[(i, j)]
        if rec.is_result:
            result.pairs.append((graphs[j].graph_id, graphs[i].graph_id))
        elif rec.undecided:
            result.undecided.append(
                BoundedPair(
                    graphs[j].graph_id,
                    graphs[i].graph_id,
                    rec.lower,
                    rec.upper,
                    "error" if rec.pruned_by == "error" else "budget",
                )
            )
    stats.results = len(result.pairs)
    return result


class LegacyGSimIndex:
    """Pre-refactor ``repro.core.search.GSimIndex``, copied verbatim."""

    def __init__(self, graphs=(), tau_max=2, options=None):
        from repro.core.join import GSimJoinOptions

        if tau_max < 0:
            raise ParameterError(f"tau_max must be >= 0, got {tau_max}")
        self.tau_max = tau_max
        self.options = options if options is not None else GSimJoinOptions()
        self.graphs = []
        self._profiles = []
        self._labels = []
        self._ids = set()
        self._index = InvertedIndex()
        self._unprunable = []
        self._cache = (
            VerificationCache() if self.options.verifier == "compiled" else None
        )

        initial = list(graphs)
        initial_profiles = [extract_qgrams(g, self.options.q) for g in initial]
        self._sorter = _build_sorter(initial_profiles, self.options)
        for g, profile in zip(initial, initial_profiles):
            self._validate_new(g)
            self._insert(g, profile)

    def __len__(self):
        return len(self.graphs)

    def _validate_new(self, g):
        if g.graph_id is None:
            raise ParameterError("indexed graphs need an id")
        if g.graph_id in self._ids:
            raise ParameterError(f"duplicate graph id {g.graph_id!r}")

    def _insert(self, g, profile):
        self._sorter.sort_profile(profile)
        info = self._prefix(profile, self.tau_max)
        position = len(self.graphs)
        self.graphs.append(g)
        self._profiles.append(profile)
        self._labels.append((g.vertex_label_multiset(), g.edge_label_multiset()))
        self._ids.add(g.graph_id)
        if info.prunable:
            for key in profile.prefix_keys(info.length):
                self._index.add(key, position)
        else:
            self._unprunable.append(position)

    def add(self, g):
        self._validate_new(g)
        self._insert(g, extract_qgrams(g, self.options.q))

    def _prefix(self, profile, tau):
        if self.options.minedit_prefix:
            return minedit_prefix(profile, tau)
        return basic_prefix(profile, tau)

    def query(self, g, tau, stats=None):
        if tau < 0:
            raise ParameterError(f"tau must be >= 0, got {tau}")
        if tau > self.tau_max:
            raise ParameterError(
                f"tau={tau} exceeds the index's tau_max={self.tau_max}"
            )
        profile = extract_qgrams(g, self.options.q)
        self._sorter.sort_profile(profile)
        info = self._prefix(profile, tau)

        candidates = {}
        if info.prunable:
            for key in profile.prefix_keys(info.length):
                for j in self._index.probe(key):
                    if j not in candidates and passes_size_filter(
                        g, self.graphs[j], tau
                    ):
                        candidates[j] = True
            for j in self._unprunable:
                if j not in candidates and passes_size_filter(g, self.graphs[j], tau):
                    candidates[j] = True
        else:
            for j in range(len(self.graphs)):
                if passes_size_filter(g, self.graphs[j], tau):
                    candidates[j] = True
        if stats:
            stats.cand1 += len(candidates)

        g_labels = (g.vertex_label_multiset(), g.edge_label_multiset())
        matches = []
        for j in candidates:
            if self.graphs[j].graph_id == g.graph_id:
                continue
            outcome = legacy_verify_pair(
                profile,
                self._profiles[j],
                tau,
                g_labels,
                self._labels[j],
                use_local_label=self.options.local_label,
                improved_order=self.options.improved_order,
                improved_h=self.options.improved_h,
                stats=stats,
                use_multicover=self.options.multicover,
                verifier=self.options.verifier,
                cache=self._cache,
                anchor_bound=self.options.anchor_bound,
            )
            if outcome.is_result:
                matches.append((self.graphs[j].graph_id, outcome.ged))
        matches.sort(key=lambda pair: (pair[1], repr(pair[0])))
        return matches
