"""Tests for sampling-based join-size estimation."""

import pytest

from repro import gsim_join
from repro.core.estimate import estimate_join_size
from repro.exceptions import ParameterError

from .test_join import molecule_collection


class TestEstimateJoinSize:
    def test_validation(self):
        with pytest.raises(ParameterError):
            estimate_join_size([], tau=-1)
        with pytest.raises(ParameterError):
            estimate_join_size([], tau=1, sample_pairs=0)

    def test_empty_and_singleton(self):
        assert estimate_join_size([], tau=1).estimate == 0.0
        graphs = molecule_collection(1, seed=1, cluster=False)
        assert estimate_join_size(graphs, tau=1).total_pairs == 0

    def test_small_space_is_exact(self):
        graphs = molecule_collection(16, seed=2)
        exact = gsim_join(graphs, tau=2).stats.results
        est = estimate_join_size(graphs, tau=2, sample_pairs=200)
        assert est.sampled == est.total_pairs  # exhaustive branch
        assert est.estimate == exact
        assert est.low == est.high == exact

    def test_sampling_brackets_truth(self):
        graphs = molecule_collection(60, seed=3)
        exact = gsim_join(graphs, tau=2).stats.results
        est = estimate_join_size(graphs, tau=2, sample_pairs=300, seed=5)
        assert est.sampled == 300
        assert est.low <= exact <= est.high or abs(est.estimate - exact) <= exact
        assert est.total_pairs == 60 * 59 // 2

    def test_deterministic_by_seed(self):
        graphs = molecule_collection(60, seed=4)
        a = estimate_join_size(graphs, tau=1, sample_pairs=150, seed=9)
        b = estimate_join_size(graphs, tau=1, sample_pairs=150, seed=9)
        assert a == b

    def test_bounds_short_circuit_most_pairs(self):
        graphs = molecule_collection(60, seed=6)
        est = estimate_join_size(graphs, tau=1, sample_pairs=200, seed=7)
        # Random pairs rarely need the exact verifier.
        assert est.exact_ged_calls <= est.sampled * 0.2

    def test_str_rendering(self):
        graphs = molecule_collection(12, seed=8)
        text = str(estimate_join_size(graphs, tau=1))
        assert "pairs" in text and "CI" in text
