"""Tests for label-preserving isomorphism."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import are_isomorphic, find_isomorphism
from repro.graph.graph import Graph

from .conftest import build_graph, cycle_graph, path_graph, small_graphs


class TestBasic:
    def test_empty_graphs_isomorphic(self):
        assert are_isomorphic(Graph(), Graph())

    def test_identical_graphs(self):
        g = cycle_graph(["A", "B", "C"])
        assert are_isomorphic(g, g.copy())

    def test_vertex_renaming_preserves_isomorphism(self):
        g = cycle_graph(["A", "B", "C"])
        h = g.relabel_vertices({0: 10, 1: 11, 2: 12})
        assert are_isomorphic(g, h)
        mapping = find_isomorphism(g, h)
        assert mapping is not None
        for u, v in mapping.items():
            assert g.vertex_label(u) == h.vertex_label(v)

    def test_different_sizes_not_isomorphic(self):
        assert not are_isomorphic(path_graph(["A", "A"]), path_graph(["A", "A", "A"]))

    def test_vertex_label_sensitive(self):
        g = path_graph(["A", "B"])
        h = path_graph(["A", "C"])
        assert not are_isomorphic(g, h)

    def test_edge_label_sensitive(self):
        g = path_graph(["A", "B"], edge_label="x")
        h = path_graph(["A", "B"], edge_label="y")
        assert not are_isomorphic(g, h)

    def test_structure_sensitive(self):
        # Same label multisets, different structure: P4 vs star K1,3.
        g = path_graph(["A", "A", "A", "A"])
        h = build_graph(["A"] * 4, [(0, 1, "x"), (0, 2, "x"), (0, 3, "x")])
        assert not are_isomorphic(g, h)

    def test_regular_graphs_with_same_signatures(self):
        # C6 vs two triangles: identical degree/label signatures,
        # non-isomorphic — exercises the backtracking, not just pruning.
        g = cycle_graph(["A"] * 6)
        h = build_graph(
            ["A"] * 6,
            [(0, 1, "x"), (1, 2, "x"), (0, 2, "x"),
             (3, 4, "x"), (4, 5, "x"), (3, 5, "x")],
        )
        assert not are_isomorphic(g, h)


class TestRandomized:
    @settings(max_examples=40, deadline=None)
    @given(small_graphs(max_vertices=6), st.integers(min_value=0, max_value=2**31 - 1))
    def test_random_relabeling_always_isomorphic(self, g, seed):
        rng = random.Random(seed)
        vertices = list(g.vertices())
        shuffled = vertices[:]
        rng.shuffle(shuffled)
        h = g.relabel_vertices(dict(zip(vertices, [v + 100 for v in shuffled])))
        assert are_isomorphic(g, h)

    @settings(max_examples=40, deadline=None)
    @given(small_graphs(max_vertices=6))
    def test_label_change_breaks_isomorphism(self, g):
        if g.num_vertices == 0:
            return
        h = g.copy()
        v = next(iter(h.vertices()))
        h.set_vertex_label(v, "UNIQUE-LABEL")
        assert not are_isomorphic(g, h)
