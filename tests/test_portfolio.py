"""Cross-backend differential suite for the verifier portfolio.

Every backend registered in :mod:`repro.ged.portfolio` must agree on
exact distances (checked against the brute-force reference), budgeted
DFS must return sound lower/upper brackets, and the ``"auto"``
hardness dispatcher must produce bit-identical join results against
every single-backend run — sequentially, in parallel, sharded, and
across a checkpoint resume.  The registry itself (aliases, unknown
names, capability validation) is unit-tested here too.
"""

import random
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import GSimJoinOptions, assign_ids, gsim_join
from repro.core.parallel import gsim_join_parallel
from repro.core.search import GSimIndex
from repro.core.sharded import gsim_join_sharded
from repro.exceptions import ParameterError
from repro.ged.portfolio import (
    AUTO_MAX_DISTINCT_LABELS,
    AUTO_MIN_TAU,
    AUTO_MIN_VERTICES,
    AutoBackend,
    budgeted_backends,
    registered_backends,
    registered_names,
    resolve_backend,
    validate_backend_options,
)
from repro.ged.reference import brute_force_ged
from repro.graph.generators import random_labeled_graph
from repro.runtime.budget import VerificationBudget

from .conftest import graph_pairs_within

ALL_VERIFIERS = ("compiled", "object", "astar", "dfs", "auto")


# ------------------------------------------------------------------ registry


class TestRegistry:
    def test_names_cover_every_backend_and_alias(self):
        assert set(registered_names()) >= set(ALL_VERIFIERS)

    def test_aliases_resolve_to_the_same_singleton(self):
        assert resolve_backend("astar") is resolve_backend("object")

    def test_unknown_verifier_lists_registered_backends(self):
        with pytest.raises(ParameterError, match="registered backends"):
            resolve_backend("ilp")

    def test_every_backend_declares_budget_support(self):
        assert budgeted_backends() >= set(ALL_VERIFIERS)

    def test_capability_error_names_backend_and_declaration(self):
        with pytest.raises(ParameterError, match="'dfs'.*anchor_bound=no"):
            validate_backend_options("dfs", anchor_bound=True)
        with pytest.raises(ParameterError, match="'auto'.*anchor_bound=no"):
            validate_backend_options("auto", anchor_bound=True)

    def test_compiled_supports_every_requested_feature(self):
        backend = validate_backend_options(
            "compiled",
            budget=VerificationBudget(max_expansions=1),
            anchor_bound=True,
        )
        assert backend.name == "compiled"

    def test_capability_describe_renders_all_flags(self):
        caps = resolve_backend("dfs").capabilities
        text = caps.describe()
        assert "budget=yes" in text
        assert "memory=constant" in text


# ------------------------------------------------- distance differential


@settings(max_examples=40, deadline=None)
@given(graph_pairs_within(tau_max=3, max_vertices=5), st.integers(0, 3))
def test_all_backends_agree_on_exact_distances(pair, tau):
    """Every registered backend decides every pair identically, and the
    decisions match the brute-force reference."""
    r, s, _ = pair
    exact = brute_force_ged(r, s)
    for backend in registered_backends():
        search = backend.verify(r, s, tau)
        if exact <= tau:
            assert not search.exceeded_threshold, backend.name
            assert search.distance == exact, backend.name
        else:
            assert search.exceeded_threshold, backend.name


@settings(max_examples=25, deadline=None)
@given(graph_pairs_within(tau_max=3, max_vertices=5), st.integers(1, 3))
def test_all_backends_agree_with_improved_heuristic(pair, q):
    r, s, k = pair
    tau = min(k + 1, 3)
    exact = brute_force_ged(r, s)
    for backend in registered_backends():
        search = backend.verify(r, s, tau, improved_h=True, q=q)
        if exact <= tau:
            assert search.distance == exact, backend.name
        else:
            assert search.exceeded_threshold, backend.name


@pytest.mark.parametrize("max_expansions", [1, 3, 10])
def test_budgeted_dfs_brackets_are_sound(max_expansions):
    """On exhaustion the DFS backend returns ``lower <= ged <= upper``."""
    dfs = resolve_backend("dfs")
    budget_template = VerificationBudget(max_expansions=max_expansions)
    rng = random.Random(99)
    exhausted = 0
    for trial in range(60):
        n = rng.randrange(4, 7)
        cap = n * (n - 1) // 2
        r = random_labeled_graph(rng, n, min(rng.randrange(n, 2 * n), cap),
                                 ["A", "B"], ["x"], graph_id=f"r{trial}")
        s = random_labeled_graph(rng, n, min(rng.randrange(n, 2 * n), cap),
                                 ["A", "B"], ["x"], graph_id=f"s{trial}")
        exact = brute_force_ged(r, s)
        search = dfs.verify(r, s, 3, budget_template)
        if search.budget_exhausted:
            exhausted += 1
            assert search.lower is not None and search.lower <= exact
            assert search.upper is not None and search.upper >= exact
        else:
            if not search.exceeded_threshold:
                assert search.distance == exact
    assert exhausted > 0, "budget never exhausted; caps too generous"


# ------------------------------------------------------- auto dispatcher


def easy_graph(rng, graph_id):
    """Small and label-diverse: compiled territory."""
    return random_labeled_graph(
        rng, 5, 6, ["A", "B", "C", "D"], ["x", "y"], graph_id=graph_id
    )


def hard_graph(rng, graph_id):
    """Large over two labels: the A* heuristic starves, DFS territory."""
    return random_labeled_graph(
        rng, 10, 14, ["A", "B"], ["x"], graph_id=graph_id
    )


def mixed_collection(n, seed):
    """Alternating easy/hard clusters so ``auto`` exercises both targets."""
    rng = random.Random(seed)
    graphs = []
    for i in range(n):
        maker = easy_graph if i % 2 == 0 else hard_graph
        graphs.append(maker(rng, None))
    return assign_ids(graphs)


class TestAutoDispatch:
    def test_select_is_pure_and_matches_the_documented_rule(self):
        rng = random.Random(5)
        auto = AutoBackend()
        small = easy_graph(rng, "e")
        big = hard_graph(rng, "h")
        # Small pairs and tight thresholds go to compiled.
        assert auto.select(small, small, 3).name == "compiled"
        assert auto.select(big, big, AUTO_MIN_TAU - 1).name == "compiled"
        # Large, loose, label-starved pairs go to dfs.
        assert big.num_vertices >= AUTO_MIN_VERTICES
        assert auto.select(big, big, AUTO_MIN_TAU).name == "dfs"
        # Label diversity above the cutoff keeps A*.
        diverse = random_labeled_graph(
            random.Random(7), 10, 14, ["A", "B", "C", "D"], ["x"],
            graph_id="d",
        )
        distinct = {
            diverse.vertex_label(v) for v in diverse.vertices()
        }
        if len(distinct) > AUTO_MAX_DISTINCT_LABELS:
            assert auto.select(diverse, diverse, 3).name == "compiled"

    @pytest.mark.parametrize("tau", [1, 2, 3])
    def test_auto_join_matches_every_single_backend(self, tau):
        graphs = mixed_collection(14, seed=11)
        options = GSimJoinOptions.full(q=2)
        results = {
            verifier: gsim_join(
                graphs, tau, options=replace(options, verifier=verifier)
            )
            for verifier in ALL_VERIFIERS
        }
        expected = results["compiled"]
        for verifier, result in results.items():
            assert result.pairs == expected.pairs, verifier
            assert result.stats.results == expected.stats.results, verifier

    def test_auto_join_records_both_dispatch_targets(self):
        graphs = mixed_collection(14, seed=11)
        options = replace(GSimJoinOptions.full(q=2), verifier="auto")
        result = gsim_join(graphs, 3, options=options)
        backends = result.stats.verify_backends
        assert backends.get("compiled", 0) > 0
        assert backends.get("dfs", 0) > 0
        assert sum(backends.values()) == result.stats.ged_calls

    def test_auto_parallel_matches_sequential(self):
        graphs = mixed_collection(12, seed=13)
        options = replace(GSimJoinOptions.full(q=2), verifier="auto")
        sequential = gsim_join(graphs, 2, options=options)
        parallel = gsim_join_parallel(
            graphs, 2, options=options, workers=2, chunk_size=3
        )
        assert parallel.pairs == sequential.pairs
        assert (
            parallel.stats.verify_backends == sequential.stats.verify_backends
        )

    def test_auto_sharded_matches_sequential(self, tmp_path):
        graphs = mixed_collection(12, seed=17)
        options = replace(GSimJoinOptions.full(q=2), verifier="auto")
        sequential = gsim_join(graphs, 2, options=options)
        sharded = gsim_join_sharded(
            graphs, 2, options=options,
            spill_dir=tmp_path / "spill", shards=3,
        )
        assert sharded.pair_set() == sequential.pair_set()

    def test_auto_checkpoint_resume_replays_backend_attribution(self, tmp_path):
        graphs = mixed_collection(12, seed=19)
        options = replace(GSimJoinOptions.full(q=2), verifier="auto")
        checkpoint = tmp_path / "journal.jsonl"
        first = gsim_join(graphs, 2, options=options, checkpoint=checkpoint)
        resumed = gsim_join(graphs, 2, options=options, checkpoint=checkpoint)
        assert resumed.pairs == first.pairs
        assert resumed.stats.replayed_pairs > 0
        assert resumed.stats.verify_backends == first.stats.verify_backends


# ------------------------------------------------------------- verdict memo


class TestVerdictMemo:
    def test_repeated_index_queries_reuse_verdicts(self):
        graphs = mixed_collection(12, seed=23)
        index = GSimIndex(graphs, tau_max=2, options=GSimJoinOptions.full(q=2))
        g = graphs[0]
        first = index.query(g, 2)
        calls_after_first = index._cache.memo_hits
        second = index.query(g, 2)
        assert second == first
        assert index._cache.memo_hits > calls_after_first

    def test_memo_decides_without_new_search(self):
        graphs = mixed_collection(10, seed=29)
        index = GSimIndex(graphs, tau_max=2, options=GSimJoinOptions.full(q=2))
        from repro.engine.result import JoinStatistics

        g = graphs[0]
        stats_first = JoinStatistics()
        index.query(g, 2, stats=stats_first)
        stats_second = JoinStatistics()
        index.query(g, 2, stats=stats_second)
        # Every pair the first probe verified is answered by the memo.
        assert stats_second.ged_calls < max(stats_first.ged_calls, 1)
        assert stats_second.memo_hits > 0
