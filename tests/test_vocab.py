"""Interned-signature pipeline: vocabulary unit tests + parity properties.

The interned pipeline (``GSimJoinOptions(interned=True)``, the default)
must be observationally identical to the retained object-key reference
path (``interned=False``) — same result pairs in the same order, same
prune-counter statistics — across join variants, thresholds, q-gram
lengths, directed graphs, streaming index inserts and the gram-less
(unprunable) edge case.  These tests are the contract that lets the
fast path evolve while the reference path stays a frozen oracle.
"""

import random

import pytest

from repro import GSimJoinOptions, assign_ids, gsim_join, gsim_join_rs
from repro.core.search import GSimIndex
from repro.core.result import JoinStatistics
from repro.grams.minedit import min_prefix_length, min_prefix_length_direct
from repro.grams.qgrams import extract_qgrams
from repro.grams.vocab import QGramVocabulary, build_vocabulary
from repro.graph.generators import random_labeled_graph

from .test_join import molecule_collection

#: Every statistic that must not depend on the key representation
#: (timings excluded, ged_time excluded — only *what* work happened).
PARITY_STATS = (
    "cand1",
    "cand2",
    "results",
    "pruned_by_global_label",
    "pruned_by_count",
    "pruned_by_local_label",
    "total_prefix_length",
    "unprunable_graphs",
    "index_distinct_keys",
    "index_postings",
    "index_bytes",
    "ged_calls",
    "ged_expansions",
)

VARIANTS = {
    "basic": GSimJoinOptions.basic,
    "minedit": GSimJoinOptions.minedit,
    "full": GSimJoinOptions.full,
    "extended": GSimJoinOptions.extended,
}


def assert_stat_parity(a: JoinStatistics, b: JoinStatistics) -> None:
    for name in PARITY_STATS:
        assert getattr(a, name) == getattr(b, name), name


def labeled_collection(n, seed, directed=False, num_labels=3):
    rng = random.Random(seed)
    vertex_labels = [f"L{i}" for i in range(num_labels)]
    edge_labels = ["-", "="]
    graphs = []
    for _ in range(n):
        nv = rng.randint(4, 9)
        max_edges = nv * (nv - 1) // (1 if directed else 2)
        ne = rng.randint(nv - 1, min(max_edges, nv + 4))
        graphs.append(
            random_labeled_graph(
                rng, nv, ne, vertex_labels, edge_labels, directed=directed
            )
        )
    return assign_ids(graphs)


class TestQGramVocabulary:
    def test_ids_follow_rank_order(self):
        vocab = QGramVocabulary([("A",), ("B",), ("C",)])
        assert vocab.get(("A",)) == 0
        assert vocab.get(("B",)) == 1
        assert vocab.get(("C",)) == 2
        assert vocab.frozen_size == 3
        assert len(vocab) == 3
        assert ("A",) in vocab and ("Z",) not in vocab
        assert vocab.key_of(1) == ("B",)

    def test_build_ranks_by_df_then_repr(self):
        graphs = molecule_collection(8, seed=11)
        profiles = [extract_qgrams(g, 2) for g in graphs]
        vocab = build_vocabulary(profiles)
        df = {}
        for profile in profiles:
            for key in profile.key_counts:
                df[key] = df.get(key, 0) + 1
        keys = [vocab.key_of(i) for i in range(len(vocab))]
        tokens = [(df[key], repr(key)) for key in keys]
        assert tokens == sorted(tokens)

    def test_intern_assigns_overflow_past_frozen_range(self):
        vocab = QGramVocabulary([("A",)])
        assert vocab.get(("NEW",)) is None
        new_id = vocab.intern(("NEW",))
        assert new_id == 1 == vocab.frozen_size
        assert vocab.intern(("NEW",)) == new_id  # idempotent
        assert vocab.get(("NEW",)) == new_id
        assert len(vocab) == 2

    def test_overflow_sorts_last_by_repr(self):
        vocab = QGramVocabulary([("A",), ("B",)])
        z = vocab.intern(("Z",))
        c = vocab.intern(("C",))
        tokens = [vocab.sort_token(i) for i in (0, 1, c, z)]
        assert tokens == sorted(tokens)  # frozen first, then C before Z
        assert all(vocab.sort_token(f) < vocab.sort_token(z) for f in (0, 1))

    def test_sort_profile_attaches_total_signature(self):
        graphs = molecule_collection(6, seed=12)
        profiles = [extract_qgrams(g, 2) for g in graphs]
        vocab = build_vocabulary(profiles)
        for profile in profiles:
            vocab.sort_profile(profile)
            assert profile.signature == sorted(profile.signature)
            assert profile.signature_total
            assert profile.signature_source is vocab
            assert [vocab.key_of(i) for i in profile.signature] == [
                gram.key for gram in profile.grams
            ]

    def test_sort_profile_with_overflow_marks_non_mergeable(self):
        graphs = molecule_collection(6, seed=13)
        profiles = [extract_qgrams(g, 2) for g in graphs]
        vocab = build_vocabulary(profiles[:3])  # the rest contain unseen keys
        unseen = [
            p for p in profiles[3:] if any(k not in vocab for k in p.key_counts)
        ]
        assert unseen, "seed must produce unseen keys"
        for profile in unseen:
            vocab.sort_profile(profile)
            assert not profile.signature_total
            tokens = [vocab.sort_token(i) for i in profile.signature]
            assert tokens == sorted(tokens)


class TestDirectPrefixParity:
    @pytest.mark.parametrize("tau", [0, 1, 2, 3])
    def test_direct_matches_double_binary_search(self, tau):
        graphs = molecule_collection(14, seed=21)
        profiles = [extract_qgrams(g, 3) for g in graphs]
        vocab = build_vocabulary(profiles)
        for profile in profiles:
            vocab.sort_profile(profile)
            assert min_prefix_length_direct(
                profile.grams, tau, profile.d_path
            ) == min_prefix_length(profile.grams, tau, profile.d_path)


class TestJoinParity:
    @pytest.mark.parametrize("variant", sorted(VARIANTS))
    def test_gsim_join_parity(self, variant):
        make = VARIANTS[variant]
        for seed in (31, 32):
            for tau, q in ((0, 1), (1, 2), (2, 3), (3, 4)):
                graphs = molecule_collection(10, seed=seed + 10 * tau)
                on = gsim_join(graphs, tau, make(q=q, interned=True))
                off = gsim_join(graphs, tau, make(q=q, interned=False))
                assert on.pairs == off.pairs, (variant, seed, tau, q)
                assert_stat_parity(on.stats, off.stats)

    def test_gsim_join_rs_parity(self):
        outer = molecule_collection(8, seed=41)
        inner = molecule_collection(10, seed=42)
        for tau, q in ((1, 3), (2, 4)):
            on = gsim_join_rs(outer, inner, tau, GSimJoinOptions.full(q=q))
            off = gsim_join_rs(
                outer, inner, tau, GSimJoinOptions.full(q=q, interned=False)
            )
            assert on.pairs == off.pairs
            assert_stat_parity(on.stats, off.stats)

    @pytest.mark.parametrize("tau", [1, 2])
    def test_directed_graphs_parity(self, tau):
        graphs = labeled_collection(12, seed=43, directed=True)
        on = gsim_join(graphs, tau, GSimJoinOptions.full(q=2))
        off = gsim_join(graphs, tau, GSimJoinOptions.full(q=2, interned=False))
        assert on.pairs == off.pairs
        assert_stat_parity(on.stats, off.stats)

    def test_gramless_unprunable_parity(self):
        # Graphs smaller than q+1 vertices have no q-grams at all: they
        # are unprunable and must still join correctly on both paths.
        rng = random.Random(44)
        graphs = []
        for _ in range(8):
            nv = rng.randint(1, 3)  # below q+1 for q=3
            ne = rng.randint(0, max(0, nv * (nv - 1) // 2))
            graphs.append(
                random_labeled_graph(rng, nv, ne, ["A", "B"], ["-"])
            )
        graphs = assign_ids(graphs)
        for tau in (0, 1, 2):
            on = gsim_join(graphs, tau, GSimJoinOptions.full(q=3))
            off = gsim_join(graphs, tau, GSimJoinOptions.full(q=3, interned=False))
            assert on.pairs == off.pairs
            assert_stat_parity(on.stats, off.stats)
            assert on.stats.unprunable_graphs == len(graphs)


class TestSearchParity:
    def _indexes(self, graphs, tau_max, q):
        on = GSimIndex(graphs, tau_max=tau_max, options=GSimJoinOptions.full(q=q))
        off = GSimIndex(
            graphs,
            tau_max=tau_max,
            options=GSimJoinOptions.full(q=q, interned=False),
        )
        return on, off

    def test_query_parity(self):
        graphs = molecule_collection(14, seed=51)
        on, off = self._indexes(graphs, tau_max=3, q=3)
        for tau in (0, 1, 2, 3):
            for g in graphs[:6]:
                stats_on, stats_off = JoinStatistics(), JoinStatistics()
                assert on.query(g, tau, stats_on) == off.query(g, tau, stats_off)
                assert_stat_parity(stats_on, stats_off)

    def test_streaming_add_and_unknown_key_query_parity(self):
        graphs = molecule_collection(12, seed=52)
        on, off = self._indexes(graphs[:6], tau_max=2, q=3)
        # Streaming inserts introduce keys unseen at construction —
        # the vocabulary hands out overflow ids (sorting last), the
        # reference ordering uses its unknown-key token; results must
        # keep matching.
        novel = labeled_collection(4, seed=53, num_labels=5)
        for i, g in enumerate(novel):
            g.graph_id = f"novel-{i}"
        for g in graphs[6:] + novel:
            on.add(g)
            off.add(g)
        strangers = labeled_collection(2, seed=54)
        for i, g in enumerate(strangers):
            g.graph_id = f"stranger-{i}"
        queries = graphs[:3] + novel[:2] + strangers
        for tau in (1, 2):
            for g in queries:
                stats_on, stats_off = JoinStatistics(), JoinStatistics()
                assert on.query(g, tau, stats_on) == off.query(g, tau, stats_off)
                assert_stat_parity(stats_on, stats_off)
