"""Tests for the inverted index."""

from repro.core import InvertedIndex


class TestInvertedIndex:
    def test_empty(self):
        index = InvertedIndex()
        assert len(index) == 0
        assert list(index.probe(("A",))) == []
        assert index.size_bytes == 0

    def test_add_and_probe(self):
        index = InvertedIndex()
        index.add(("A", "x", "B"), 0)
        index.add(("A", "x", "B"), 1)
        index.add(("C",), 0)
        assert list(index.probe(("A", "x", "B"))) == [0, 1]
        assert list(index.probe(("C",))) == [0]
        assert index.num_distinct_keys == 2
        assert index.num_postings == 3

    def test_duplicate_postings_kept(self):
        # A graph with two identical prefix grams posts twice, matching
        # Algorithm 1's per-position insertion.
        index = InvertedIndex()
        index.add(("A",), 7)
        index.add(("A",), 7)
        assert list(index.probe(("A",))) == [7, 7]

    def test_add_all(self):
        index = InvertedIndex()
        index.add_all([("A",), ("B",), ("A",)], 3)
        assert index.num_postings == 3
        assert index.num_distinct_keys == 2

    def test_size_accounting(self):
        index = InvertedIndex()
        index.add(("A",), 0)
        index.add(("A",), 1)
        index.add(("B",), 0)
        # 2 distinct keys * 4 bytes + 3 postings * 4 bytes.
        assert index.size_bytes == 2 * 4 + 3 * 4
