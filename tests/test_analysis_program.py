"""Tests for the whole-program analysis layer (``repro.analysis.program``).

Each program-scoped rule — ``fork-safety``, ``determinism-taint``, and
``budget-threading`` — is exercised against a dedicated fixture pair
under ``tests/fixtures/program/``: one file that must trigger the rule
at known lines and a clean counterpart that must not.  The suite also
unit-tests the ``ProgramModel`` building blocks (worker-root discovery,
entry points, reachability, name resolution, verifier reachability)
directly, so a regression points at the broken layer rather than just
"the rule stopped firing".
"""

from pathlib import Path

from repro.analysis.engine import load_module, run_analysis
from repro.analysis.program import ModuleContext, ProgramModel, extract_facts

FIXTURES = Path(__file__).parent / "fixtures" / "program"

PROGRAM_RULES = {"fork-safety", "determinism-taint", "budget-threading"}


def program_findings(name):
    """All program-rule findings for one fixture, as (line, rule) pairs."""
    findings = run_analysis([FIXTURES / f"{name}.py"])
    return sorted((f.line, f.rule) for f in findings if f.rule in PROGRAM_RULES)


def model_for(name):
    """Build a ProgramModel over a single fixture module."""
    facts = extract_facts(load_module(FIXTURES / f"{name}.py"))
    return ProgramModel([facts])


# ---------------------------------------------------------------------------
# fork-safety
# ---------------------------------------------------------------------------


def test_fork_safety_flags_all_three_write_kinds():
    found = program_findings("fork_bad")
    assert found == [
        (17, "fork-safety"),  # _CACHE[i] = ... (global-subscript)
        (18, "fork-safety"),  # acc.append(i) (default-mutation)
        (19, "fork-safety"),  # with _LOCK: (unpicklable-capture)
    ]


def test_fork_safety_messages_name_worker_root_and_state():
    findings = [
        f
        for f in run_analysis([FIXTURES / "fork_bad.py"])
        if f.rule == "fork-safety"
    ]
    for f in findings:
        assert "'_helper'" in f.message and "'_work'" in f.message
    details = "\n".join(f.message for f in findings)
    assert "_CACHE" in details and "acc" in details and "_LOCK" in details


def test_fork_safety_clean_counterpart():
    assert program_findings("fork_ok") == []


def test_fork_safety_flags_spilling_through_shared_state():
    """The sharded-join worker anti-pattern: a worker-reachable helper
    that records results into a module-level spill index, a shared
    buffer default, and a captured lock — all three must fire."""
    found = program_findings("fork_spill_bad")
    assert found == [
        (18, "fork-safety"),  # _SPILL_INDEX[key] = ... (global-subscript)
        (19, "fork-safety"),  # buffer.append(...) (default-mutation)
        (20, "fork-safety"),  # with _SPILL_LOCK: (unpicklable-capture)
    ]


def test_fork_safety_passes_return_and_spill_in_parent():
    """The real driver's contract — workers return records, the parent
    is the only writer of spill state — produces zero findings."""
    assert program_findings("fork_spill_ok") == []


def test_fork_safety_initializer_global_writes_exempt():
    """_init writes _CACHE in both fixtures yet is never flagged."""
    for name in ("fork_bad", "fork_ok"):
        findings = run_analysis([FIXTURES / f"{name}.py"])
        assert not any(
            "_init" in f.message for f in findings if f.rule == "fork-safety"
        )


# ---------------------------------------------------------------------------
# determinism-taint
# ---------------------------------------------------------------------------


def test_determinism_taint_flags_set_flows_into_sinks():
    found = program_findings("taint_bad")
    assert found == [
        (9, "determinism-taint"),  # StageStatistics.__init__ attr store
        (29, "determinism-taint"),  # set iteration -> pairs.append
        (31, "determinism-taint"),  # set.pop() -> journal.append
        (32, "determinism-taint"),  # iter(set) -> StageStatistics(...)
        (39, "determinism-taint"),  # taint via unordered_ids() return
    ]


def test_determinism_taint_messages_name_source_and_sink():
    messages = {
        f.line: f.message
        for f in run_analysis([FIXTURES / "taint_bad.py"])
        if f.rule == "determinism-taint"
    }
    assert "iteration over a set" in messages[29]
    assert "result accumulation" in messages[29]
    assert "set.pop()" in messages[31]
    assert "checkpoint-journal" in messages[31]
    assert "StageStatistics" in messages[32]
    # The indirect flow cites the source line inside unordered_ids().
    assert "(line 21)" in messages[39]


def test_determinism_taint_sanitizers_keep_counterpart_clean():
    assert program_findings("taint_ok") == []


# ---------------------------------------------------------------------------
# budget-threading
# ---------------------------------------------------------------------------


def test_budget_threading_flags_dropped_budget():
    found = program_findings("budget_bad")
    assert found == [
        (18, "budget-threading"),  # run_stage -> verify_pair(g1, g2)
        (42, "budget-threading"),  # Executor.verify_candidate -> Verify.run
    ]


def test_budget_threading_messages_name_caller_and_callee():
    messages = {
        f.line: f.message
        for f in run_analysis([FIXTURES / "budget_bad.py"])
        if f.rule == "budget-threading"
    }
    assert "'run_stage'" in messages[18] and "'verify_pair'" in messages[18]
    assert "'Executor.verify_candidate'" in messages[42]
    assert "'Verify.run'" in messages[42]


def test_budget_threading_clean_counterpart():
    assert program_findings("budget_ok") == []


def test_budget_threading_flags_portfolio_verify_dispatch():
    """An unresolved ``backend.verify(r, s, tau)`` attr call from a
    budget-holding caller is a drop at the portfolio dispatch point."""
    found = program_findings("portfolio_bad")
    assert found == [
        (22, "budget-threading"),  # run_verify_stage -> backend.verify
    ]
    messages = [
        f.message
        for f in run_analysis([FIXTURES / "portfolio_bad.py"])
        if f.rule == "budget-threading"
    ]
    assert "'run_verify_stage'" in messages[0]
    assert "VerifierBackend" in messages[0]


def test_budget_threading_portfolio_clean_counterpart():
    """Positional or keyword budget binding at the dispatch is clean."""
    assert program_findings("portfolio_ok") == []


# ---------------------------------------------------------------------------
# ProgramModel building blocks
# ---------------------------------------------------------------------------


def test_worker_roots_found_from_submit_and_initializer():
    model = model_for("fork_bad")
    assert "fork_bad._work" in model.worker_roots
    assert "fork_bad._init" in model.initializers


def test_reachability_includes_transitive_helper():
    model = model_for("fork_bad")
    reachable = model.reachable({"fork_bad._work"})
    assert "fork_bad._helper" in reachable


def test_resolution_links_bare_and_method_calls():
    model = model_for("budget_bad")
    run_stage = model.functions["budget_bad.run_stage"]
    resolved = {c.get("resolved") for c in run_stage["calls"]}
    assert "budget_bad.verify_pair" in resolved
    candidate = model.functions["budget_bad.Executor.verify_candidate"]
    resolved = {c.get("resolved") for c in candidate["calls"]}
    assert "budget_bad.Verify.run" in resolved


def test_reaches_verifier_by_name_and_transitively():
    model = model_for("budget_bad")
    assert model.reaches_verifier("budget_bad.dfs_ged")
    assert model.reaches_verifier("budget_bad.verify_pair")
    assert model.reaches_verifier("budget_bad.Verify.run")
    assert not model.reaches_verifier("budget_bad.Executor.__init__")


def test_module_context_tracks_sets_and_unpicklables():
    ctx = ModuleContext(load_module(FIXTURES / "fork_bad.py"))
    assert "_LOCK" in ctx.module_unpicklable
    assert "_CACHE" in ctx.module_level_names


def test_container_lookup_launders_key_taint(tmp_path):
    """``d.get(key)`` returns a stored value, not the key — key taint
    must not reach the result; a tainted *default* still must."""
    path = tmp_path / "lookup.py"
    path.write_text(
        '"""Module."""\n'
        "\n"
        "\n"
        "def by_key(cache, g):\n"
        '    """id() used only as a lookup key: benign."""\n'
        "    pairs = []\n"
        "    pairs.append(cache.get(id(g)))\n"
        "    return pairs\n"
        "\n"
        "\n"
        "def by_default(cache, g):\n"
        '    """id() returned via the lookup default: flagged."""\n'
        "    pairs = []\n"
        "    pairs.append(cache.get(0, id(g)))\n"
        "    return pairs\n"
    )
    found = sorted(
        (f.line, f.rule)
        for f in run_analysis([path])
        if f.rule in PROGRAM_RULES
    )
    assert found == [(14, "determinism-taint")]
