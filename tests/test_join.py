"""Tests for the GSimJoin algorithm and its variants."""

import random

import pytest

from repro import GSimJoinOptions, assign_ids, gsim_join, gsim_join_rs, naive_join
from repro.datasets import aids_like, figure1_graphs, protein_like
from repro.exceptions import ParameterError
from repro.graph import perturb
from repro.graph.generators import random_molecule

from .conftest import build_graph, path_graph


def molecule_collection(n, seed, cluster=True):
    rng = random.Random(seed)
    graphs = []
    for _ in range(n // 2):
        base = random_molecule(rng, rng.randint(5, 12))
        graphs.append(base)
        if cluster:
            graphs.append(
                perturb(base, rng.randint(1, 3), rng, ["C", "N", "O"], ["-", "="])
            )
    return assign_ids(graphs)


class TestValidation:
    def test_negative_tau_rejected(self):
        with pytest.raises(ParameterError):
            gsim_join([], tau=-1)

    def test_missing_ids_rejected(self):
        g = path_graph(["A", "B"])  # no graph_id
        with pytest.raises(ParameterError, match="ids"):
            gsim_join([g], tau=1)

    def test_duplicate_ids_rejected(self):
        a = path_graph(["A", "B"], graph_id=1)
        b = path_graph(["A", "C"], graph_id=1)
        with pytest.raises(ParameterError, match="distinct"):
            gsim_join([a, b], tau=1)

    def test_empty_collection(self):
        result = gsim_join([], tau=1)
        assert result.pairs == []
        assert result.stats.num_graphs == 0


class TestSmallCollections:
    def test_figure1_pair_found(self):
        r, s = figure1_graphs()
        assign_ids([r, s])
        assert len(gsim_join([r, s], tau=3, options=GSimJoinOptions.full(q=1))) == 1
        assert len(gsim_join([r, s], tau=2, options=GSimJoinOptions.full(q=1))) == 0

    def test_tau_zero_groups_isomorphic_graphs(self):
        a = path_graph(["A", "B"], graph_id=0)
        b = path_graph(["A", "B"], graph_id=1).relabel_vertices({0: 5, 1: 6})
        c = path_graph(["A", "C"], graph_id=2)
        result = gsim_join([a, b, c], tau=0, options=GSimJoinOptions.full(q=1))
        assert result.pair_set() == {(0, 1)}

    def test_pair_order_follows_scan(self):
        graphs = molecule_collection(12, seed=5)
        result = gsim_join(graphs, tau=2)
        positions = {g.graph_id: i for i, g in enumerate(graphs)}
        for a, b in result.pairs:
            assert positions[a] < positions[b]

    def test_duplicate_free_results(self):
        graphs = molecule_collection(16, seed=6)
        result = gsim_join(graphs, tau=2)
        assert len(result.pairs) == len(result.pair_set())


class TestAgainstNaive:
    @pytest.mark.parametrize("tau", [0, 1, 2, 3])
    def test_molecules_all_variants(self, tau):
        graphs = molecule_collection(20, seed=tau + 10)
        expected = naive_join(graphs, tau, use_size_filter=False).pair_set()
        for options in (
            GSimJoinOptions.basic(q=2),
            GSimJoinOptions.minedit(q=2),
            GSimJoinOptions.full(q=2),
        ):
            got = gsim_join(graphs, tau, options=options)
            assert got.pair_set() == expected

    def test_mixed_q_values(self):
        graphs = molecule_collection(16, seed=42)
        expected = naive_join(graphs, 2).pair_set()
        for q in (0, 1, 3, 4):
            got = gsim_join(graphs, 2, options=GSimJoinOptions.full(q=q))
            assert got.pair_set() == expected, f"q={q}"

    def test_aids_like_integration(self):
        graphs = aids_like(num_graphs=30, seed=9)
        expected = naive_join(graphs, 1).pair_set()
        got = gsim_join(graphs, 1, options=GSimJoinOptions.full(q=4))
        assert got.pair_set() == expected

    def test_protein_like_integration(self):
        graphs = protein_like(num_graphs=20, seed=11, avg_vertices=14.0)
        expected = naive_join(graphs, 2).pair_set()
        got = gsim_join(graphs, 2, options=GSimJoinOptions.full(q=3))
        assert got.pair_set() == expected

    def test_heterogeneous_sizes_with_tiny_graphs(self):
        """Tiny graphs have no q-grams at q=3; the unprunable path must
        keep them joinable."""
        tiny1 = path_graph(["C", "C"], graph_id="t1")
        tiny2 = path_graph(["C", "C"], graph_id="t2")
        tiny3 = build_graph(["C"], [], graph_id="t3")
        graphs = molecule_collection(10, seed=77) + [tiny1, tiny2, tiny3]
        expected = naive_join(graphs, 2).pair_set()
        got = gsim_join(graphs, 2, options=GSimJoinOptions.full(q=3))
        assert got.pair_set() == expected
        assert ("t1", "t2") in got.pair_set()


class TestStatistics:
    def test_cand_hierarchy(self):
        graphs = molecule_collection(20, seed=3)
        result = gsim_join(graphs, tau=2)
        st = result.stats
        assert st.cand1 >= st.cand2 >= st.results
        assert st.results == len(result.pairs)
        assert st.num_graphs == 20

    def test_prefix_stats(self):
        graphs = molecule_collection(20, seed=4)
        basic = gsim_join(graphs, 2, options=GSimJoinOptions.basic(q=2)).stats
        minedit = gsim_join(graphs, 2, options=GSimJoinOptions.minedit(q=2)).stats
        assert minedit.avg_prefix_length <= basic.avg_prefix_length

    def test_timings_nonnegative(self):
        graphs = molecule_collection(12, seed=8)
        st = gsim_join(graphs, 1).stats
        assert st.index_time >= 0 and st.candidate_time >= 0 and st.verify_time >= 0
        assert st.total_time >= st.ged_time

    def test_summary_contains_counts(self):
        graphs = molecule_collection(12, seed=8)
        result = gsim_join(graphs, 1)
        text = result.stats.summary()
        assert f"results={result.stats.results}" in text


class TestRSJoin:
    def test_rs_equals_filtered_cross_product(self):
        outer = molecule_collection(10, seed=21)
        inner = molecule_collection(10, seed=22)
        got = gsim_join_rs(outer, inner, tau=2)
        from repro.ged import ged_within

        expected = {
            (r.graph_id, s.graph_id)
            for r in outer
            for s in inner
            if ged_within(r, s, 2)
        }
        assert got.pair_set() == expected

    def test_rs_with_empty_sides(self):
        inner = molecule_collection(4, seed=1)
        assert gsim_join_rs([], inner, tau=1).pairs == []
        assert gsim_join_rs(inner, [], tau=1).pairs == []
