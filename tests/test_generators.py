"""Tests for single-graph generators and collection statistics."""

import pytest

from repro.exceptions import ParameterError
from repro.graph import collection_statistics
from repro.graph.generators import (
    random_labeled_graph,
    random_molecule,
    random_protein,
)
from repro.graph.graph import Graph

from .conftest import build_graph


class TestRandomMolecule:
    def test_size(self, rng):
        g = random_molecule(rng, 20)
        assert g.num_vertices == 20
        assert g.num_edges >= 19  # at least a spanning tree

    def test_connected(self, rng):
        g = random_molecule(rng, 15)
        assert len(g.connected_components()) == 1

    def test_respects_max_degree(self, rng):
        for _ in range(10):
            g = random_molecule(rng, 12, max_degree=3)
            assert g.max_degree() <= 3

    def test_single_vertex(self, rng):
        g = random_molecule(rng, 1)
        assert g.num_vertices == 1 and g.num_edges == 0

    def test_invalid_parameters(self, rng):
        with pytest.raises(ParameterError):
            random_molecule(rng, 0)
        with pytest.raises(ParameterError):
            random_molecule(rng, 5, max_degree=0)

    def test_carbon_dominates(self, rng):
        g = random_molecule(rng, 200)
        labels = g.vertex_label_multiset()
        assert labels.most_common(1)[0][0] == "C"


class TestRandomProtein:
    def test_size_and_backbone(self, rng):
        g = random_protein(rng, 25)
        assert g.num_vertices == 25
        for v in range(24):
            assert g.edge_label(v, v + 1) == "seq"

    def test_density_close_to_target(self, rng):
        total_deg = 0
        total_v = 0
        for _ in range(10):
            g = random_protein(rng, 30, avg_degree=3.8)
            total_deg += 2 * g.num_edges
            total_v += g.num_vertices
        assert 3.2 <= total_deg / total_v <= 4.2

    def test_labels_from_alphabet(self, rng):
        g = random_protein(rng, 20)
        assert set(g.vertex_label_multiset()) <= {"helix", "sheet", "loop"}
        assert set(g.edge_label_multiset()) <= {"seq", "space"}

    def test_invalid_size(self, rng):
        with pytest.raises(ParameterError):
            random_protein(rng, 0)


class TestRandomLabeledGraph:
    def test_exact_counts(self, rng):
        g = random_labeled_graph(rng, 6, 7, ["A"], ["x"])
        assert g.num_vertices == 6 and g.num_edges == 7

    def test_too_many_edges_rejected(self, rng):
        with pytest.raises(ParameterError, match="maximum"):
            random_labeled_graph(rng, 3, 4, ["A"], ["x"])


class TestCollectionStatistics:
    def test_empty_collection(self):
        stats = collection_statistics([])
        assert stats.num_graphs == 0
        assert stats.avg_vertices == 0.0

    def test_known_collection(self):
        g1 = build_graph(["A", "B"], [(0, 1, "x")])
        g2 = build_graph(["A", "C", "C"], [(0, 1, "y"), (1, 2, "y")])
        stats = collection_statistics([g1, g2])
        assert stats.num_graphs == 2
        assert stats.avg_vertices == 2.5
        assert stats.avg_edges == 1.5
        assert stats.num_vertex_labels == 3  # A, B, C
        assert stats.num_edge_labels == 2  # x, y
        assert stats.max_degree == 2
        assert stats.avg_degree == pytest.approx(2 * 3 / 5)

    def test_table_row_format(self):
        g = build_graph(["A"], [])
        row = collection_statistics([g]).as_table_row("TEST")
        assert "TEST" in row and "|R|=1" in row

    def test_isolated_vertices_only(self):
        g = Graph()
        g.add_vertex(0, "A")
        stats = collection_statistics([g])
        assert stats.num_edge_labels == 0
        assert stats.avg_degree == 0.0
