"""Tests for the multi-core join."""

import pytest

from repro import GSimJoinOptions, gsim_join, gsim_join_parallel
from repro.exceptions import ParameterError

from .test_join import molecule_collection


class TestParallelJoin:
    def test_invalid_workers(self):
        with pytest.raises(ParameterError):
            gsim_join_parallel([], tau=1, workers=0)
        with pytest.raises(ParameterError):
            gsim_join_parallel([], tau=1, chunk_size=0)

    def test_empty_collection(self):
        result = gsim_join_parallel([], tau=1, workers=2)
        assert result.pairs == []

    def test_single_worker_matches_sequential(self):
        graphs = molecule_collection(20, seed=70)
        sequential = gsim_join(graphs, tau=2)
        parallel = gsim_join_parallel(graphs, tau=2, workers=1)
        assert parallel.pair_set() == sequential.pair_set()
        assert parallel.stats.cand1 == sequential.stats.cand1
        assert parallel.stats.cand2 == sequential.stats.cand2

    @pytest.mark.parametrize("tau", [1, 2])
    def test_pool_matches_sequential(self, tau):
        graphs = molecule_collection(24, seed=71)
        sequential = gsim_join(graphs, tau=tau)
        parallel = gsim_join_parallel(graphs, tau=tau, workers=2, chunk_size=3)
        assert parallel.pair_set() == sequential.pair_set()
        assert parallel.stats.results == sequential.stats.results

    def test_all_variants(self):
        graphs = molecule_collection(16, seed=72)
        for options in (
            GSimJoinOptions.basic(q=3),
            GSimJoinOptions.full(q=3),
            GSimJoinOptions.extended(q=3),
        ):
            sequential = gsim_join(graphs, tau=2, options=options)
            parallel = gsim_join_parallel(
                graphs, tau=2, options=options, workers=2
            )
            assert parallel.pair_set() == sequential.pair_set()

    def test_stats_aggregated(self):
        graphs = molecule_collection(20, seed=73)
        result = gsim_join_parallel(graphs, tau=2, workers=2)
        st = result.stats
        assert st.cand1 >= st.cand2 >= st.results
        assert st.ged_calls == st.cand2

    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize("interned", [True, False])
    def test_worker_ordering_parity(self, workers, interned):
        """Workers must apply the frozen global ordering.

        Historically ``_profile_of`` re-extracted profiles without
        sorting them, so mismatch-instance selection and the improved A*
        vertex order silently diverged from the sequential join —
        ``ged_expansions`` is the sensitive detector (pairs can agree
        while the search does different work).
        """
        graphs = molecule_collection(24, seed=74)
        options = GSimJoinOptions.full(q=3, interned=interned)
        sequential = gsim_join(graphs, tau=2, options=options)
        parallel = gsim_join_parallel(
            graphs, tau=2, options=options, workers=workers, chunk_size=3
        )
        assert parallel.pairs == sequential.pairs
        for field in (
            "cand1",
            "cand2",
            "results",
            "pruned_by_global_label",
            "pruned_by_count",
            "pruned_by_local_label",
            "ged_calls",
            "ged_expansions",
        ):
            assert getattr(parallel.stats, field) == getattr(
                sequential.stats, field
            ), field
