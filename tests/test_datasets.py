"""Tests for the synthetic dataset builders and paper-figure graphs."""

import pytest

from repro.datasets import aids_like, figure1_graphs, figure4_graphs, protein_like
from repro.exceptions import ParameterError
from repro.graph import collection_statistics


class TestAidsLike:
    def test_deterministic_by_seed(self):
        a = aids_like(num_graphs=20, seed=5)
        b = aids_like(num_graphs=20, seed=5)
        assert all(x == y for x, y in zip(a, b))

    def test_different_seed_differs(self):
        a = aids_like(num_graphs=20, seed=5)
        b = aids_like(num_graphs=20, seed=6)
        assert any(x != y for x, y in zip(a, b))

    def test_matches_table1_profile(self):
        stats = collection_statistics(aids_like(num_graphs=120, seed=1))
        assert stats.num_graphs == 120
        assert 20 <= stats.avg_vertices <= 32  # paper: 25.6
        assert stats.avg_edges >= stats.avg_vertices - 1  # paper: 27.5
        assert stats.avg_edges <= stats.avg_vertices * 1.4
        assert stats.num_edge_labels <= 3
        assert stats.avg_degree < 3.0  # sparse

    def test_ids_distinct(self):
        graphs = aids_like(num_graphs=30, seed=2)
        ids = [g.graph_id for g in graphs]
        assert len(set(ids)) == len(ids)

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            aids_like(num_graphs=0)
        with pytest.raises(ParameterError):
            aids_like(num_graphs=10, cluster_fraction=1.5)


class TestProteinLike:
    def test_matches_table1_profile(self):
        stats = collection_statistics(protein_like(num_graphs=60, seed=1))
        assert stats.num_graphs == 60
        assert 24 <= stats.avg_vertices <= 42  # paper: 32.6
        assert 3.0 <= stats.avg_degree <= 4.6  # paper: ~3.8 -> dense
        assert stats.num_vertex_labels <= 3
        assert stats.num_edge_labels <= 2

    def test_denser_than_aids(self):
        aids = collection_statistics(aids_like(num_graphs=40, seed=3))
        prot = collection_statistics(protein_like(num_graphs=40, seed=3))
        assert prot.avg_degree > aids.avg_degree

    def test_deterministic_by_seed(self):
        a = protein_like(num_graphs=10, seed=9)
        b = protein_like(num_graphs=10, seed=9)
        assert all(x == y for x, y in zip(a, b))

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            protein_like(num_graphs=-1)


class TestPaperFigures:
    def test_figure1_shapes(self):
        r, s = figure1_graphs()
        assert (r.num_vertices, r.num_edges) == (4, 4)
        assert (s.num_vertices, s.num_edges) == (5, 5)
        assert r.vertex_label_multiset() == {"C": 3, "O": 1}
        assert s.vertex_label_multiset() == {"C": 3, "O": 1, "N": 1}

    def test_figure4_shapes(self):
        r, s = figure4_graphs()
        assert (r.num_vertices, r.num_edges) == (7, 7)
        assert (s.num_vertices, s.num_edges) == (8, 8)
        assert s.vertex_label_multiset()["N"] == 1
