"""Tests for the GSimIndex similarity-selection index."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import GSimIndex, GSimJoinOptions
from repro.exceptions import ParameterError
from repro.ged import ged_within, graph_edit_distance

from .conftest import path_graph
from .test_join import molecule_collection
from .test_soundness import random_collection


def naive_selection(graphs, query, tau):
    return {
        g.graph_id
        for g in graphs
        if g.graph_id != query.graph_id and ged_within(query, g, tau)
    }


class TestConstruction:
    def test_empty_index(self):
        index = GSimIndex(tau_max=2)
        assert len(index) == 0
        assert index.query(path_graph(["A", "B"], graph_id="q"), tau=1) == []

    def test_negative_tau_max_rejected(self):
        with pytest.raises(ParameterError):
            GSimIndex(tau_max=-1)

    def test_graphs_need_ids(self):
        with pytest.raises(ParameterError, match="need an id"):
            GSimIndex([path_graph(["A"])], tau_max=1)

    def test_duplicate_ids_rejected(self):
        index = GSimIndex(tau_max=1)
        index.add(path_graph(["A"], graph_id=0))
        with pytest.raises(ParameterError, match="duplicate"):
            index.add(path_graph(["B"], graph_id=0))


class TestQueries:
    def test_query_validation(self):
        index = GSimIndex(molecule_collection(6, seed=1), tau_max=2)
        q = index.graphs[0]
        with pytest.raises(ParameterError, match="exceeds"):
            index.query(q, tau=3)
        with pytest.raises(ParameterError):
            index.query(q, tau=-1)

    def test_self_excluded_by_id(self):
        graphs = molecule_collection(8, seed=2)
        index = GSimIndex(graphs, tau_max=2)
        matches = index.query(graphs[0], tau=2)
        assert graphs[0].graph_id not in {gid for gid, _ in matches}

    def test_matches_report_exact_distance(self):
        graphs = molecule_collection(12, seed=3)
        index = GSimIndex(graphs, tau_max=3)
        for gid, dist in index.query(graphs[0], tau=3):
            other = next(g for g in graphs if g.graph_id == gid)
            assert dist == graph_edit_distance(graphs[0], other)
            assert dist <= 3

    def test_sorted_by_distance(self):
        graphs = molecule_collection(16, seed=4)
        index = GSimIndex(graphs, tau_max=3)
        for query in graphs[:4]:
            dists = [d for _, d in index.query(query, tau=3)]
            assert dists == sorted(dists)

    @pytest.mark.parametrize("tau", [0, 1, 2])
    def test_equals_naive_selection(self, tau):
        graphs = molecule_collection(14, seed=5)
        index = GSimIndex(graphs, tau_max=2)
        for query in graphs[:5]:
            got = {gid for gid, _ in index.query(query, tau=tau)}
            assert got == naive_selection(graphs, query, tau)

    def test_external_query_graph(self):
        graphs = molecule_collection(10, seed=6)
        index = GSimIndex(graphs, tau_max=2)
        external = graphs[0].copy(graph_id="external")
        got = {gid for gid, _ in index.query(external, tau=0)}
        assert graphs[0].graph_id in got


class TestIncremental:
    def test_add_after_queries(self):
        graphs = molecule_collection(10, seed=7)
        index = GSimIndex(graphs[:5], tau_max=2)
        for g in graphs[5:]:
            index.add(g)
        for query in graphs[:3]:
            got = {gid for gid, _ in index.query(query, tau=2)}
            assert got == naive_selection(graphs, query, tau=2)

    def test_unseen_qgram_keys_stay_sound(self):
        """Graphs added later may contain q-grams absent from the frozen
        ordering; selection must remain exact."""
        base = molecule_collection(6, seed=8)
        index = GSimIndex(base, tau_max=2)
        exotic = path_graph(["Zr", "Zr", "Zr", "Zr", "Zr"], graph_id="exotic")
        twin = path_graph(["Zr", "Zr", "Zr", "Zr", "Xx"], graph_id="twin")
        index.add(exotic)
        index.add(twin)
        got = {gid for gid, _ in index.query(exotic, tau=1)}
        assert "twin" in got


class TestPropertyEquivalence:
    @settings(max_examples=8, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=0, max_value=2),
    )
    def test_random_collections(self, seed, tau):
        graphs = random_collection(seed, size=8)
        index = GSimIndex(graphs, tau_max=2, options=GSimJoinOptions.full(q=2))
        for query in graphs[:3]:
            got = {gid for gid, _ in index.query(query, tau=tau)}
            assert got == naive_selection(graphs, query, tau)


class TestTopK:
    def test_k_validation(self):
        index = GSimIndex(molecule_collection(6, seed=10), tau_max=2)
        with pytest.raises(ParameterError):
            index.query_top_k(index.graphs[0], k=0)

    def test_returns_k_nearest(self):
        graphs = molecule_collection(16, seed=11)
        index = GSimIndex(graphs, tau_max=3)
        query = graphs[0]
        got = index.query_top_k(query, k=2)
        assert len(got) <= 2
        # Compare against a brute-force ranking within tau_max.
        all_matches = sorted(
            (
                (graph_edit_distance(query, g, threshold=3), repr(g.graph_id))
                for g in graphs
                if g.graph_id != query.graph_id
            ),
        )
        within = [m for m in all_matches if m[0] <= 3]
        expected_dists = [d for d, _ in within[:2]]
        assert [d for _, d in got] == expected_dists

    def test_fewer_than_k_within_tau_max(self):
        graphs = molecule_collection(8, seed=12)
        index = GSimIndex(graphs, tau_max=0)
        got = index.query_top_k(graphs[0], k=5)
        assert all(d == 0 for _, d in got)

    def test_distances_sorted(self):
        graphs = molecule_collection(14, seed=13)
        index = GSimIndex(graphs, tau_max=3)
        got = index.query_top_k(graphs[0], k=4)
        dists = [d for _, d in got]
        assert dists == sorted(dists)
