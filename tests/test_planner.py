"""Adaptive cost-based planner tests (``GSimJoinOptions(plan="auto")``).

Covers the static model (:mod:`repro.engine.planner`: statistics, unit
costs, sampled pass rates, the predicate-ordering rule), the
:class:`~repro.engine.planner.AdaptivePlanner` feedback loop (static /
calibration / drift triggers, hysteresis, freezing), and the engine's
end-to-end guarantees: every legal cascade permutation *and* the auto
planner produce bit-identical result pairs and undecided sets (a
hypothesis property over seeds, q and tau); an auto-planned join killed
mid-calibration resumes bit-identically from its journal, re-plan
events included; the parallel, sharded and search-index drivers agree
with the sequential join under auto; and the CLI's
``--auto-plan --explain-plan json`` report parses.
"""

import dataclasses
import itertools
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.core.join import GSimJoinOptions, gsim_join, gsim_join_rs
from repro.core.parallel import gsim_join_parallel
from repro.core.search import GSimIndex
from repro.core.sharded import gsim_join_sharded, result_fingerprint
from repro.engine import executor as executor_mod
from repro.engine.options import build_sorter
from repro.engine.plan import build_plan
from repro.engine.planner import (
    AdaptivePlanner,
    CollectionStats,
    advise_parameters,
    choose_order,
    collect_statistics,
    estimate_pass_rates,
    expected_cost,
    static_choice,
    unit_costs,
)
from repro.exceptions import InjectedFaultError
from repro.graph import save_graphs
from repro.grams.qgrams import extract_qgrams
from repro.runtime import FaultPlan

from .test_join import molecule_collection

TAU = 2

#: The full variant's pair-filter cascade (every legal plan is one of
#: its permutations).
FULL_FILTERS = ("global-label-filter", "count-filter", "local-label-filter")


def auto_options(base=None):
    """``base`` (default full) with the adaptive planner enabled."""
    return dataclasses.replace(
        base if base is not None else GSimJoinOptions.full(), plan="auto"
    )


def prepared_collection(n, seed, options):
    """Sorted profiles, labels and the plan's filters for a collection."""
    graphs = molecule_collection(n, seed=seed)
    profiles = [extract_qgrams(g, options.q) for g in graphs]
    sorter = build_sorter(profiles, options)
    for profile in profiles:
        sorter.sort_profile(profile)
    labels = [
        (g.vertex_label_multiset(), g.edge_label_multiset()) for g in graphs
    ]
    return profiles, labels, build_plan(options).pair_filters


# ----------------------------------------------------- the static model


class TestStaticModel:
    def test_collect_statistics_aggregates(self):
        profiles, labels, _ = prepared_collection(
            12, 5, GSimJoinOptions.full()
        )
        stats = collect_statistics(profiles, labels)
        assert stats.num_graphs == 12
        assert 5 <= stats.mean_vertices <= 15
        assert stats.mean_edges > 0
        assert stats.mean_signature > 0
        assert stats.mean_labels > 0
        assert 0 < stats.label_skew <= 1.0
        assert 0 < stats.df_skew <= 1.0

    def test_collect_statistics_empty(self):
        stats = collect_statistics([], [])
        assert stats == CollectionStats(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)

    def test_unit_costs_reflect_filter_complexity(self):
        stats = CollectionStats(10, 8.0, 8.0, 20.0, 4.0, 0.3, 0.5)
        costs = unit_costs(stats)
        assert set(costs) == {
            "global-label-filter",
            "count-filter",
            "local-label-filter",
            "multicover-filter",
        }
        assert all(c > 0 for c in costs.values())
        # The signature-walking filters must stay costlier than the
        # merge, which must stay costlier than the label intersection.
        assert (
            costs["global-label-filter"]
            < costs["count-filter"]
            < costs["local-label-filter"]
            < costs["multicover-filter"]
        )

    def test_expected_cost_formula(self):
        rates = {"a": 0.5, "b": 0.2}
        costs = {"a": 1.0, "b": 2.0}
        # c_a + p_a * c_b
        assert expected_cost(("a", "b"), rates, costs) == pytest.approx(2.0)
        # c_b + p_b * c_a
        assert expected_cost(("b", "a"), rates, costs) == pytest.approx(2.2)

    def test_choose_order_ranks_by_cost_per_pruned(self):
        rates = {"a": 0.9, "b": 0.5}
        costs = {"a": 1.0, "b": 2.0}
        # rank(a) = 1/0.1 = 10, rank(b) = 2/0.5 = 4 -> b first.
        assert choose_order(("a", "b"), rates, costs) == ("b", "a")

    def test_choose_order_never_pruning_goes_last(self):
        rates = {"a": 1.0, "b": 0.99}
        costs = {"a": 0.1, "b": 5.0}
        assert choose_order(("a", "b"), rates, costs) == ("b", "a")

    def test_choose_order_ties_break_on_name(self):
        rates = {"x": 0.5, "m": 0.5}
        costs = {"x": 1.0, "m": 1.0}
        assert choose_order(("x", "m"), rates, costs) == ("m", "x")

    def test_choose_order_minimizes_expected_cost(self):
        rates = {"a": 0.3, "b": 0.7, "c": 0.05}
        costs = {"a": 1.0, "b": 0.5, "c": 4.0}
        best = choose_order(("a", "b", "c"), rates, costs)
        best_cost = expected_cost(best, rates, costs)
        for order in itertools.permutations(("a", "b", "c")):
            assert best_cost <= expected_cost(order, rates, costs) + 1e-12

    def test_estimate_pass_rates_bounds_and_determinism(self):
        options = GSimJoinOptions.full()
        profiles, labels, filters = prepared_collection(14, 7, options)
        first = estimate_pass_rates(profiles, labels, TAU, filters)
        second = estimate_pass_rates(profiles, labels, TAU, filters)
        assert first == second
        assert set(first) == set(FULL_FILTERS)
        assert all(0.0 <= rate <= 1.0 for rate in first.values())

    def test_static_choice_returns_permutation(self):
        options = GSimJoinOptions.full()
        profiles, labels, filters = prepared_collection(14, 9, options)
        order, rates, costs = static_choice(profiles, labels, TAU, filters)
        assert sorted(order) == sorted(FULL_FILTERS)
        assert set(rates) == set(FULL_FILTERS)
        assert set(costs) >= set(FULL_FILTERS)

    def test_advise_parameters_sparse_vs_dense(self):
        sparse = CollectionStats(10, 8.0, 8.0, 10.0, 3.0, 0.3, 0.4)
        dense = CollectionStats(10, 30.0, 60.0, 80.0, 5.0, 0.3, 0.4)
        assert advise_parameters(sparse, 4, 2)["recommended_q"] == 3
        assert advise_parameters(dense, 4, 2)["recommended_q"] == 4
        assert advise_parameters(dense, 4, 0)["recommended_prefix"] == (
            "basic-prefix"
        )
        assert advise_parameters(dense, 4, 2)["recommended_prefix"] == (
            "minedit-prefix"
        )
        assert advise_parameters(sparse, 4, 2)["current_q"] == 4


# ------------------------------------------------ the adaptive planner


class _StubFilter:
    """Name/tag carrier for direct planner tests (prune never called)."""

    def __init__(self, name, tag):
        self.name = name
        self.tag = tag


def _planner(static_rates, **kwargs):
    filters = [_StubFilter("a", "ta"), _StubFilter("b", "tb")]
    costs = {"a": 1.0, "b": 1.0}
    return AdaptivePlanner(filters, static_rates, costs, **kwargs)


class TestAdaptivePlanner:
    def test_static_event_pending_when_model_disagrees(self):
        planner = _planner({"a": 0.9, "b": 0.1})
        # rank(a) = 1/0.1 = 10, rank(b) = 1/0.9 = 1.1: b should lead.
        assert planner.order == ("b", "a")
        event = planner.poll()
        assert event is not None and event["trigger"] == "static"
        assert event["from"] == ["a", "b"] and event["to"] == ["b", "a"]
        assert event["pair_index"] == 0
        assert planner.poll() is None

    def test_no_static_event_when_initial_order_optimal(self):
        planner = _planner({"a": 0.1, "b": 0.9})
        assert planner.order == ("a", "b")
        assert planner.poll() is None

    def test_observe_attributes_under_current_order(self):
        planner = _planner(
            {"a": 0.5, "b": 0.5}, calibration_window=100, smoothing=2.0
        )
        for _ in range(3):
            planner.observe(None)  # survived both
        planner.observe("ta")  # pruned by a: never entered b
        rates = planner.current_rates()
        # a: entered 4, passed 3, smoothed (3 + 2*0.5) / (4 + 2) = 2/3
        assert rates["a"] == pytest.approx(4.0 / 6.0)
        # b: entered 3, passed 3, smoothed (3 + 1) / (3 + 2) = 0.8
        assert rates["b"] == pytest.approx(4.0 / 5.0)
        assert planner.observations == 4

    def test_calibration_reorders_without_hysteresis(self):
        planner = _planner(
            {"a": 0.1, "b": 0.9}, calibration_window=4, smoothing=1.0
        )
        assert planner.order == ("a", "b")
        for _ in range(4):
            planner.observe("tb")  # b prunes everything in practice
        event = planner.poll()
        assert event is not None and event["trigger"] == "calibration"
        assert planner.order == ("b", "a")
        assert planner.calibrated
        assert event["estimated_cost_after"] < event["estimated_cost_before"]
        assert planner.poll() is None  # recheck interval not yet reached

    def test_calibration_below_window_waits(self):
        planner = _planner({"a": 0.1, "b": 0.9}, calibration_window=4)
        planner.observe("tb")
        assert planner.poll() is None
        assert not planner.calibrated

    def test_drift_reorders_when_hysteresis_cleared(self):
        planner = _planner(
            {"a": 0.1, "b": 0.9},
            calibration_window=2,
            recheck_interval=2,
            hysteresis=0.0,
            smoothing=0.5,
        )
        planner.observe("tb")
        planner.observe("tb")
        assert planner.poll()["trigger"] == "calibration"
        assert planner.order == ("b", "a")
        planner.observe("ta")
        planner.observe("ta")
        event = planner.poll()
        assert event is not None and event["trigger"] == "drift"
        assert planner.order == ("a", "b")

    def test_drift_suppressed_by_hysteresis(self):
        planner = _planner(
            {"a": 0.1, "b": 0.9},
            calibration_window=2,
            recheck_interval=2,
            hysteresis=1.0,
            smoothing=0.5,
        )
        planner.observe("tb")
        planner.observe("tb")
        planner.poll()
        assert planner.order == ("b", "a")
        planner.observe("ta")
        planner.observe("ta")
        assert planner.poll() is None
        assert planner.order == ("b", "a")

    def test_freeze_stops_observations_and_decisions(self):
        planner = _planner({"a": 0.1, "b": 0.9}, calibration_window=1)
        planner.freeze()
        assert planner.frozen
        planner.observe("tb")
        assert planner.observations == 0
        assert planner.poll() is None
        assert planner.order == ("a", "b")

    def test_unknown_tags_count_as_survivors(self):
        planner = _planner(
            {"a": 0.5, "b": 0.5}, calibration_window=100, smoothing=1.0
        )
        planner.observe("ged")  # not a cascade tag: pair survived filters
        rates = planner.current_rates()
        assert rates["a"] == pytest.approx((1 + 0.5) / 2.0)
        assert rates["b"] == pytest.approx((1 + 0.5) / 2.0)


# ----------------------------------------- end-to-end result parity


class TestAutoParity:
    def test_self_join_auto_matches_default(self):
        graphs = molecule_collection(24, seed=3)
        default = gsim_join(graphs, TAU, options=GSimJoinOptions.full())
        planned = gsim_join(graphs, TAU, options=auto_options())
        assert planned.pairs == default.pairs
        assert planned.undecided == default.undecided

    def test_rs_join_auto_matches_default(self):
        outer = molecule_collection(12, seed=41)
        inner = molecule_collection(12, seed=43)
        default = gsim_join_rs(
            outer, inner, TAU, options=GSimJoinOptions.full()
        )
        planned = gsim_join_rs(outer, inner, TAU, options=auto_options())
        assert planned.pairs == default.pairs
        assert planned.undecided == default.undecided

    def test_auto_annotates_stage_rows_and_advice(self):
        graphs = molecule_collection(16, seed=3)
        result = gsim_join(graphs, TAU, options=auto_options())
        cascade = [
            s for s in result.stats.stages if s.name in FULL_FILTERS
        ]
        assert cascade
        for row in cascade:
            assert row.estimated_selectivity is not None
            assert 0.0 <= row.estimated_selectivity <= 1.0
            assert row.estimated_cost is not None and row.estimated_cost > 0
        advice = result.stats.plan_advice
        assert advice["recommended_q"] in (3, 4)
        assert advice["recommended_prefix"] == "minedit-prefix"
        # Non-auto runs stay unannotated.
        plain = gsim_join(graphs, TAU, options=GSimJoinOptions.full())
        assert all(
            s.estimated_selectivity is None for s in plain.stats.stages
        )
        assert plain.stats.plan_advice == {}

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        q=st.integers(min_value=1, max_value=3),
        tau=st.integers(min_value=0, max_value=3),
    )
    def test_every_permutation_and_auto_bit_identical(self, seed, q, tau):
        graphs = molecule_collection(10, seed=seed)
        base = GSimJoinOptions.full(q=q)
        baseline = gsim_join(graphs, tau, options=base)
        for order in itertools.permutations(FULL_FILTERS):
            result = gsim_join(
                graphs, tau, options=dataclasses.replace(base, plan=order)
            )
            assert result.pairs == baseline.pairs
            assert result.undecided == baseline.undecided
        result = gsim_join(graphs, tau, options=auto_options(base))
        assert result.pairs == baseline.pairs
        assert result.undecided == baseline.undecided


# ------------------------------------- kill-and-resume bit-identity


def _small_window_planner(filters, rates, costs):
    """Executor-compatible factory with test-sized planner windows."""
    return AdaptivePlanner(
        filters, rates, costs, calibration_window=6, recheck_interval=8
    )


@pytest.fixture
def small_windows(monkeypatch):
    """Shrink the planner windows so joins of ~24 graphs calibrate."""
    monkeypatch.setattr(
        executor_mod, "AdaptivePlanner", _small_window_planner
    )


def assert_same_result(resumed, clean):
    assert resumed.pairs == clean.pairs
    assert resumed.undecided == clean.undecided
    assert resumed.stats.replan_events == clean.stats.replan_events
    for field in ("cand1", "cand2", "results", "ged_calls",
                  "pruned_by_count", "pruned_by_global_label",
                  "pruned_by_local_label"):
        assert getattr(resumed.stats, field) == getattr(clean.stats, field)


class TestAutoResume:
    @pytest.mark.parametrize("kill_at", [4, 12])
    def test_raise_then_resume_bit_identical(
        self, tmp_path, small_windows, kill_at
    ):
        # kill_at=4 dies mid-calibration (window is 6); kill_at=12 dies
        # after the calibration decision was taken and journaled.
        graphs = molecule_collection(24, seed=11)
        options = auto_options()
        journal = tmp_path / "auto.jsonl"
        with pytest.raises(InjectedFaultError):
            gsim_join(
                graphs, TAU, options=options, checkpoint=journal,
                fault=FaultPlan("raise", at=kill_at),
            )
        clean = gsim_join(graphs, TAU, options=options)
        resumed = gsim_join(graphs, TAU, options=options, checkpoint=journal)
        assert_same_result(resumed, clean)
        assert resumed.stats.replayed_pairs == kill_at - 1

    def test_resume_with_default_windows(self, tmp_path):
        # Same property under the production window sizes (the planner
        # stays in its calibration phase for this collection).
        graphs = molecule_collection(20, seed=23)
        options = auto_options()
        journal = tmp_path / "auto.jsonl"
        with pytest.raises(InjectedFaultError):
            gsim_join(
                graphs, TAU, options=options, checkpoint=journal,
                fault=FaultPlan("raise", at=5),
            )
        clean = gsim_join(graphs, TAU, options=options)
        resumed = gsim_join(graphs, TAU, options=options, checkpoint=journal)
        assert_same_result(resumed, clean)

    def test_parallel_raise_mid_calibration_then_resume(
        self, tmp_path, small_windows
    ):
        graphs = molecule_collection(24, seed=13)
        options = auto_options()
        journal = tmp_path / "par.jsonl"
        with pytest.raises(InjectedFaultError):
            gsim_join_parallel(
                graphs, TAU, options=options, workers=2,
                checkpoint=journal, fault=FaultPlan("raise", at=3),
            )
        clean = gsim_join_parallel(graphs, TAU, options=options, workers=2)
        resumed = gsim_join_parallel(
            graphs, TAU, options=options, workers=2, checkpoint=journal
        )
        assert_same_result(resumed, clean)


# -------------------------------------------- drivers agree under auto


class TestDriverParity:
    def test_parallel_auto_matches_sequential(self, small_windows):
        graphs = molecule_collection(24, seed=13)
        options = auto_options()
        sequential = gsim_join(graphs, TAU, options=options)
        parallel = gsim_join_parallel(
            graphs, TAU, options=options, workers=2
        )
        assert parallel.pair_set() == sequential.pair_set()
        assert sorted(parallel.undecided) == sorted(sequential.undecided)

    def test_parallel_single_worker_auto_matches_sequential(self):
        graphs = molecule_collection(20, seed=17)
        options = auto_options()
        sequential = gsim_join(graphs, TAU, options=options)
        parallel = gsim_join_parallel(
            graphs, TAU, options=options, workers=1
        )
        assert parallel.pair_set() == sequential.pair_set()

    def test_sharded_auto_matches_sequential(self, tmp_path):
        graphs = molecule_collection(24, seed=17)
        options = auto_options()
        sequential = gsim_join(graphs, TAU, options=options)
        sharded = gsim_join_sharded(
            graphs, TAU, options=options,
            spill_dir=tmp_path / "spill", shards=3,
        )
        assert result_fingerprint(sharded) == result_fingerprint(sequential)

    def test_index_auto_queries_match_default(self):
        graphs = molecule_collection(24, seed=19)
        base, extra = graphs[:20], graphs[20:]
        default_index = GSimIndex(base, tau_max=TAU)
        auto_index = GSimIndex(base, tau_max=TAU, options=auto_options())
        for g in base[:6]:
            assert auto_index.query(g, TAU) == default_index.query(g, TAU)
        # Inserts mark the auto plan stale; the next query re-plans and
        # must still agree with the default index.
        for g in extra:
            default_index.add(g)
            auto_index.add(g)
        for g in graphs[:6]:
            assert auto_index.query(g, TAU) == default_index.query(g, TAU)
        assert sorted(
            f.name for f in auto_index._plan.pair_filters
        ) == sorted(FULL_FILTERS)


# ------------------------------------------------------------- the CLI


class TestExplainPlanJson:
    def test_cli_auto_plan_explain_json(self, tmp_path, capsys):
        path = tmp_path / "graphs.txt"
        save_graphs(molecule_collection(16, seed=3), path)
        rc = main([
            "join", str(path), "--tau", "1",
            "--auto-plan", "--explain-plan", "json", "--quiet",
        ])
        assert rc == 0
        report = json.loads(capsys.readouterr().err)
        assert set(report) == {
            "stages", "replan_events", "plan_advice",
            "verify_backends", "memo_hits",
        }
        names = [row["name"] for row in report["stages"]]
        assert "verify" in names and set(FULL_FILTERS) <= set(names)
        for row in report["stages"]:
            if row["name"] in FULL_FILTERS:
                assert row["estimated_selectivity"] is not None
                assert row["estimated_cost"] is not None
        assert report["plan_advice"]["recommended_q"] in (3, 4)
        for event in report["replan_events"]:
            assert event["trigger"] in ("static", "calibration", "drift")

    def test_cli_explain_table_shows_model_columns(self, tmp_path, capsys):
        path = tmp_path / "graphs.txt"
        save_graphs(molecule_collection(16, seed=3), path)
        rc = main([
            "join", str(path), "--tau", "1",
            "--auto-plan", "--explain-plan", "--quiet",
        ])
        assert rc == 0
        err = capsys.readouterr().err
        assert "est.sel" in err and "obs.sel" in err and "est.cost" in err
