"""Tests for the six edit operations and random perturbation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError
from repro.ged import graph_edit_distance
from repro.graph import (
    EdgeDeletion,
    EdgeInsertion,
    EdgeRelabel,
    VertexDeletion,
    VertexInsertion,
    VertexRelabel,
    perturb,
    random_edit,
)
from repro.graph.graph import Graph

from .conftest import EDGE_LABELS, VERTEX_LABELS, build_graph, small_graphs


class TestOperations:
    def test_vertex_insertion(self):
        g = Graph()
        VertexInsertion(0, "C").apply(g)
        assert g.vertex_label(0) == "C"
        assert g.degree(0) == 0

    def test_vertex_deletion_requires_isolation(self):
        g = build_graph(["A", "B"], [(0, 1, "x")])
        with pytest.raises(GraphError, match="not isolated"):
            VertexDeletion(0).apply(g)
        g.remove_edge(0, 1)
        VertexDeletion(0).apply(g)
        assert g.num_vertices == 1

    def test_vertex_relabel(self):
        g = build_graph(["A"], [])
        VertexRelabel(0, "Z").apply(g)
        assert g.vertex_label(0) == "Z"

    def test_edge_insertion_requires_disconnected(self):
        g = build_graph(["A", "B"], [(0, 1, "x")])
        with pytest.raises(GraphError):
            EdgeInsertion(0, 1, "y").apply(g)
        g2 = build_graph(["A", "B"], [])
        EdgeInsertion(0, 1, "y").apply(g2)
        assert g2.edge_label(0, 1) == "y"

    def test_edge_deletion(self):
        g = build_graph(["A", "B"], [(0, 1, "x")])
        EdgeDeletion(0, 1).apply(g)
        assert g.num_edges == 0

    def test_edge_relabel(self):
        g = build_graph(["A", "B"], [(0, 1, "x")])
        EdgeRelabel(0, 1, "y").apply(g)
        assert g.edge_label(0, 1) == "y"


class TestRandomEdit:
    def test_returns_applicable_operation(self, rng):
        g = build_graph(["A", "B", "C"], [(0, 1, "x")])
        for _ in range(50):
            h = g.copy()
            op = random_edit(h, rng, VERTEX_LABELS, EDGE_LABELS)
            assert op is not None
            op.apply(h)  # must not raise

    def test_degenerate_case_returns_none(self, rng):
        g = Graph()
        assert random_edit(g, rng, [], []) is None

    def test_relabel_is_never_noop(self, rng):
        g = build_graph(["A"], [])
        for _ in range(30):
            h = g.copy()
            op = random_edit(h, rng, VERTEX_LABELS, [])
            op.apply(h)
            assert h != g or h.num_vertices > 1


class TestPerturb:
    def test_zero_edits_is_identity(self, rng):
        g = build_graph(["A", "B"], [(0, 1, "x")])
        h = perturb(g, 0, rng, VERTEX_LABELS, EDGE_LABELS)
        assert h == g
        assert h is not g

    def test_sets_graph_id(self, rng):
        g = build_graph(["A"], [], graph_id="base")
        h = perturb(g, 1, rng, VERTEX_LABELS, EDGE_LABELS, graph_id="clone")
        assert h.graph_id == "clone"
        assert g.graph_id == "base"

    @settings(max_examples=30, deadline=None)
    @given(
        small_graphs(max_vertices=4),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_ged_bounded_by_edit_count(self, g, k, seed):
        """The defining property: ged(g, perturb(g, k)) <= k."""
        rng = random.Random(seed)
        h = perturb(g, k, rng, VERTEX_LABELS, EDGE_LABELS)
        assert graph_edit_distance(g, h, threshold=k) <= k
