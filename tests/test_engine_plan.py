"""The staged execution engine's plan layer and stage statistics.

Covers :func:`repro.engine.plan.build_plan` (assembly + validation),
plan reordering via ``GSimJoinOptions(plan=...)`` (identical pairs,
shifted prune attribution), ``JoinPlan.describe()``, the per-stage
survivor/timing rows on :class:`JoinStatistics`, their export through
``repro.reporting``, and the CLI's ``--explain-plan`` flag.
"""

import dataclasses

import pytest

from repro.cli import main
from repro.core.join import GSimJoinOptions, gsim_join
from repro.core.search import GSimIndex
from repro.engine.plan import DEFAULT_FILTER_ORDER, build_plan
from repro.exceptions import ParameterError
from repro.graph import save_graphs
from repro.reporting import result_to_dict

from .test_join import molecule_collection

TAU = 2


def planned(base, *names):
    """``base`` options with the cascade reordered to ``names``."""
    return dataclasses.replace(base, plan=names)


# ------------------------------------------------------- plan assembly


def test_default_full_plan_stage_names():
    plan = build_plan(GSimJoinOptions.full())
    assert plan.stage_names() == (
        "prepare-profiles",
        "minedit-prefix",
        "prefix-candidates",
        "size-filter",
        "global-label-filter",
        "count-filter",
        "local-label-filter",
        "verify",
    )


def test_basic_plan_uses_basic_prefix_and_short_cascade():
    plan = build_plan(GSimJoinOptions.basic())
    assert plan.prefix.name == "basic-prefix"
    assert tuple(f.name for f in plan.pair_filters) == (
        "global-label-filter",
        "count-filter",
    )


def test_extended_plan_appends_multicover():
    plan = build_plan(GSimJoinOptions.extended())
    assert tuple(f.name for f in plan.pair_filters) == DEFAULT_FILTER_ORDER


def test_verify_stage_reflects_options():
    options = dataclasses.replace(GSimJoinOptions.full(), verifier="object")
    verify = build_plan(options).verify
    assert verify.verifier == "object"
    assert verify.improved_order == options.improved_order
    assert verify.improved_h == options.improved_h


def test_describe_lists_numbered_stages():
    text = build_plan(GSimJoinOptions.full()).describe()
    lines = text.splitlines()
    assert lines[0] == "join plan:"
    assert len(lines) == 9
    for pos, line in enumerate(lines[1:], start=1):
        assert line.lstrip().startswith(f"{pos}. ")
    assert "[pair-filter]" in text
    assert "[verify]" in text


# ----------------------------------------------------- plan validation


def test_plan_with_unknown_stage_rejected():
    options = planned(GSimJoinOptions.full(), "verify", "count-filter")
    with pytest.raises(ParameterError, match="unknown stages"):
        build_plan(options)


def test_plan_missing_enabled_filter_rejected():
    options = planned(
        GSimJoinOptions.full(), "count-filter", "global-label-filter"
    )
    with pytest.raises(ParameterError, match="permutation"):
        build_plan(options)


def test_plan_naming_disabled_filter_rejected():
    options = planned(
        GSimJoinOptions.basic(),
        "global-label-filter", "count-filter", "multicover-filter",
    )
    with pytest.raises(ParameterError, match="permutation"):
        build_plan(options)


def test_plan_with_duplicate_filter_rejected():
    options = planned(GSimJoinOptions.basic(), "count-filter", "count-filter")
    with pytest.raises(ParameterError, match="repeats stage name"):
        build_plan(options)


def test_plan_with_duplicate_of_enabled_set_rejected():
    # Same multiset size as the enabled filters, but one name repeated:
    # the duplicate diagnosis must name the offender, not the generic
    # permutation message.
    options = planned(
        GSimJoinOptions.full(),
        "count-filter", "count-filter", "global-label-filter",
    )
    with pytest.raises(
        ParameterError, match=r"repeats stage name\(s\) \['count-filter'\]"
    ):
        build_plan(options)


def test_plan_rejects_unknown_string():
    with pytest.raises(ParameterError, match="plan must be 'auto'"):
        GSimJoinOptions(plan="fastest")


def test_plan_auto_string_survives_post_init():
    options = GSimJoinOptions(plan="auto")
    assert options.plan == "auto"
    # build_plan treats "auto" as the default order; the adaptive
    # planner re-orders inside the executor, not here.
    assert build_plan(options).stage_names() == build_plan(
        GSimJoinOptions()
    ).stage_names()


# ---------------------------------------------------- plan reordering


def test_reordered_plan_returns_identical_pairs():
    """Any permutation of the cascade is sound: same pairs and same
    verification count; only prune attribution may shift."""
    graphs = molecule_collection(16, seed=11)
    default = gsim_join(graphs, TAU, options=GSimJoinOptions.full())
    reordered_options = planned(
        GSimJoinOptions.full(),
        "count-filter", "local-label-filter", "global-label-filter",
    )
    assert build_plan(reordered_options).stage_names()[4:7] == (
        "count-filter",
        "local-label-filter",
        "global-label-filter",
    )
    reordered = gsim_join(graphs, TAU, options=reordered_options)
    assert reordered.pairs == default.pairs
    assert reordered.stats.cand1 == default.stats.cand1
    assert reordered.stats.results == default.stats.results
    total_pruned = lambda s: (  # noqa: E731
        s.pruned_by_global_label + s.pruned_by_count + s.pruned_by_local_label
    )
    assert total_pruned(reordered.stats) == total_pruned(default.stats)


def test_reordered_plan_shifts_prune_attribution():
    graphs = molecule_collection(16, seed=11)
    default = gsim_join(graphs, TAU, options=GSimJoinOptions.full())
    count_first = gsim_join(
        graphs,
        TAU,
        options=planned(
            GSimJoinOptions.full(),
            "count-filter", "global-label-filter", "local-label-filter",
        ),
    )
    # The count filter now sees pairs the global label filter used to
    # prune first.
    assert count_first.stats.pruned_by_count >= default.stats.pruned_by_count
    assert count_first.pairs == default.pairs


def test_index_honours_query_plan():
    graphs = molecule_collection(14, seed=13)
    default = GSimIndex(graphs, tau_max=TAU)
    reordered = GSimIndex(
        graphs,
        tau_max=TAU,
        options=planned(
            GSimJoinOptions.full(),
            "count-filter", "local-label-filter", "global-label-filter",
        ),
    )
    for g in molecule_collection(4, seed=17):
        assert reordered.query(g, TAU) == default.query(g, TAU)


# ------------------------------------------------- stage statistics


def test_stage_rows_follow_plan_and_survivor_arithmetic():
    graphs = molecule_collection(16, seed=19)
    result = gsim_join(graphs, TAU, options=GSimJoinOptions.full())
    stats = result.stats
    names = [row.name for row in stats.stages]
    assert names == list(build_plan(GSimJoinOptions.full()).stage_names())

    by_name = {row.name: row for row in stats.stages}
    assert by_name["size-filter"].survivors == stats.cand1
    assert by_name["verify"].input == stats.cand2
    assert by_name["verify"].survivors == stats.results
    assert by_name["global-label-filter"].input == stats.cand1
    assert by_name["global-label-filter"].pruned == stats.pruned_by_global_label
    assert by_name["count-filter"].pruned == stats.pruned_by_count
    # The cascade is a chain: each filter's survivors feed the next.
    cascade = [by_name[n] for n in names[4:]]
    for earlier, later in zip(cascade, cascade[1:]):
        assert earlier.survivors == later.input
    for row in stats.stages:
        assert row.input >= row.survivors >= 0
        assert row.seconds >= 0.0


def test_stage_rows_exported_by_reporting():
    graphs = molecule_collection(14, seed=23)
    result = gsim_join(graphs, TAU)
    data = result_to_dict(result)
    rows = data["stats"]["stages"]
    assert [row["name"] for row in rows] == list(
        build_plan(GSimJoinOptions()).stage_names()
    )
    for row in rows:
        assert row["pruned"] == row["input"] - row["survivors"]
        assert set(row) >= {"name", "role", "input", "survivors", "seconds"}


def test_stage_table_renders_all_rows():
    graphs = molecule_collection(14, seed=23)
    result = gsim_join(graphs, TAU)
    table = result.stats.stage_table()
    lines = table.splitlines()
    assert lines[0].split()[:3] == ["stage", "role", "input"]
    stage_lines = [
        line for line in lines if not line.startswith("verify backends:")
    ]
    assert len(stage_lines) == 1 + len(result.stats.stages)
    assert "verify" in table
    # The per-backend verify attribution rides along below the rows.
    assert "verify backends: compiled=" in table


# ------------------------------------------------------------- CLI


def test_cli_explain_plan_prints_plan_and_table(tmp_path, capsys):
    path = tmp_path / "graphs.txt"
    save_graphs(molecule_collection(12, seed=29), path)
    assert main(["join", str(path), "--tau", "1", "--explain-plan"]) == 0
    err = capsys.readouterr().err
    assert "join plan:" in err
    assert "prefix-candidates" in err
    assert "survivors" in err  # the stage table header


def test_cli_explain_plan_requires_gsimjoin(tmp_path, capsys):
    path = tmp_path / "graphs.txt"
    save_graphs(molecule_collection(12, seed=29), path)
    assert (
        main(["join", str(path), "--tau", "1", "--algorithm", "naive",
              "--explain-plan"])
        == 1
    )
    assert "--explain-plan" in capsys.readouterr().err
