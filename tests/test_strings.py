"""Tests for the string similarity join substrate."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ParameterError
from repro.strings import (
    edit_distance,
    edit_distance_within,
    min_edits_destroying,
    min_prefix_length_strings,
    positional_qgrams,
    string_join,
)

ALPHABET = "abc"
words = st.text(alphabet=ALPHABET, min_size=0, max_size=10)


def reference_edit_distance(a: str, b: str) -> int:
    """Straightforward full-matrix DP as an independent oracle."""
    dp = [[0] * (len(b) + 1) for _ in range(len(a) + 1)]
    for i in range(len(a) + 1):
        dp[i][0] = i
    for j in range(len(b) + 1):
        dp[0][j] = j
    for i in range(1, len(a) + 1):
        for j in range(1, len(b) + 1):
            dp[i][j] = min(
                dp[i - 1][j] + 1,
                dp[i][j - 1] + 1,
                dp[i - 1][j - 1] + (a[i - 1] != b[j - 1]),
            )
    return dp[-1][-1]


class TestEditDistance:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("abc", "abd", 1),
            ("abc", "ab", 1),
            ("", "xyz", 3),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
        ],
    )
    def test_known_distances(self, a, b, expected):
        assert edit_distance(a, b) == expected

    @settings(max_examples=80, deadline=None)
    @given(words, words)
    def test_matches_reference(self, a, b):
        assert edit_distance(a, b) == reference_edit_distance(a, b)

    @settings(max_examples=50, deadline=None)
    @given(words, words)
    def test_symmetry(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)


class TestBandedDistance:
    def test_negative_tau_rejected(self):
        with pytest.raises(ParameterError):
            edit_distance_within("a", "b", -1)

    @settings(max_examples=80, deadline=None)
    @given(words, words, st.integers(min_value=0, max_value=4))
    def test_threshold_contract(self, a, b, tau):
        exact = reference_edit_distance(a, b)
        got = edit_distance_within(a, b, tau)
        if exact <= tau:
            assert got == exact
        else:
            assert got == tau + 1

    def test_length_difference_shortcut(self):
        assert edit_distance_within("aaaaaaa", "a", 2) == 3


class TestPositionalQGrams:
    def test_basic(self):
        assert positional_qgrams("abcd", 2) == [("ab", 0), ("bc", 1), ("cd", 2)]

    def test_short_string_has_no_grams(self):
        assert positional_qgrams("a", 2) == []

    def test_invalid_q(self):
        with pytest.raises(ParameterError):
            positional_qgrams("abc", 0)


class TestMinEditsDestroying:
    def test_empty(self):
        assert min_edits_destroying([], 2) == 0

    def test_single_gram(self):
        assert min_edits_destroying([("ab", 0)], 2) == 1

    def test_overlapping_grams_one_edit(self):
        # Grams at positions 0 and 1 with q=2 share position 1.
        assert min_edits_destroying([("ab", 0), ("bc", 1)], 2) == 1

    def test_disjoint_grams_need_two(self):
        assert min_edits_destroying([("ab", 0), ("cd", 5)], 2) == 2

    def test_chain_every_other(self):
        # Positions 0..4 with q=2: intervals [0,1]..[4,5]; stabs at 1 and
        # 3 cover the first four, [4,5] needs a third.
        grams = [("xx", p) for p in range(5)]
        assert min_edits_destroying(grams, 2) == 3
        # One gram fewer: two stabs suffice.
        assert min_edits_destroying(grams[:4], 2) == 2

    @settings(max_examples=50, deadline=None)
    @given(st.text(alphabet="ab", min_size=2, max_size=8),
           st.integers(min_value=0, max_value=3),
           st.integers(min_value=0, max_value=2**31 - 1))
    def test_sound_against_actual_edits(self, s, num_edits, seed):
        """Applying k edits to s destroys at most the grams the greedy
        bound says k edits can destroy (i.e., if min_edits > k, some
        gram must survive as a substring)."""
        rng = random.Random(seed)
        q = 2
        grams = positional_qgrams(s, q)
        if not grams or min_edits_destroying(grams, q) <= num_edits:
            return
        # Apply num_edits random substitutions.
        t = list(s)
        for _ in range(num_edits):
            pos = rng.randrange(len(t))
            t[pos] = rng.choice("ab")
        modified = "".join(t)
        assert any(g in modified for g, _ in grams)


class TestMinPrefixLength:
    def test_basic_case(self):
        grams = positional_qgrams("abcdefgh", 2)
        length = min_prefix_length_strings(grams, tau=1, q=2)
        assert length is not None
        assert 2 <= length <= 1 * 2 + 1

    def test_underflow(self):
        grams = positional_qgrams("ab", 2)  # one gram, destroyable by 1 edit
        assert min_prefix_length_strings(grams, tau=1, q=2) is None

    def test_negative_tau(self):
        with pytest.raises(ParameterError):
            min_prefix_length_strings([], -1, 2)


class TestStringJoin:
    def naive_join(self, strings, tau):
        return {
            (i, j)
            for i in range(len(strings))
            for j in range(i + 1, len(strings))
            if reference_edit_distance(strings[i], strings[j]) <= tau
        }

    def test_validation(self):
        with pytest.raises(ParameterError):
            string_join([], tau=-1)
        with pytest.raises(ParameterError):
            string_join([], tau=1, q=0)

    def test_small_dictionary(self):
        strings = ["kitten", "sitting", "mitten", "bitten", "flaw", "lawn"]
        pairs, stats = string_join(strings, tau=2, q=2)
        expected = {(i, j) for i, j in self.naive_join(strings, 2)}
        assert {(min(a, b), max(a, b)) for a, b in pairs} == expected
        assert stats.results == len(pairs)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.text(alphabet=ALPHABET, min_size=0, max_size=8),
                 min_size=0, max_size=10),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=1, max_value=3),
    )
    def test_matches_naive(self, strings, tau, q):
        for location_prefix in (False, True):
            pairs, _ = string_join(
                strings, tau=tau, q=q, location_prefix=location_prefix
            )
            got = {(min(a, b), max(a, b)) for a, b in pairs}
            assert got == self.naive_join(strings, tau)

    def test_location_prefix_never_longer(self):
        rng = random.Random(4)
        strings = [
            "".join(rng.choice("abcdef") for _ in range(rng.randint(6, 14)))
            for _ in range(40)
        ]
        _, loc = string_join(strings, tau=2, q=2, location_prefix=True)
        _, basic = string_join(strings, tau=2, q=2, location_prefix=False)
        assert loc.avg_prefix_length <= basic.avg_prefix_length
        assert loc.results == basic.results


class TestPositionFiltering:
    def test_exact_positions_match(self):
        from repro.strings import positional_qgrams
        from repro.strings.qgrams import positional_common_count

        a = positional_qgrams("abcd", 2)
        b = positional_qgrams("abcd", 2)
        assert positional_common_count(a, b, tau=0) == 3

    def test_shifted_positions_respect_tau(self):
        from repro.strings import positional_qgrams
        from repro.strings.qgrams import positional_common_count

        a = positional_qgrams("abc", 2)    # ab@0, bc@1
        b = positional_qgrams("xxabc", 2)  # ab@2, bc@3
        assert positional_common_count(a, b, tau=1) == 0
        assert positional_common_count(a, b, tau=2) == 2

    def test_duplicate_grams_matched_at_most_once(self):
        from repro.strings.qgrams import positional_common_count

        a = [("aa", 0), ("aa", 1)]
        b = [("aa", 0)]
        assert positional_common_count(a, b, tau=5) == 1

    def test_negative_tau_rejected(self):
        from repro.strings.qgrams import positional_common_count

        with pytest.raises(ParameterError):
            positional_common_count([], [], -1)

    @settings(max_examples=40, deadline=None)
    @given(
        st.text(alphabet=ALPHABET, min_size=2, max_size=10),
        st.text(alphabet=ALPHABET, min_size=2, max_size=10),
        st.integers(min_value=0, max_value=3),
    )
    def test_position_filter_sound(self, a, b, tau):
        """Gravano's bound: within tau, position-compatible common grams
        reach max(|Q_a|, |Q_b|) - tau*q."""
        from repro.strings import positional_qgrams
        from repro.strings.qgrams import positional_common_count

        if reference_edit_distance(a, b) > tau:
            return
        q = 2
        ga, gb = positional_qgrams(a, q), positional_qgrams(b, q)
        bound = max(len(ga), len(gb)) - tau * q
        if bound > 0:
            assert positional_common_count(ga, gb, tau) >= bound
