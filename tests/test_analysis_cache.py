"""Tests for the content-hash incremental analysis cache.

The acceptance contract: a second run over an unchanged tree re-parses
zero files and reuses the whole-program verdict (asserted via cache
stats, not timing); editing one file re-parses exactly that file and
re-runs only the program phase it affects; a comment-only edit
re-parses the touched file but leaves the cached program facts — and
therefore the cached program findings — intact.
"""

import shutil
from pathlib import Path

from repro.analysis.engine import run_analysis
from repro.analysis.program import AnalysisCache, file_sha, rules_key

FIXTURES = Path(__file__).parent / "fixtures" / "program"

PROGRAM_RULES = {"fork-safety", "determinism-taint", "budget-threading"}


def make_tree(tmp_path):
    """A small three-module analysis target copied from the fixtures."""
    tree = tmp_path / "tree"
    tree.mkdir()
    for name in ("fork_bad", "taint_bad", "budget_ok"):
        shutil.copy(FIXTURES / f"{name}.py", tree / f"{name}.py")
    return tree


def test_cold_run_parses_everything(tmp_path):
    tree = make_tree(tmp_path)
    cache = AnalysisCache(tmp_path / "cache.json")
    run_analysis([tree], cache=cache)
    assert cache.stats.files_seen == 3
    assert cache.stats.parsed_files == 3
    assert cache.stats.reused_files == 0
    assert cache.stats.program_runs == 1
    assert cache.stats.program_reused == 0


def test_second_run_reparses_zero_files(tmp_path):
    tree = make_tree(tmp_path)
    cache = AnalysisCache(tmp_path / "cache.json")
    first = run_analysis([tree], cache=cache)
    second = run_analysis([tree], cache=cache)
    assert cache.stats.parsed_files == 0
    assert cache.stats.reused_files == 3
    assert cache.stats.program_runs == 0
    assert cache.stats.program_reused == 1
    assert second == first


def test_cache_persists_across_processes(tmp_path):
    tree = make_tree(tmp_path)
    path = tmp_path / "cache.json"
    cache = AnalysisCache(path)
    first = run_analysis([tree], cache=cache)
    cache.save()
    assert path.exists()

    fresh = AnalysisCache(path)
    second = run_analysis([tree], cache=fresh)
    assert fresh.stats.parsed_files == 0
    assert fresh.stats.program_reused == 1
    assert second == first


def test_one_file_edit_invalidates_exactly_that_file(tmp_path):
    tree = make_tree(tmp_path)
    cache = AnalysisCache(tmp_path / "cache.json")
    run_analysis([tree], cache=cache)

    target = tree / "budget_ok.py"
    target.write_text(
        target.read_text(encoding="utf-8")
        + "\n\ndef extra(budget):\n"
        + '    """New budgeted entry — changes program facts."""\n'
        + "    return run_stage([], budget)\n",
        encoding="utf-8",
    )

    run_analysis([tree], cache=cache)
    assert cache.stats.parsed_files == 1
    assert cache.stats.reused_files == 2
    # The reachable slice changed, so the program phase re-ran.
    assert cache.stats.program_runs == 1
    assert cache.stats.program_reused == 0


def test_comment_only_edit_keeps_program_verdict_cached(tmp_path):
    tree = make_tree(tmp_path)
    cache = AnalysisCache(tmp_path / "cache.json")
    first = run_analysis([tree], cache=cache)

    target = tree / "budget_ok.py"
    target.write_text(
        target.read_text(encoding="utf-8") + "\n# trailing remark\n",
        encoding="utf-8",
    )

    second = run_analysis([tree], cache=cache)
    # The file's sha changed, so it re-parses...
    assert cache.stats.parsed_files == 1
    # ...but its program facts hash the same, so the program phase is
    # reused rather than re-run.
    assert cache.stats.program_runs == 0
    assert cache.stats.program_reused == 1
    assert second == first


def test_rule_set_change_drops_the_cache(tmp_path):
    tree = make_tree(tmp_path)
    cache = AnalysisCache(tmp_path / "cache.json")
    run_analysis([tree], cache=cache)
    run_analysis([tree], rules=None, cache=cache)
    assert cache.stats.parsed_files == 0  # same rule set: still warm

    cache.begin_run(rules_key(["only-one-rule"]))
    assert cache.lookup_file(
        str((tree / "fork_bad.py").resolve()), file_sha(tree / "fork_bad.py")
    ) is None


def test_cached_and_uncached_findings_agree(tmp_path):
    tree = make_tree(tmp_path)
    cache = AnalysisCache(tmp_path / "cache.json")
    cached = run_analysis([tree], cache=cache)
    cached_again = run_analysis([tree], cache=cache)
    uncached = run_analysis([tree])
    assert cached == cached_again == uncached
    assert any(f.rule in PROGRAM_RULES for f in cached)


def test_selection_does_not_fork_the_cache(tmp_path):
    """Report-time selection must not change what is cached."""
    tree = make_tree(tmp_path)
    cache = AnalysisCache(tmp_path / "cache.json")
    run_analysis([tree], cache=cache)

    from repro.analysis.registry import all_rules

    fork_only = {"fork-safety": all_rules()["fork-safety"]}
    selected = run_analysis([tree], rules=fork_only, cache=cache)
    assert cache.stats.parsed_files == 0
    assert cache.stats.program_reused == 1
    assert selected and all(f.rule == "fork-safety" for f in selected)
