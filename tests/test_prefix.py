"""Tests for basic and minimum-edit prefix schemes (Lemmas 2-3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import basic_prefix, build_ordering, extract_qgrams, minedit_prefix
from repro.datasets import figure1_graphs
from repro.exceptions import ParameterError

from .conftest import path_graph, small_graphs


def sorted_profile(g, q):
    profile = extract_qgrams(g, q)
    build_ordering([profile]).sort_profile(profile)
    return profile


class TestBasicPrefix:
    def test_figure1_prefix(self):
        r, _ = figure1_graphs()
        profile = sorted_profile(r, 1)
        info = basic_prefix(profile, tau=1)
        # tau * D_path + 1 = 4 == |Q_r| -> still prunable (needs exactly all)
        assert info.length == 4
        assert info.prunable

    def test_underflow_not_prunable(self):
        g = path_graph(["A", "B"])  # one 1-gram, D_path = 1
        profile = sorted_profile(g, 1)
        info = basic_prefix(profile, tau=1)  # tau*D+1 = 2 > |Q| = 1
        assert not info.prunable
        assert info.length == 1

    def test_gramless_graph_not_prunable(self):
        g = path_graph(["A"])  # no 1-grams at all
        profile = sorted_profile(g, 1)
        info = basic_prefix(profile, tau=1)
        assert not info.prunable
        assert info.length == 0

    def test_tau_zero(self):
        g = path_graph(["A", "B", "C"])
        profile = sorted_profile(g, 1)
        info = basic_prefix(profile, tau=0)
        assert info.length == 1 and info.prunable

    def test_negative_tau_rejected(self):
        profile = sorted_profile(path_graph(["A", "B"]), 1)
        with pytest.raises(ParameterError):
            basic_prefix(profile, tau=-1)


class TestMineditPrefix:
    def test_never_longer_than_basic(self):
        _, s = figure1_graphs()
        profile = sorted_profile(s, 1)
        for tau in (1, 2):
            me = minedit_prefix(profile, tau)
            ba = basic_prefix(profile, tau)
            if me.prunable and ba.prunable:
                assert me.length <= ba.length

    def test_underflow_matches_basic_semantics(self):
        g = path_graph(["A", "B"])
        profile = sorted_profile(g, 1)
        info = minedit_prefix(profile, tau=1)
        assert not info.prunable
        assert info.length == profile.size

    @settings(max_examples=30, deadline=None)
    @given(small_graphs(max_vertices=6), st.integers(min_value=0, max_value=2))
    def test_minedit_prefix_at_most_basic(self, g, tau):
        profile = sorted_profile(g, 2)
        me = minedit_prefix(profile, tau)
        ba = basic_prefix(profile, tau)
        if me.prunable and ba.prunable:
            assert tau + 1 <= me.length <= ba.length
        assert me.length <= profile.size
