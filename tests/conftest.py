"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.graph.generators import random_labeled_graph
from repro.graph.graph import Graph

VERTEX_LABELS = ["A", "B", "C"]
EDGE_LABELS = ["x", "y"]


def build_graph(vertex_labels, edges, graph_id=None) -> Graph:
    """Compact constructor: labels list + (u, v, label) edge triples."""
    g = Graph(graph_id)
    for v, label in enumerate(vertex_labels):
        g.add_vertex(v, label)
    for u, v, label in edges:
        g.add_edge(u, v, label)
    return g


def path_graph(labels, edge_label="x", graph_id=None) -> Graph:
    """A labeled path P_n."""
    return build_graph(
        labels, [(i, i + 1, edge_label) for i in range(len(labels) - 1)], graph_id
    )


def cycle_graph(labels, edge_label="x", graph_id=None) -> Graph:
    """A labeled cycle C_n (n >= 3)."""
    n = len(labels)
    edges = [(i, (i + 1) % n, edge_label) for i in range(n)]
    return build_graph(labels, edges, graph_id)


def star_graph(center_label, leaf_labels, edge_label="x", graph_id=None) -> Graph:
    """A star with the given centre and leaves."""
    labels = [center_label] + list(leaf_labels)
    edges = [(0, i + 1, edge_label) for i in range(len(leaf_labels))]
    return build_graph(labels, edges, graph_id)


@st.composite
def small_graphs(draw, max_vertices=5, vertex_labels=None, edge_labels=None):
    """Hypothesis strategy: a small random labeled simple graph."""
    vertex_labels = vertex_labels or VERTEX_LABELS
    edge_labels = edge_labels or EDGE_LABELS
    n = draw(st.integers(min_value=0, max_value=max_vertices))
    max_edges = n * (n - 1) // 2
    m = draw(st.integers(min_value=0, max_value=max_edges))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = random.Random(seed)
    return random_labeled_graph(rng, n, m, vertex_labels, edge_labels)


@st.composite
def graph_pairs_within(draw, tau_max=3, max_vertices=5):
    """A base graph plus a perturbation within ``k <= tau_max`` edits."""
    from repro.graph.operations import perturb

    g = draw(small_graphs(max_vertices=max_vertices))
    k = draw(st.integers(min_value=0, max_value=tau_max))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = random.Random(seed)
    h = perturb(g, k, rng, VERTEX_LABELS, EDGE_LABELS)
    return g, h, k


@pytest.fixture
def rng():
    return random.Random(12345)
