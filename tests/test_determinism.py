"""End-to-end determinism: same seed, identical collection.

The determinism rule (``repro.analysis.rules.determinism``) statically
bans process-global randomness; these tests check the dynamic half of
the contract — every seeded entry point produces bit-identical output
when called twice with the same seed, and different output with a
different seed (so the seed is actually threaded, not ignored).
"""

import random

from repro.datasets import aids_like, protein_like
from repro.graph.generators import (
    random_labeled_graph,
    random_molecule,
    random_protein,
)
from repro.graph.operations import perturb


def _identical(collection_a, collection_b):
    if len(collection_a) != len(collection_b):
        return False
    return all(
        a == b and a.graph_id == b.graph_id
        for a, b in zip(collection_a, collection_b)
    )


def test_aids_like_is_seed_deterministic():
    assert _identical(aids_like(30, seed=7), aids_like(30, seed=7))
    assert not _identical(aids_like(30, seed=7), aids_like(30, seed=8))


def test_protein_like_is_seed_deterministic():
    assert _identical(protein_like(12, seed=3), protein_like(12, seed=3))
    assert not _identical(protein_like(12, seed=3), protein_like(12, seed=4))


def test_generators_thread_rng():
    one = random_molecule(random.Random(11), 20)
    two = random_molecule(random.Random(11), 20)
    assert one == two

    one = random_protein(random.Random(5), 18)
    two = random_protein(random.Random(5), 18)
    assert one == two

    labels = ["a", "b", "c"]
    one = random_labeled_graph(random.Random(2), 12, 18, labels, labels)
    two = random_labeled_graph(random.Random(2), 12, 18, labels, labels)
    assert one == two


def test_perturb_threads_rng():
    base = random_molecule(random.Random(1), 15)
    labels = ["C", "N", "O"]
    bonds = ["-", "="]
    one = perturb(base, 5, random.Random(9), labels, bonds)
    two = perturb(base, 5, random.Random(9), labels, bonds)
    assert one == two
    # The input graph is never mutated by perturbation.
    assert base == random_molecule(random.Random(1), 15)
