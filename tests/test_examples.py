"""Smoke tests: the example scripts must run end-to-end.

Each example is executed in-process (``runpy``) with stdout captured;
the assertions check the headline outputs, not timings.  The slowest
examples are exercised through their building blocks elsewhere and get
a lighter touch here.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    sys.argv = [name]
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_filter_anatomy(capsys):
    out = run_example("filter_anatomy.py", capsys)
    assert "Count filtering (Example 4): need >= 2 common q-grams" in out
    assert "distance=3" in out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "ged(cyclopropanone, 2-aminocyclopropanol) = 3" in out
    assert "Join found" in out


@pytest.mark.slow
def test_workflow_versions(capsys):
    out = run_example("workflow_versions.py", capsys)
    assert "ged(read->write, write->read) = 2" in out


@pytest.mark.slow
def test_chemical_deduplication(capsys):
    out = run_example("chemical_deduplication.py", capsys)
    assert "duplicate clusters" in out


@pytest.mark.slow
def test_molecule_classification(capsys):
    out = run_example("molecule_classification.py", capsys)
    assert "NN accuracy" in out


@pytest.mark.slow
def test_protein_structure_search(capsys):
    out = run_example("protein_structure_search.py", capsys)
    assert "matches" in out
