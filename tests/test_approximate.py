"""Tests for the approximate GED suite."""

import pytest
from hypothesis import given, settings

from repro.datasets import figure1_graphs
from repro.exceptions import ParameterError
from repro.ged import (
    beam_search_ged,
    bipartite_upper_bound,
    brute_force_ged,
    ged_bounds,
    graph_edit_distance,
    label_lower_bound,
)
from repro.graph.graph import Graph

from .conftest import graph_pairs_within, path_graph


class TestBeamSearch:
    def test_identical_graphs(self):
        g = path_graph(["A", "B", "C"])
        assert beam_search_ged(g, g.copy()) == 0

    def test_empty_graphs(self):
        assert beam_search_ged(Graph(), Graph()) == 0
        assert beam_search_ged(Graph(), path_graph(["A"])) == 1

    def test_figure1_with_wide_beam_is_exact(self):
        r, s = figure1_graphs()
        assert beam_search_ged(r, s, beam_width=1000) == 3

    def test_invalid_beam_width(self):
        g = path_graph(["A"])
        with pytest.raises(ParameterError):
            beam_search_ged(g, g, beam_width=0)

    def test_invalid_vertex_order(self):
        g = path_graph(["A", "B"])
        with pytest.raises(ParameterError, match="permutation"):
            beam_search_ged(g, g, vertex_order=[0])

    @settings(max_examples=30, deadline=None)
    @given(graph_pairs_within(tau_max=2, max_vertices=4))
    def test_upper_bounds_exact(self, pair):
        r, s, _ = pair
        exact = brute_force_ged(r, s)
        for width in (1, 4):
            assert beam_search_ged(r, s, beam_width=width) >= exact

    @settings(max_examples=25, deadline=None)
    @given(graph_pairs_within(tau_max=2, max_vertices=4))
    def test_unbounded_beam_is_exact(self, pair):
        r, s, _ = pair
        assert beam_search_ged(r, s, beam_width=10**6) == brute_force_ged(r, s)

    @settings(max_examples=20, deadline=None)
    @given(graph_pairs_within(tau_max=2, max_vertices=4))
    def test_wider_beam_never_worse(self, pair):
        r, s, _ = pair
        narrow = beam_search_ged(r, s, beam_width=1)
        wide = beam_search_ged(r, s, beam_width=32)
        assert wide <= narrow


class TestBipartiteUpperBound:
    def test_identical_graphs(self):
        g = path_graph(["A", "B", "C"])
        assert bipartite_upper_bound(g, g.copy()) == 0

    def test_empty_graphs(self):
        assert bipartite_upper_bound(Graph(), Graph()) == 0

    def test_one_side_empty(self):
        g = path_graph(["A", "B"])
        assert bipartite_upper_bound(Graph(), g) == 3  # 2 inserts + edge
        assert bipartite_upper_bound(g, Graph()) == 3

    @settings(max_examples=30, deadline=None)
    @given(graph_pairs_within(tau_max=2, max_vertices=4))
    def test_upper_bounds_exact(self, pair):
        r, s, _ = pair
        assert bipartite_upper_bound(r, s) >= brute_force_ged(r, s)

    def test_close_on_near_duplicates(self):
        r, s = figure1_graphs()
        assert 3 <= bipartite_upper_bound(r, s) <= 8


class TestGedBounds:
    @settings(max_examples=30, deadline=None)
    @given(graph_pairs_within(tau_max=2, max_vertices=4))
    def test_bracket_exact(self, pair):
        r, s, _ = pair
        exact = brute_force_ged(r, s)
        lower, upper = ged_bounds(r, s)
        assert lower <= exact <= upper

    def test_tight_bracket_on_identical(self):
        g = path_graph(["A", "B", "C"])
        assert ged_bounds(g, g.copy()) == (0, 0)

    def test_label_lower_bound_matches_global_filter(self):
        r, s = figure1_graphs()
        assert label_lower_bound(r, s) == 3
        assert label_lower_bound(r, s) <= graph_edit_distance(r, s)
