"""Tests for the clustering and classification applications."""

import random

import pytest

from repro import GSimJoinOptions, assign_ids
from repro.applications import GedKnnClassifier, cluster_medoid, threshold_clusters
from repro.exceptions import ParameterError
from repro.ged import graph_edit_distance
from repro.graph.generators import random_molecule
from repro.graph.operations import perturb

from .conftest import path_graph
from .test_join import molecule_collection


def planted_clusters(num_clusters=3, size=4, seed=9):
    """Clusters of near-duplicates far apart from each other."""
    rng = random.Random(seed)
    graphs, truth = [], []
    for c in range(num_clusters):
        base = random_molecule(rng, 10 + 6 * c)  # size gaps keep clusters apart
        for _ in range(size):
            clone = perturb(base, 1, rng, ["C", "N", "O"], ["-", "="])
            graphs.append(clone)
            truth.append(c)
    order = list(range(len(graphs)))
    rng.shuffle(order)
    graphs = [graphs[i] for i in order]
    truth = [truth[i] for i in order]
    return assign_ids(graphs), truth


class TestThresholdClusters:
    def test_min_size_validation(self):
        with pytest.raises(ParameterError):
            threshold_clusters([], tau=1, min_size=0)

    def test_recovers_planted_clusters(self):
        graphs, truth = planted_clusters()
        clusters = threshold_clusters(
            graphs, tau=2, options=GSimJoinOptions.full(q=2), min_size=2
        )
        assert len(clusters) == 3
        label_of = dict(zip((g.graph_id for g in graphs), truth))
        for members in clusters:
            labels = {label_of[g.graph_id] for g in members}
            assert len(labels) == 1  # no cluster mixes families

    def test_singletons_included_by_default(self):
        graphs = molecule_collection(10, seed=30, cluster=False)
        clusters = threshold_clusters(graphs, tau=0, options=GSimJoinOptions.full(q=2))
        assert sum(len(c) for c in clusters) == len(graphs)

    def test_sorted_largest_first(self):
        graphs, _ = planted_clusters(num_clusters=2, size=3)
        extra = path_graph(["C", "C"], graph_id="loner")
        clusters = threshold_clusters(
            graphs + [extra], tau=2, options=GSimJoinOptions.full(q=2)
        )
        sizes = [len(c) for c in clusters]
        assert sizes == sorted(sizes, reverse=True)


class TestClusterMedoid:
    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            cluster_medoid([])

    def test_singleton(self):
        g = path_graph(["A"], graph_id=0)
        assert cluster_medoid([g]) is g

    def test_medoid_minimizes_total_distance(self):
        graphs, _ = planted_clusters(num_clusters=1, size=4)
        medoid = cluster_medoid(graphs)
        totals = {
            g.graph_id: sum(
                graph_edit_distance(g, o) for o in graphs if o is not g
            )
            for g in graphs
        }
        assert totals[medoid.graph_id] == min(totals.values())


class TestKnnClassifier:
    def test_k_validation(self):
        with pytest.raises(ParameterError):
            GedKnnClassifier(k=0)

    def test_fit_length_mismatch(self):
        clf = GedKnnClassifier()
        with pytest.raises(ParameterError, match="labels"):
            clf.fit([path_graph(["A"], graph_id=0)], ["x", "y"])

    def test_classifies_planted_families(self):
        graphs, truth = planted_clusters(num_clusters=3, size=5, seed=21)
        train_g, train_y = graphs[:-3], truth[:-3]
        test_g, test_y = graphs[-3:], truth[-3:]
        clf = GedKnnClassifier(k=3, tau_max=4, options=GSimJoinOptions.full(q=2))
        clf.fit(train_g, train_y)
        assert len(clf) == len(train_g)
        predictions = clf.predict_many(test_g)
        assert predictions == test_y

    def test_default_label_when_isolated(self):
        graphs, truth = planted_clusters(num_clusters=1, size=3, seed=22)
        clf = GedKnnClassifier(k=1, tau_max=1, default_label="unknown")
        clf.fit(graphs, truth)
        far = path_graph(["Zz"] * 30, graph_id="far-away")
        assert clf.predict(far) == "unknown"

    def test_neighbors_exposed(self):
        graphs, truth = planted_clusters(num_clusters=1, size=4, seed=23)
        clf = GedKnnClassifier(k=2, tau_max=3, options=GSimJoinOptions.full(q=2))
        clf.fit(graphs[:-1], truth[:-1])
        found = clf.neighbors(graphs[-1])
        assert 1 <= len(found) <= 2
        for _, distance in found:
            assert distance <= 3

    def test_second_probe_reuses_memoized_verdicts(self):
        """The index's verdict memo answers a repeated probe of the same
        query graph: fewer fresh verifications the second time."""
        graphs, truth = planted_clusters(num_clusters=2, size=5, seed=31)
        clf = GedKnnClassifier(k=3, tau_max=4, options=GSimJoinOptions.full(q=2))
        clf.fit(graphs[:-1], truth[:-1])
        query = graphs[-1]

        first = clf.neighbors(query)
        calls_after_first = clf.stats.ged_calls
        assert calls_after_first > 0

        second = clf.neighbors(query)
        assert second == first
        fresh_calls = clf.stats.ged_calls - calls_after_first
        assert fresh_calls < calls_after_first
        assert clf.stats.memo_hits > 0
