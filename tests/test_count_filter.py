"""Tests for count filtering and size filtering (Lemma 1)."""

import pytest
from hypothesis import given, settings

from repro.core import (
    common_qgram_count,
    count_lower_bound,
    extract_qgrams,
    passes_count_filter,
    passes_size_filter,
    size_lower_bound,
)
from repro.datasets import figure1_graphs
from repro.exceptions import ParameterError
from repro.ged import graph_edit_distance

from .conftest import graph_pairs_within, path_graph


class TestPaperExample:
    def test_example4_bound_q1(self):
        r, s = figure1_graphs()
        pr, ps = extract_qgrams(r, 1), extract_qgrams(s, 1)
        assert count_lower_bound(pr, ps, tau=1) == 2  # max(4-3, 5-3)
        assert common_qgram_count(pr, ps) == 3  # three C-C grams (Example 5)
        assert passes_count_filter(pr, ps, tau=1)

    def test_example4_bound_q2(self):
        r, s = figure1_graphs()
        pr, ps = extract_qgrams(r, 2), extract_qgrams(s, 2)
        assert count_lower_bound(pr, ps, tau=1) == 1  # max(5-5, 7-6)


class TestCommonCount:
    def test_multiset_semantics(self):
        a = path_graph(["A", "A", "A"])  # two A-x-A grams
        b = path_graph(["A", "A"])  # one A-x-A gram
        pa, pb = extract_qgrams(a, 1), extract_qgrams(b, 1)
        assert common_qgram_count(pa, pb) == 1

    def test_disjoint_graphs_share_nothing(self):
        a = path_graph(["A", "B"])
        b = path_graph(["C", "D"])
        assert common_qgram_count(extract_qgrams(a, 1), extract_qgrams(b, 1)) == 0

    def test_symmetric(self):
        a = path_graph(["A", "B", "C"])
        b = path_graph(["B", "C", "D"])
        pa, pb = extract_qgrams(a, 1), extract_qgrams(b, 1)
        assert common_qgram_count(pa, pb) == common_qgram_count(pb, pa)


class TestSoundness:
    def test_negative_tau_rejected(self):
        r, s = figure1_graphs()
        pr, ps = extract_qgrams(r, 1), extract_qgrams(s, 1)
        with pytest.raises(ParameterError):
            count_lower_bound(pr, ps, tau=-1)

    @settings(max_examples=40, deadline=None)
    @given(graph_pairs_within(tau_max=3, max_vertices=5))
    def test_count_filter_never_prunes_true_results(self, pair):
        """Lemma 1: pairs within tau always pass count filtering."""
        r, s, k = pair
        tau = max(k, graph_edit_distance(r, s))
        for q in (1, 2):
            pr, ps = extract_qgrams(r, q), extract_qgrams(s, q)
            assert passes_count_filter(pr, ps, tau)

    @settings(max_examples=40, deadline=None)
    @given(graph_pairs_within(tau_max=3, max_vertices=5))
    def test_size_filter_never_prunes_true_results(self, pair):
        r, s, k = pair
        tau = max(k, graph_edit_distance(r, s))
        assert passes_size_filter(r, s, tau)
        assert size_lower_bound(r, s) <= tau

    def test_size_lower_bound_values(self):
        a = path_graph(["A", "B", "C"])  # 3 vertices, 2 edges
        b = path_graph(["A", "B"])  # 2 vertices, 1 edge
        assert size_lower_bound(a, b) == 2
        assert passes_size_filter(a, b, 2)
        assert not passes_size_filter(a, b, 1)
