"""Property-based checks of the paper's formal claims.

Each test targets one numbered statement:

* Theorem 1  — one edit operation affects at most ``D_path`` q-grams;
* Lemma 1    — count filtering never prunes a true result;
* Lemma 2    — basic prefixes of a true result share a q-gram;
* Lemma 3    — minimum-edit prefixes of a true result share a q-gram;
* Lemma 4/5  — label filtering bounds never exceed the distance;
* Prop. 1    — min-edit monotonicity (also in test_minedit);
* Prop. 2    — min-edit additivity over vertex-disjoint gram sets.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    basic_prefix,
    build_ordering,
    extract_qgrams,
    global_label_lower_bound,
    min_edit_exact,
    minedit_prefix,
)
from repro.ged import graph_edit_distance
from repro.graph.operations import random_edit

from .conftest import EDGE_LABELS, VERTEX_LABELS, graph_pairs_within, small_graphs


class TestTheorem1:
    @settings(max_examples=50, deadline=None)
    @given(
        small_graphs(max_vertices=6),
        st.integers(min_value=0, max_value=2**31 - 1),
        st.sampled_from([1, 2, 3]),
    )
    def test_single_edit_affects_at_most_d_path_grams(self, g, seed, q):
        """Apply one random edit; count the q-grams of the ORIGINAL graph
        that no longer appear (as a multiset) — must be <= D_path."""
        rng = random.Random(seed)
        before = extract_qgrams(g, q)
        h = g.copy()
        op = random_edit(h, rng, VERTEX_LABELS, EDGE_LABELS)
        if op is None:
            return
        op.apply(h)
        after = extract_qgrams(h, q)
        lost = sum(
            max(0, c - after.key_counts.get(k, 0))
            for k, c in before.key_counts.items()
        )
        assert lost <= before.d_path


class TestLemma1:
    @settings(max_examples=40, deadline=None)
    @given(graph_pairs_within(tau_max=3, max_vertices=5), st.sampled_from([1, 2]))
    def test_true_results_share_enough_qgrams(self, pair, q):
        r, s, _ = pair
        tau = graph_edit_distance(r, s)
        pr, ps = extract_qgrams(r, q), extract_qgrams(s, q)
        common = sum((pr.key_counts & ps.key_counts).values())
        bound = max(pr.size - tau * pr.d_path, ps.size - tau * ps.d_path)
        assert common >= bound


def _sorted_profiles(r, s, q):
    pr, ps = extract_qgrams(r, q), extract_qgrams(s, q)
    ordering = build_ordering([pr, ps])
    ordering.sort_profile(pr)
    ordering.sort_profile(ps)
    return pr, ps


class TestLemma2:
    @settings(max_examples=40, deadline=None)
    @given(graph_pairs_within(tau_max=2, max_vertices=5), st.sampled_from([1, 2]))
    def test_basic_prefixes_share_a_gram(self, pair, q):
        r, s, _ = pair
        tau = graph_edit_distance(r, s)
        pr, ps = _sorted_profiles(r, s, q)
        info_r, info_s = basic_prefix(pr, tau), basic_prefix(ps, tau)
        if not (info_r.prunable and info_s.prunable):
            return  # underflow: the lemma does not apply
        prefix_r = {g.key for g in pr.grams[: info_r.length]}
        prefix_s = {g.key for g in ps.grams[: info_s.length]}
        assert prefix_r & prefix_s


class TestLemma3:
    @settings(max_examples=40, deadline=None)
    @given(graph_pairs_within(tau_max=2, max_vertices=5), st.sampled_from([1, 2]))
    def test_minedit_prefixes_share_a_gram(self, pair, q):
        r, s, _ = pair
        tau = graph_edit_distance(r, s)
        pr, ps = _sorted_profiles(r, s, q)
        info_r, info_s = minedit_prefix(pr, tau), minedit_prefix(ps, tau)
        if not (info_r.prunable and info_s.prunable):
            return
        prefix_r = {g.key for g in pr.grams[: info_r.length]}
        prefix_s = {g.key for g in ps.grams[: info_s.length]}
        assert prefix_r & prefix_s


class TestLemmas4And5:
    @settings(max_examples=40, deadline=None)
    @given(graph_pairs_within(tau_max=3, max_vertices=5))
    def test_global_label_bound_sound(self, pair):
        r, s, _ = pair
        assert global_label_lower_bound(r, s) <= graph_edit_distance(r, s)

    @settings(max_examples=40, deadline=None)
    @given(graph_pairs_within(tau_max=3, max_vertices=5))
    def test_local_label_bound_on_any_subgraph(self, pair):
        """Lemma 4 for the induced subgraph on half the vertices."""
        r, s, _ = pair
        vertices = list(r.vertices())
        if not vertices:
            return
        sub = r.subgraph(vertices[: max(1, len(vertices) // 2)])
        lv = sum((sub.vertex_label_multiset() - s.vertex_label_multiset()).values())
        le = sum((sub.edge_label_multiset() - s.edge_label_multiset()).values())
        assert lv + le <= graph_edit_distance(r, s)


class TestProposition2:
    @settings(max_examples=40, deadline=None)
    @given(small_graphs(max_vertices=6), small_graphs(max_vertices=6))
    def test_min_edit_additive_over_disjoint_components(self, g1, g2):
        """Vertex-disjoint gram sets: min-edit adds up."""
        p1 = extract_qgrams(g1, 1)
        # Shift g2's vertex ids so the gram vertex sets are disjoint.
        g2_shift = g2.relabel_vertices({v: (v, "b") for v in g2.vertices()})
        p2 = extract_qgrams(g2_shift, 1)
        if not p1.grams or not p2.grams:
            return
        cap = 12
        a = min_edit_exact(p1.grams, cap)
        b = min_edit_exact(p2.grams, cap)
        combined = min_edit_exact(p1.grams + p2.grams, cap)
        if a <= cap and b <= cap and a + b <= cap:
            assert combined == a + b
