"""Tests for the A*-based graph edit distance computation."""

import pytest
from hypothesis import given, settings

from repro.core import compare_qgrams, extract_qgrams
from repro.datasets import figure1_graphs
from repro.exceptions import ParameterError
from repro.ged import (
    brute_force_ged,
    ged_within,
    graph_edit_distance,
    graph_edit_distance_detailed,
    induced_edit_cost,
    input_vertex_order,
    label_heuristic,
    make_local_label_heuristic,
    mismatch_vertex_order,
    spanning_tree_vertex_order,
    zero_heuristic,
)
from repro.graph import are_isomorphic
from repro.graph.graph import Graph

from .conftest import build_graph, graph_pairs_within, path_graph, small_graphs


class TestKnownDistances:
    def test_figure1_distance_is_three(self):
        r, s = figure1_graphs()
        assert graph_edit_distance(r, s) == 3  # Example 1

    def test_identical_graphs(self):
        g = path_graph(["A", "B", "C"])
        assert graph_edit_distance(g, g.copy()) == 0

    def test_single_relabel(self):
        assert graph_edit_distance(path_graph(["A", "B"]), path_graph(["A", "C"])) == 1

    def test_edge_relabel(self):
        g = path_graph(["A", "B"], edge_label="x")
        h = path_graph(["A", "B"], edge_label="y")
        assert graph_edit_distance(g, h) == 1

    def test_vertex_plus_edge_insertion(self):
        g = path_graph(["A", "B"])
        h = path_graph(["A", "B", "C"])
        assert graph_edit_distance(g, h) == 2

    def test_empty_to_graph(self):
        g = Graph()
        h = path_graph(["A", "B"])
        assert graph_edit_distance(g, h) == 3  # two inserts + one edge

    def test_empty_to_empty(self):
        assert graph_edit_distance(Graph(), Graph()) == 0

    def test_deleting_connected_vertex_costs_degree_plus_one(self):
        g = build_graph(["A", "B", "C"], [(0, 1, "x"), (0, 2, "x")])
        h = path_graph(["B"])  # wait: lone B vertex
        h = build_graph(["B"], [])
        # Delete A (2 edges + vertex), delete C: 4 ops total.
        assert graph_edit_distance(g, h) == 4


class TestThreshold:
    def test_within_threshold_returns_exact(self):
        r, s = figure1_graphs()
        assert graph_edit_distance(r, s, threshold=3) == 3
        assert graph_edit_distance(r, s, threshold=5) == 3

    def test_exceeding_threshold_returns_tau_plus_one(self):
        r, s = figure1_graphs()
        assert graph_edit_distance(r, s, threshold=2) == 3  # tau + 1
        assert graph_edit_distance(r, s, threshold=0) == 1

    def test_ged_within(self):
        r, s = figure1_graphs()
        assert ged_within(r, s, 3)
        assert not ged_within(r, s, 2)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ParameterError):
            graph_edit_distance(Graph(), Graph(), threshold=-1)

    def test_invalid_vertex_order_rejected(self):
        g = path_graph(["A", "B"])
        with pytest.raises(ParameterError, match="permutation"):
            graph_edit_distance(g, g, vertex_order=[0])


class TestAgainstBruteForce:
    @settings(max_examples=40, deadline=None)
    @given(graph_pairs_within(tau_max=3, max_vertices=4))
    def test_astar_matches_brute_force(self, pair):
        r, s, _ = pair
        assert graph_edit_distance(r, s) == brute_force_ged(r, s)

    @settings(max_examples=25, deadline=None)
    @given(graph_pairs_within(tau_max=2, max_vertices=4))
    def test_all_heuristics_agree(self, pair):
        r, s, _ = pair
        expected = brute_force_ged(r, s)
        for heuristic in (
            zero_heuristic,
            label_heuristic,
            make_local_label_heuristic(1, 4),
            make_local_label_heuristic(2, 4, max_remaining=None),
        ):
            assert graph_edit_distance(r, s, heuristic=heuristic) == expected

    @settings(max_examples=25, deadline=None)
    @given(graph_pairs_within(tau_max=2, max_vertices=4))
    def test_all_vertex_orders_agree(self, pair):
        r, s, _ = pair
        expected = brute_force_ged(r, s)
        mismatch = compare_qgrams(extract_qgrams(r, 1), extract_qgrams(s, 1))
        for order in (
            input_vertex_order(r),
            spanning_tree_vertex_order(r),
            mismatch_vertex_order(r, mismatch.mismatch_r),
        ):
            assert graph_edit_distance(r, s, vertex_order=order) == expected


class TestMetricProperties:
    @settings(max_examples=30, deadline=None)
    @given(graph_pairs_within(tau_max=2, max_vertices=4))
    def test_symmetry(self, pair):
        r, s, _ = pair
        assert graph_edit_distance(r, s) == graph_edit_distance(s, r)

    @settings(max_examples=30, deadline=None)
    @given(small_graphs(max_vertices=4))
    def test_identity_iff_isomorphic(self, g):
        h = g.relabel_vertices({v: v + 50 for v in g.vertices()})
        assert graph_edit_distance(g, h) == 0
        assert are_isomorphic(g, h)

    @settings(max_examples=20, deadline=None)
    @given(
        graph_pairs_within(tau_max=2, max_vertices=3),
        small_graphs(max_vertices=3),
    )
    def test_triangle_inequality(self, pair, t):
        r, s, _ = pair
        assert graph_edit_distance(r, s) <= (
            graph_edit_distance(r, t) + graph_edit_distance(t, s)
        )


class TestInducedCost:
    def test_total_mapping_required(self):
        g = path_graph(["A", "B"])
        with pytest.raises(ParameterError, match="total"):
            induced_edit_cost(g, g, {0: 0})

    def test_injectivity_required(self):
        g = path_graph(["A", "B"])
        with pytest.raises(ParameterError, match="injective"):
            induced_edit_cost(g, g, {0: 0, 1: 0})

    def test_unknown_target_rejected(self):
        g = path_graph(["A", "B"])
        with pytest.raises(ParameterError, match="not a vertex"):
            induced_edit_cost(g, g, {0: 0, 1: 99})

    def test_identity_mapping_zero_cost(self):
        g = path_graph(["A", "B", "C"])
        assert induced_edit_cost(g, g.copy(), {0: 0, 1: 1, 2: 2}) == 0

    def test_all_deleted(self):
        g = path_graph(["A", "B"])
        # Delete vertexes (2) + edge (1) + insert s entirely (3) = 6.
        assert induced_edit_cost(g, g.copy(), {0: None, 1: None}) == 6

    @settings(max_examples=25, deadline=None)
    @given(graph_pairs_within(tau_max=2, max_vertices=4))
    def test_any_mapping_upper_bounds_ged(self, pair):
        r, s, _ = pair
        identityish = {}
        targets = list(s.vertices())
        for i, u in enumerate(r.vertices()):
            identityish[u] = targets[i] if i < len(targets) else None
        assert induced_edit_cost(r, s, identityish) >= graph_edit_distance(r, s)


class TestSearchStatistics:
    def test_detailed_result_fields(self):
        r, s = figure1_graphs()
        result = graph_edit_distance_detailed(r, s, threshold=3)
        assert result.distance == 3
        assert not result.exceeded_threshold
        assert result.expanded > 0
        assert result.generated >= result.expanded

    def test_exceeded_flag(self):
        r, s = figure1_graphs()
        result = graph_edit_distance_detailed(r, s, threshold=1)
        assert result.exceeded_threshold
        assert result.distance == 2

    def test_better_heuristic_expands_no_more_states(self):
        r, s = figure1_graphs()
        weak = graph_edit_distance_detailed(r, s, heuristic=zero_heuristic)
        strong = graph_edit_distance_detailed(r, s, heuristic=label_heuristic)
        assert strong.distance == weak.distance
        assert strong.expanded <= weak.expanded
