"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.datasets import aids_like
from repro.graph import save_graphs

from .conftest import path_graph


@pytest.fixture
def collection_file(tmp_path):
    graphs = aids_like(num_graphs=15, seed=4)
    path = tmp_path / "graphs.txt"
    save_graphs(graphs, path)
    return str(path)


@pytest.fixture
def tiny_file(tmp_path):
    a = path_graph(["C", "C", "O"], graph_id=0)
    b = path_graph(["C", "C", "N"], graph_id=1)
    path = tmp_path / "tiny.txt"
    save_graphs([a, b], path)
    return str(path)


class TestJoinCommand:
    def test_join_runs_and_prints_pairs(self, collection_file, capsys):
        code = main(["join", collection_file, "--tau", "2"])
        assert code == 0
        out = capsys.readouterr()
        assert "results=" in out.err  # summary on stderr
        for line in out.out.splitlines():
            a, b = line.split("\t")
            assert a != b

    def test_join_quiet(self, collection_file, capsys):
        assert main(["join", collection_file, "--tau", "1", "--quiet"]) == 0
        assert "results=" not in capsys.readouterr().err

    @pytest.mark.parametrize("algorithm", ["kat", "appfull", "naive"])
    def test_join_baselines_agree(self, tiny_file, capsys, algorithm):
        main(["join", tiny_file, "--tau", "1", "--quiet"])
        expected = capsys.readouterr().out
        main(["join", tiny_file, "--tau", "1", "--quiet", "--algorithm", algorithm])
        assert capsys.readouterr().out == expected

    def test_join_variants(self, tiny_file, capsys):
        for variant in ("basic", "minedit", "full"):
            assert main(
                ["join", tiny_file, "--tau", "1", "--variant", variant, "--quiet"]
            ) == 0

    def test_missing_file_reports_error(self, capsys):
        assert main(["stats", "/nonexistent/file.txt"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_empty_collection_is_error(self, tmp_path, capsys):
        empty = tmp_path / "empty.txt"
        empty.write_text("")
        assert main(["join", str(empty), "--tau", "1"]) == 1
        assert "error:" in capsys.readouterr().err


class TestGedCommand:
    def test_ged_by_id(self, tiny_file, capsys):
        assert main(["ged", tiny_file, "0", "1"]) == 0
        assert capsys.readouterr().out.strip() == "1"

    def test_ged_with_threshold_exceeded(self, tiny_file, capsys):
        assert main(["ged", tiny_file, "0", "1", "--tau", "0"]) == 0
        assert capsys.readouterr().out.strip() == "> 0"

    def test_unknown_id_is_error(self, tiny_file, capsys):
        assert main(["ged", tiny_file, "0", "99"]) == 1
        assert "no graph with id" in capsys.readouterr().err


class TestStatsCommand:
    def test_stats_prints_row(self, collection_file, capsys):
        assert main(["stats", collection_file]) == 0
        out = capsys.readouterr().out
        assert "|R|=15" in out


class TestGenerateCommand:
    @pytest.mark.parametrize("kind", ["aids", "protein"])
    def test_generate_roundtrip(self, tmp_path, capsys, kind):
        out = tmp_path / "gen.txt"
        assert main(
            ["generate", "--kind", kind, "--n", "8", "--seed", "3", "-o", str(out)]
        ) == 0
        assert main(["stats", str(out)]) == 0
        assert "|R|=8" in capsys.readouterr().out


class TestCliExtensions:
    def test_join_with_workers(self, tiny_file, capsys):
        main(["join", tiny_file, "--tau", "1", "--quiet"])
        expected = capsys.readouterr().out
        assert main(
            ["join", tiny_file, "--tau", "1", "--quiet", "--workers", "2"]
        ) == 0
        assert capsys.readouterr().out == expected

    def test_gxl_collection(self, tmp_path, capsys):
        from repro.datasets import figure1_graphs
        from repro.graph.gxl import save_gxl

        path = tmp_path / "mol.gxl"
        save_gxl(list(figure1_graphs()), path)
        assert main(["stats", str(path)]) == 0
        assert "|R|=2" in capsys.readouterr().out

    def test_join_json_output(self, tiny_file, tmp_path, capsys):
        import json

        out = tmp_path / "result.json"
        assert main(
            ["join", tiny_file, "--tau", "1", "--quiet", "--json", str(out)]
        ) == 0
        data = json.loads(out.read_text())
        assert data["stats"]["tau"] == 1
        assert isinstance(data["pairs"], list)
        assert data["undecided"] == []


class TestRobustnessFlags:
    def test_budget_flags_accepted(self, collection_file, capsys):
        main(["join", collection_file, "--tau", "2", "--quiet"])
        expected = capsys.readouterr().out
        assert main(
            ["join", collection_file, "--tau", "2", "--quiet",
             "--budget-expansions", "1000000", "--budget-seconds", "60"]
        ) == 0
        assert capsys.readouterr().out == expected

    def test_checkpoint_run_then_resume(self, collection_file, tmp_path, capsys):
        journal = tmp_path / "join.jsonl"
        assert main(
            ["join", collection_file, "--tau", "2", "--quiet",
             "--checkpoint", str(journal)]
        ) == 0
        first = capsys.readouterr().out
        assert journal.exists()
        assert main(
            ["join", collection_file, "--tau", "2", "--quiet",
             "--checkpoint", str(journal)]
        ) == 0
        assert capsys.readouterr().out == first

    def test_checkpoint_mismatch_is_error_not_traceback(
        self, collection_file, tmp_path, capsys
    ):
        journal = tmp_path / "join.jsonl"
        assert main(
            ["join", collection_file, "--tau", "1", "--quiet",
             "--checkpoint", str(journal)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["join", collection_file, "--tau", "2", "--quiet",
             "--checkpoint", str(journal)]
        ) == 1
        assert "error:" in capsys.readouterr().err

    def test_sharded_join_matches_in_memory_output(
        self, collection_file, tmp_path, capsys
    ):
        main(["join", collection_file, "--tau", "2", "--quiet"])
        expected = capsys.readouterr().out
        assert main(
            ["join", collection_file, "--tau", "2", "--quiet",
             "--shards", "3", "--spill-dir", str(tmp_path / "spill"),
             "--memory-budget-mb", "64"]
        ) == 0
        assert capsys.readouterr().out == expected

    def test_sharded_resume_flag(self, collection_file, tmp_path, capsys):
        spill = str(tmp_path / "spill")
        assert main(
            ["join", collection_file, "--tau", "2", "--quiet",
             "--shards", "2", "--spill-dir", spill]
        ) == 0
        first = capsys.readouterr().out
        # Re-running without --resume refuses; with it, identical output.
        assert main(
            ["join", collection_file, "--tau", "2", "--quiet",
             "--shards", "2", "--spill-dir", spill]
        ) == 1
        assert "resume" in capsys.readouterr().err
        assert main(
            ["join", collection_file, "--tau", "2", "--quiet",
             "--shards", "2", "--spill-dir", spill, "--resume"]
        ) == 0
        assert capsys.readouterr().out == first

    def test_sharded_flags_require_shards(self, collection_file, capsys):
        assert main(
            ["join", collection_file, "--tau", "2", "--quiet",
             "--memory-budget-mb", "64"]
        ) == 1
        assert "--shards" in capsys.readouterr().err

    def test_shards_require_spill_dir(self, collection_file, capsys):
        assert main(
            ["join", collection_file, "--tau", "2", "--quiet", "--shards", "2"]
        ) == 1
        assert "--spill-dir" in capsys.readouterr().err

    def test_shards_reject_checkpoint(self, collection_file, tmp_path, capsys):
        assert main(
            ["join", collection_file, "--tau", "2", "--quiet",
             "--shards", "2", "--spill-dir", str(tmp_path / "spill"),
             "--checkpoint", str(tmp_path / "j.jsonl")]
        ) == 1
        assert "--checkpoint" in capsys.readouterr().err

    def test_budget_with_baseline_is_error(self, tiny_file, capsys):
        assert main(
            ["join", tiny_file, "--tau", "1", "--algorithm", "naive",
             "--budget-expansions", "5"]
        ) == 1
        assert "gsimjoin" in capsys.readouterr().err

    def test_keyboard_interrupt_exit_code(self, tiny_file, capsys, monkeypatch):
        import repro.cli as cli

        def interrupt(args):
            raise KeyboardInterrupt

        monkeypatch.setitem(cli._COMMANDS, "join", interrupt)
        code = main(
            ["join", tiny_file, "--tau", "1", "--checkpoint", "j.jsonl"]
        )
        assert code == cli.EXIT_INTERRUPTED == 130
        err = capsys.readouterr().err
        assert "interrupted" in err and "j.jsonl" in err

    def test_repro_error_exit_code_via_subprocess(self):
        """``python -m repro`` exits 1 (not a traceback) on a ReproError."""
        import subprocess
        import sys
        from pathlib import Path

        src = str(Path(__file__).parent.parent / "src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "join", "/no/such/file.txt",
             "--tau", "1"],
            env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 1
        assert "error:" in proc.stderr
        assert "Traceback" not in proc.stderr
