"""Tests for CompareQGrams (mismatching q-gram extraction)."""

from hypothesis import given, settings

from repro.core import compare_qgrams, extract_qgrams, mismatching_grams
from repro.datasets import figure1_graphs

from .conftest import graph_pairs_within, path_graph, small_graphs


class TestFigure1:
    def test_mismatch_counts(self):
        r, s = figure1_graphs()
        pr, ps = extract_qgrams(r, 1), extract_qgrams(s, 1)
        result = compare_qgrams(pr, ps)
        # r \ s = {C=O}; s \ r = {C-O, C-N}.
        assert result.epsilon_r == 1
        assert result.epsilon_s == 2
        assert {g.key for g in result.mismatch_r} == {("C", "=", "O")}
        assert {g.key for g in result.mismatch_s} == {
            ("C", "-", "O"),
            ("C", "-", "N"),
        }

    def test_absent_keys(self):
        r, s = figure1_graphs()
        result = compare_qgrams(extract_qgrams(r, 1), extract_qgrams(s, 1))
        assert result.absent_keys_r == {("C", "=", "O")}
        assert result.absent_keys_s == {("C", "-", "O"), ("C", "-", "N")}


class TestMultisetSemantics:
    def test_partial_overlap_surplus(self):
        a = path_graph(["A", "A", "A"])  # A-A gram x2
        b = path_graph(["A", "A"])  # A-A gram x1
        pa, pb = extract_qgrams(a, 1), extract_qgrams(b, 1)
        result = compare_qgrams(pa, pb)
        assert result.epsilon_r == 1  # surplus of one instance
        assert result.epsilon_s == 0
        # The key occurs in both graphs, so it is NOT fully absent.
        assert result.absent_keys_r == frozenset()

    def test_identical_profiles_have_no_mismatch(self):
        g = path_graph(["A", "B", "C"])
        p1, p2 = extract_qgrams(g, 1), extract_qgrams(g.copy(), 1)
        result = compare_qgrams(p1, p2)
        assert result.epsilon_r == result.epsilon_s == 0
        assert result.mismatch_r == [] and result.mismatch_s == []


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(graph_pairs_within(tau_max=2, max_vertices=5))
    def test_epsilon_equals_multiset_difference(self, pair):
        r, s, _ = pair
        pr, ps = extract_qgrams(r, 1), extract_qgrams(s, 1)
        result = compare_qgrams(pr, ps)
        expected_r = sum(
            max(0, c - ps.key_counts.get(k, 0)) for k, c in pr.key_counts.items()
        )
        expected_s = sum(
            max(0, c - pr.key_counts.get(k, 0)) for k, c in ps.key_counts.items()
        )
        assert result.epsilon_r == expected_r
        assert result.epsilon_s == expected_s

    @settings(max_examples=30, deadline=None)
    @given(small_graphs(max_vertices=5))
    def test_self_comparison_is_empty(self, g):
        p = extract_qgrams(g, 2)
        assert mismatching_grams(p, p) == []

    @settings(max_examples=30, deadline=None)
    @given(graph_pairs_within(tau_max=2, max_vertices=5))
    def test_absent_key_instances_all_selected(self, pair):
        """Every instance of a fully-absent key must be in the mismatch
        list (they are all guaranteed affected)."""
        r, s, _ = pair
        pr, ps = extract_qgrams(r, 1), extract_qgrams(s, 1)
        result = compare_qgrams(pr, ps)
        for key in result.absent_keys_r:
            chosen = sum(1 for g in result.mismatch_r if g.key == key)
            assert chosen == pr.key_counts[key]
