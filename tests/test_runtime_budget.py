"""Tests for the runtime substrate: budgets, bounded verdicts, journal.

The bounded-verdict contract (``lower <= ged(r, s) <= upper`` whenever
the budget exhausts) is checked against the brute-force GED oracle; the
journal's crash-safety contract (torn final line tolerated, corruption
and run mismatches refused) is checked by corrupting files directly.
"""

import random

import pytest

from repro.core.join import GSimJoinOptions, gsim_join
from repro.exceptions import CheckpointError, ParameterError
from repro.ged.astar import graph_edit_distance_detailed
from repro.ged.reference import brute_force_ged
from repro.graph.generators import random_labeled_graph
from repro.runtime import (
    FaultPlan,
    JoinJournal,
    VerificationBudget,
    VerificationRecord,
    seeded_at,
)

from .conftest import path_graph
from .test_join import molecule_collection


class TestBudgetObjects:
    def test_negative_caps_rejected(self):
        with pytest.raises(ParameterError):
            VerificationBudget(max_expansions=-1)
        with pytest.raises(ParameterError):
            VerificationBudget(max_seconds=-0.5)

    def test_unlimited(self):
        assert VerificationBudget().unlimited
        assert not VerificationBudget(max_expansions=10).unlimited
        assert not VerificationBudget(max_seconds=1.0).unlimited

    def test_meter_counts_expansions(self):
        meter = VerificationBudget(max_expansions=2).start()
        assert meter.tick() and meter.tick()
        assert not meter.tick()

    def test_zero_expansions_exhausts_immediately(self):
        assert not VerificationBudget(max_expansions=0).start().tick()

    def test_unlimited_meter_never_exhausts(self):
        meter = VerificationBudget().start()
        assert all(meter.tick() for _ in range(1000))

    def test_time_budget_exhausts(self):
        meter = VerificationBudget(max_seconds=0.0).start()
        import time

        time.sleep(0.01)
        assert not meter.tick()


class TestFaultPlanObjects:
    def test_bad_kind_rejected(self):
        with pytest.raises(ParameterError):
            FaultPlan("explode", at=1)

    def test_bad_at_rejected(self):
        with pytest.raises(ParameterError):
            FaultPlan("raise", at=0)

    def test_seeded_at_is_deterministic_and_in_range(self):
        points = {seeded_at(s, 7) for s in range(50)}
        assert points <= set(range(1, 8))
        assert seeded_at(3, 7) == seeded_at(3, 7)
        with pytest.raises(ParameterError):
            seeded_at(0, 0)


class TestBoundedVerdicts:
    def test_bracket_contains_true_ged(self):
        """lower <= ged <= upper on random pairs, for any tiny budget."""
        rng = random.Random(7)
        for trial in range(30):
            n1 = rng.randint(1, 4)
            n2 = rng.randint(1, 4)
            r = random_labeled_graph(rng, n1, rng.randint(0, n1 * (n1 - 1) // 2),
                                     ["A", "B"], ["x"])
            s = random_labeled_graph(rng, n2, rng.randint(0, n2 * (n2 - 1) // 2),
                                     ["A", "B"], ["x"])
            true_ged = brute_force_ged(r, s)
            budget = VerificationBudget(max_expansions=rng.randint(1, 3))
            result = graph_edit_distance_detailed(r, s, budget=budget)
            if not result.budget_exhausted:
                assert result.distance == true_ged
                continue
            assert result.lower is not None and result.upper is not None
            assert result.lower <= true_ged <= result.upper
            assert result.distance == result.upper

    def test_generous_budget_is_bit_identical_to_none(self):
        r = path_graph(["C", "C", "O", "N"], graph_id=0)
        s = path_graph(["C", "O", "O", "N"], graph_id=1)
        plain = graph_edit_distance_detailed(r, s)
        budgeted = graph_edit_distance_detailed(
            r, s, budget=VerificationBudget(max_expansions=10**6)
        )
        assert budgeted == plain

    def test_bounded_verdict_with_threshold_still_sound(self):
        """Threshold pruning must not invalidate the lower bound."""
        rng = random.Random(11)
        for trial in range(20):
            r = random_labeled_graph(rng, 4, 3, ["A", "B"], ["x"])
            s = random_labeled_graph(rng, 4, 2, ["A", "B"], ["x"])
            true_ged = brute_force_ged(r, s)
            tau = 2
            result = graph_edit_distance_detailed(
                r, s, threshold=tau,
                budget=VerificationBudget(max_expansions=2),
            )
            if result.budget_exhausted:
                assert result.lower <= true_ged


class TestBudgetedJoin:
    def setup_method(self):
        self.graphs = molecule_collection(20, seed=13)
        self.tau = 2

    def test_budgeted_join_is_sound_and_complete_up_to_undecided(self):
        exact = gsim_join(self.graphs, self.tau)
        budgeted = gsim_join(
            self.graphs, self.tau,
            budget=VerificationBudget(max_expansions=2),
        )
        # Soundness: every reported pair is a true pair.
        assert budgeted.pair_set() <= exact.pair_set()
        # Completeness: every missing true pair is accounted for as
        # undecided, with bounds bracketing tau.
        undecided_ids = {(bp.r_id, bp.s_id) for bp in budgeted.undecided}
        assert exact.pair_set() - budgeted.pair_set() <= undecided_ids
        for bp in budgeted.undecided:
            assert bp.reason == "budget"
            assert bp.lower is not None and bp.lower <= self.tau
            assert bp.upper is None or bp.upper > self.tau
        assert budgeted.stats.undecided == len(budgeted.undecided)

    def test_generous_budget_matches_plain_join_exactly(self):
        exact = gsim_join(self.graphs, self.tau)
        budgeted = gsim_join(
            self.graphs, self.tau,
            budget=VerificationBudget(max_expansions=10**7),
        )
        assert budgeted.pairs == exact.pairs
        assert budgeted.undecided == []
        assert budgeted.stats.ged_expansions == exact.stats.ged_expansions
        assert budgeted.stats.cand2 == exact.stats.cand2

    def test_budgeted_dfs_is_sound_and_complete_up_to_undecided(self):
        """The DFS backend honours budgets with sound brackets — the
        historical 'budgets require A*-family' restriction is gone."""
        options = GSimJoinOptions(verifier="dfs")
        exact = gsim_join(self.graphs, self.tau, options=options)
        budgeted = gsim_join(
            self.graphs, self.tau, options=options,
            budget=VerificationBudget(max_expansions=2),
        )
        assert budgeted.pair_set() <= exact.pair_set()
        undecided_ids = {(bp.r_id, bp.s_id) for bp in budgeted.undecided}
        assert exact.pair_set() - budgeted.pair_set() <= undecided_ids
        for bp in budgeted.undecided:
            assert bp.reason == "budget"
            assert bp.lower is not None and bp.lower <= self.tau
            assert bp.upper is None or bp.upper > self.tau

    def test_unknown_verifier_is_rejected_with_registry_listing(self):
        with pytest.raises(ParameterError, match="registered backends"):
            gsim_join(
                self.graphs, 1,
                options=GSimJoinOptions(verifier="ilp"),
            )


def _meta(tag="a"):
    return {"kind": "self-join", "tag": tag}


class TestJournal:
    def test_create_replay_round_trip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        rec = VerificationRecord(i=3, j=1, is_result=True, ged=2, expansions=7)
        with JoinJournal.open(path, _meta()) as journal:
            journal.append(rec)
            journal.append(VerificationRecord(i=4, j=0, is_result=False,
                                              pruned_by="count"))
        with JoinJournal.open(path, _meta()) as journal:
            assert journal.completed[(3, 1)] == rec
            assert journal.completed[(4, 0)].pruned_by == "count"
            assert len(journal.completed) == 2

    def test_torn_final_line_is_truncated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with JoinJournal.open(path, _meta()) as journal:
            journal.append(VerificationRecord(i=1, j=0, is_result=True))
        with open(path, "a", encoding="utf-8") as f:
            f.write('{"i": 2, "j": 0, "torn_ma')  # torn write, no newline
        with JoinJournal.open(path, _meta()) as journal:
            assert set(journal.completed) == {(1, 0)}
        # The torn bytes are gone from the file.
        assert "torn_ma" not in path.read_text()

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with JoinJournal.open(path, _meta()) as journal:
            journal.append(VerificationRecord(i=1, j=0, is_result=True))
        text = path.read_text().splitlines()
        text.insert(1, "garbage not json")
        path.write_text("\n".join(text) + "\n")
        with pytest.raises(CheckpointError, match="corrupt"):
            JoinJournal.open(path, _meta())

    def test_meta_mismatch_refused(self, tmp_path):
        path = tmp_path / "j.jsonl"
        JoinJournal.open(path, _meta("a")).close()
        with pytest.raises(CheckpointError, match="different run"):
            JoinJournal.open(path, _meta("b"))

    def test_foreign_file_refused(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"not": "a journal"}\n')
        with pytest.raises(CheckpointError, match="not a gsimjoin journal"):
            JoinJournal.open(path, _meta())

    def test_append_after_close_raises(self, tmp_path):
        journal = JoinJournal.open(tmp_path / "j.jsonl", _meta())
        journal.close()
        journal.close()  # idempotent
        with pytest.raises(CheckpointError, match="closed"):
            journal.append(VerificationRecord(i=0, j=0, is_result=False))

    def test_empty_existing_file_gets_fresh_header(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text("")
        with JoinJournal.open(path, _meta()) as journal:
            assert journal.completed == {}
        assert "gsimjoin-journal" in path.read_text()
