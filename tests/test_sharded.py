"""Out-of-core sharded join tests: parity, recovery, bounded memory.

The sharded driver must produce exactly the in-memory join's result
pairs for every shard count (statistics counters legitimately differ
across shardings — the per-combo candidate orderings change — so
cross-driver parity is asserted on the pair/undecided fingerprint).
Recovery is exercised the hard way: a sacrificial subprocess is killed
mid-shard and mid-merge, injected ENOSPC tears spill writes, and the
resumed run must be bit-identical to an uninterrupted one.  The
substrate pieces (memory budget, spill queues, manifest, size-band
arithmetic) get direct unit coverage, including a hypothesis property
that banding covers every qualifying pair exactly once.
"""

import errno
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.join import gsim_join
from repro.core.sharded import gsim_join_sharded, result_fingerprint
from repro.exceptions import (
    CheckpointError,
    MemoryBudgetError,
    ParameterError,
)
from repro.graph import load_graphs, save_graphs
from repro.runtime import (
    FaultPlan,
    MemoryBudget,
    ShardManifest,
    SpillQueue,
    plan_bands,
    qualifying_shard_pairs,
)

from .test_join import molecule_collection

SRC = str(Path(__file__).parent.parent / "src")
TAU = 2

#: Counters that must agree between a clean sharded run and a resumed
#: one (same sharding, no memory budget => identical split levels).
COUNTER_FIELDS = (
    "cand1", "cand2", "results", "ged_calls", "ged_expansions",
    "undecided", "pruned_by_count", "pruned_by_global_label",
    "pruned_by_local_label",
)


def assert_same_result(resumed, clean):
    assert resumed.pairs == clean.pairs
    assert resumed.undecided == clean.undecided
    for field in COUNTER_FIELDS:
        assert getattr(resumed.stats, field) == getattr(clean.stats, field)


@pytest.fixture(scope="module")
def graphs():
    return molecule_collection(36, seed=61)


@pytest.fixture(scope="module")
def expected(graphs):
    return gsim_join(graphs, TAU)


@pytest.fixture(scope="module")
def expected_fp(expected):
    return result_fingerprint(expected)


# --- Substrate: memory budget ---------------------------------------------


class TestMemoryBudget:
    def test_charge_within_limit(self):
        budget = MemoryBudget(100)
        budget.charge(60)
        budget.charge(40)
        assert budget.used == 100 and budget.peak == 100

    def test_charge_over_limit_raises_before_accounting(self):
        budget = MemoryBudget(100)
        budget.charge(60)
        with pytest.raises(MemoryBudgetError, match="index build"):
            budget.charge(41, "index build")
        # The failed charge must not have been applied.
        assert budget.used == 60

    def test_release_clamps_at_zero(self):
        budget = MemoryBudget(100)
        budget.charge(10)
        budget.release(50)
        assert budget.used == 0

    def test_peak_survives_release_and_reset(self):
        budget = MemoryBudget(100)
        budget.charge(80)
        budget.release(80)
        budget.charge(30)
        budget.reset()
        assert budget.peak == 80 and budget.used == 0

    def test_unlimited_budget_still_tracks_peak(self):
        budget = MemoryBudget.from_mb(None)
        budget.charge(10**12)
        assert budget.limit is None and budget.peak == 10**12

    def test_from_mb_converts(self):
        assert MemoryBudget.from_mb(2).limit == 2 * 1024 * 1024

    def test_invalid_limit_rejected(self):
        with pytest.raises(ParameterError):
            MemoryBudget(0)

    def test_negative_charge_rejected(self):
        with pytest.raises(ParameterError):
            MemoryBudget(100).charge(-1)


# --- Substrate: spill queues ----------------------------------------------


class TestSpillQueue:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "q.jsonl"
        queue = SpillQueue.create(path)
        queue.append({"lo": 1, "hi": 2})
        queue.append({"lo": 3, "hi": 4})
        queue.finish()
        assert list(SpillQueue.replay(path)) == [
            {"lo": 1, "hi": 2}, {"lo": 3, "hi": 4},
        ]
        assert SpillQueue.is_complete(path)

    def test_unfinished_queue_refused(self, tmp_path):
        path = tmp_path / "q.jsonl"
        with SpillQueue.create(path) as queue:
            queue.append({"lo": 1, "hi": 2})
        # No finish(): the writer "crashed" mid-queue.
        assert not SpillQueue.is_complete(path)
        with pytest.raises(CheckpointError, match="sentinel"):
            list(SpillQueue.replay(path))

    def test_torn_tail_refused(self, tmp_path):
        path = tmp_path / "q.jsonl"
        queue = SpillQueue.create(path)
        queue.append({"lo": 1, "hi": 2})
        queue.finish()
        # Tear the sentinel: cut the file mid-line.
        raw = path.read_bytes()
        path.write_bytes(raw[:-5])
        with pytest.raises(CheckpointError, match="sentinel"):
            list(SpillQueue.replay(path))

    def test_count_mismatch_refused(self, tmp_path):
        path = tmp_path / "q.jsonl"
        queue = SpillQueue.create(path)
        queue.append({"lo": 1, "hi": 2})
        queue.finish()
        lines = path.read_text().splitlines()
        lines[-1] = json.dumps({"spill-end": 7})
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="claims 7"):
            list(SpillQueue.replay(path))

    def test_create_truncates_previous_attempt(self, tmp_path):
        path = tmp_path / "q.jsonl"
        with SpillQueue.create(path) as queue:
            queue.append({"stale": True})
        queue = SpillQueue.create(path)
        queue.finish()
        assert list(SpillQueue.replay(path)) == []

    def test_append_after_close_refused(self, tmp_path):
        queue = SpillQueue.create(tmp_path / "q.jsonl")
        queue.finish()
        with pytest.raises(CheckpointError, match="closed"):
            queue.append({})


# --- Substrate: banding arithmetic ----------------------------------------


class TestBanding:
    def test_bands_partition_positions(self):
        sizes = [5, 1, 9, 1, 7, 3]
        bands = plan_bands(sizes, 3)
        flat = sorted(p for band in bands for p in band)
        assert flat == list(range(len(sizes)))
        # Bands are ordered by size: each band's max <= next band's min.
        maxima = [max(sizes[p] for p in band) for band in bands]
        minima = [min(sizes[p] for p in band) for band in bands]
        assert all(maxima[k] <= minima[k + 1] for k in range(len(bands) - 1))

    def test_more_shards_than_graphs_drops_empty_bands(self):
        bands = plan_bands([4, 2], 5)
        assert len(bands) == 2
        assert sorted(p for band in bands for p in band) == [0, 1]

    def test_invalid_shards_rejected(self):
        with pytest.raises(ParameterError):
            plan_bands([1], 0)

    def test_distant_bands_skipped(self):
        # Bands at sizes [1,2], [10,11]: gap 8 > tau 2 -> only diagonals.
        assert qualifying_shard_pairs([(1, 2), (10, 11)], 2) == [(0, 0), (1, 1)]

    def test_adjacent_bands_kept(self):
        assert qualifying_shard_pairs([(1, 4), (5, 9)], 2) == [
            (0, 0), (0, 1), (1, 1),
        ]

    @settings(max_examples=60, deadline=None)
    @given(
        sizes=st.lists(st.integers(min_value=0, max_value=30),
                       min_size=1, max_size=40),
        shards=st.integers(min_value=1, max_value=6),
        tau=st.integers(min_value=0, max_value=4),
    )
    def test_banding_covers_every_qualifying_pair_exactly_once(
        self, sizes, shards, tau
    ):
        """Soundness of the partition-level size filter: every global
        pair within the size gap lands in exactly one qualifying shard
        pair (each graph lives in exactly one band)."""
        bands = plan_bands(sizes, shards)
        flat = sorted(p for band in bands for p in band)
        assert flat == list(range(len(sizes)))
        ranges = [
            (min(sizes[p] for p in band), max(sizes[p] for p in band))
            for band in bands
        ]
        qualifying = qualifying_shard_pairs(ranges, tau)
        assert len(set(qualifying)) == len(qualifying)
        band_of = {p: k for k, band in enumerate(bands) for p in band}
        for i in range(len(sizes)):
            for j in range(i + 1, len(sizes)):
                if abs(sizes[i] - sizes[j]) <= tau:
                    a, b = sorted((band_of[i], band_of[j]))
                    assert (a, b) in qualifying


# --- Substrate: manifest --------------------------------------------------


class TestShardManifest:
    META = {"kind": "test-run", "tau": 2}

    def test_create_load_round_trip(self, tmp_path):
        path = tmp_path / "manifest.json"
        manifest = ShardManifest.create(path, self.META)
        manifest.set_partition([{"file": "shard-0.txt"}], ["0-0"])
        loaded = ShardManifest.load(path, self.META)
        assert loaded.partition == [{"file": "shard-0.txt"}]
        assert loaded.pair("0-0") == {
            "status": "pending", "attempts": 0, "split": 0,
        }

    def test_foreign_meta_refused(self, tmp_path):
        path = tmp_path / "manifest.json"
        ShardManifest.create(path, self.META)
        with pytest.raises(CheckpointError, match="different run"):
            ShardManifest.load(path, {"kind": "test-run", "tau": 3})

    def test_corrupt_manifest_refused(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text("{not json")
        with pytest.raises(CheckpointError, match="corrupt"):
            ShardManifest.load(path, self.META)

    def test_updates_are_atomic_documents(self, tmp_path):
        """Every mutation leaves a complete, parseable document (the
        replace_file discipline) and no stray tempfiles."""
        path = tmp_path / "manifest.json"
        manifest = ShardManifest.create(path, self.META)
        manifest.set_partition([], ["0-0", "0-1"])
        manifest.update_pair("0-1", status="running", attempts=1)
        manifest.set_complete({"results": 0})
        data = json.loads(path.read_text())
        assert data["pairs"]["0-1"]["status"] == "running"
        assert data["complete"] == {"results": 0}
        assert [p.name for p in tmp_path.iterdir()] == ["manifest.json"]


# --- Parity with the in-memory join ---------------------------------------


class TestShardedParity:
    @pytest.mark.parametrize("shards", [1, 2, 4, 7])
    def test_fingerprint_matches_in_memory(
        self, graphs, expected, expected_fp, tmp_path, shards
    ):
        result = gsim_join_sharded(
            graphs, TAU, spill_dir=tmp_path / "spill", shards=shards
        )
        assert result.pairs == expected.pairs
        assert result.undecided == expected.undecided
        assert result_fingerprint(result) == expected_fp

    def test_file_source_streams_to_same_result(
        self, graphs, expected_fp, tmp_path
    ):
        path = tmp_path / "graphs.txt"
        save_graphs(graphs, path)
        result = gsim_join_sharded(
            path, TAU, spill_dir=tmp_path / "spill", shards=3
        )
        assert result_fingerprint(result) == expected_fp

    def test_workers_parity(self, graphs, expected, tmp_path):
        result = gsim_join_sharded(
            graphs, TAU, spill_dir=tmp_path / "spill", shards=3, workers=2,
            retry_backoff=0.0,
        )
        assert result.pairs == expected.pairs
        assert result.undecided == expected.undecided

    def test_fsync_interval_parity(self, graphs, expected_fp, tmp_path):
        result = gsim_join_sharded(
            graphs, TAU, spill_dir=tmp_path / "spill", shards=2,
            fsync_interval=1,
        )
        assert result_fingerprint(result) == expected_fp

    def test_candidates_enumerated_exactly_once(self, graphs, tmp_path):
        """Across every shard pair's candidate spill queue, each global
        (lo, hi) pair appears at most once, and the union matches the
        run's cand1 counter — no pair is examined twice, none is lost
        between shard pairs."""
        spill = tmp_path / "spill"
        result = gsim_join_sharded(graphs, TAU, spill_dir=spill, shards=4)
        manifest = json.loads((spill / "manifest.json").read_text())
        seen = []
        for key in manifest["pairs"]:
            path = spill / f"pair-{key}.candidates.jsonl"
            seen.extend(
                (record["lo"], record["hi"])
                for record in SpillQueue.replay(path)
            )
        assert len(seen) == len(set(seen))
        assert len(seen) == result.stats.cand1

    def test_lenient_loading_skips_corrupt_graphs(self, tmp_path):
        good = molecule_collection(8, seed=5)
        path = tmp_path / "graphs.txt"
        save_graphs(good, path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("t # 99\nv zero C\n")
        oracle = gsim_join(load_graphs(path, on_error="skip"), TAU)
        result = gsim_join_sharded(
            path, TAU, spill_dir=tmp_path / "spill", shards=2,
            on_error="skip",
        )
        assert result.pairs == oracle.pairs


# --- Bounded memory -------------------------------------------------------


class TestMemoryBounds:
    def test_budget_degrades_to_subshards_with_identical_result(
        self, graphs, expected_fp, tmp_path
    ):
        spill = tmp_path / "spill"
        result = gsim_join_sharded(
            graphs, TAU, spill_dir=spill, shards=3, memory_budget_mb=0.25
        )
        assert result_fingerprint(result) == expected_fp
        manifest = json.loads((spill / "manifest.json").read_text())
        splits = [pair["split"] for pair in manifest["pairs"].values()]
        assert max(splits) > 0  # the budget really forced a degrade
        assert all(pair["status"] == "done"
                   for pair in manifest["pairs"].values())
        summary = manifest["complete"]
        assert 0 < summary["peak_budget_bytes"] <= int(0.25 * 1024 * 1024)

    def test_budget_below_minimal_combo_raises(self, graphs, tmp_path):
        with pytest.raises(MemoryBudgetError, match="memory budget"):
            gsim_join_sharded(
                graphs, TAU, spill_dir=tmp_path / "spill", shards=2,
                memory_budget_mb=0.02,
            )


# --- Resume guards --------------------------------------------------------


class TestResumeGuards:
    def test_existing_manifest_without_resume_refused(self, graphs, tmp_path):
        spill = tmp_path / "spill"
        gsim_join_sharded(graphs, TAU, spill_dir=spill, shards=2)
        with pytest.raises(CheckpointError, match="resume"):
            gsim_join_sharded(graphs, TAU, spill_dir=spill, shards=2)

    def test_resume_with_different_tau_refused(self, graphs, tmp_path):
        spill = tmp_path / "spill"
        gsim_join_sharded(graphs, TAU, spill_dir=spill, shards=2)
        with pytest.raises(CheckpointError, match="different run"):
            gsim_join_sharded(
                graphs, TAU + 1, spill_dir=spill, shards=2, resume=True
            )

    def test_resume_with_different_shards_refused(self, graphs, tmp_path):
        spill = tmp_path / "spill"
        gsim_join_sharded(graphs, TAU, spill_dir=spill, shards=2)
        with pytest.raises(CheckpointError, match="different run"):
            gsim_join_sharded(
                graphs, TAU, spill_dir=spill, shards=3, resume=True
            )

    def test_missing_shard_file_refused(self, graphs, tmp_path):
        spill = tmp_path / "spill"
        gsim_join_sharded(graphs, TAU, spill_dir=spill, shards=2)
        (spill / "shard-0.txt").unlink()
        with pytest.raises(CheckpointError, match="missing"):
            gsim_join_sharded(
                graphs, TAU, spill_dir=spill, shards=2, resume=True
            )

    def test_completed_run_resumes_from_manifest(self, graphs, tmp_path):
        spill = tmp_path / "spill"
        clean = gsim_join_sharded(graphs, TAU, spill_dir=spill, shards=3)
        resumed = gsim_join_sharded(
            graphs, TAU, spill_dir=spill, shards=3, resume=True
        )
        assert_same_result(resumed, clean)
        # Done pairs are trusted outright: nothing is replayed.
        assert resumed.stats.replayed_pairs == 0


# --- Crash recovery (subprocess kills) ------------------------------------

DRIVER = """
import sys
from repro.core.sharded import gsim_join_sharded
from repro.runtime import FaultPlan

collection, spill_dir, shards, kill_at = (
    sys.argv[1], sys.argv[2], int(sys.argv[3]), int(sys.argv[4])
)
gsim_join_sharded(
    collection, {tau}, spill_dir=spill_dir, shards=int(shards),
    fault=FaultPlan("kill", at=kill_at),
)
""".format(tau=TAU)


def run_killed_join(collection, spill_dir, shards, kill_at):
    proc = subprocess.run(
        [sys.executable, "-c", DRIVER, str(collection), str(spill_dir),
         str(shards), str(kill_at)],
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
        capture_output=True,
        timeout=120,
    )
    return proc


class TestKilledShardedJoinResumes:
    SHARDS = 3

    @pytest.fixture
    def collection(self, graphs, tmp_path):
        path = tmp_path / "graphs.txt"
        save_graphs(graphs, path)
        return path

    @pytest.fixture
    def clean(self, collection, tmp_path):
        return gsim_join_sharded(
            collection, TAU, spill_dir=tmp_path / "clean", shards=self.SHARDS
        )

    def test_kill_mid_shard_then_resume(self, collection, clean, tmp_path):
        spill = tmp_path / "killed"
        proc = run_killed_join(collection, spill, self.SHARDS, kill_at=5)
        # The injected kill is an os._exit(1): no traceback, just death.
        assert proc.returncode == 1
        manifest = json.loads((spill / "manifest.json").read_text())
        assert manifest["complete"] is None
        statuses = {p["status"] for p in manifest["pairs"].values()}
        assert "running" in statuses  # died mid-pair, manifest says so

        resumed = gsim_join_sharded(
            collection, TAU, spill_dir=spill, shards=self.SHARDS, resume=True
        )
        assert_same_result(resumed, clean)
        # The interrupted pair's journal fed the resume: the 4 pairs
        # verified before the kill replay instead of re-running A*.
        assert resumed.stats.replayed_pairs == 4

    def test_kill_mid_merge_then_resume(self, collection, clean, tmp_path):
        """Every shard pair is done; the kill lands on the merge
        boundary step.  Resume must trust the manifest completely."""
        spill = tmp_path / "killed"
        kill_at = clean.stats.cand1 + 1
        proc = run_killed_join(collection, spill, self.SHARDS, kill_at)
        assert proc.returncode == 1
        manifest = json.loads((spill / "manifest.json").read_text())
        assert manifest["complete"] is None
        assert all(p["status"] == "done"
                   for p in manifest["pairs"].values())

        resumed = gsim_join_sharded(
            collection, TAU, spill_dir=spill, shards=self.SHARDS, resume=True
        )
        assert_same_result(resumed, clean)
        assert resumed.stats.replayed_pairs == 0


# --- Injected I/O faults (full disk, flaky disk) --------------------------


class TestSpillFaults:
    def test_latched_enospc_recovers_in_process(
        self, graphs, expected_fp, tmp_path
    ):
        """The disk 'fills' once mid-spill; the shard-pair retry finds
        space freed (the latch) and the run completes unassisted."""
        spill = tmp_path / "spill"
        result = gsim_join_sharded(
            graphs, TAU, spill_dir=spill, shards=2,
            fault=FaultPlan(
                "enospc", at=5, latch_path=str(tmp_path / "latch")
            ),
            retry_backoff=0.0,
        )
        assert result_fingerprint(result) == expected_fp
        manifest = json.loads((spill / "manifest.json").read_text())
        assert max(p["attempts"] for p in manifest["pairs"].values()) > 1

    @pytest.mark.parametrize("kind", ["enospc", "ioerror"])
    def test_persistent_fault_raises_then_resumes(
        self, graphs, expected_fp, tmp_path, kind
    ):
        """An unlatched I/O fault fires on every write: retries are
        exhausted and the OSError reaches the caller.  A fault-free
        resume completes bit-identically."""
        spill = tmp_path / "spill"
        with pytest.raises(OSError) as excinfo:
            gsim_join_sharded(
                graphs, TAU, spill_dir=spill, shards=2,
                fault=FaultPlan(kind, at=5),
                max_retries=1, retry_backoff=0.0,
            )
        if kind == "enospc":
            assert excinfo.value.errno == errno.ENOSPC

        result = gsim_join_sharded(
            graphs, TAU, spill_dir=spill, shards=2, resume=True
        )
        assert result_fingerprint(result) == expected_fp


# --- Out-of-core under a hard address-space cap ---------------------------

OOC_IN_MEMORY_DRIVER = """
import resource, sys
from repro.core.join import gsim_join
from repro.graph import load_graphs

collection, headroom_mb = sys.argv[1], int(sys.argv[2])
with open("/proc/self/statm") as f:
    vm_now = int(f.read().split()[0]) * resource.getpagesize()
cap = vm_now + headroom_mb * 2**20
resource.setrlimit(resource.RLIMIT_AS, (cap, cap))
try:
    gsim_join(load_graphs(collection), {tau})
except MemoryError:
    sys.exit(7)
sys.exit(0)
""".format(tau=1)

OOC_SHARDED_DRIVER = """
import resource, sys
from repro.core.sharded import gsim_join_sharded, result_fingerprint

collection, spill_dir, headroom_mb = sys.argv[1], sys.argv[2], int(sys.argv[3])
with open("/proc/self/statm") as f:
    vm_now = int(f.read().split()[0]) * resource.getpagesize()
cap = vm_now + headroom_mb * 2**20
resource.setrlimit(resource.RLIMIT_AS, (cap, cap))
result = gsim_join_sharded(
    collection, {tau}, spill_dir=spill_dir, shards=16, memory_budget_mb=8,
)
print(result_fingerprint(result))
""".format(tau=1)


@pytest.mark.skipif(
    os.environ.get("REPRO_STRESS") != "1",
    reason="set REPRO_STRESS=1 to run the address-space-cap stress test",
)
@pytest.mark.skipif(sys.platform != "linux", reason="needs /proc and RLIMIT_AS")
class TestOutOfCore:
    def test_sharded_completes_where_in_memory_ooms(self, tmp_path):
        """Under the same address-space headroom the in-memory join
        dies of MemoryError while the sharded join — bounded residency,
        spill-to-disk — completes with the unrestricted fingerprint."""
        import random

        from repro.graph import assign_ids
        from repro.graph.generators import random_molecule

        rng = random.Random(71)
        graphs = assign_ids(
            [random_molecule(rng, rng.randint(60, 120)) for _ in range(700)]
        )
        collection = tmp_path / "big.txt"
        save_graphs(graphs, collection)
        reference = result_fingerprint(gsim_join(graphs, 1))
        del graphs
        headroom = 48

        in_memory = subprocess.run(
            [sys.executable, "-c", OOC_IN_MEMORY_DRIVER,
             str(collection), str(headroom)],
            env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
            capture_output=True, timeout=300,
        )
        assert in_memory.returncode != 0  # MemoryError (7) or allocator abort

        sharded = subprocess.run(
            [sys.executable, "-c", OOC_SHARDED_DRIVER,
             str(collection), str(tmp_path / "spill"), str(headroom)],
            env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
            capture_output=True, timeout=600,
        )
        assert sharded.returncode == 0, sharded.stderr.decode()
        assert sharded.stdout.decode().strip() == reference
