"""Unit tests for the Graph data structure."""

import pytest

from repro.exceptions import GraphError
from repro.graph import Graph

from .conftest import build_graph, cycle_graph, path_graph


class TestConstruction:
    def test_empty_graph(self):
        g = Graph("g0")
        assert g.graph_id == "g0"
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert len(g) == 0
        assert list(g.vertices()) == []
        assert list(g.edges()) == []

    def test_add_vertices_and_edges(self):
        g = build_graph(["C", "C", "O"], [(0, 1, "-"), (1, 2, "=")])
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert g.vertex_label(0) == "C"
        assert g.vertex_label(2) == "O"
        assert g.edge_label(0, 1) == "-"
        assert g.edge_label(1, 0) == "-"  # undirected
        assert g.edge_label(2, 1) == "="

    def test_duplicate_vertex_rejected(self):
        g = Graph()
        g.add_vertex(0, "C")
        with pytest.raises(GraphError, match="already exists"):
            g.add_vertex(0, "N")

    def test_self_loop_rejected(self):
        g = Graph()
        g.add_vertex(0, "C")
        with pytest.raises(GraphError, match="self-loop"):
            g.add_edge(0, 0, "-")

    def test_parallel_edge_rejected(self):
        g = build_graph(["C", "C"], [(0, 1, "-")])
        with pytest.raises(GraphError, match="already exists"):
            g.add_edge(1, 0, "=")

    def test_edge_requires_endpoints(self):
        g = Graph()
        g.add_vertex(0, "C")
        with pytest.raises(GraphError, match="does not exist"):
            g.add_edge(0, 1, "-")

    def test_missing_vertex_queries(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.vertex_label(3)
        with pytest.raises(GraphError):
            g.degree(3)
        g.add_vertex(0, "C")
        g.add_vertex(1, "C")
        with pytest.raises(GraphError):
            g.edge_label(0, 1)


class TestMutation:
    def test_remove_edge(self):
        g = build_graph(["A", "B"], [(0, 1, "x")])
        g.remove_edge(0, 1)
        assert g.num_edges == 0
        assert not g.has_edge(0, 1)
        with pytest.raises(GraphError):
            g.remove_edge(0, 1)

    def test_remove_vertex_removes_incident_edges(self):
        g = cycle_graph(["A", "B", "C"])
        g.remove_vertex(0)
        assert g.num_vertices == 2
        assert g.num_edges == 1
        assert g.has_edge(1, 2)

    def test_set_labels(self):
        g = build_graph(["A", "B"], [(0, 1, "x")])
        g.set_vertex_label(0, "Z")
        g.set_edge_label(1, 0, "y")
        assert g.vertex_label(0) == "Z"
        assert g.edge_label(0, 1) == "y"


class TestQueries:
    def test_degree_and_neighbors(self):
        g = build_graph(["A", "B", "C"], [(0, 1, "x"), (0, 2, "y")])
        assert g.degree(0) == 2
        assert g.degree(1) == 1
        assert sorted(g.neighbors(0)) == [1, 2]
        assert dict(g.neighbor_items(0)) == {1: "x", 2: "y"}
        assert g.max_degree() == 2

    def test_max_degree_empty(self):
        assert Graph().max_degree() == 0

    def test_label_multisets(self):
        g = build_graph(["C", "C", "O"], [(0, 1, "-"), (1, 2, "-")])
        assert g.vertex_label_multiset() == {"C": 2, "O": 1}
        assert g.edge_label_multiset() == {"-": 2}

    def test_edges_iterated_once(self):
        g = cycle_graph(["A", "B", "C", "D"])
        edges = list(g.edges())
        assert len(edges) == 4
        keys = {frozenset((u, v)) for u, v, _ in edges}
        assert len(keys) == 4

    def test_contains(self):
        g = build_graph(["A"], [])
        assert 0 in g
        assert 1 not in g


class TestDerivedGraphs:
    def test_copy_is_deep(self):
        g = build_graph(["A", "B"], [(0, 1, "x")])
        h = g.copy()
        h.set_vertex_label(0, "Z")
        h.remove_edge(0, 1)
        assert g.vertex_label(0) == "A"
        assert g.has_edge(0, 1)

    def test_copy_with_new_id(self):
        g = build_graph(["A"], [], graph_id="orig")
        assert g.copy().graph_id == "orig"
        assert g.copy(graph_id="new").graph_id == "new"

    def test_subgraph_induced(self):
        g = cycle_graph(["A", "B", "C", "D"])
        sub = g.subgraph([0, 1, 2])
        assert sub.num_vertices == 3
        assert sub.num_edges == 2  # edges 0-1, 1-2; the 3-0 and 2-3 edges drop
        assert sub.has_edge(0, 1) and sub.has_edge(1, 2)

    def test_relabel_vertices(self):
        g = build_graph(["A", "B"], [(0, 1, "x")])
        h = g.relabel_vertices({0: 10, 1: 11})
        assert sorted(h.vertices()) == [10, 11]
        assert h.has_edge(10, 11)
        assert h.vertex_label(10) == "A"

    def test_relabel_rejects_non_injective(self):
        g = build_graph(["A", "B"], [])
        with pytest.raises(GraphError, match="injective"):
            g.relabel_vertices({0: 5, 1: 5})


class TestTraversal:
    def test_connected_components(self):
        g = build_graph(["A"] * 5, [(0, 1, "x"), (2, 3, "x")])
        components = sorted(g.connected_components(), key=lambda c: min(c))
        assert components == [{0, 1}, {2, 3}, {4}]

    def test_spanning_tree_order_covers_all(self):
        g = build_graph(["A"] * 5, [(0, 1, "x"), (2, 3, "x")])
        order = g.spanning_tree_order()
        assert sorted(order) == [0, 1, 2, 3, 4]

    def test_spanning_tree_order_within(self):
        g = path_graph(["A", "B", "C", "D"])
        order = g.spanning_tree_order(within=[1, 2])
        assert sorted(order) == [1, 2]
        # BFS from 1 must reach 2 through the restriction.
        assert order == [1, 2]

    def test_spanning_tree_order_neighbors_adjacent_in_tree(self):
        g = path_graph(["A", "B", "C", "D"])
        order = g.spanning_tree_order()
        assert order == [0, 1, 2, 3]


class TestEquality:
    def test_structural_equality(self):
        g = build_graph(["A", "B"], [(0, 1, "x")])
        h = build_graph(["A", "B"], [(0, 1, "x")])
        assert g == h
        h.set_edge_label(0, 1, "y")
        assert g != h

    def test_not_equal_to_other_types(self):
        assert build_graph(["A"], []) != 42

    def test_repr(self):
        g = build_graph(["A", "B"], [(0, 1, "x")], graph_id=7)
        assert "7" in repr(g) and "|V|=2" in repr(g)
