"""Stateful property test for GSimIndex.

A hypothesis rule-based state machine drives an index through random
interleavings of insertions and queries, checking every query against a
brute-force model — the strongest guarantee that incremental insertion
(with its frozen ordering and unprunable bookkeeping) never drifts from
the naive semantics.
"""

import random

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro import GSimIndex, GSimJoinOptions
from repro.ged import ged_within
from repro.graph.generators import random_labeled_graph
from repro.graph.operations import perturb

VERTEX_LABELS = ["A", "B", "C"]
EDGE_LABELS = ["x", "y"]
TAU_MAX = 2


class IndexMachine(RuleBasedStateMachine):
    @initialize(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def setup(self, seed):
        self.rng = random.Random(seed)
        self.index = GSimIndex(tau_max=TAU_MAX, options=GSimJoinOptions.full(q=2))
        self.model = []  # list of graphs, the ground truth
        self.next_id = 0

    def _random_graph(self):
        n = self.rng.randint(1, 5)
        m = self.rng.randint(0, n * (n - 1) // 2)
        g = random_labeled_graph(self.rng, n, m, VERTEX_LABELS, EDGE_LABELS)
        g.graph_id = self.next_id
        self.next_id += 1
        return g

    @rule()
    def add_random_graph(self):
        g = self._random_graph()
        self.index.add(g)
        self.model.append(g)

    @rule()
    def add_near_duplicate(self):
        if not self.model:
            return
        base = self.rng.choice(self.model)
        clone = perturb(
            base, self.rng.randint(1, 2), self.rng, VERTEX_LABELS, EDGE_LABELS,
            graph_id=self.next_id,
        )
        self.next_id += 1
        self.index.add(clone)
        self.model.append(clone)

    @rule(tau=st.integers(min_value=0, max_value=TAU_MAX))
    def query_member(self, tau):
        if not self.model:
            return
        query = self.rng.choice(self.model)
        got = {gid for gid, _ in self.index.query(query, tau)}
        expected = {
            g.graph_id
            for g in self.model
            if g.graph_id != query.graph_id and ged_within(query, g, tau)
        }
        assert got == expected

    @rule(tau=st.integers(min_value=0, max_value=TAU_MAX))
    def query_external(self, tau):
        query = self._random_graph()
        self.next_id -= 1  # not inserted; id can be reused
        got = {gid for gid, _ in self.index.query(query, tau)}
        expected = {
            g.graph_id for g in self.model if ged_within(query, g, tau)
        }
        assert got == expected

    @invariant()
    def sizes_agree(self):
        if hasattr(self, "model"):
            assert len(self.index) == len(self.model)


IndexMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=12, deadline=None
)
TestGSimIndexStateful = IndexMachine.TestCase
