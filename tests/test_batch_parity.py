"""Batch/scalar parity: the vectorized kernels against the scalar oracle.

``GSimJoinOptions(batch=True)`` routes the size, global-label and count
filters through the columnar store (:mod:`repro.grams.columnar`) and the
numpy block kernels (:mod:`repro.engine.batch`); ``batch=False`` is the
retained scalar path.  The two must be observationally identical —
same result pairs in the same order, same distances, same prune-counter
statistics and the same per-stage
:class:`~repro.engine.result.StageStatistics` input/survivor counts —
across join variants, thresholds, q-gram lengths, directed graphs,
custom filter plans, R×S joins, parallel workers, index queries with
streaming inserts (overflow ids) and external query graphs, gram-less
collections, and the empty collection.  The scalar path is the frozen
oracle; these tests are the contract that lets the kernels evolve.

Every test that touches the kernels skips without numpy; the
resolution/error tests at the bottom run on the no-numpy CI job too.
"""

import dataclasses
import random
from collections import Counter

import pytest

from repro import GSimJoinOptions, assign_ids, gsim_join, gsim_join_rs
from repro.core.parallel import gsim_join_parallel
from repro.core.search import GSimIndex
from repro.core.result import JoinStatistics

# Captured at import time: the real dispatch threshold, before the
# autouse fixture below patches the consuming modules down to 1.
from repro.engine.batch import MIN_BATCH_BLOCK as REAL_MIN_BATCH_BLOCK
from repro.engine.executor import Executor
from repro.exceptions import ParameterError
from repro.graph.generators import random_labeled_graph
from repro.grams.columnar import HAVE_NUMPY
from repro.runtime.budget import VerificationBudget

from .test_vocab import (
    PARITY_STATS,
    VARIANTS,
    assert_stat_parity,
    labeled_collection,
)

requires_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="batch kernels require numpy"
)


@pytest.fixture(autouse=True)
def _always_batch(monkeypatch):
    """Force every block through the kernels, however small.

    The dispatch threshold (:data:`repro.engine.batch.MIN_BATCH_BLOCK`)
    would route this suite's deliberately small collections to the
    scalar fallback, leaving the kernels untested; dropping it to 1
    makes batch mode actually batch here.
    ``test_threshold_fallback_is_parity_safe`` restores the real value
    to cover the fallback dispatch itself.
    """
    monkeypatch.setattr("repro.engine.batch.MIN_BATCH_BLOCK", 1)
    monkeypatch.setattr("repro.engine.executor.MIN_BATCH_BLOCK", 1)
    monkeypatch.setattr("repro.engine.parallel.MIN_BATCH_BLOCK", 1)


def with_batch(options, batch):
    return dataclasses.replace(options, batch=batch)


def stage_rows(stats):
    """Per-stage rows reduced to their representation-independent core."""
    return [(r.name, r.role, r.input, r.survivors) for r in stats.stages]


def assert_full_parity(batched, scalar):
    """Pairs (in order), undecided channel, counters and stage rows."""
    assert batched.pairs == scalar.pairs
    assert batched.undecided == scalar.undecided
    assert_stat_parity(batched.stats, scalar.stats)
    assert stage_rows(batched.stats) == stage_rows(scalar.stats)


def gramless_collection(n, seed):
    """Graphs too small for q=4 path grams — all unprunable."""
    rng = random.Random(seed)
    graphs = []
    for _ in range(n):
        nv = rng.randint(1, 2)
        graphs.append(
            random_labeled_graph(
                rng, nv, nv - 1, ["L0", "L1"], ["-"], directed=False
            )
        )
    return assign_ids(graphs)


# ------------------------------------------------------------- kernel units


@requires_numpy
class TestKernels:
    @pytest.mark.parametrize("seed", range(12))
    def test_block_multiset_intersections_matches_counters(self, seed):
        import numpy as np

        from repro.engine.batch import block_multiset_intersections

        def compress(multiset):
            items = sorted(Counter(multiset).items())
            return (
                np.asarray([v for v, _ in items], dtype=np.int64),
                np.asarray([c for _, c in items], dtype=np.int64),
            )

        rng = random.Random(seed)
        rows = [
            sorted(rng.randrange(8) for _ in range(rng.randrange(0, 10)))
            for _ in range(rng.randrange(1, 7))
        ]
        r = sorted(rng.randrange(8) for _ in range(rng.randrange(0, 10)))
        compressed = [compress(row) for row in rows]
        offsets = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum([len(values) for values, _ in compressed], out=offsets[1:])
        flat_values = np.concatenate(
            [values for values, _ in compressed]
            or [np.zeros(0, dtype=np.int64)]
        )
        flat_counts = np.concatenate(
            [counts for _, counts in compressed]
            or [np.zeros(0, dtype=np.int64)]
        )
        picked = [
            rng.randrange(len(rows)) for _ in range(rng.randrange(1, 9))
        ]
        r_values, r_counts = compress(r)
        got = block_multiset_intersections(
            r_values,
            r_counts,
            flat_values,
            flat_counts,
            offsets,
            np.asarray(picked, dtype=np.int64),
        )
        expected = [
            sum((Counter(rows[j]) & Counter(r)).values()) for j in picked
        ]
        assert got.tolist() == expected

    def test_store_row_roundtrip(self):
        from repro.engine.options import build_sorter
        from repro.grams.columnar import build_columnar_store
        from repro.grams.qgrams import extract_qgrams

        graphs = labeled_collection(8, seed=21)
        options = GSimJoinOptions()
        profiles = [extract_qgrams(g, options.q) for g in graphs]
        sorter = build_sorter(profiles, options)
        for p in profiles:
            sorter.sort_profile(p)
        labels = [
            (g.vertex_label_multiset(), g.edge_label_multiset())
            for g in graphs
        ]
        store = build_columnar_store(profiles, labels)
        assert len(store) == len(graphs)
        for i, (g, p) in enumerate(zip(graphs, profiles)):
            row = store.row(i)
            expanded = [
                v
                for v, c in zip(
                    row.sig_values.tolist(), row.sig_counts.tolist()
                )
                for _ in range(c)
            ]
            assert expanded == sorted(p.signature)
            assert row.sig_size == p.size
            assert row.num_vertices == g.num_vertices
            assert row.num_edges == g.num_edges
            assert row.d_path == p.d_path
            assert row.mergeable
            assert row.vlab_len == sum(labels[i][0].values())
            assert row.elab_len == sum(labels[i][1].values())
            # Combined even/odd compressed label encoding: vertex ids
            # even, edge ids odd, counts adding up per type.
            pairs = list(
                zip(row.lab_values.tolist(), row.lab_counts.tolist())
            )
            assert sorted(v for v, _ in pairs) == [v for v, _ in pairs]
            assert sum(c for v, c in pairs if v % 2 == 0) == row.vlab_len
            assert sum(c for v, c in pairs if v % 2 == 1) == row.elab_len

    def test_external_row_unseen_labels_are_negative(self):
        from repro.engine.options import build_sorter
        from repro.grams.columnar import build_columnar_store
        from repro.grams.qgrams import extract_qgrams

        graphs = labeled_collection(6, seed=22, num_labels=2)
        options = GSimJoinOptions()
        profiles = [extract_qgrams(g, options.q) for g in graphs]
        sorter = build_sorter(profiles, options)
        for p in profiles:
            sorter.sort_profile(p)
        labels = [
            (g.vertex_label_multiset(), g.edge_label_multiset())
            for g in graphs
        ]
        store = build_columnar_store(profiles, labels)
        # A foreign profile: sorted in a *different* vocabulary.
        outside = labeled_collection(1, seed=97, num_labels=6)[0]
        q_profile = extract_qgrams(outside, options.q)
        foreign_sorter = build_sorter([q_profile], options)
        foreign_sorter.sort_profile(q_profile)
        row = store.external_row(
            q_profile,
            (
                outside.vertex_label_multiset(),
                outside.edge_label_multiset(),
            ),
        )
        assert not row.mergeable
        vertex_pairs = [
            (v, c)
            for v, c in zip(row.lab_values.tolist(), row.lab_counts.tolist())
            if v % 2 == 0
        ]
        unseen = sum(c for v, c in vertex_pairs if v < 0)
        seen = [(v // 2, c) for v, c in vertex_pairs if v >= 0]
        assert unseen + sum(c for _, c in seen) == outside.num_vertices
        assert all(v in store.vlabel_ids.values() for v, _ in seen)


# ----------------------------------------------------------------- self-join


@requires_numpy
class TestSelfJoinParity:
    @pytest.mark.parametrize("variant", sorted(VARIANTS))
    @pytest.mark.parametrize("tau", [0, 1, 2, 3])
    def test_variants_and_thresholds(self, variant, tau):
        graphs = labeled_collection(26, seed=31)
        options = VARIANTS[variant]()
        batched = gsim_join(graphs, tau, with_batch(options, True))
        scalar = gsim_join(graphs, tau, with_batch(options, False))
        assert_full_parity(batched, scalar)

    @pytest.mark.parametrize("q", [1, 2, 3, 4])
    def test_qgram_lengths(self, q):
        graphs = labeled_collection(22, seed=33)
        options = GSimJoinOptions.full(q=q)
        batched = gsim_join(graphs, 2, with_batch(options, True))
        scalar = gsim_join(graphs, 2, with_batch(options, False))
        assert_full_parity(batched, scalar)

    @pytest.mark.parametrize("seed", [1, 7, 19])
    def test_seeds(self, seed):
        graphs = labeled_collection(24, seed=seed)
        batched = gsim_join(graphs, 3, GSimJoinOptions(batch=True))
        scalar = gsim_join(graphs, 3, GSimJoinOptions(batch=False))
        assert_full_parity(batched, scalar)

    def test_directed(self):
        graphs = labeled_collection(20, seed=35, directed=True)
        batched = gsim_join(graphs, 2, GSimJoinOptions(batch=True))
        scalar = gsim_join(graphs, 2, GSimJoinOptions(batch=False))
        assert_full_parity(batched, scalar)

    def test_gramless_collection_all_unprunable(self):
        graphs = gramless_collection(10, seed=36)
        batched = gsim_join(graphs, 2, GSimJoinOptions(batch=True))
        scalar = gsim_join(graphs, 2, GSimJoinOptions(batch=False))
        assert batched.stats.unprunable_graphs == len(graphs)
        assert_full_parity(batched, scalar)

    def test_empty_collection(self):
        batched = gsim_join([], 2, GSimJoinOptions(batch=True))
        scalar = gsim_join([], 2, GSimJoinOptions(batch=False))
        assert_full_parity(batched, scalar)

    @pytest.mark.parametrize(
        "plan",
        [
            ("count-filter", "global-label-filter", "local-label-filter"),
            ("local-label-filter", "global-label-filter", "count-filter"),
            ("global-label-filter", "local-label-filter", "count-filter"),
        ],
    )
    def test_custom_plans(self, plan):
        """Reordered cascades batch only their batchable prefix."""
        graphs = labeled_collection(22, seed=37)
        options = dataclasses.replace(GSimJoinOptions.full(), plan=plan)
        batched = gsim_join(graphs, 3, with_batch(options, True))
        scalar = gsim_join(graphs, 3, with_batch(options, False))
        assert_full_parity(batched, scalar)

    def test_budgeted_undecided_channel(self):
        graphs = labeled_collection(24, seed=38)
        budget = VerificationBudget(max_expansions=3)
        batched = gsim_join(
            graphs, 3, GSimJoinOptions(batch=True), budget=budget
        )
        scalar = gsim_join(
            graphs, 3, GSimJoinOptions(batch=False), budget=budget
        )
        assert_full_parity(batched, scalar)

    def test_threshold_fallback_is_parity_safe(self, monkeypatch):
        """With the real dispatch threshold, small blocks fall back to
        the scalar cascade — and the mix of batched and fallen-back
        probes still matches the scalar oracle exactly."""
        assert REAL_MIN_BATCH_BLOCK > 1
        monkeypatch.setattr(
            "repro.engine.batch.MIN_BATCH_BLOCK", REAL_MIN_BATCH_BLOCK
        )
        monkeypatch.setattr(
            "repro.engine.executor.MIN_BATCH_BLOCK", REAL_MIN_BATCH_BLOCK
        )
        graphs = labeled_collection(26, seed=39)
        batched = gsim_join(graphs, 3, GSimJoinOptions(batch=True))
        scalar = gsim_join(graphs, 3, GSimJoinOptions(batch=False))
        assert_full_parity(batched, scalar)


# ------------------------------------------------------- rs-join / parallel


@requires_numpy
class TestOtherDriversParity:
    @pytest.mark.parametrize("tau", [1, 2, 3])
    def test_rs_join(self, tau):
        outer = labeled_collection(12, seed=41)
        inner = labeled_collection(15, seed=43)
        for g in inner:
            g.graph_id = f"inner-{g.graph_id}"
        batched = gsim_join_rs(
            outer, inner, tau, GSimJoinOptions(batch=True)
        )
        scalar = gsim_join_rs(
            outer, inner, tau, GSimJoinOptions(batch=False)
        )
        assert_full_parity(batched, scalar)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_parallel_matches_sequential_scalar(self, workers):
        graphs = labeled_collection(26, seed=45)
        batched = gsim_join_parallel(
            graphs,
            3,
            GSimJoinOptions(batch=True),
            workers=workers,
            chunk_size=5,
        )
        scalar = gsim_join(graphs, 3, GSimJoinOptions(batch=False))
        assert sorted(batched.pairs) == sorted(scalar.pairs)
        assert_stat_parity(batched.stats, scalar.stats)
        assert stage_rows(batched.stats) == stage_rows(scalar.stats)

    def test_journal_crosses_batch_modes(self, tmp_path):
        """A journal written batched must resume under the scalar path."""
        graphs = labeled_collection(20, seed=47)
        checkpoint = tmp_path / "join.jsonl"
        batched = gsim_join(
            graphs, 3, GSimJoinOptions(batch=True), checkpoint=checkpoint
        )
        resumed = gsim_join(
            graphs, 3, GSimJoinOptions(batch=False), checkpoint=checkpoint
        )
        assert resumed.pairs == batched.pairs
        assert resumed.stats.replayed_pairs > 0
        assert_stat_parity(resumed.stats, batched.stats)


# --------------------------------------------------------------- search index


@requires_numpy
class TestIndexParity:
    def _run(self, batch):
        graphs = labeled_collection(28, seed=51)
        options = with_batch(GSimJoinOptions(), batch)
        index = GSimIndex(graphs[:18], tau_max=3, options=options)
        stats = JoinStatistics()
        matches = []
        for g in graphs[18:24]:
            # Streaming adds: unseen q-grams get overflow ids and
            # invalidate the lazily built store.
            index.add(g)
        queries = graphs[:4] + graphs[24:]
        for g in queries:
            for tau in (1, 3):
                matches.append(index.query(g, tau, stats=stats))
        return matches, stats

    def test_queries_with_streaming_adds(self):
        batched_matches, batched_stats = self._run(True)
        scalar_matches, scalar_stats = self._run(False)
        assert batched_matches == scalar_matches
        assert_stat_parity(batched_stats, scalar_stats)
        assert stage_rows(batched_stats) == stage_rows(scalar_stats)

    def test_external_query_with_unseen_labels(self):
        graphs = labeled_collection(20, seed=53, num_labels=2)
        foreign = labeled_collection(4, seed=59, num_labels=6)
        results = {}
        for batch in (True, False):
            options = with_batch(GSimJoinOptions(), batch)
            index = GSimIndex(graphs, tau_max=3, options=options)
            stats = JoinStatistics()
            results[batch] = (
                [index.query(g, 3, stats=stats) for g in foreign],
                stage_rows(stats),
            )
        assert results[True] == results[False]

    def test_top_k_parity(self):
        graphs = labeled_collection(22, seed=61)
        out = {}
        for batch in (True, False):
            options = with_batch(GSimJoinOptions(), batch)
            index = GSimIndex(graphs[1:], tau_max=3, options=options)
            out[batch] = index.query_top_k(graphs[0], k=3)
        assert out[True] == out[False]


# ------------------------------------------------- resolution and fallbacks


class TestBatchResolution:
    def test_batch_true_without_numpy_is_a_clear_error(self, monkeypatch):
        monkeypatch.setattr("repro.engine.batch.HAVE_NUMPY", False)
        graphs = labeled_collection(4, seed=71)
        with pytest.raises(ParameterError, match="requires numpy.*fast"):
            gsim_join(graphs, 1, GSimJoinOptions(batch=True))

    def test_batch_default_without_numpy_falls_back_to_scalar(
        self, monkeypatch
    ):
        monkeypatch.setattr("repro.engine.batch.HAVE_NUMPY", False)
        executor = Executor(1, GSimJoinOptions(), JoinStatistics())
        assert executor.batch is False
        graphs = labeled_collection(8, seed=73)
        result = gsim_join(graphs, 2)  # must not raise
        scalar = gsim_join(graphs, 2, GSimJoinOptions(batch=False))
        assert result.pairs == scalar.pairs

    @requires_numpy
    def test_batch_true_requires_interned(self):
        graphs = labeled_collection(4, seed=75)
        with pytest.raises(ParameterError, match="interned"):
            gsim_join(
                graphs, 1, GSimJoinOptions(interned=False, batch=True)
            )

    def test_reference_path_never_batches(self):
        executor = Executor(
            1, GSimJoinOptions(interned=False), JoinStatistics()
        )
        assert executor.batch is False

    @requires_numpy
    def test_default_resolution_batches_interned_runs(self):
        executor = Executor(1, GSimJoinOptions(), JoinStatistics())
        assert executor.batch is True

    @requires_numpy
    def test_object_key_reference_path_parity(self):
        """interned=False (scalar by construction) still agrees."""
        graphs = labeled_collection(18, seed=77)
        batched = gsim_join(graphs, 2, GSimJoinOptions(batch=True))
        reference = gsim_join(graphs, 2, GSimJoinOptions(interned=False))
        assert batched.pairs == reference.pairs
        assert_stat_parity(batched.stats, reference.stats)
