"""Tests for join result and statistics containers."""

from repro.core import JoinResult, JoinStatistics


class TestJoinStatistics:
    def test_defaults(self):
        st = JoinStatistics()
        assert st.cand1 == 0 and st.cand2 == 0 and st.results == 0
        assert st.total_time == 0.0
        assert st.avg_prefix_length == 0.0  # no graphs -> no div by zero

    def test_total_time_sums_phases(self):
        st = JoinStatistics(index_time=1.0, candidate_time=0.5, verify_time=2.0)
        assert st.total_time == 3.5

    def test_avg_prefix_length(self):
        st = JoinStatistics(num_graphs=4, total_prefix_length=10)
        assert st.avg_prefix_length == 2.5

    def test_summary_mentions_core_counters(self):
        st = JoinStatistics(num_graphs=3, tau=2, q=4, cand1=9, cand2=5, results=1)
        text = st.summary()
        for fragment in ("n=3", "tau=2", "q=4", "cand1=9", "cand2=5", "results=1"):
            assert fragment in text


class TestJoinResult:
    def test_len_and_pair_set(self):
        result = JoinResult(pairs=[(0, 1), (2, 3), (0, 1)])
        assert len(result) == 3
        assert result.pair_set() == {(0, 1), (2, 3)}

    def test_default_factories_independent(self):
        a, b = JoinResult(), JoinResult()
        a.pairs.append((1, 2))
        a.stats.cand1 = 5
        assert b.pairs == []
        assert b.stats.cand1 == 0
