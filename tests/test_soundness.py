"""Cross-algorithm equivalence on randomized collections.

The single most important property of the system: every filtered join
(GSimJoin in all variants, κ-AT, AppFull) returns exactly the naive
join's result set, on collections with planted near-duplicates, mixed
graph sizes, and graphs with no q-grams at all.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import GSimJoinOptions, assign_ids, gsim_join, naive_join
from repro.baselines import appfull_join, kat_join
from repro.graph.generators import random_labeled_graph
from repro.graph.operations import perturb

VERTEX_LABELS = ["A", "B", "C"]
EDGE_LABELS = ["x", "y"]


def random_collection(seed: int, size: int):
    """A messy little collection: random graphs + perturbed clones."""
    rng = random.Random(seed)
    graphs = []
    while len(graphs) < size:
        n = rng.randint(1, 6)
        m = rng.randint(0, n * (n - 1) // 2)
        g = random_labeled_graph(rng, n, m, VERTEX_LABELS, EDGE_LABELS)
        graphs.append(g)
        if rng.random() < 0.5 and len(graphs) < size:
            graphs.append(
                perturb(g, rng.randint(1, 2), rng, VERTEX_LABELS, EDGE_LABELS)
            )
    return assign_ids(graphs)


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**31 - 1),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=1, max_value=3),
)
def test_gsimjoin_variants_match_naive(seed, tau, q):
    graphs = random_collection(seed, size=10)
    expected = naive_join(graphs, tau, use_size_filter=False).pair_set()
    for options in (
        GSimJoinOptions.basic(q=q),
        GSimJoinOptions.minedit(q=q),
        GSimJoinOptions.full(q=q),
    ):
        got = gsim_join(graphs, tau, options=options).pair_set()
        assert got == expected, (
            f"tau={tau} q={q} opts={options}: "
            f"missing={expected - got} extra={got - expected}"
        )


@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**31 - 1),
    st.integers(min_value=0, max_value=2),
)
def test_baselines_match_naive(seed, tau):
    graphs = random_collection(seed, size=8)
    expected = naive_join(graphs, tau, use_size_filter=False).pair_set()
    assert kat_join(graphs, tau, q=1).pair_set() == expected
    assert appfull_join(graphs, tau, verify=True).pair_set() == expected


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_size_filter_changes_nothing(seed):
    graphs = random_collection(seed, size=8)
    with_filter = naive_join(graphs, 2, use_size_filter=True).pair_set()
    without = naive_join(graphs, 2, use_size_filter=False).pair_set()
    assert with_filter == without
