"""Tests for the repro.analysis static-analysis framework.

Each rule is exercised against a fixture tree
(``tests/fixtures/analysis/``) holding known violations, asserting the
rule fires exactly at the expected lines and that per-line
``# repro: ignore[RULE]`` comments suppress it.  The suite finally
asserts the real ``src/repro`` tree is clean — the CI gate's contract —
and in particular that the historical ``core <-> ged`` import cycle
stays dead.
"""

from pathlib import Path

import pytest

from repro.analysis.cli import main
from repro.analysis.engine import Finding, module_name, run_analysis
from repro.analysis.registry import all_rules
from repro.analysis.reporters import render_json, render_text
from repro.analysis.rules.layering import allowed_layers

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"
SRC_REPRO = Path(__file__).parent.parent / "src" / "repro"

EXPECTED_RULE_IDS = {
    "annotations",
    "budget-threading",
    "determinism",
    "determinism-taint",
    "docstrings",
    "exceptions",
    "filter-purity",
    "float-equality",
    "fork-safety",
    "hot-path-alloc",
    "layering",
    "unused-suppression",
}


def findings_for(rule_id, path):
    """Run one rule over one fixture file; return (line, ...) tuples."""
    rules = {rule_id: all_rules()[rule_id]}
    return [(f.line, f.rule) for f in run_analysis([path], rules)]


def lines_for(rule_id, path):
    return [line for line, _ in findings_for(rule_id, path)]


def test_all_rules_registered():
    assert set(all_rules()) == EXPECTED_RULE_IDS


def test_module_name_resolution():
    assert module_name(FIXTURES / "repro" / "core" / "join.py") == "repro.core.join"
    assert module_name(FIXTURES / "repro" / "__init__.py") == "repro"
    assert module_name(FIXTURES / "broken.py") == "broken"


# ---------------------------------------------------------------- layering


def test_layering_flags_ged_importing_core_and_facade_and_unknown():
    path = FIXTURES / "repro" / "ged" / "layering_bad.py"
    assert lines_for("layering", path) == [3, 4, 5, 6]


def test_layering_suppression():
    path = FIXTURES / "repro" / "ged" / "layering_bad.py"
    # line 8 imports repro.core.verify but carries `# repro: ignore[layering]`
    assert 8 not in lines_for("layering", path)


def test_layering_closure_matches_issue_dag():
    assert "core" not in allowed_layers("ged")
    assert "ged" in allowed_layers("core")
    assert "grams" in allowed_layers("ged")
    assert {"exceptions", "graph", "setcover"} <= allowed_layers("grams")


def test_compiled_module_clean_under_all_rules():
    """The real compiled backend passes every rule, layering included
    (it lives in the ``ged`` layer, whose closure covers its imports)."""
    path = SRC_REPRO / "ged" / "compiled.py"
    assert module_name(path) == "repro.ged.compiled"
    assert [f for f in run_analysis([path], all_rules())] == []
    assert "core" in allowed_layers("cli")
    # The runtime layer sits just above exceptions; ged and core may use
    # it, but it may never reach back up into either.
    assert allowed_layers("runtime") == {"runtime", "exceptions"}
    assert "runtime" in allowed_layers("ged")
    assert "runtime" in allowed_layers("core")


def test_real_tree_has_no_cycle():
    """The core <-> ged cycle is gone and stays gone."""
    rules = {"layering": all_rules()["layering"]}
    assert run_analysis([SRC_REPRO], rules) == []


# ------------------------------------------------------------ filter purity


def test_filter_purity_flags_mutations():
    path = FIXTURES / "repro" / "grams" / "purity_bad.py"
    assert lines_for("filter-purity", path) == [6, 7, 11]


# ------------------------------------------------------------- determinism


def test_determinism_flags_global_rng():
    path = FIXTURES / "repro" / "core" / "rand_fixture.py"
    assert lines_for("determinism", path) == [4, 9, 10]


# --------------------------------------------------------------- exceptions


def test_exception_discipline():
    path = FIXTURES / "repro" / "core" / "exc_fixture.py"
    # 10: bare except; 11: foreign raise; 36: raise AssertionError.
    assert lines_for("exceptions", path) == [10, 11, 36]


# ----------------------------------------------------------- hot-path alloc


def test_hot_path_allocations():
    path = FIXTURES / "repro" / "core" / "join.py"
    assert lines_for("hot-path-alloc", path) == [8, 9, 10, 15]


def test_hot_path_covers_interned_kernels():
    """The rule extends to the interned filter kernels (grams.vocab)."""
    path = FIXTURES / "repro" / "grams" / "vocab.py"
    # 7-9: copies in the for loop; 11: extract_qgrams in the while loop;
    # 12 carries `# repro: ignore[hot-path-alloc]` and is suppressed.
    assert lines_for("hot-path-alloc", path) == [7, 8, 9, 11]


def test_hot_path_covers_compiled_verifier():
    """The rule extends to the compiled GED backend (ged.compiled)."""
    path = FIXTURES / "repro" / "ged" / "compiled.py"
    # 6-7: copies in the while loop; 9-10: copies in the nested for
    # loop; 11 carries `# repro: ignore[hot-path-alloc]`, suppressed.
    assert lines_for("hot-path-alloc", path) == [6, 7, 9, 10]


def test_hot_path_covers_engine_executor():
    """The rule extends to the staged execution engine's driver loops."""
    path = FIXTURES / "repro" / "engine" / "executor.py"
    # 7-8: copies in the for loop; 9: extract_qgrams in the for loop;
    # 12 carries `# repro: ignore[hot-path-alloc]` and is suppressed.
    assert lines_for("hot-path-alloc", path) == [7, 8, 9]


def test_hot_path_covers_batch_kernels():
    """The rule extends to the vectorized batch kernels (engine.batch)."""
    path = FIXTURES / "repro" / "engine" / "batch.py"
    # 7-8: copies in the for loop; 11 carries
    # `# repro: ignore[hot-path-alloc]` and is suppressed.
    assert lines_for("hot-path-alloc", path) == [7, 8]


def test_hot_path_covers_columnar_store():
    """The rule extends to the columnar store builder (grams.columnar)."""
    path = FIXTURES / "repro" / "grams" / "columnar.py"
    # 7-8: copies in the for loop; 9: extract_qgrams in the for loop;
    # 12 carries `# repro: ignore[hot-path-alloc]` and is suppressed.
    assert lines_for("hot-path-alloc", path) == [7, 8, 9]


def test_hot_path_covers_sharded_driver():
    """The rule extends to the out-of-core shard driver (engine.sharded)."""
    path = FIXTURES / "repro" / "engine" / "sharded.py"
    # 7-8: copies in the for loop; 9: extract_qgrams in the for loop;
    # 12 carries `# repro: ignore[hot-path-alloc]` and is suppressed.
    assert lines_for("hot-path-alloc", path) == [7, 8, 9]


def test_hot_path_covers_spill_substrate():
    """The rule extends to the spill/manifest substrate (runtime.sharded)."""
    path = FIXTURES / "repro" / "runtime" / "sharded.py"
    # 7-8: copies in the for loop; 11 carries
    # `# repro: ignore[hot-path-alloc]` and is suppressed.
    assert lines_for("hot-path-alloc", path) == [7, 8]


def test_hot_path_covers_planner():
    path = FIXTURES / "repro" / "engine" / "planner.py"
    # Lines 9 (list copy) and 10 (dict copy) sit inside the for loop;
    # 13 carries `# repro: ignore[hot-path-alloc]` and is suppressed.
    assert lines_for("hot-path-alloc", path) == [9, 10]


def test_layering_covers_planner():
    # The planner lives in the engine layer: importing repro.core from
    # it is an upward dependency and must be flagged (line 3).
    path = FIXTURES / "repro" / "engine" / "planner.py"
    assert lines_for("layering", path) == [3]


def test_hot_path_rule_targets_compiled_module():
    from repro.analysis.rules.hot_path import TARGET_MODULES

    assert "repro.ged.compiled" in TARGET_MODULES
    assert "repro.engine.executor" in TARGET_MODULES
    assert "repro.engine.planner" in TARGET_MODULES
    assert "repro.engine.stages" in TARGET_MODULES
    assert "repro.engine.batch" in TARGET_MODULES
    assert "repro.grams.columnar" in TARGET_MODULES
    assert "repro.engine.sharded" in TARGET_MODULES
    assert "repro.runtime.sharded" in TARGET_MODULES


# ----------------------------------------------------------- float equality


def test_float_equality():
    path = FIXTURES / "repro" / "core" / "float_fixture.py"
    assert lines_for("float-equality", path) == [6, 7, 8]


# -------------------------------------------------------------- annotations


def test_annotation_coverage():
    path = FIXTURES / "repro" / "ged" / "ann_fixture.py"
    assert lines_for("annotations", path) == [4, 16, 19]


# --------------------------------------------------------------- docstrings


def test_docstrings():
    path = FIXTURES / "repro" / "core" / "doc_fixture.py"
    # line 1: missing module docstring; 4 and 12: undocumented exports.
    assert lines_for("docstrings", path) == [1, 4, 12]


# ------------------------------------------------------------ engine + CLI


def test_syntax_error_finding_is_not_suppressible():
    findings = run_analysis([FIXTURES / "broken.py"])
    assert [f.rule for f in findings] == ["syntax-error"]


def test_cli_exits_nonzero_on_fixtures(capsys):
    assert main([str(FIXTURES)]) == 1
    out = capsys.readouterr().out
    assert "[layering]" in out and "finding(s)" in out


def test_cli_exits_zero_on_clean_tree(capsys):
    assert main([str(SRC_REPRO)]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_cli_rejects_nonexistent_path(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["/no/such/path"])
    assert excinfo.value.code == 2
    assert "no such file or directory" in capsys.readouterr().err


def test_cli_select_and_unknown_rule(capsys):
    path = FIXTURES / "repro" / "core" / "float_fixture.py"
    assert main([str(path), "--select", "float-equality"]) == 1
    capsys.readouterr()
    with pytest.raises(SystemExit):
        main([str(path), "--select", "no-such-rule"])


def test_json_reporter_round_trips():
    import json

    findings = run_analysis([FIXTURES / "repro" / "core" / "float_fixture.py"])
    payload = json.loads(render_json(findings))
    assert payload and {"path", "line", "rule", "message"} <= set(payload[0])


def test_text_reporter_counts():
    findings = [
        Finding(path="x.py", line=1, rule="layering", message="m"),
        Finding(path="x.py", line=2, rule="layering", message="m"),
    ]
    text = render_text(findings)
    assert "2 finding(s)" in text and "layering: 2" in text


def test_whole_repo_is_clean():
    """The acceptance gate: zero findings over src/repro."""
    assert run_analysis([SRC_REPRO]) == []


# ---------------------------------------------------- suppression edge cases


SUPPRESS_FIXTURE = FIXTURES / "repro" / "core" / "suppress_fixture.py"


def test_multi_rule_bracket_suppresses_both_rules():
    """Line 8 violates determinism AND float-equality; one bracket
    (``# repro: ignore[determinism, float-equality]``) waives both."""
    findings = run_analysis([SUPPRESS_FIXTURE])
    assert not any(f.line == 8 for f in findings)


def test_partial_bracket_leaves_the_other_rule_firing():
    """Line 13 carries the same double violation but waives only
    determinism — float-equality must still fire there."""
    findings = run_analysis([SUPPRESS_FIXTURE])
    at_13 = sorted(f.rule for f in findings if f.line == 13)
    assert at_13 == ["float-equality"]


def test_suppression_on_decorated_def_line():
    """Rules report at the ``def`` line, not the decorator line, so the
    waiver on line 17 covers the decorated, docstring-less function."""
    findings = run_analysis([SUPPRESS_FIXTURE])
    assert not any(f.rule == "docstrings" for f in findings)


def test_unused_suppression_flags_stale_waivers():
    stale = [
        (f.line, f.message)
        for f in run_analysis([SUPPRESS_FIXTURE])
        if f.rule == "unused-suppression"
    ]
    assert [line for line, _ in stale] == [23, 24]
    assert "# repro: ignore[float-equality]" in stale[0][1]
    assert "blanket # repro: ignore" in stale[1][1]


def test_unused_suppression_explicit_self_waiver():
    """Line 25's bracket names unused-suppression explicitly, so the
    rotted waiver is excused; blanket ignores must not self-excuse
    (line 24 is still flagged above)."""
    findings = run_analysis([SUPPRESS_FIXTURE])
    assert not any(f.line == 25 for f in findings)


def test_unused_suppression_verdict_is_selection_independent():
    """Selecting a single rule must not rot waivers for the others:
    the used-waiver set is computed from every registered rule, so
    lines 8/13/17 stay excused even when only float-equality reports."""
    rules = {
        rule_id: all_rules()[rule_id]
        for rule_id in ("float-equality", "unused-suppression")
    }
    findings = run_analysis([SUPPRESS_FIXTURE], rules)
    stale = [f.line for f in findings if f.rule == "unused-suppression"]
    assert stale == [23, 24]


def test_backtick_quoted_waiver_mentions_are_prose(tmp_path):
    """A comment *documenting* the syntax in backticks is not a waiver."""
    path = tmp_path / "prose.py"
    path.write_text(
        '"""Module."""\n'
        "\n"
        "\n"
        "def f():\n"
        '    """Doc."""\n'
        "    # the `# repro: ignore[layering]` form waives a finding\n"
        "    return 1\n"
    )
    assert run_analysis([path]) == []


# ----------------------------------------------------------- CLI rule ids


def test_cli_select_unknown_rule_exits_2_listing_valid_ids(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main([str(SRC_REPRO), "--select", "fork-safety,no-such-rule"])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "unknown rule id(s) for --select: no-such-rule" in err
    for rule_id in sorted(EXPECTED_RULE_IDS):
        assert rule_id in err


def test_cli_ignore_unknown_rule_exits_2_listing_valid_ids(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main([str(SRC_REPRO), "--ignore", "totally-bogus"])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "unknown rule id(s) for --ignore: totally-bogus" in err
    assert "valid ids:" in err


def test_cli_ignore_filters_rules(capsys):
    path = FIXTURES / "repro" / "core" / "float_fixture.py"
    assert main([str(path), "--ignore", "float-equality,annotations"]) == 0
    capsys.readouterr()
    assert main([str(path)]) == 1


# ------------------------------------------------------------ runtime budget


def test_analysis_runtime_budget():
    """A cold whole-program run over src/repro stays interactive; CI
    enforces the same ceiling on the analyze step."""
    import time

    start = time.monotonic()
    run_analysis([SRC_REPRO])
    elapsed = time.monotonic() - start
    assert elapsed < 30.0, f"cold analysis took {elapsed:.1f}s (budget 30s)"
