"""String similarity joins — the intellectual substrate of GSimJoin.

The paper's opening move (Section II-B) is to port the q-gram framework
of string similarity joins to graphs: count filtering comes from
Gravano et al. (VLDB'01), prefix filtering from Chaudhuri et al. /
All-Pairs, and mismatch-driven prefix reduction from Ed-Join (Xiao et
al., VLDB'08) — the direct ancestor of the paper's minimum edit
filtering.  This package implements that string machinery from scratch,
both as a usable string-join library and as the reference point the
graph algorithms generalize:

* :func:`edit_distance` / :func:`edit_distance_within` — Levenshtein
  distance, with Ukkonen's banded DP for thresholded queries;
* :func:`positional_qgrams` — string q-grams with positions (the
  feature that makes string mismatch reasoning *easy*: footnote 2 of
  the paper notes graph q-grams lack positions, which is exactly where
  the graph version becomes NP-hard);
* :func:`min_edits_destroying` — Ed-Join's location-based lower bound:
  the minimum edits destroying a set of positional q-grams is a greedy
  interval-stabbing computation, polynomial where the graph analogue
  (Theorem 2) is a hitting set;
* :func:`string_join` — count + prefix + location filtering with
  banded-DP verification, mirroring Algorithm 1's structure.
"""

from repro.strings.edit_distance import edit_distance, edit_distance_within
from repro.strings.join import StringJoinStatistics, string_join
from repro.strings.qgrams import (
    min_edits_destroying,
    min_prefix_length_strings,
    positional_qgrams,
)

__all__ = [
    "edit_distance",
    "edit_distance_within",
    "positional_qgrams",
    "min_edits_destroying",
    "min_prefix_length_strings",
    "string_join",
    "StringJoinStatistics",
]
