"""Positional string q-grams and Ed-Join's location-based reasoning.

A string's q-grams are its overlapping substrings of length ``q``, each
tagged with its starting position — positions are what make string
mismatch analysis tractable: the minimum number of edit operations
destroying a set of positional q-grams is a *stabbing* problem over the
intervals ``[pos, pos+q−1]``, solved exactly by the classic greedy
sweep (sort by right endpoint, stab greedily).  The graph analogue
(paper Theorem 2) loses the positions and becomes an NP-hard hitting
set — this module is the polynomial reference point.

One edit operation affects at most ``q`` q-grams (it touches one
position, which lies in at most ``q`` windows), giving the string count
filtering bound ``(|s| − q + 1) − τ·q`` of Gravano et al.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.exceptions import ParameterError

__all__ = [
    "positional_qgrams",
    "positional_common_count",
    "min_edits_destroying",
    "min_prefix_length_strings",
]

#: A positional q-gram: (substring, starting position).
PositionalQGram = Tuple[str, int]


def positional_qgrams(s: str, q: int) -> List[PositionalQGram]:
    """All overlapping q-grams of ``s`` with their starting positions.

    Strings shorter than ``q`` have no q-grams (callers handle the
    underflow exactly like gram-less graphs).

    Raises
    ------
    ParameterError
        If ``q < 1``.
    """
    if q < 1:
        raise ParameterError(f"q must be >= 1 for strings, got {q}")
    return [(s[i : i + q], i) for i in range(len(s) - q + 1)]


def positional_common_count(
    grams_a: Sequence[PositionalQGram],
    grams_b: Sequence[PositionalQGram],
    tau: int,
) -> int:
    """Maximum matching of equal q-grams whose positions differ ≤ ``tau``.

    Gravano et al.'s *position filtering*: within edit distance ``τ``, a
    surviving q-gram shifts by at most ``τ`` positions, so only
    position-compatible matches count toward the common-gram bound.
    Per substring the maximum matching between two sorted position
    lists under a band constraint is computed by the classic greedy
    two-pointer sweep (optimal for interval-compatibility bipartite
    matching on lines).

    Raises
    ------
    ParameterError
        If ``tau`` is negative.
    """
    if tau < 0:
        raise ParameterError(f"tau must be >= 0, got {tau}")
    by_key_a: dict = {}
    for key, pos in grams_a:
        by_key_a.setdefault(key, []).append(pos)
    by_key_b: dict = {}
    for key, pos in grams_b:
        by_key_b.setdefault(key, []).append(pos)

    total = 0
    for key, positions_a in by_key_a.items():
        positions_b = by_key_b.get(key)
        if not positions_b:
            continue
        positions_a.sort()
        positions_b.sort()
        i = j = 0
        while i < len(positions_a) and j < len(positions_b):
            delta = positions_a[i] - positions_b[j]
            if abs(delta) <= tau:
                total += 1
                i += 1
                j += 1
            elif delta > tau:
                j += 1
            else:
                i += 1
    return total


def min_edits_destroying(grams: Sequence[PositionalQGram], q: int) -> int:
    """Minimum edit operations affecting every q-gram in ``grams``.

    Each gram at position ``p`` occupies the interval ``[p, p+q−1]``;
    an edit at position ``x`` destroys the grams whose interval contains
    ``x``.  The minimum number of stabbing points is computed by the
    greedy right-endpoint sweep — exact in O(k log k), in contrast to
    the NP-hard graph version (:mod:`repro.grams.minedit`).
    """
    if not grams:
        return 0
    intervals = sorted((pos + q - 1, pos) for _, pos in grams)
    count = 0
    last_stab = None
    for right, left in intervals:
        if last_stab is None or last_stab < left:
            count += 1
            last_stab = right
    return count


def min_prefix_length_strings(
    sorted_grams: Sequence[PositionalQGram], tau: int, q: int
) -> Optional[int]:
    """Ed-Join's location-based prefix length.

    Given the string's q-grams sorted in the global (document
    frequency) order, returns the smallest prefix needing ``τ + 1``
    edits to destroy — the string original of the paper's Algorithm 4.
    Unlike the graph case no binary search with approximate bounds is
    needed: the exact measure is cheap, so the scan is direct.  Returns
    ``None`` when even the longest admissible prefix is destroyable
    with ``τ`` edits (*underflow* — prefix filtering cannot prune this
    string, exactly like gram-poor graphs).

    Raises
    ------
    ParameterError
        If ``tau`` is negative.
    """
    if tau < 0:
        raise ParameterError(f"tau must be >= 0, got {tau}")
    basic = tau * q + 1
    limit = min(basic, len(sorted_grams))
    # Exact measure is monotone in the prefix, so binary search applies;
    # prefixes are tiny (<= tau*q + 1), a linear scan is simplest.
    for length in range(tau + 1, limit + 1):
        if min_edits_destroying(sorted_grams[:length], q) > tau:
            return length
    return None
