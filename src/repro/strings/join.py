"""String similarity self-join with edit distance constraints.

The architecture mirrors Algorithm 1 of the graph paper (which borrowed
it from here in the first place): one scan over the collection, each
string probing an in-memory inverted index with the prefix of its
globally-sorted q-gram multiset, then verifying candidates with the
banded DP.  Filters:

* length filtering — ``||r| − |s|| ≤ τ``;
* count filtering (Gravano et al.) — one edit destroys at most ``q``
  q-grams, so strings within ``τ`` share at least
  ``max(|Q_r|, |Q_s|) − τ·q`` grams;
* prefix filtering with either the basic ``τ·q + 1`` prefix or
  Ed-Join's location-based minimum prefix
  (:func:`repro.strings.qgrams.min_prefix_length_strings`).

Strings shorter than ``q`` have no q-grams and are handled through the
same *unprunable* mechanism as gram-less graphs.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.exceptions import ParameterError
from repro.strings.edit_distance import edit_distance_within
from repro.strings.qgrams import (
    min_prefix_length_strings,
    positional_common_count,
    positional_qgrams,
)

__all__ = ["string_join", "StringJoinStatistics"]


@dataclass
class StringJoinStatistics:
    """Counters of one string-join run (the string Figure-6 quantities)."""

    num_strings: int = 0
    tau: int = 0
    q: int = 0
    cand1: int = 0
    cand2: int = 0
    results: int = 0
    total_prefix_length: int = 0
    unprunable_strings: int = 0
    index_time: float = 0.0
    candidate_time: float = 0.0
    verify_time: float = 0.0

    @property
    def avg_prefix_length(self) -> float:
        return self.total_prefix_length / self.num_strings if self.num_strings else 0.0


def _common_count(a: Counter, b: Counter) -> int:
    if len(b) < len(a):
        a, b = b, a
    return sum(min(c, b[k]) for k, c in a.items() if k in b)


def string_join(
    strings: Sequence[str],
    tau: int,
    q: int = 2,
    location_prefix: bool = True,
) -> Tuple[List[Tuple[int, int]], StringJoinStatistics]:
    """All pairs of positions ``(i, j)``, ``i < j``, with
    ``edit_distance(strings[i], strings[j]) <= tau``.

    ``location_prefix`` selects Ed-Join's minimum prefixes (default) or
    the basic ``τ·q + 1`` prefixes.

    Raises
    ------
    ParameterError
        On a negative ``tau`` or ``q < 1``.
    """
    if tau < 0:
        raise ParameterError(f"tau must be >= 0, got {tau}")
    if q < 1:
        raise ParameterError(f"q must be >= 1, got {q}")

    stats = StringJoinStatistics(num_strings=len(strings), tau=tau, q=q)
    results: List[Tuple[int, int]] = []

    # --- Index-time preparation ----------------------------------------
    started = time.perf_counter()
    gram_lists = [positional_qgrams(s, q) for s in strings]
    document_frequency: Dict[str, int] = {}
    for grams in gram_lists:
        for key in {g for g, _ in grams}:
            document_frequency[key] = document_frequency.get(key, 0) + 1

    def token(gram):
        return (document_frequency[gram[0]], gram[0], gram[1])

    prefixes: List[int] = []
    prunable: List[bool] = []
    counters: List[Counter] = []
    for grams in gram_lists:
        grams.sort(key=token)
        counters.append(Counter(g for g, _ in grams))
        if location_prefix:
            length = min_prefix_length_strings(grams, tau, q)
        else:
            basic = tau * q + 1
            length = basic if len(grams) >= basic else None
        if length is None:
            prefixes.append(len(grams))
            prunable.append(False)
            stats.unprunable_strings += 1
        else:
            prefixes.append(length)
            prunable.append(True)
        stats.total_prefix_length += prefixes[-1]
    stats.index_time += time.perf_counter() - started

    # --- Scan -----------------------------------------------------------
    index: Dict[str, List[int]] = {}
    unprunable: List[int] = []
    for i, s in enumerate(strings):
        grams = gram_lists[i]

        started = time.perf_counter()
        candidate_ids: Dict[int, bool] = {}
        if prunable[i]:
            for key, _pos in grams[: prefixes[i]]:
                for j in index.get(key, ()):
                    if j not in candidate_ids and abs(len(s) - len(strings[j])) <= tau:
                        candidate_ids[j] = True
            for j in unprunable:
                if j not in candidate_ids and abs(len(s) - len(strings[j])) <= tau:
                    candidate_ids[j] = True
        else:
            for j in range(i):
                if abs(len(s) - len(strings[j])) <= tau:
                    candidate_ids[j] = True
        stats.cand1 += len(candidate_ids)
        stats.candidate_time += time.perf_counter() - started

        started = time.perf_counter()
        for j in candidate_ids:
            bound = max(len(gram_lists[i]), len(gram_lists[j])) - tau * q
            if bound > 0:
                # Cheap substring-level count first, then the stricter
                # position-aware matching (Gravano position filtering).
                if _common_count(counters[i], counters[j]) < bound:
                    continue
                if positional_common_count(gram_lists[i], gram_lists[j], tau) < bound:
                    continue
            stats.cand2 += 1
            if edit_distance_within(strings[j], s, tau) <= tau:
                results.append((j, i))
        stats.verify_time += time.perf_counter() - started

        if prunable[i]:
            for key, _pos in grams[: prefixes[i]]:
                index.setdefault(key, []).append(i)
        else:
            unprunable.append(i)

    stats.results = len(results)
    return results, stats
