"""String (Levenshtein) edit distance.

Two entry points: the classic O(nm) dynamic program and Ukkonen's
banded variant for thresholded queries — O(τ·min(n, m)) time, the
string counterpart of the graph side's threshold-bounded A*.
"""

from __future__ import annotations

from repro.exceptions import ParameterError

__all__ = ["edit_distance", "edit_distance_within"]


def edit_distance(a: str, b: str) -> int:
    """Levenshtein distance between ``a`` and ``b``.

    Unit costs for insertion, deletion and substitution; two-row DP.
    """
    if len(a) < len(b):
        a, b = b, a
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, ch_a in enumerate(a, start=1):
        current = [i] + [0] * len(b)
        for j, ch_b in enumerate(b, start=1):
            cost = 0 if ch_a == ch_b else 1
            current[j] = min(
                previous[j] + 1,  # delete from a
                current[j - 1] + 1,  # insert into a
                previous[j - 1] + cost,  # substitute / match
            )
        previous = current
    return previous[-1]


def edit_distance_within(a: str, b: str, tau: int) -> int:
    """Thresholded distance: exact when ``<= tau``, else ``tau + 1``.

    Ukkonen's banding: cells further than ``tau`` from the diagonal can
    never contribute to a distance ``<= tau``, so only a ``2τ+1``-wide
    band is evaluated, with early exit when a whole band row exceeds
    ``tau``.

    Raises
    ------
    ParameterError
        If ``tau`` is negative.
    """
    if tau < 0:
        raise ParameterError(f"tau must be >= 0, got {tau}")
    if len(a) < len(b):
        a, b = b, a
    n, m = len(a), len(b)
    if n - m > tau:
        return tau + 1
    if m == 0:
        return n if n <= tau else tau + 1

    big = tau + 1
    previous = [j if j <= tau else big for j in range(m + 1)]
    for i in range(1, n + 1):
        lo = max(1, i - tau)
        hi = min(m, i + tau)
        current = [big] * (m + 1)
        if i <= tau:
            current[0] = i
        row_min = current[0] if i <= tau else big
        ch_a = a[i - 1]
        for j in range(lo, hi + 1):
            cost = 0 if ch_a == b[j - 1] else 1
            best = previous[j - 1] + cost
            if previous[j] + 1 < best:
                best = previous[j] + 1
            if current[j - 1] + 1 < best:
                best = current[j - 1] + 1
            if best > big:
                best = big
            current[j] = best
            if best < row_min:
                row_min = best
        if row_min > tau:
            return tau + 1
        previous = current
    return previous[m] if previous[m] <= tau else tau + 1
