"""Whole-program model: symbol table, call graph, and taint resolution.

:class:`ProgramModel` is built from the *facts* dicts of every analyzed
module (see :mod:`repro.analysis.program.facts`) and gives the
whole-program rules three capabilities:

1. **Call-target resolution.**  Per-module extraction records callee
   *references* — an exact dotted target when imports/locals/annotations
   pin it down, ``"?name"`` for an unresolved bare-name call, ``"@attr"``
   for an unresolved attribute call.  The model links references to
   function definitions: exact quals directly, class references through
   ``__init__``, re-exported names by unique-suffix match (restricted to
   packages actually present in the model, so ``os.path.join`` can never
   link to a local ``join``), and ``"?name"`` by unique bare name.
   ``"@attr"`` references are **never** name-linked — method names like
   ``append`` or ``run`` are too common for guessing to be sound.

2. **Reachability.**  Worker roots are found structurally (the argument
   of ``executor.submit``/pool ``map`` family/``apply_async``, the
   ``initializer=`` of a pool, the ``target=`` of a ``Process``);
   :meth:`reachable` is a plain BFS over resolved call edges from any
   root set.  Declared entry points (``gsim_join`` and friends) are
   matched by qualified-name suffix.

3. **Taint evidence.**  Function facts carry taint *atoms* whose
   meaning is only decidable whole-program: ``("ret", ref)`` needs the
   callee's own return atoms, ``("param", i)`` needs what callers pass.
   :meth:`atom_evidence` resolves an atom to concrete evidence — the
   ``(kind, module, line)`` of the unordered source it descends from —
   by a memoized, depth-limited walk over the call graph (cycles cut by
   an in-progress sentinel).
"""

from __future__ import annotations

import copy
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

__all__ = ["ProgramModel", "ENTRY_POINT_SUFFIXES", "VERIFIER_NAMES"]

#: Declared entry points of the join engine, matched as qual suffixes.
ENTRY_POINT_SUFFIXES = (
    "gsim_join",
    "gsim_join_rs",
    "gsim_join_parallel",
    "GSimIndex.query",
    "execute_self_join",
    "execute_rs_join",
    "execute_parallel_join",
)

#: Verification entry names for budget-threading reachability: the
#: search functions, the engine wrappers, and the portfolio's uniform
#: ``VerifierBackend.verify`` surface (matched as a bare method name so
#: unresolved ``backend.verify(...)`` attr calls count as verifier
#: calls too).
VERIFIER_NAMES = frozenset(
    {
        "graph_edit_distance_detailed",
        "compiled_ged_detailed",
        "dfs_ged",
        "dfs_ged_compiled",
        "verify_pair",
        "run_cascade",
        "verify_candidate",
        "verify",
    }
)

#: Pool-method names whose first argument is executed in a worker.
_SUBMIT_ATTRS = frozenset(
    {"submit", "map", "imap", "imap_unordered", "starmap", "apply_async"}
)

_MAX_TAINT_DEPTH = 8

_IN_PROGRESS = object()


class ProgramModel:
    """Indexed whole-program view over a list of module facts dicts."""

    def __init__(self, modules: Iterable[dict]) -> None:
        """Index ``modules`` and resolve every recorded call site.

        The input facts are deep-copied before :meth:`_link_calls`
        annotates call sites with their resolution — callers keep the
        pristine dicts, which the incremental cache hashes.
        """
        modules = copy.deepcopy(list(modules))
        self.modules: Dict[str, dict] = {}
        self.functions: Dict[str, dict] = {}
        self.function_module: Dict[str, dict] = {}
        self.classes: Dict[str, List[str]] = {}
        self._by_name: Dict[str, List[str]] = {}
        for facts in sorted(modules, key=lambda m: m["module"]):
            self.modules[facts["module"]] = facts
            for cls, methods in facts["classes"].items():
                self.classes[f"{facts['module']}.{cls}"] = methods
            for qual, fn in facts["functions"].items():
                self.functions[qual] = fn
                self.function_module[qual] = facts
                self._by_name.setdefault(fn["name"], []).append(qual)
        self._roots = {name.split(".")[0] for name in self.modules}
        self._resolve_cache: Dict[str, Optional[str]] = {}
        self._callers: Dict[str, List[Tuple[str, dict]]] = {}
        self._edges: Dict[str, List[str]] = {}
        self._link_calls()
        self.worker_roots, self.initializers = self._find_worker_roots()
        self.entry_points = self._find_entry_points()
        self._returns_memo: Dict[str, object] = {}
        self._reaches_memo: Dict[str, object] = {}

    # --- linking ---------------------------------------------------------

    def resolve(self, ref: Optional[str]) -> Optional[str]:
        """The function qual a callee reference links to, or ``None``."""
        if not ref or ref.startswith("@"):
            return None
        cached = self._resolve_cache.get(ref, _IN_PROGRESS)
        if cached is not _IN_PROGRESS:
            return cached
        resolved = self._resolve_uncached(ref)
        self._resolve_cache[ref] = resolved
        return resolved

    def _resolve_uncached(self, ref: str) -> Optional[str]:
        if ref.startswith("?"):
            quals = self._by_name.get(ref[1:], [])
            return quals[0] if len(quals) == 1 else None
        if ref in self.functions:
            return ref
        if ref in self.classes:
            init = f"{ref}.__init__"
            return init if init in self.functions else None
        # Unique-suffix fallback for re-exports (``from repro.engine
        # import verify_pair``), restricted to packages in the model.
        if ref.split(".")[0] not in self._roots:
            return None
        name = ref.rsplit(".", 1)[-1]
        quals = self._by_name.get(name, [])
        if len(quals) == 1:
            return quals[0]
        if name in self.classes and f"{name}.__init__" in self.functions:
            return f"{name}.__init__"
        # A re-exported class: unique class whose last component matches.
        classes = [c for c in self.classes if c.rsplit(".", 1)[-1] == name]
        if len(classes) == 1:
            init = f"{classes[0]}.__init__"
            return init if init in self.functions else None
        return None

    def _link_calls(self) -> None:
        for qual, fn in self.functions.items():
            edges: List[str] = []
            for call in fn["calls"]:
                resolved = self.resolve(call.get("callee"))
                call["resolved"] = resolved
                if resolved is not None:
                    edges.append(resolved)
                    self._callers.setdefault(resolved, []).append(
                        (qual, call)
                    )
            self._edges[qual] = edges

    def callers_of(self, qual: str) -> List[Tuple[str, dict]]:
        """Every recorded ``(caller qual, call fact)`` targeting ``qual``."""
        return self._callers.get(qual, [])

    # --- roots and reachability ------------------------------------------

    def _find_worker_roots(self) -> Tuple[Set[str], Set[str]]:
        roots: Set[str] = set()
        initializers: Set[str] = set()
        for fn in self.functions.values():
            for call in fn["calls"]:
                refs = call["func_refs"]
                if call["attr"] in _SUBMIT_ATTRS and call["method"]:
                    target = self.resolve(refs.get("0") or refs.get("func"))
                    if target is not None:
                        roots.add(target)
                init = self.resolve(refs.get("initializer"))
                if init is not None:
                    roots.add(init)
                    initializers.add(init)
                target = self.resolve(refs.get("target"))
                if target is not None and call["attr"] == "Process":
                    roots.add(target)
        return roots, initializers

    def _find_entry_points(self) -> Set[str]:
        out: Set[str] = set()
        for qual in self.functions:
            for suffix in ENTRY_POINT_SUFFIXES:
                if qual == suffix or qual.endswith("." + suffix):
                    out.add(qual)
        return out | self.worker_roots

    def reachable(self, roots: Iterable[str]) -> Set[str]:
        """Every function reachable from ``roots`` over resolved calls."""
        seen: Set[str] = set()
        stack = [q for q in roots if q in self.functions]
        while stack:
            qual = stack.pop()
            if qual in seen:
                continue
            seen.add(qual)
            stack.extend(
                e for e in self._edges.get(qual, []) if e not in seen
            )
        return seen

    # --- taint resolution -------------------------------------------------

    def atom_evidence(
        self, atom: Tuple, owner: str, depth: int = _MAX_TAINT_DEPTH
    ) -> Optional[Tuple[str, str, int]]:
        """Concrete source evidence ``(kind, module, line)`` for ``atom``.

        ``owner`` is the qual of the function whose facts the atom came
        from; ``("param", i)`` atoms are chased into that function's
        recorded callers, ``("ret", ref)`` atoms into the callee's own
        return atoms.  Returns ``None`` when no unordered source is
        provably behind the atom within the depth limit.
        """
        kind = atom[0]
        if kind == "src":
            module = self.function_module.get(owner, {}).get("module", "")
            return (str(atom[2]), module, int(atom[1]))
        if depth <= 0:
            return None
        if kind == "ret":
            callee = self.resolve(atom[1])
            if callee is not None and callee != owner:
                return self.returns_evidence(callee, depth - 1)
            return None
        if kind == "param":
            index = int(atom[1])
            fn = self.functions.get(owner)
            if fn is None:
                return None
            for caller, call in self.callers_of(owner):
                for passed in self._atoms_for_param(call, fn, index):
                    evidence = self.atom_evidence(
                        tuple(passed), caller, depth - 1
                    )
                    if evidence is not None:
                        return evidence
        return None

    def returns_evidence(
        self, qual: str, depth: int = _MAX_TAINT_DEPTH
    ) -> Optional[Tuple[str, str, int]]:
        """Source evidence behind ``qual``'s return value, if any."""
        memo = self._returns_memo.get(qual, _IN_PROGRESS)
        if memo is None or isinstance(memo, tuple):
            return memo
        if qual in self._returns_memo:  # in-progress: cycle — assume clean
            return None
        self._returns_memo[qual] = _IN_PROGRESS
        evidence: Optional[Tuple[str, str, int]] = None
        fn = self.functions.get(qual)
        if fn is not None:
            for atom in fn["return_atoms"]:
                # Param atoms are NOT chased here: taint passed in via an
                # argument is already unioned into the result atoms at
                # each individual call site, so chasing "param" through
                # *all* callers would smear one caller's taint onto
                # every other call site (context-insensitivity).
                if atom[0] == "param":
                    continue
                evidence = self.atom_evidence(tuple(atom), qual, depth)
                if evidence is not None:
                    break
        self._returns_memo[qual] = evidence
        return evidence

    def _atoms_for_param(
        self, call: dict, callee: dict, index: int
    ) -> List[List]:
        """Atom lists a call site passes into ``callee``'s ``index`` param."""
        shift = 1 if callee["is_method"] else 0
        out: List[List] = []
        positional = index - shift
        if 0 <= positional < len(call["arg_atoms"]):
            out.extend(call["arg_atoms"][positional])
        if 0 <= index < len(callee["params"]):
            name = callee["params"][index]
            out.extend(call["kw_atoms"].get(name, []))
        return out

    # --- verifier reachability (budget-threading) -------------------------

    def reaches_verifier(self, qual: str) -> bool:
        """Whether ``qual`` is or transitively calls an A*-family verifier."""
        memo = self._reaches_memo.get(qual, _IN_PROGRESS)
        if isinstance(memo, bool):
            return memo
        if qual in self._reaches_memo:  # cycle in progress
            return False
        self._reaches_memo[qual] = _IN_PROGRESS
        result = qual.rsplit(".", 1)[-1] in VERIFIER_NAMES
        fn = self.functions.get(qual)
        if not result and fn is not None:
            for call in fn["calls"]:
                resolved = call.get("resolved")
                if resolved is not None and self.reaches_verifier(resolved):
                    result = True
                    break
                if resolved is None and call["attr"] in VERIFIER_NAMES:
                    result = True
                    break
        self._reaches_memo[qual] = result
        return result

    # --- convenience ------------------------------------------------------

    def path_of(self, qual: str) -> str:
        """Source path of the module defining ``qual`` (empty if unknown)."""
        return self.function_module.get(qual, {}).get("path", "")

    def budget_param_index(self, qual: str) -> Optional[int]:
        """Index of ``qual``'s verification-budget parameter, if any."""
        fn = self.functions.get(qual)
        if fn is None:
            return None
        for index, name in enumerate(fn["params"]):
            if "budget" in name:
                return index
        return None
