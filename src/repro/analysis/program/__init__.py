"""Whole-program analysis layer for :mod:`repro.analysis`.

Three pieces, consumed by the engine's two-phase driver:

* :mod:`~repro.analysis.program.facts` +
  :mod:`~repro.analysis.program.dataflow` — per-module extraction of a
  serializable facts IR (symbol table, call sites, shared-state writes,
  taint atoms) via a small forward dataflow interpreter.
* :mod:`~repro.analysis.program.callgraph` — :class:`ProgramModel`,
  linking the per-module facts into a conservative call graph with
  worker/entry roots, reachability, and whole-program taint resolution.
* :mod:`~repro.analysis.program.cache` — the content-hash incremental
  cache keyed so unchanged files skip parsing entirely and whole-program
  rules re-run only when some module's program-relevant facts change.
"""

from repro.analysis.program.cache import (
    AnalysisCache,
    CacheStats,
    file_sha,
    program_hash,
    program_key,
    rules_key,
)
from repro.analysis.program.callgraph import (
    ENTRY_POINT_SUFFIXES,
    VERIFIER_NAMES,
    ProgramModel,
)
from repro.analysis.program.facts import ModuleContext, extract_facts

__all__ = [
    "AnalysisCache",
    "CacheStats",
    "ENTRY_POINT_SUFFIXES",
    "ModuleContext",
    "ProgramModel",
    "VERIFIER_NAMES",
    "extract_facts",
    "file_sha",
    "program_hash",
    "program_key",
    "rules_key",
]
