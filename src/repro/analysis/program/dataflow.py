"""Forward dataflow / taint interpretation over one function body.

This is the per-function half of the whole-program layer: a small
abstract interpreter that walks a function's statements in source order
and tracks, per local name, a set of *taint atoms* — the sources a
value may carry ordering-nondeterminism from.  The atom lattice is a
powerset over three atom kinds (serialized as small lists so the result
is cacheable JSON):

* ``("src", line, what)`` — the value was produced by an unordered
  construct here: iterating a ``set``/``frozenset`` (``"set-iter"``),
  materializing one without sorting (``list(s)``/``tuple(s)``/
  ``iter(s)``, ``"set-order"``), ``set.pop()`` (``"set-pop"``),
  ``id(x)`` (``"id"``) or an unsalted ``hash(x)`` (``"hash"``).
* ``("ret", ref)`` — the value came out of a call to ``ref`` (a
  :func:`resolved <repro.analysis.program.callgraph.ProgramModel.resolve>`
  program function); whether it is tainted depends on that function's
  own return atoms, resolved at the whole-program phase.
* ``("param", i)`` — the value flowed from the ``i``-th parameter;
  whether it is tainted depends on what callers pass, resolved at the
  whole-program phase from recorded call-site argument atoms.

Joins (``if``/``try`` branches, loop back-edges) are set union; loop
bodies are interpreted twice so one back-edge of propagation reaches a
fixed point for the straight-line flows this codebase uses.  The
*sanctioned ordering functions* — ``sorted``, ``min``, ``max`` and the
other order-insensitive aggregations in :data:`SANITIZERS` — return the
empty atom set whatever their arguments carry.

Plain ``dict`` iteration (including ``.keys()``/``.values()``/
``.items()``) is deliberately treated as *ordered*: CPython >= 3.7
guarantees insertion order, and the join engine's determinism contract
rests on exactly that guarantee (candidate dicts are built in scan
order).  Only genuinely unordered containers — sets — taint.

The same pass also records the facts the other whole-program rules
need: every call site (callee reference, argument binding shape,
argument atom sets, bare-function-reference arguments for
pool-submission detection), every write to module-level or
enclosing-scope state, mutations of mutable default arguments, and
captures of known-unpicklable module globals.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

__all__ = [
    "Atom",
    "FunctionAnalyzer",
    "MUTATOR_METHODS",
    "SANITIZERS",
    "SET_RETURNING_METHODS",
]

#: One taint atom (see the module docstring for the three kinds).
Atom = Tuple

#: Order-insensitive callables: their result carries no ordering taint.
#: ``Counter`` is here deliberately: a Counter is a value-semantics
#: multiset (consumed via ``.get``/``sum`` in this codebase), so its
#: *value* does not depend on the order its elements arrived in.  The
#: residual hole — iterating an unsorted Counter built from a set — is
#: the same documented approximation as treating dict iteration as
#: insertion-ordered.
SANITIZERS = frozenset(
    {
        "sorted", "len", "min", "max", "sum", "any", "all", "isinstance",
        "bool", "Counter",
    }
)

#: Builtins whose result preserves the argument's *contents* (and hence
#: its ordering taint) without sorting.
_PASSTHROUGH_MATERIALIZERS = frozenset({"list", "tuple", "iter", "reversed"})

#: Methods that mutate their receiver in place.
MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "add", "update", "setdefault",
        "pop", "popitem", "remove", "discard", "clear", "sort", "reverse",
        "appendleft", "extendleft", "popleft",
    }
)

#: Set methods returning another set.
SET_RETURNING_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)

#: Sink methods accumulating ordered output.
_ACCUMULATORS = frozenset({"append", "extend", "add", "put"})

_LOOPS = (ast.For, ast.AsyncFor, ast.While)


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_mutable_literal(node: ast.AST) -> bool:
    """Whether a default-value expression builds a fresh mutable container."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _dotted(node.func) or ""
        return name.split(".")[-1] in {
            "list", "dict", "set", "defaultdict", "Counter", "OrderedDict",
            "deque",
        }
    return False


class FunctionAnalyzer:
    """Interpret one function body, producing its serializable facts.

    Parameters
    ----------
    ctx:
        The owning module's :class:`~repro.analysis.program.facts.ModuleContext`
        (imports, module-level symbol classification, class layout).
    node:
        The ``ast.FunctionDef`` / ``ast.AsyncFunctionDef`` to interpret.
    cls:
        Enclosing class name for methods, ``""`` for plain functions.
    """

    def __init__(self, ctx, node: ast.AST, cls: str = "") -> None:
        """Bind the function and precompute its scope information."""
        self.ctx = ctx
        self.node = node
        self.cls = cls
        self.name = node.name
        self.qual = (
            f"{ctx.module}.{cls}.{node.name}" if cls
            else f"{ctx.module}.{node.name}"
        )
        args = node.args
        self.params: List[str] = [
            a.arg for a in args.posonlyargs + args.args + args.kwonlyargs
        ]
        self.has_varkw = args.kwarg is not None
        if args.vararg is not None:
            self.params.append(args.vararg.arg)
        if args.kwarg is not None:
            self.params.append(args.kwarg.arg)
        self._param_index = {p: i for i, p in enumerate(self.params)}
        self.mutable_defaults: Set[str] = self._mutable_defaults(args)
        self.globals_decl: Set[str] = set()
        self.nonlocals_decl: Set[str] = set()
        self.local_names: Set[str] = set(self.params)
        self._collect_scope(node)
        # Abstract state.
        self.env: Dict[str, FrozenSet[Atom]] = {
            p: frozenset({("param", i)}) for i, p in enumerate(self.params)
        }
        self.set_vars: Set[str] = set()
        self.var_class: Dict[str, str] = {}
        self._infer_param_classes(args)
        # Outputs (calls keyed by AST node id so loop re-interpretation
        # overwrites rather than duplicates).
        self.calls: Dict[int, dict] = {}
        self.writes: List[dict] = []
        self._write_keys: Set[Tuple] = set()
        self.sinks: Dict[Tuple, dict] = {}
        self.return_atoms: Set[Atom] = set()
        self.reads_budget_attr = False

    # --- scope precomputation -----------------------------------------

    def _mutable_defaults(self, args: ast.arguments) -> Set[str]:
        named = args.posonlyargs + args.args
        out: Set[str] = set()
        for param, default in zip(named[len(named) - len(args.defaults):],
                                  args.defaults):
            if default is not None and _is_mutable_literal(default):
                out.add(param.arg)
        for param, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None and _is_mutable_literal(default):
                out.add(param.arg)
        return out

    def _collect_scope(self, node: ast.AST) -> None:
        """Find locally bound names plus global/nonlocal declarations.

        The walk stops at nested function/class boundaries: a
        ``nonlocal`` inside a nested helper refers to *this* function's
        locals — per-call state, not shared — so hoisting it here would
        misclassify ordinary local assignments as enclosing-scope
        writes.  (Nested bodies are likewise not interpreted; only
        their call sites are swept.)
        """

        def walk_scope(parent: ast.AST) -> None:
            for child in ast.iter_child_nodes(parent):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.ClassDef)):
                    self.local_names.add(child.name)
                    continue  # nested scope: bindings stay theirs
                if isinstance(child, ast.Lambda):
                    continue
                if isinstance(child, ast.Global):
                    self.globals_decl.update(child.names)
                elif isinstance(child, ast.Nonlocal):
                    self.nonlocals_decl.update(child.names)
                elif isinstance(child, ast.Name) and isinstance(
                    child.ctx, ast.Store
                ):
                    self.local_names.add(child.id)
                elif isinstance(child, (ast.Import, ast.ImportFrom)):
                    for alias in child.names:
                        self.local_names.add(
                            (alias.asname or alias.name).split(".")[0]
                        )
                walk_scope(child)

        walk_scope(node)
        self.local_names -= self.globals_decl

    def _infer_param_classes(self, args: ast.arguments) -> None:
        """Best-effort ``param -> class`` from annotations.

        Handles plain names, ``Optional[C]``/``"C"`` string forms: every
        identifier in the annotation is matched against classes known to
        the module (local classes first, then capitalized imports).
        """
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.annotation is None:
                continue
            cls = self._annotation_class(arg.annotation)
            if cls is not None:
                self.var_class[arg.arg] = cls
        if self.cls:
            self.var_class.setdefault("self", f"{self.ctx.module}.{self.cls}")

    def _annotation_class(self, annotation: ast.AST) -> Optional[str]:
        text: Optional[str] = None
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            text = annotation.value
        else:
            try:
                text = ast.unparse(annotation)
            except Exception:  # pragma: no cover - malformed annotation
                return None
        for token in _identifiers(text):
            resolved = self.ctx.resolve_class(token)
            if resolved is not None:
                return resolved
        return None

    # --- driving -------------------------------------------------------

    def run(self) -> dict:
        """Interpret the body; return the function's serializable facts."""
        self._exec_block(self.node.body)
        self._sweep_unvisited()
        return {
            "qual": self.qual,
            "name": self.name,
            "cls": self.cls,
            "line": self.node.lineno,
            "params": self.params,
            "has_varkw": self.has_varkw,
            "is_method": bool(self.cls),
            "mutable_defaults": sorted(self.mutable_defaults),
            "reads_budget_attr": self.reads_budget_attr,
            "calls": sorted(
                self.calls.values(),
                key=lambda c: (c["line"], c["col"], c["attr"]),
            ),
            "writes": self.writes,
            "sinks": [self.sinks[key] for key in sorted(self.sinks)],
            "return_atoms": _atom_list(frozenset(self.return_atoms)),
        }

    def _sweep_unvisited(self) -> None:
        """Record calls hiding in constructs the interpreter skips.

        Nested ``def``s, lambdas and ``match`` arms are not interpreted
        for taint, but their call sites still matter for the call graph
        (and for pool-submission detection), so any ``ast.Call`` the
        structured walk did not reach is recorded with empty argument
        atoms.
        """
        for child in ast.walk(self.node):
            if not isinstance(child, ast.Call) or id(child) in self.calls:
                continue
            func = child.func
            attr = ""
            base = ""
            if isinstance(func, ast.Name):
                attr = func.id
            elif isinstance(func, ast.Attribute):
                attr = func.attr
                base = _dotted(func.value) or ""
            func_refs: Dict[str, str] = {}
            for position, arg in enumerate(child.args):
                ref = self._function_ref(arg)
                if ref is not None:
                    func_refs[str(position)] = ref
            for keyword in child.keywords:
                if keyword.arg is None:
                    continue
                ref = self._function_ref(keyword.value)
                if ref is not None:
                    func_refs[keyword.arg] = ref
            self._record_call(
                child,
                callee=self._resolve_callee(func, attr, base),
                attr=attr,
                base=base,
                nargs=len(child.args),
                keywords=[k.arg for k in child.keywords if k.arg],
                has_star=any(isinstance(a, ast.Starred) for a in child.args),
                has_kwstar=any(k.arg is None for k in child.keywords),
                func_refs=func_refs,
            )

    # --- statements ----------------------------------------------------

    def _exec_block(self, stmts: List[ast.stmt]) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt)

    def _exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            atoms, is_set = self._eval(stmt.value)
            for target in stmt.targets:
                self._bind_target(target, atoms, is_set, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                atoms, is_set = self._eval(stmt.value)
                self._bind_target(stmt.target, atoms, is_set, stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            atoms, is_set = self._eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                name = stmt.target.id
                merged = self.env.get(name, frozenset()) | atoms
                self.env[name] = merged
                self._check_store_write(stmt.target, aug=True)
            else:
                self._eval(stmt.target)
                self._check_store_write(stmt.target, aug=True)
                self._check_attr_sink(stmt.target, atoms)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                atoms, _ = self._eval(stmt.value)
                self.return_atoms.update(atoms)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            atoms, is_set = self._eval(stmt.iter)
            if is_set:
                atoms = atoms | {("src", stmt.lineno, "set-iter")}
            for _ in range(2):
                self._bind_target(stmt.target, atoms, False, None)
                self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            for _ in range(2):
                self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            self._exec_branches([stmt.body, stmt.orelse])
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                atoms, is_set = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind_target(
                        item.optional_vars, atoms, is_set, item.context_expr
                    )
            self._exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            branches = [stmt.body]
            for handler in stmt.handlers:
                branches.append(handler.body)
            self._exec_branches(branches)
            self._exec_block(stmt.orelse)
            self._exec_block(stmt.finalbody)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc)
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._check_store_write(target, aug=False)
        # Global/Nonlocal handled in the scope pre-pass; nested
        # defs/classes and match statements fall to the call sweep.

    def _exec_branches(self, branches: List[List[ast.stmt]]) -> None:
        """Interpret alternative branches and union the resulting states."""
        base_env = dict(self.env)
        base_sets = set(self.set_vars)
        base_classes = dict(self.var_class)
        merged_env: Dict[str, FrozenSet[Atom]] = dict(base_env)
        merged_sets = set(base_sets)
        merged_classes = dict(base_classes)
        for branch in branches:
            self.env = dict(base_env)
            self.set_vars = set(base_sets)
            self.var_class = dict(base_classes)
            self._exec_block(branch)
            for name, atoms in self.env.items():
                merged_env[name] = merged_env.get(name, frozenset()) | atoms
            merged_sets |= self.set_vars
            merged_classes.update(self.var_class)
        self.env = merged_env
        self.set_vars = merged_sets
        self.var_class = merged_classes

    # --- binding and writes --------------------------------------------

    def _bind_target(
        self,
        target: ast.AST,
        atoms: FrozenSet[Atom],
        is_set: bool,
        value: Optional[ast.AST],
    ) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = atoms
            if is_set:
                self.set_vars.add(target.id)
            else:
                self.set_vars.discard(target.id)
            cls = self._constructed_class(value) if value is not None else None
            if cls is not None:
                self.var_class[target.id] = cls
            elif target.id in self.var_class and value is not None:
                self.var_class.pop(target.id, None)
            self._check_store_write(target, aug=False)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, atoms, False, None)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, atoms, False, None)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            self._eval_children(target)
            self._check_store_write(target, aug=False)
            self._check_attr_sink(target, atoms)

    def _root_name(self, node: ast.AST) -> Optional[str]:
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        if isinstance(node, ast.Name):
            return node.id
        return None

    def _is_module_state(self, name: str) -> bool:
        """Whether ``name`` resolves to module-level (not local) state."""
        if name in self.local_names:
            return False
        return name in self.ctx.module_level_names or name in self.globals_decl

    def _record_write(self, line: int, kind: str, name: str, detail: str) -> None:
        key = (line, kind, name)
        if key in self._write_keys:
            return
        self._write_keys.add(key)
        self.writes.append(
            {"line": line, "kind": kind, "name": name, "detail": detail}
        )

    def _check_store_write(self, target: ast.AST, aug: bool) -> None:
        """Classify a Store/AugStore target as a shared-state write."""
        if isinstance(target, ast.Name):
            name = target.id
            if name in self.globals_decl:
                self._record_write(
                    target.lineno, "global-assign", name,
                    "assignment to a `global`-declared module name",
                )
            elif name in self.nonlocals_decl:
                self._record_write(
                    target.lineno, "nonlocal-write", name,
                    "assignment to enclosing-scope state via `nonlocal`",
                )
            return
        root = self._root_name(target)
        if root is None:
            return
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            kind = (
                "global-subscript"
                if isinstance(target, ast.Subscript)
                else "global-attr"
            )
            if self._is_module_state(root):
                self._record_write(
                    target.lineno, kind, root,
                    "store into module-level container/object state",
                )
            elif root in self.nonlocals_decl:
                self._record_write(
                    target.lineno, "nonlocal-write", root,
                    "store into enclosing-scope state via `nonlocal`",
                )
            elif root in self.mutable_defaults:
                self._record_write(
                    target.lineno, "default-mutation", root,
                    "store into a mutable default argument",
                )

    # --- expressions ---------------------------------------------------

    def _eval_children(self, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._eval(child)

    def _eval(self, node: ast.AST) -> Tuple[FrozenSet[Atom], bool]:
        """Abstract value of ``node``: (taint atoms, is-set-typed)."""
        empty: FrozenSet[Atom] = frozenset()
        if isinstance(node, ast.Name):
            if node.id in self.ctx.module_unpicklable:
                self._record_write(
                    node.lineno, "unpicklable-capture", node.id,
                    "captures module-level "
                    f"{self.ctx.module_unpicklable[node.id]}",
                )
            return (
                self.env.get(node.id, empty),
                node.id in self.set_vars or node.id in self.ctx.module_sets,
            )
        if isinstance(node, ast.Constant):
            return empty, False
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Attribute):
            if node.attr in ("budget", "fallback_budget") and isinstance(
                node.ctx, ast.Load
            ):
                self.reads_budget_attr = True
            atoms, _ = self._eval(node.value)
            return atoms, False
        if isinstance(node, ast.Subscript):
            base_atoms, _ = self._eval(node.value)
            index_atoms, _ = self._eval(node.slice)
            return base_atoms | index_atoms, False
        if isinstance(node, ast.BinOp):
            left_atoms, left_set = self._eval(node.left)
            right_atoms, right_set = self._eval(node.right)
            is_set = (left_set or right_set) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
            )
            return left_atoms | right_atoms, is_set
        if isinstance(node, ast.BoolOp):
            atoms: FrozenSet[Atom] = empty
            is_set = False
            for value in node.values:
                value_atoms, value_set = self._eval(value)
                atoms |= value_atoms
                is_set = is_set or value_set
            return atoms, is_set
        if isinstance(node, ast.Compare):
            self._eval(node.left)
            for comparator in node.comparators:
                self._eval(comparator)
            return empty, False  # bool result: order-insensitive
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            body_atoms, body_set = self._eval(node.body)
            else_atoms, else_set = self._eval(node.orelse)
            return body_atoms | else_atoms, body_set or else_set
        if isinstance(node, (ast.Tuple, ast.List)):
            atoms = empty
            for element in node.elts:
                element_atoms, _ = self._eval(element)
                atoms |= element_atoms
            return atoms, False
        if isinstance(node, ast.Set):
            atoms = empty
            for element in node.elts:
                element_atoms, _ = self._eval(element)
                atoms |= element_atoms
            return atoms, True
        if isinstance(node, ast.Dict):
            atoms = empty
            for key in node.keys:
                if key is not None:
                    key_atoms, _ = self._eval(key)
                    atoms |= key_atoms
            for value in node.values:
                value_atoms, _ = self._eval(value)
                atoms |= value_atoms
            return atoms, False
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
            atoms = self._eval_comprehension(node.generators)
            element_atoms, _ = self._eval(node.elt)
            return atoms | element_atoms, isinstance(node, ast.SetComp)
        if isinstance(node, ast.DictComp):
            atoms = self._eval_comprehension(node.generators)
            key_atoms, _ = self._eval(node.key)
            value_atoms, _ = self._eval(node.value)
            return atoms | key_atoms | value_atoms, False
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            if node.value is not None:
                return self._eval(node.value)
            return empty, False
        if isinstance(node, ast.Yield):
            if node.value is not None:
                atoms, _ = self._eval(node.value)
                self.return_atoms.update(atoms)
            return empty, False
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, (ast.JoinedStr, ast.FormattedValue)):
            atoms = empty
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    child_atoms, _ = self._eval(child)
                    atoms |= child_atoms
            return atoms, False
        if isinstance(node, ast.NamedExpr):
            atoms, is_set = self._eval(node.value)
            self._bind_target(node.target, atoms, is_set, node.value)
            return atoms, is_set
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self._eval(part)
            return empty, False
        if isinstance(node, ast.Lambda):
            return empty, False  # body reached by the call sweep
        # Unknown node: evaluate children conservatively.
        atoms = empty
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                child_atoms, _ = self._eval(child)
                atoms |= child_atoms
        return atoms, False

    def _eval_comprehension(self, generators) -> FrozenSet[Atom]:
        atoms: FrozenSet[Atom] = frozenset()
        for gen in generators:
            iter_atoms, iter_set = self._eval(gen.iter)
            if iter_set:
                iter_atoms = iter_atoms | {
                    ("src", gen.iter.lineno, "set-iter")
                }
            self._bind_target(gen.target, iter_atoms, False, None)
            atoms |= iter_atoms
            for condition in gen.ifs:
                self._eval(condition)
        return atoms

    # --- calls ----------------------------------------------------------

    def _eval_call(self, node: ast.Call) -> Tuple[FrozenSet[Atom], bool]:
        func = node.func
        attr = ""
        base_text = ""
        if isinstance(func, ast.Name):
            attr = func.id
        elif isinstance(func, ast.Attribute):
            attr = func.attr
            base_text = _dotted(func.value) or ""
            self._eval(func.value)

        arg_atoms: List[FrozenSet[Atom]] = []
        has_star = False
        func_refs: Dict[str, str] = {}
        for position, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                has_star = True
            atoms, _ = self._eval(arg)
            arg_atoms.append(atoms)
            ref = self._function_ref(arg)
            if ref is not None:
                func_refs[str(position)] = ref
        kw_atoms: Dict[str, FrozenSet[Atom]] = {}
        keywords: List[str] = []
        has_kwstar = False
        for keyword in node.keywords:
            atoms, _ = self._eval(keyword.value)
            if keyword.arg is None:
                has_kwstar = True
                continue
            keywords.append(keyword.arg)
            kw_atoms[keyword.arg] = atoms
            ref = self._function_ref(keyword.value)
            if ref is not None:
                func_refs[keyword.arg] = ref

        all_atoms: FrozenSet[Atom] = frozenset()
        for atoms in arg_atoms:
            all_atoms |= atoms
        for atoms in kw_atoms.values():
            all_atoms |= atoms

        callee = self._resolve_callee(func, attr, base_text)
        self._record_call(
            node,
            callee=callee,
            attr=attr,
            base=base_text,
            nargs=len(node.args),
            keywords=keywords,
            has_star=has_star,
            has_kwstar=has_kwstar,
            arg_atoms=arg_atoms,
            kw_atoms=kw_atoms,
            func_refs=func_refs,
        )
        self._check_call_write(node, attr, base_text)
        self._check_call_sink(node, callee, attr, base_text, arg_atoms, kw_atoms)

        # Result value.
        base_is_set = False
        if isinstance(func, ast.Attribute):
            base_root = self._root_name(func.value)
            base_is_set = (
                base_root is not None
                and (base_root in self.set_vars
                     or base_root in self.ctx.module_sets)
            ) or self._eval(func.value)[1]
        if isinstance(func, ast.Name):
            name = func.id
            if name in SANITIZERS:
                return frozenset(), False
            if name in ("set", "frozenset"):
                return all_atoms, True
            if name in _PASSTHROUGH_MATERIALIZERS:
                if node.args:
                    arg0_atoms, arg0_set = self._eval(node.args[0])
                    if arg0_set:
                        return (
                            arg0_atoms
                            | {("src", node.lineno, "set-order")},
                            False,
                        )
                    return arg0_atoms, False
                return frozenset(), False
            if name in ("id", "hash"):
                return (
                    frozenset({("src", node.lineno, name)}), False
                )
        if isinstance(func, ast.Attribute):
            if attr in SET_RETURNING_METHODS and base_is_set:
                return all_atoms | self._eval(func.value)[0], True
            if attr == "pop" and base_is_set:
                return (
                    self._eval(func.value)[0]
                    | {("src", node.lineno, "set-pop")},
                    False,
                )
            if attr == "get":
                # A container lookup returns a stored value, never its
                # key: the key argument (position 0) must not taint the
                # result.  The default (position 1 / ``default=``) is
                # returned verbatim, so its taint stays.
                result = self._eval(func.value)[0]
                for atoms in arg_atoms[1:]:
                    result |= atoms
                for atoms in kw_atoms.values():
                    result |= atoms
                return result, False
        if callee is not None and not callee.startswith("@"):
            return all_atoms | {("ret", callee)}, False
        return all_atoms, False

    def _function_ref(self, node: ast.AST) -> Optional[str]:
        """A callee-style reference when ``node`` names a function."""
        if isinstance(node, ast.Name):
            resolved = self.ctx.resolve_name(node.id)
            if resolved is not None:
                return resolved
            if node.id not in self.local_names:
                return None
            return f"?{node.id}"
        if isinstance(node, ast.Attribute):
            dotted = _dotted(node)
            if dotted is not None:
                resolved = self.ctx.resolve_dotted(dotted)
                if resolved is not None:
                    return resolved
            return None
        return None

    def _resolve_callee(
        self, func: ast.AST, attr: str, base_text: str
    ) -> Optional[str]:
        """Module-local best-effort callee reference.

        Returns a dotted target when imports/locals/class inference pin
        it down, ``"?name"`` for an unresolved plain-name call (eligible
        for whole-program bare-name linking), ``"@attr"`` for an
        unresolved attribute call (never name-linked — method names like
        ``append`` are too common to guess), or ``None`` for something
        that is not a name at all (e.g. ``fns[i]()``).
        """
        if isinstance(func, ast.Name):
            resolved = self.ctx.resolve_name(func.id)
            if resolved is not None:
                return resolved
            return f"?{func.id}"
        if isinstance(func, ast.Attribute):
            dotted = _dotted(func)
            if dotted is not None:
                resolved = self.ctx.resolve_dotted(dotted)
                if resolved is not None:
                    return resolved
            if isinstance(func.value, ast.Name) and (
                func.value.id in self.var_class
            ):
                return f"{self.var_class[func.value.id]}.{attr}"
            return f"@{attr}"
        return None

    def _constructed_class(self, value: ast.AST) -> Optional[str]:
        """Class of ``value`` when it constructs one (incl. ``C.open(...)``)."""
        if isinstance(value, ast.IfExp):
            return (
                self._constructed_class(value.body)
                or self._constructed_class(value.orelse)
            )
        if not isinstance(value, ast.Call):
            return None
        func = value.func
        if isinstance(func, ast.Name):
            return self.ctx.resolve_class(func.id)
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            # Alternate constructors: ``C.open(...)``, ``C.from_x(...)``.
            return self.ctx.resolve_class(func.value.id)
        return None

    def _record_call(self, node: ast.Call, callee=None, attr="", base="",
                     nargs=0, keywords=None, has_star=False, has_kwstar=False,
                     arg_atoms=None, kw_atoms=None, func_refs=None) -> None:
        self.calls[id(node)] = {
            "line": node.lineno,
            "col": node.col_offset,
            "method": isinstance(node.func, ast.Attribute),
            "callee": callee,
            "attr": attr,
            "base": base,
            "nargs": nargs,
            "keywords": keywords or [],
            "has_star": has_star,
            "has_kwstar": has_kwstar,
            "arg_atoms": [_atom_list(atoms) for atoms in (arg_atoms or [])],
            "kw_atoms": {
                name: _atom_list(atoms)
                for name, atoms in (kw_atoms or {}).items()
            },
            "func_refs": func_refs or {},
        }

    # --- effect / sink checks -------------------------------------------

    def _check_call_write(
        self, node: ast.Call, attr: str, base_text: str
    ) -> None:
        if attr not in MUTATOR_METHODS or not isinstance(
            node.func, ast.Attribute
        ):
            return
        root = self._root_name(node.func.value)
        if root is None:
            return
        if self._is_module_state(root):
            self._record_write(
                node.lineno, "global-mutate", root,
                f".{attr}() on module-level state",
            )
        elif root in self.nonlocals_decl:
            self._record_write(
                node.lineno, "nonlocal-write", root,
                f".{attr}() on enclosing-scope state",
            )
        elif root in self.mutable_defaults:
            self._record_write(
                node.lineno, "default-mutation", root,
                f".{attr}() on a mutable default argument",
            )

    def _sink_label(
        self, callee: Optional[str], attr: str, base_text: str
    ) -> Optional[str]:
        base_last = base_text.split(".")[-1] if base_text else ""
        if attr in _ACCUMULATORS and base_last in ("pairs", "undecided"):
            return "result-accumulation"
        if attr in ("append", "write") and (
            base_last == "journal"
            or (callee is not None and callee.endswith("JoinJournal." + attr))
        ):
            return "journal-write"
        if callee is not None and callee.split(".")[-1] == "StageStatistics":
            return "stage-statistics"
        if attr == "StageStatistics":
            return "stage-statistics"
        return None

    def _check_call_sink(self, node, callee, attr, base_text,
                         arg_atoms, kw_atoms) -> None:
        label = self._sink_label(callee, attr, base_text)
        if label is None:
            return
        atoms: FrozenSet[Atom] = frozenset()
        for arg in arg_atoms:
            atoms |= arg
        for arg in kw_atoms.values():
            atoms |= arg
        if atoms:
            self.sinks[(node.lineno, label)] = {
                "line": node.lineno,
                "label": label,
                "atoms": _atom_list(atoms),
            }

    def _check_attr_sink(self, target: ast.AST, atoms: FrozenSet[Atom]) -> None:
        """Attribute stores on ``StageStatistics``-typed objects are sinks."""
        if not atoms or not isinstance(target, ast.Attribute):
            return
        root = self._root_name(target.value)
        if root is None:
            return
        cls = self.var_class.get(root, "")
        if cls.split(".")[-1] == "StageStatistics":
            self.sinks[(target.lineno, "stage-statistics")] = {
                "line": target.lineno,
                "label": "stage-statistics",
                "atoms": _atom_list(atoms),
            }


def _atom_list(atoms: FrozenSet[Atom]) -> List[List]:
    """Canonical (sorted) JSON-ready form of an atom set."""
    return sorted([list(atom) for atom in atoms], key=repr)


def _identifiers(text: str) -> List[str]:
    """Every identifier token in ``text`` (annotation source), in order."""
    return re.findall(r"[A-Za-z_][A-Za-z0-9_]*", text)
