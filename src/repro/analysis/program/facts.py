"""Per-module fact extraction for the whole-program phase.

:func:`extract_facts` turns one parsed
:class:`~repro.analysis.engine.ModuleInfo` into a plain-JSON *facts*
dict — the only thing the whole-program rules (and the incremental
cache) ever see.  No AST survives past this function, which is what
lets the cache skip parsing entirely for unchanged files: the facts are
serialized verbatim and fed straight back into
:class:`~repro.analysis.program.callgraph.ProgramModel` on the next run.

A facts dict holds:

* ``module`` / ``path`` / ``is_package`` — identity.
* ``functions`` — ``qual -> function facts`` produced by
  :class:`~repro.analysis.program.dataflow.FunctionAnalyzer` for every
  module-level function and every method (one class level deep, plus
  definitions nested under module-level ``if``/``try`` blocks).
* ``classes`` — ``ClassName -> sorted method names``.
* ``module_level_names`` — names bound at module scope (the set the
  dataflow pass consults to classify subscript/attribute stores as
  writes to shared module state).
* ``suppressions`` — ``str(line) -> None | [rule ids]`` for every
  ``# repro: ignore[...]`` comment (``None`` means a blanket ignore).
  Kept *outside* the program hash so editing a waiver never invalidates
  cached whole-program results — suppression is applied at report time.
"""

from __future__ import annotations

import ast
import io
import tokenize
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.engine import _IGNORE_RE, ModuleInfo
from repro.analysis.program.dataflow import FunctionAnalyzer

__all__ = ["ModuleContext", "extract_facts", "UNPICKLABLE_FACTORIES"]

#: Module-level bindings of these constructors are unpicklable handles a
#: pool worker must not capture (description used in the finding text).
UNPICKLABLE_FACTORIES: Dict[str, str] = {
    "open": "open file handle",
    "Lock": "threading lock",
    "RLock": "threading lock",
    "Condition": "threading condition",
    "Semaphore": "threading semaphore",
    "BoundedSemaphore": "threading semaphore",
    "Event": "threading event",
    "Barrier": "threading barrier",
    "socket": "socket",
    "connect": "database connection",
    "TextIOWrapper": "open file handle",
}

_SET_FACTORIES = frozenset({"set", "frozenset"})


def _last(dotted: str) -> str:
    return dotted.rsplit(".", 1)[-1]


class ModuleContext:
    """Module-scope symbol table shared by every function's analyzer.

    Classifies every module-level binding (imports, defs, classes,
    assignments) so :class:`FunctionAnalyzer` can resolve call targets,
    recognize writes to module state, and spot captures of module-level
    sets and unpicklable handles.
    """

    def __init__(self, module: ModuleInfo) -> None:
        """Index every module-scope binding of ``module``."""
        self.module = module.module
        self.path = str(module.path)
        self.imports: Dict[str, str] = {}
        self.module_level_names: Set[str] = set()
        self.module_sets: Set[str] = set()
        self.module_unpicklable: Dict[str, str] = {}
        self.function_names: Set[str] = set()
        self.class_methods: Dict[str, List[str]] = {}
        self._package = self._package_of(module)
        self._scan(module.tree)

    def _package_of(self, module: ModuleInfo) -> str:
        if module.is_package:
            return module.module
        return module.module.rpartition(".")[0]

    # --- module-scope scan ----------------------------------------------

    def _scan(self, tree: ast.Module) -> None:
        for stmt in self._top_level(tree.body):
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else bound
                    self.imports[bound] = target
                    self.module_level_names.add(bound)
            elif isinstance(stmt, ast.ImportFrom):
                base = self._import_base(stmt)
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self.imports[bound] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )
                    self.module_level_names.add(bound)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.function_names.add(stmt.name)
                self.module_level_names.add(stmt.name)
            elif isinstance(stmt, ast.ClassDef):
                self.class_methods[stmt.name] = sorted(
                    child.name
                    for child in stmt.body
                    if isinstance(
                        child, (ast.FunctionDef, ast.AsyncFunctionDef)
                    )
                )
                self.module_level_names.add(stmt.name)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                self._scan_assignment(stmt)

    def _top_level(self, body: List[ast.stmt]) -> Iterator[ast.stmt]:
        """Module-level statements, descending into ``if``/``try`` arms."""
        for stmt in body:
            if isinstance(stmt, ast.If):
                yield from self._top_level(stmt.body)
                yield from self._top_level(stmt.orelse)
            elif isinstance(stmt, ast.Try):
                yield from self._top_level(stmt.body)
                for handler in stmt.handlers:
                    yield from self._top_level(handler.body)
                yield from self._top_level(stmt.orelse)
                yield from self._top_level(stmt.finalbody)
            else:
                yield stmt

    def _import_base(self, stmt: ast.ImportFrom) -> str:
        if stmt.level == 0:
            return stmt.module or ""
        parts = self._package.split(".") if self._package else []
        if stmt.level > 1:
            parts = parts[: len(parts) - (stmt.level - 1)]
        if stmt.module:
            parts.append(stmt.module)
        return ".".join(parts)

    def _scan_assignment(self, stmt: ast.stmt) -> None:
        targets: List[ast.expr]
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value: Optional[ast.expr] = stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
            value = stmt.value
        else:  # AugAssign
            targets = [stmt.target]
            value = None
        names: List[str] = []
        for target in targets:
            if isinstance(target, ast.Name):
                names.append(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    if isinstance(element, ast.Name):
                        names.append(element.id)
        self.module_level_names.update(names)
        if value is None or not names:
            return
        if self._is_set_expr(value):
            self.module_sets.update(names)
        unpicklable = self._unpicklable_kind(value)
        if unpicklable is not None:
            for name in names:
                self.module_unpicklable[name] = unpicklable

    def _is_set_expr(self, value: ast.expr) -> bool:
        if isinstance(value, (ast.Set, ast.SetComp)):
            return True
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            return value.func.id in _SET_FACTORIES
        return False

    def _unpicklable_kind(self, value: ast.expr) -> Optional[str]:
        if isinstance(value, ast.Lambda):
            return "lambda"
        if not isinstance(value, ast.Call):
            return None
        func = value.func
        name = ""
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        return UNPICKLABLE_FACTORIES.get(name)

    # --- resolution -------------------------------------------------------

    def resolve_name(self, name: str) -> Optional[str]:
        """Dotted target of a bare module-scope ``name``, if known."""
        if name in self.function_names or name in self.class_methods:
            return f"{self.module}.{name}"
        return self.imports.get(name)

    def resolve_dotted(self, dotted: str) -> Optional[str]:
        """Dotted target of an ``a.b.c`` reference rooted in this module."""
        first, _, rest = dotted.partition(".")
        if not rest:
            return self.resolve_name(dotted)
        if first in self.class_methods:
            return f"{self.module}.{dotted}"
        if first in self.imports:
            return f"{self.imports[first]}.{rest}"
        return None

    def resolve_class(self, name: str) -> Optional[str]:
        """Dotted class reference for ``name``, or ``None``.

        Local classes resolve directly; imported names count only when
        capitalized (the codebase convention) and not from ``typing``,
        so ``Optional``/``Dict`` annotation wrappers never win over the
        real class name next to them.
        """
        if name in self.class_methods:
            return f"{self.module}.{name}"
        target = self.imports.get(name)
        if (
            target is not None
            and name[:1].isupper()
            and not target.startswith("typing.")
        ):
            return target
        return None


def _function_nodes(
    tree: ast.Module,
) -> Iterator[Tuple[ast.AST, str]]:
    """Every analyzable ``(def node, enclosing class)`` pair, in order."""
    def walk(body: List[ast.stmt], cls: str) -> Iterator[Tuple[ast.AST, str]]:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield stmt, cls
            elif isinstance(stmt, ast.ClassDef) and not cls:
                yield from walk(stmt.body, stmt.name)
            elif isinstance(stmt, ast.If):
                yield from walk(stmt.body, cls)
                yield from walk(stmt.orelse, cls)
            elif isinstance(stmt, ast.Try):
                yield from walk(stmt.body, cls)
                for handler in stmt.handlers:
                    yield from walk(handler.body, cls)
                yield from walk(stmt.orelse, cls)
                yield from walk(stmt.finalbody, cls)

    yield from walk(tree.body, "")


def _suppression_map(lines: List[str]) -> Dict[str, Optional[List[str]]]:
    """``str(line) -> None | [ids]`` for every real ignore *comment*.

    Tokenizing (rather than regexing raw lines) keeps mentions of the
    suppression syntax inside docstrings and string literals — e.g. the
    engine documenting its own comment format — from registering as
    suppressions, which would both suppress findings spuriously and
    drown ``unused-suppression`` in false positives.
    """
    out: Dict[str, Optional[List[str]]] = {}
    reader = io.StringIO("\n".join(lines) + "\n").readline
    try:
        tokens = list(tokenize.generate_tokens(reader))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return out  # unreachable for files that parsed, but stay safe
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _IGNORE_RE.search(token.string)
        if match is None:
            continue
        # Comments *documenting* the waiver syntax quote it in backticks
        # (or quotes); those mentions are prose, not suppressions.
        if match.start() > 0 and token.string[match.start() - 1] in "`'\"":
            continue
        raw = match.group(1)
        if raw is None or not raw.strip():
            out[str(token.start[0])] = None  # blanket
        else:
            out[str(token.start[0])] = sorted(
                {part.strip() for part in raw.split(",") if part.strip()}
            )
    return out


def extract_facts(module: ModuleInfo) -> dict:
    """The serializable whole-program facts for one parsed module."""
    ctx = ModuleContext(module)
    functions: Dict[str, dict] = {}
    for node, cls in _function_nodes(module.tree):
        analyzer = FunctionAnalyzer(ctx, node, cls)
        facts = analyzer.run()
        functions[facts["qual"]] = facts
    return {
        "module": ctx.module,
        "path": ctx.path,
        "is_package": module.is_package,
        "functions": functions,
        "classes": dict(sorted(ctx.class_methods.items())),
        "module_level_names": sorted(ctx.module_level_names),
        "suppressions": _suppression_map(module.lines),
    }
