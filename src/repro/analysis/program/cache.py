"""Content-hash incremental cache for the analysis engine.

The cache stores, per analyzed file, the SHA-256 of its bytes, the
extracted whole-program *facts*, and the **raw** (pre-suppression)
findings of every per-file rule.  On a later run an unchanged file is
served entirely from the cache — no read of the AST, no re-parse, no
rule execution — which :class:`CacheStats` makes observable
(``parsed_files == 0`` on a warm, unchanged tree).

Whole-program results are cached separately under a *program key*: a
hash over every module's :func:`program_hash`, which in turn covers the
program-relevant slice of its facts — **excluding** the suppression
map.  Two consequences, both deliberate:

* Editing one file invalidates exactly that file's per-file entry; the
  program phase re-runs only if the edit changed the file's
  program-relevant facts (a docstring or comment tweak re-parses one
  file but reuses the cached whole-program findings).
* Adding or removing a ``# repro: ignore[...]`` waiver never re-runs
  any rule: raw findings are cached and suppression is applied at
  report time by the engine.

A ``rules_key`` header (hash of the registered rule ids and the schema
version) guards against stale results when the rule set itself changes;
a mismatch drops the whole cache.  The on-disk form is a single JSON
document written atomically (temp file + rename).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Optional, Union

__all__ = [
    "AnalysisCache",
    "CacheStats",
    "file_sha",
    "program_hash",
    "program_key",
]

#: Bump when the facts IR or cached-finding layout changes shape.
CACHE_SCHEMA_VERSION = 1


def file_sha(path: Union[str, Path]) -> str:
    """SHA-256 hex digest of a file's bytes."""
    return hashlib.sha256(Path(path).read_bytes()).hexdigest()


def _canonical(payload: object) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def program_hash(facts: dict) -> str:
    """Hash of one module's program-relevant facts.

    Suppressions are excluded on purpose: they only affect report-time
    filtering, never what the whole-program rules compute.
    """
    relevant = {k: v for k, v in facts.items() if k != "suppressions"}
    return hashlib.sha256(_canonical(relevant).encode()).hexdigest()


def program_key(facts_list: Iterable[dict]) -> str:
    """Cache key for a whole-program run over ``facts_list``."""
    entries = sorted(
        (facts["module"], program_hash(facts)) for facts in facts_list
    )
    return hashlib.sha256(_canonical(entries).encode()).hexdigest()


def rules_key(rule_ids: Iterable[str]) -> str:
    """Cache header key derived from the registered rule ids."""
    payload = f"v{CACHE_SCHEMA_VERSION}:" + ",".join(sorted(rule_ids))
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class CacheStats:
    """Counters describing what one :func:`run_analysis` pass did."""

    files_seen: int = 0
    parsed_files: int = 0
    reused_files: int = 0
    program_runs: int = 0
    program_reused: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict form for reports and tests."""
        return {
            "files_seen": self.files_seen,
            "parsed_files": self.parsed_files,
            "reused_files": self.reused_files,
            "program_runs": self.program_runs,
            "program_reused": self.program_reused,
        }


class AnalysisCache:
    """JSON-backed (or in-memory, when ``path=None``) analysis cache."""

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        """Load the cache at ``path`` if it exists and is compatible."""
        self.path = Path(path) if path is not None else None
        self.stats = CacheStats()
        self._data = self._empty()
        if self.path is not None and self.path.exists():
            try:
                loaded = json.loads(self.path.read_text())
            except (OSError, ValueError):
                loaded = None
            if (
                isinstance(loaded, dict)
                and loaded.get("version") == CACHE_SCHEMA_VERSION
            ):
                self._data = loaded

    @staticmethod
    def _empty() -> dict:
        return {
            "version": CACHE_SCHEMA_VERSION,
            "rules_key": None,
            "files": {},
            "program": {},
        }

    def begin_run(self, key: str) -> None:
        """Reset stats; drop everything if the rule set changed."""
        self.stats = CacheStats()
        if self._data.get("rules_key") != key:
            self._data = self._empty()
            self._data["rules_key"] = key

    # --- per-file entries -------------------------------------------------

    def lookup_file(self, path: str, sha: str) -> Optional[dict]:
        """The cached entry for ``path`` if its content hash matches."""
        entry = self._data["files"].get(path)
        if entry is not None and entry.get("sha") == sha:
            return entry
        return None

    def store_file(
        self,
        path: str,
        sha: str,
        facts: Optional[dict],
        findings: Dict[str, list],
    ) -> None:
        """Record one parsed file's facts and raw per-rule findings."""
        self._data["files"][path] = {
            "sha": sha,
            "facts": facts,
            "findings": findings,
        }

    def prune(self, live_paths: Iterable[str]) -> None:
        """Drop entries for files no longer part of the analyzed set."""
        live = set(live_paths)
        files = self._data["files"]
        for path in [p for p in files if p not in live]:
            del files[p]

    # --- whole-program entries --------------------------------------------

    def lookup_program(self, key: str) -> Optional[list]:
        """Cached raw program findings for ``key``, or ``None``."""
        return self._data["program"].get(key)

    def store_program(self, key: str, findings: list) -> None:
        """Record the raw program findings for ``key`` (latest only)."""
        self._data["program"] = {key: findings}

    # --- persistence ------------------------------------------------------

    def save(self) -> None:
        """Atomically write the cache back to disk (no-op when in-memory)."""
        if self.path is None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(json.dumps(self._data, sort_keys=True))
        os.replace(tmp, self.path)
