"""``fork-safety``: race detector for process-pool worker code.

The parallel join ships work to ``ProcessPoolExecutor`` workers.  A
worker process gets a copy-on-write snapshot of the parent; any state a
worker-reachable function writes at module level (or into an enclosing
scope, or into its own mutable default arguments) mutates only that
worker's copy — silently diverging from the parent and from every other
worker.  Captured module-level handles that cannot pickle (open files,
locks, sockets, database connections, lambdas) are the same hazard in a
different coat: they either fail to transfer or transfer as dead
objects.

This rule walks the conservative call graph from every structurally
discovered worker root — the function handed to ``executor.submit``,
the pool ``map``/``imap``/``apply_async`` families, a pool's
``initializer=``, a ``Process(target=...)`` — and reports every
shared-state write reachable from one.

One sanctioned exception: a pool *initializer*'s own writes to module
globals are exactly how per-process state is supposed to be installed
(that is the initializer's entire job), so those are exempt.  Functions
the initializer merely calls, and every other write kind, stay flagged.
"""

from __future__ import annotations

from typing import Iterator, Set, Tuple

from repro.analysis.engine import Finding
from repro.analysis.registry import Rule, register

__all__ = ["ForkSafetyRule"]


def _short(qual: str) -> str:
    """``module.Class.method`` -> ``Class.method``; plain name otherwise."""
    parts = qual.split(".")
    return ".".join(parts[-2:]) if parts[-1] == "__init__" else parts[-1]


@register
class ForkSafetyRule(Rule):
    """Flag shared-state writes reachable from process-pool workers."""

    id = "fork-safety"
    description = (
        "functions reachable from a process-pool worker must not write "
        "module/global state, mutate default args, or capture "
        "unpicklable objects"
    )
    scope = "program"

    def check_program(self, model) -> Iterator[Finding]:
        """Report every hazardous write in the worker-reachable slice."""
        seen: Set[Tuple[str, int, str, str]] = set()
        for root in sorted(model.worker_roots):
            for qual in sorted(model.reachable({root})):
                fn = model.functions[qual]
                exempt_globals = qual in model.initializers
                for write in fn["writes"]:
                    kind = write["kind"]
                    if exempt_globals and kind.startswith("global"):
                        continue
                    path = model.path_of(qual)
                    key = (path, write["line"], write["name"], kind)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield Finding(
                        path=path,
                        line=write["line"],
                        rule=self.id,
                        message=(
                            f"'{_short(qual)}' is reachable from "
                            f"process-pool worker '{_short(root)}' and "
                            f"is not fork-safe: {write['detail']} "
                            f"('{write['name']}')"
                        ),
                    )
