"""``determinism-taint``: unordered values must not reach ordered sinks.

The join's reproducibility contract (bit-identical results across runs,
and across a kill-and-resume via the checkpoint journal) requires that
nothing whose value or order depends on Python's unordered containers
flows into result accumulation, stage statistics, or journal writes.

The per-module dataflow pass marks the unordered *sources* — iterating
a ``set``/``frozenset``, materializing one without ``sorted`` (via
``list``/``tuple``/``iter``), ``set.pop()``, ``id()``, unsalted
``hash()`` — and the ordering-sensitive *sinks* — ``.append``/
``.extend`` onto ``pairs``/``undecided`` accumulators, journal writes,
and ``StageStatistics`` construction or field stores.  Passing through
a sanctioned ordering or order-insensitive function (``sorted``,
``min``, ``max``, ``len``, ``sum``, ``any``, ``all``) clears the taint.

This rule asks the :class:`~repro.analysis.program.ProgramModel` to
resolve each sink's atoms whole-program — chasing values through
function returns and parameters across modules — and reports every sink
provably downstream of an unordered source.

Plain ``dict`` iteration is deliberately **not** a source: CPython
guarantees insertion order (3.7+), and the engine builds its candidate
dicts in deterministic scan order, so treating dicts as unordered would
only manufacture noise.  The rule targets the containers that actually
reorder between runs: sets, and identity-derived integers.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.engine import Finding
from repro.analysis.registry import Rule, register

__all__ = ["DeterminismTaintRule"]

_SOURCE_LABEL = {
    "set-iter": "iteration over a set",
    "set-order": "unsorted materialization of a set",
    "set-pop": "set.pop()",
    "id": "id()",
    "hash": "unsalted hash()",
}

_SINK_LABEL = {
    "result-accumulation": "result accumulation",
    "journal-write": "checkpoint-journal write",
    "stage-statistics": "StageStatistics",
}


@register
class DeterminismTaintRule(Rule):
    """Flag unordered-source values reaching ordering-sensitive sinks."""

    id = "determinism-taint"
    description = (
        "values from unordered iteration (sets, id()/hash()) must pass "
        "through an ordering function before reaching results, "
        "statistics, or the journal"
    )
    scope = "program"

    def check_program(self, model) -> Iterator[Finding]:
        """Report every sink whose atoms resolve to an unordered source."""
        for qual in sorted(model.functions):
            fn = model.functions[qual]
            for sink in fn["sinks"]:
                evidence = None
                for atom in sink["atoms"]:
                    evidence = model.atom_evidence(tuple(atom), qual)
                    if evidence is not None:
                        break
                if evidence is None:
                    continue
                kind, source_module, source_line = evidence
                source = _SOURCE_LABEL.get(kind, kind)
                where = (
                    f"line {source_line}"
                    if source_module == model.function_module[qual]["module"]
                    else f"{source_module}:{source_line}"
                )
                yield Finding(
                    path=model.path_of(qual),
                    line=sink["line"],
                    rule=self.id,
                    message=(
                        f"value derived from {source} ({where}) reaches "
                        f"{_SINK_LABEL.get(sink['label'], sink['label'])} "
                        "sink without an ordering function "
                        "(sorted/min/max)"
                    ),
                )
