"""Hot-path allocation rule.

The engine's driver loops (``engine.executor``, ``engine.stages``),
the vectorized batch kernels ``engine.batch``, the adaptive planner's
per-pair observation loop (``engine.planner``), their thin ``core``
wrappers (``core.join``, ``core.search``), ``ged.astar``, the compiled
verifier ``ged.compiled``, the interned filter kernels ``grams.vocab``
/ ``grams.mismatch``, the columnar store builder ``grams.columnar``
and the out-of-core shard drivers (``engine.sharded`` per candidate,
``runtime.sharded`` per spilled record)
are the per-pair / per-state / per-block inner loops of the whole
system; an accidental
``list(...)``/``dict(...)``/``set(...)`` copy or a repeated
``extract_qgrams`` call inside one of their ``for``/``while`` loops
multiplies by the candidate (or A* state, or merged-id) count.  Copies
and extractions belong before the loop; genuinely-needed per-iteration
containers should be built with literals, slices or comprehensions
(which this rule deliberately does not flag — the one-pass merge in
``grams.mismatch`` relies on exactly those forms).

A justified in-loop copy can be waived with
``# repro: ignore[hot-path-alloc]`` on the offending line.
"""

from __future__ import annotations

from typing import Iterator

import ast

from repro.analysis.engine import Finding, ModuleInfo
from repro.analysis.registry import Rule, register

__all__ = ["HotPathAllocationRule"]

#: The modules whose loops are the system's hot paths.
TARGET_MODULES = {
    "repro.core.join",
    "repro.core.search",
    "repro.engine.batch",
    "repro.engine.executor",
    "repro.engine.planner",
    "repro.engine.sharded",
    "repro.engine.stages",
    "repro.ged.astar",
    "repro.ged.compiled",
    "repro.grams.columnar",
    "repro.grams.mismatch",
    "repro.grams.vocab",
    "repro.runtime.sharded",
}

_COPY_BUILTINS = {"list", "dict", "set", "frozenset", "tuple"}

_LOOPS = (ast.For, ast.AsyncFor, ast.While)


@register
class HotPathAllocationRule(Rule):
    """No container copies or q-gram re-extraction inside hot loops."""

    id = "hot-path-alloc"
    description = (
        "flag list()/dict() copies and extract_qgrams calls inside loops "
        "in core.join/core.search/engine.batch/engine.executor/"
        "engine.planner/engine.sharded/engine.stages/ged.astar/"
        "ged.compiled/grams.columnar/grams.mismatch/grams.vocab/"
        "runtime.sharded"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.module not in TARGET_MODULES:
            return
        yield from self._visit(module, module.tree, in_loop=False)

    def _visit(
        self, module: ModuleInfo, node: ast.AST, in_loop: bool
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if in_loop:
                yield from self._check_call(module, child)
            yield from self._visit(
                module, child, in_loop=in_loop or isinstance(child, _LOOPS)
            )

    def _check_call(self, module: ModuleInfo, node: ast.AST) -> Iterator[Finding]:
        if not isinstance(node, ast.Call):
            return
        func = node.func
        name = ""
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name in _COPY_BUILTINS and (node.args or node.keywords):
            yield self.finding(
                module,
                node.lineno,
                f"{name}(...) copy inside a hot loop; hoist it above the "
                "loop or reuse the original container",
            )
        elif name == "extract_qgrams":
            yield self.finding(
                module,
                node.lineno,
                "extract_qgrams inside a hot loop; extract once per graph "
                "and reuse the profile",
            )
