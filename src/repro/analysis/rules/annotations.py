"""Annotation coverage rule for the public filter/verification API.

``repro.core``, ``repro.engine``, ``repro.ged`` and ``repro.grams``
are the layers other code builds on; their public functions and
methods must carry complete
type annotations (every parameter and the return type) so ``mypy`` can
actually check call sites — an unannotated def is invisible to it.
Private helpers (leading underscore) and dunder methods other than
``__init__`` are exempt.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import ast

from repro.analysis.engine import Finding, ModuleInfo
from repro.analysis.registry import Rule, register

__all__ = ["AnnotationCoverageRule"]

TARGET_PREFIXES = ("repro.core", "repro.engine", "repro.ged", "repro.grams")


def _public_functions(
    tree: ast.Module,
) -> Iterator[Tuple[ast.AST, str]]:
    """Yield ``(def_node, qualified_name)`` for the module's public API."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not node.name.startswith("_"):
                yield node, node.name
        elif isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
            for item in node.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                name = item.name
                if name == "__init__" or not name.startswith("_"):
                    yield item, f"{node.name}.{name}"


@register
class AnnotationCoverageRule(Rule):
    """Public core/ged/grams functions must be fully annotated."""

    id = "annotations"
    description = (
        "public functions in repro.core/repro.engine/repro.ged/repro.grams "
        "need full parameter and return annotations"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.module.startswith(TARGET_PREFIXES):
            return
        for node, qualname in _public_functions(module.tree):
            missing: List[str] = []
            arguments = node.args  # type: ignore[attr-defined]
            positional = list(arguments.posonlyargs) + list(arguments.args)
            for arg in positional + list(arguments.kwonlyargs):
                if arg.arg in ("self", "cls"):
                    continue
                if arg.annotation is None:
                    missing.append(arg.arg)
            for vararg in (arguments.vararg, arguments.kwarg):
                if vararg is not None and vararg.annotation is None:
                    missing.append(vararg.arg)
            if node.returns is None:  # type: ignore[attr-defined]
                missing.append("return")
            if missing:
                yield self.finding(
                    module,
                    node.lineno,  # type: ignore[attr-defined]
                    f"public function {qualname!r} missing annotations: "
                    + ", ".join(missing),
                )
