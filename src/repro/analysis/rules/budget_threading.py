"""``budget-threading``: the verification budget must never be dropped.

The bounded-verification contract (PR 3) threads a
``VerificationBudget`` from the join drivers through the staged
executor into every A*-family verifier, so a runaway verification can
always be cut off.  The failure mode this rule guards against is quiet:
a call site that *has* a budget in scope forwards work to a
budget-accepting callee on the verifier path but forgets to pass the
budget, and the callee's ``budget=None`` default silently disables the
bound.

Whole-program check, per call site:

1. the **caller** has a budget in scope — a parameter whose name
   contains ``budget``, or it reads a ``.budget`` attribute;
2. the **callee** resolves in the call graph, accepts a budget
   parameter, and transitively reaches a verifier
   (``graph_edit_distance_detailed``, ``compiled_ged_detailed``,
   ``dfs_ged``, ``dfs_ged_compiled``, ``verify_pair``,
   ``run_cascade``, ``verify_candidate``);
3. the call binds **no** budget — no ``budget=`` keyword, no
   positional argument covering the budget parameter's index (method
   calls account for the bound ``self``), and no ``*args``/``**kwargs``
   that could be carrying it.

All three together mean the budget was dropped on a verification path.

The portfolio call family (PR 10) is covered by a fourth clause: an
*unresolved* ``<expr>.verify(...)`` attribute call is treated as a
``VerifierBackend.verify`` dispatch — its uniform signature is
``verify(self, r, s, tau, budget=None, ...)``, so a call from a
budget-holding caller that binds neither ``budget=`` nor a fourth
positional argument dropped the budget at the dispatch point.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.engine import Finding
from repro.analysis.registry import Rule, register

__all__ = ["BudgetThreadingRule"]

#: ``VerifierBackend.verify(self, r, s, tau, budget=None, ...)`` — the
#: budget parameter's index in the portfolio's uniform surface.
_PORTFOLIO_BUDGET_INDEX = 4


def _short(qual: str) -> str:
    parts = qual.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 and parts[-2][:1].isupper() else parts[-1]


@register
class BudgetThreadingRule(Rule):
    """Flag verification-path calls that drop an in-scope budget."""

    id = "budget-threading"
    description = (
        "paths from engine stages into A*-family verifiers must pass "
        "the in-scope VerificationBudget instead of dropping it"
    )
    scope = "program"

    def check_program(self, model) -> Iterator[Finding]:
        """Report each call site dropping an in-scope budget."""
        for caller_qual in sorted(model.functions):
            caller = model.functions[caller_qual]
            has_budget = caller["reads_budget_attr"] or any(
                "budget" in param for param in caller["params"]
            )
            if not has_budget:
                continue
            for call in caller["calls"]:
                callee_qual = call.get("resolved")
                if callee_qual is None:
                    if call["attr"] != "verify":
                        continue
                    if call["has_star"] or call["has_kwstar"]:
                        continue
                    if any("budget" in kw for kw in call["keywords"]):
                        continue
                    # Bound-method call: ``self`` is implicit, so the
                    # budget slot is positional index 3 at the site.
                    if call["nargs"] + 1 > _PORTFOLIO_BUDGET_INDEX:
                        continue
                    yield Finding(
                        path=model.path_of(caller_qual),
                        line=call["line"],
                        rule=self.id,
                        message=(
                            f"verification budget dropped: "
                            f"'{_short(caller_qual)}' has a budget in "
                            f"scope but dispatches '.verify(...)' "
                            f"(VerifierBackend surface) without binding "
                            f"its 'budget' parameter"
                        ),
                    )
                    continue
                if callee_qual == caller_qual:
                    continue
                budget_index = model.budget_param_index(callee_qual)
                if budget_index is None:
                    continue
                if not model.reaches_verifier(callee_qual):
                    continue
                if call["has_star"] or call["has_kwstar"]:
                    continue
                if any("budget" in kw for kw in call["keywords"]):
                    continue
                callee = model.functions[callee_qual]
                shift = 1 if callee["is_method"] else 0
                if call["nargs"] + shift > budget_index:
                    continue
                yield Finding(
                    path=model.path_of(caller_qual),
                    line=call["line"],
                    rule=self.id,
                    message=(
                        f"verification budget dropped: '{_short(caller_qual)}' "
                        f"has a budget in scope but calls "
                        f"'{_short(callee_qual)}' without binding its "
                        f"'{callee['params'][budget_index]}' parameter"
                    ),
                )
