"""Exception discipline rule.

Library code raises only :mod:`repro.exceptions` types (so callers can
catch ``ReproError`` and let programming errors propagate — the
package's documented contract), plus the single conventional
programmer-error escape ``NotImplementedError`` (abstract methods).
``raise AssertionError`` is flagged too: "proven unreachable" states
have been reached in practice (an exhausted unbounded GED search), and
asserts vanish under ``python -O`` — raise
:class:`repro.exceptions.SearchExhaustedError` or another concrete type
instead.  Bare ``except:`` clauses are banned outright: they swallow
``KeyboardInterrupt`` and ``SystemExit`` and hide genuine bugs.

Re-raises (``raise`` with no operand, or re-raising a name bound by an
``except ... as name`` handler) are always allowed.
"""

from __future__ import annotations

from typing import Iterator, Set

import ast

import repro.exceptions as _exceptions
from repro.analysis.engine import Finding, ModuleInfo
from repro.analysis.registry import Rule, register

__all__ = ["ExceptionDisciplineRule", "ALLOWED_EXCEPTIONS"]

#: Exception class names library code may raise: every type defined in
#: :mod:`repro.exceptions` (tracked dynamically so new types are picked
#: up) plus the programmer-error escape ``NotImplementedError``.
#: ``AssertionError`` is deliberately absent — see the module docstring.
ALLOWED_EXCEPTIONS: Set[str] = {
    name
    for name, obj in vars(_exceptions).items()
    if isinstance(obj, type) and issubclass(obj, BaseException)
} | {"NotImplementedError"}


def _raised_name(exc: ast.expr) -> str:
    """The name of the exception being raised, or '' if not a plain name."""
    target = exc.func if isinstance(exc, ast.Call) else exc
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute):
        return target.attr
    return ""


@register
class ExceptionDisciplineRule(Rule):
    """Only repro.exceptions types raised; no bare except."""

    id = "exceptions"
    description = (
        "library code raises only repro.exceptions types; bare except banned"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.module.startswith("repro"):
            return
        handler_names: Set[str] = {
            node.name
            for node in ast.walk(module.tree)
            if isinstance(node, ast.ExceptHandler) and node.name
        }
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    module,
                    node.lineno,
                    "bare 'except:' swallows KeyboardInterrupt/SystemExit; "
                    "catch a concrete exception type",
                )
            elif isinstance(node, ast.Raise) and node.exc is not None:
                name = _raised_name(node.exc)
                if not name or name in ALLOWED_EXCEPTIONS or name in handler_names:
                    continue
                yield self.finding(
                    module,
                    node.lineno,
                    f"raises {name}; library code raises repro.exceptions "
                    "types only (or NotImplementedError for abstract "
                    "methods) — for AssertionError use a concrete type "
                    "such as SearchExhaustedError",
                )
