"""Filter purity rule: filters may not mutate their input graphs.

Every filter is a GED *lower bound*; a filter that edits a parameter
graph silently changes later filters' and the verifier's answers for
the same pair, which is exactly the class of bug the test suite can
only sample.  This rule statically bans calling mutating
:class:`repro.graph.graph.Graph` methods — or assigning/deleting
attributes — on any function parameter inside the filter modules.

The check is name-based (no type inference): any parameter on which a
known mutator is invoked is flagged, whatever its annotation.  Aliasing
a parameter first (``g2 = g; g2.add_vertex(...)``) escapes the rule;
code review owns that residue.
"""

from __future__ import annotations

from typing import Iterator, Set

import ast

from repro.analysis.engine import Finding, ModuleInfo
from repro.analysis.registry import Rule, register

__all__ = ["FilterPurityRule", "MUTATING_METHODS"]

#: The mutating methods of :class:`repro.graph.graph.Graph`.
MUTATING_METHODS = {
    "add_vertex",
    "remove_vertex",
    "set_vertex_label",
    "add_edge",
    "remove_edge",
    "set_edge_label",
}

#: Modules whose functions must be pure in their parameters.
TARGET_MODULES = {
    "repro.grams",
    "repro.core.count_filter",
    "repro.core.label_filter",
    "repro.core.prefix",
    "repro.core.mismatch",
    "repro.core.minedit",
    "repro.engine.count_filter",
    "repro.engine.prefix",
}
TARGET_PREFIXES = ("repro.grams.",)


def _parameter_names(node: ast.AST) -> Set[str]:
    names: Set[str] = set()
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        arguments = node.args
        for arg in (
            list(arguments.posonlyargs)
            + list(arguments.args)
            + list(arguments.kwonlyargs)
        ):
            names.add(arg.arg)
        if arguments.vararg is not None:
            names.add(arguments.vararg.arg)
        if arguments.kwarg is not None:
            names.add(arguments.kwarg.arg)
    names.discard("self")
    names.discard("cls")
    return names


@register
class FilterPurityRule(Rule):
    """Filter functions may not mutate their parameter graphs."""

    id = "filter-purity"
    description = (
        "filter modules may not call mutating Graph methods on parameters"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.module not in TARGET_MODULES and not module.module.startswith(
            TARGET_PREFIXES
        ):
            return
        yield from self._check_scope(module, module.tree, set())

    def _check_scope(
        self, module: ModuleInfo, scope: ast.AST, params: Set[str]
    ) -> Iterator[Finding]:
        for node in ast.iter_child_nodes(scope):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Nested functions see (and must not mutate) enclosing
                # parameters too.
                yield from self._check_scope(
                    module, node, params | _parameter_names(node)
                )
                continue
            yield from self._check_node(module, node, params)
            yield from self._check_scope(module, node, params)

    def _check_node(
        self, module: ModuleInfo, node: ast.AST, params: Set[str]
    ) -> Iterator[Finding]:
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in MUTATING_METHODS
                and isinstance(func.value, ast.Name)
                and func.value.id in params
            ):
                yield self.finding(
                    module,
                    node.lineno,
                    f"filter mutates parameter {func.value.id!r} via "
                    f".{func.attr}(); filters must be pure GED lower bounds",
                )
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
                if isinstance(node, ast.AugAssign)
                else node.targets
            )
            for target in targets:
                # Attribute writes only: subscript writes on dict/list
                # parameters are the idiom for explicit accumulator
                # out-parameters (e.g. ``vertex_counts`` in the q-gram
                # walk), while attribute writes on a parameter are how a
                # Graph would be corrupted.
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in params
                ):
                    yield self.finding(
                        module,
                        node.lineno,
                        f"filter writes to parameter {target.value.id!r}; "
                        "filters must be pure GED lower bounds",
                    )
