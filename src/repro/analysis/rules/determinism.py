"""Determinism rule: no process-global randomness in library code.

Everything in ``src/repro`` must be reproducible under a seed: joins
feed benchmark figures, and the synthetic dataset builders promise
"same seed, same collection".  The process-global RNG (``random.foo()``
at module scope or inside functions, ``from random import choice``,
or an unseeded ``random.Random()``) breaks that promise invisibly —
RNG state must instead be threaded explicitly as a ``random.Random``
(or integer seed) parameter, the way
:func:`repro.graph.operations.perturb` does.
"""

from __future__ import annotations

from typing import Iterator

import ast

from repro.analysis.engine import Finding, ModuleInfo
from repro.analysis.registry import Rule, register

__all__ = ["DeterminismRule"]


@register
class DeterminismRule(Rule):
    """Randomness must be parameter-threaded, never process-global."""

    id = "determinism"
    description = (
        "no global random.* calls or unseeded random.Random() in src/repro"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.module.startswith("repro"):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                bad = [a.name for a in node.names if a.name != "Random"]
                if bad:
                    yield self.finding(
                        module,
                        node.lineno,
                        "importing global-RNG functions from 'random' "
                        f"({', '.join(bad)}); thread a seeded random.Random "
                        "parameter instead",
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "random"
                    and func.attr != "Random"
                ):
                    yield self.finding(
                        module,
                        node.lineno,
                        f"random.{func.attr}() uses the process-global RNG; "
                        "thread a seeded random.Random parameter instead",
                    )
                elif (
                    (
                        isinstance(func, ast.Name)
                        and func.id == "Random"
                        or isinstance(func, ast.Attribute)
                        and func.attr == "Random"
                    )
                    and not node.args
                    and not node.keywords
                ):
                    yield self.finding(
                        module,
                        node.lineno,
                        "unseeded random.Random(); pass an explicit seed so "
                        "runs are reproducible",
                    )
