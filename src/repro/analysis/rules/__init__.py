"""The repo-specific rule set.

Importing this package registers every rule with
:mod:`repro.analysis.registry`; a new rule module only needs to be added
to the import list below.

(Plain ``import`` statements, not ``from . import name``: this module
must not hold a ``from __future__ import annotations`` binding, which
would shadow the :mod:`repro.analysis.rules.annotations` submodule in a
self-referential ``from``-import and silently skip its registration.)
"""

import repro.analysis.rules.annotations  # noqa: F401
import repro.analysis.rules.budget_threading  # noqa: F401
import repro.analysis.rules.determinism  # noqa: F401
import repro.analysis.rules.determinism_taint  # noqa: F401
import repro.analysis.rules.docstrings  # noqa: F401
import repro.analysis.rules.exception_discipline  # noqa: F401
import repro.analysis.rules.float_equality  # noqa: F401
import repro.analysis.rules.fork_safety  # noqa: F401
import repro.analysis.rules.hot_path  # noqa: F401
import repro.analysis.rules.layering  # noqa: F401
import repro.analysis.rules.purity  # noqa: F401
import repro.analysis.rules.unused_suppression  # noqa: F401

__all__ = [
    "annotations",
    "budget_threading",
    "determinism",
    "determinism_taint",
    "docstrings",
    "exception_discipline",
    "float_equality",
    "fork_safety",
    "hot_path",
    "layering",
    "purity",
    "unused_suppression",
]
