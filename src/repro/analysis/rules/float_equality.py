"""Float equality rule.

Distances and bounds in this codebase are exact integers *except* in
the weighted-GED and assignment machinery, where costs are floats; an
``==``/``!=`` against a float is then a latent bug (two mathematically
equal costs rarely compare equal after summation).  The rule flags
equality comparisons where either operand is a float literal or a
direct call to a known float-valued cost function — a deliberate
under-approximation (no type inference), paired with ``mypy`` for the
rest.
"""

from __future__ import annotations

from typing import Iterator

import ast

from repro.analysis.engine import Finding, ModuleInfo
from repro.analysis.registry import Rule, register

__all__ = ["FloatEqualityRule", "FLOAT_VALUED_FUNCTIONS"]

#: Functions known to return floats (weighted costs / timings).
FLOAT_VALUED_FUNCTIONS = {
    "weighted_ged",
    "weighted_induced_cost",
    "assignment_cost",
    "star_distance",
    "mapping_distance",
    "perf_counter",
}


def _is_float_operand(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if isinstance(node, ast.UnaryOp):
        return _is_float_operand(node.operand)
    if isinstance(node, ast.Call):
        func = node.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else ""
        )
        return name in FLOAT_VALUED_FUNCTIONS
    return False


@register
class FloatEqualityRule(Rule):
    """No ==/!= on float-valued distances, bounds, or costs."""

    id = "float-equality"
    description = "no float equality comparisons on distances/bounds/costs"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.module.startswith("repro"):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_operand(left) or _is_float_operand(right):
                    yield self.finding(
                        module,
                        node.lineno,
                        "==/!= on a float-valued distance/cost; compare "
                        "with an explicit tolerance (math.isclose) or "
                        "restructure to integers",
                    )
