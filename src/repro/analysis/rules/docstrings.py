"""Docstring presence rule.

Every module in ``src/repro`` needs a module docstring, and every
*exported* function or class — a name listed in ``__all__``, or any
public top-level def when no ``__all__`` exists — needs its own.  The
reproduction's value is that each function states which lemma/algorithm
of the paper it implements; an undocumented export erodes exactly that.
"""

from __future__ import annotations

from typing import Iterator, Optional, Set

import ast

from repro.analysis.engine import Finding, ModuleInfo
from repro.analysis.registry import Rule, register

__all__ = ["DocstringRule"]


def _declared_all(tree: ast.Module) -> Optional[Set[str]]:
    """The literal names in ``__all__``, or ``None`` if not declared."""
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                if isinstance(node.value, (ast.List, ast.Tuple)):
                    return {
                        element.value
                        for element in node.value.elts
                        if isinstance(element, ast.Constant)
                        and isinstance(element.value, str)
                    }
    return None


@register
class DocstringRule(Rule):
    """Modules and exported functions/classes must have docstrings."""

    id = "docstrings"
    description = "module and exported function/class docstrings required"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.module.startswith("repro"):
            return
        if module.tree.body and ast.get_docstring(module.tree) is None:
            yield self.finding(
                module, 1, f"module {module.module} has no docstring"
            )
        exported = _declared_all(module.tree)
        for node in module.tree.body:
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            name = node.name
            is_exported = (
                name in exported
                if exported is not None
                else not name.startswith("_")
            )
            if is_exported and ast.get_docstring(node) is None:
                kind = "class" if isinstance(node, ast.ClassDef) else "function"
                yield self.finding(
                    module,
                    node.lineno,
                    f"exported {kind} {name!r} has no docstring",
                )
