"""``unused-suppression``: waivers must keep earning their keep.

A ``# repro: ignore[...]`` comment that no longer suppresses any
finding is a rotten waiver: the code it excused has been fixed or
rewritten, and the comment now only grants a blanket pardon to whatever
lands on that line next.  This rule reports every suppression comment
that suppressed nothing in the current run, so stale waivers get
removed instead of accumulating.

This is a *meta*-scope rule: it cannot be computed from one module or
even from the whole program model, because "suppressed nothing" is only
known after **all** other rules (per-file and whole-program, selected
or not) have produced their raw findings and the engine has applied
suppressions.  The engine therefore synthesizes the findings itself —
this class exists so the rule is registered, listable, selectable and
ignorable like any other.

Two deliberate wrinkles:

* The verdict is selection-independent: running with ``--select
  layering`` does not make every other rule's waiver look unused.
* A finding of this rule on a suppression line is itself suppressed
  only by an explicit ``unused-suppression`` entry in the bracket —
  otherwise every blanket ``# repro: ignore`` would self-excuse.
"""

from __future__ import annotations

from repro.analysis.registry import Rule, register

__all__ = ["UnusedSuppressionRule"]


@register
class UnusedSuppressionRule(Rule):
    """Report ``# repro: ignore`` comments that suppress no finding."""

    id = "unused-suppression"
    description = (
        "# repro: ignore[...] comments that no longer suppress any "
        "finding must be removed"
    )
    scope = "meta"
