"""Layering rule: enforce the package dependency DAG.

The repo's layers, lowest first::

    exceptions
    runtime   graph
    strings   setcover
    matching  datasets  grams
    ged
    engine
    core
    reporting  baselines  applications
    cli

Each package may import only itself and packages reachable below it.
Notably ``ged`` imports ``grams`` (the shared q-gram/label primitives)
but never ``core`` — the historical ``core <-> ged`` cycle this rule
exists to keep dead.  The compiled verification backend
(``ged.compiled``) lives inside ``ged`` for exactly this reason: it is
called from the verification stage but needs only ``graph``/``grams``/
``runtime``, all reachable from the ``ged`` layer.  ``runtime`` (verification budgets, journals,
fault plans) sits directly above ``exceptions`` so both ``ged`` and
the engine may depend on it without creating a cycle.  ``engine`` (the
staged execution engine: plans, stages, executor) sits between ``ged``
and ``core``: it owns the pipeline machinery, while ``core`` is the
thin public API layer wrapping it.  ``repro/__init__.py`` (the facade) and
``repro/__main__.py`` are unrestricted; everything else may not import
the facade.  A package missing from the table is flagged so the DAG
must be extended deliberately.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set

import ast

from repro.analysis.engine import Finding, ModuleInfo
from repro.analysis.registry import Rule, register

__all__ = ["LayeringRule", "DIRECT_DEPS", "allowed_layers"]

#: Direct dependencies of each layer (transitive closure is applied).
#: Top-level modules (``exceptions``, ``reporting``, ``cli``) are layers
#: of their own.
DIRECT_DEPS: Dict[str, Set[str]] = {
    "exceptions": set(),
    "runtime": {"exceptions"},
    "graph": {"exceptions"},
    "strings": {"exceptions"},
    "setcover": {"exceptions"},
    "matching": {"graph"},
    "datasets": {"graph"},
    "grams": {"graph", "setcover"},
    "ged": {"grams", "matching", "strings", "runtime"},
    "engine": {"ged", "runtime"},
    "core": {"engine"},
    "reporting": {"core"},
    "baselines": {"core"},
    "applications": {"core"},
    "analysis": {"exceptions"},
    "cli": {"baselines", "applications", "datasets", "reporting"},
}

#: Layers allowed to import anything, including the ``repro`` facade.
_UNRESTRICTED = {"", "__main__"}


def allowed_layers(layer: str) -> Set[str]:
    """Transitive closure of ``DIRECT_DEPS`` for ``layer`` (plus itself)."""
    closure: Set[str] = {layer}
    frontier: List[str] = [layer]
    while frontier:
        current = frontier.pop()
        for dep in DIRECT_DEPS.get(current, set()):
            if dep not in closure:
                closure.add(dep)
                frontier.append(dep)
    return closure


def _imported_modules(module: ModuleInfo) -> Iterator[tuple]:
    """Yield ``(dotted_target, lineno)`` for every import in the module."""
    package_parts = module.module.split(".")
    if not module.is_package:
        package_parts = package_parts[:-1]
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.name, node.lineno
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                yield node.module or "", node.lineno
            else:
                base = package_parts[: len(package_parts) - (node.level - 1)]
                target = ".".join(base + ([node.module] if node.module else []))
                yield target, node.lineno


@register
class LayeringRule(Rule):
    """Imports must follow the package dependency DAG (no cycles)."""

    id = "layering"
    description = (
        "enforce the dependency DAG graph -> {strings,setcover} -> grams "
        "-> ged -> core -> {baselines,applications,cli}"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.module.startswith("repro"):
            return
        importer = module.layer
        if importer in _UNRESTRICTED:
            return
        if importer not in DIRECT_DEPS:
            yield self.finding(
                module,
                1,
                f"package {importer!r} is not in the layering DAG; add it to "
                "repro.analysis.rules.layering.DIRECT_DEPS deliberately",
            )
            return
        allowed = allowed_layers(importer)
        for target, lineno in _imported_modules(module):
            parts = target.split(".")
            if parts[0] != "repro":
                continue
            if len(parts) == 1:
                yield self.finding(
                    module,
                    lineno,
                    "library code must not import the 'repro' facade; "
                    "import the concrete module instead",
                )
                continue
            target_layer = parts[1]
            if target_layer in allowed:
                continue
            if target_layer not in DIRECT_DEPS:
                yield self.finding(
                    module,
                    lineno,
                    f"import of unknown layer 'repro.{target_layer}'; add it "
                    "to repro.analysis.rules.layering.DIRECT_DEPS",
                )
            else:
                yield self.finding(
                    module,
                    lineno,
                    f"layer '{importer}' may not import 'repro.{target_layer}' "
                    f"(allowed: {', '.join(sorted(allowed - {importer})) or 'none'})",
                )
