"""Finding reporters: text for humans/CI logs, JSON and SARIF for tools."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.engine import Finding

__all__ = ["render_text", "render_json", "render_sarif"]

#: Published schema location stamped into every SARIF report.
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(findings: Sequence[Finding]) -> str:
    """``path:line: [rule] message`` per finding, plus a summary line."""
    lines: List[str] = [finding.render() for finding in findings]
    if findings:
        by_rule: Dict[str, int] = {}
        for finding in findings:
            by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
        summary = ", ".join(
            f"{rule}: {count}" for rule, count in sorted(by_rule.items())
        )
        lines.append(f"{len(findings)} finding(s) ({summary})")
    else:
        lines.append("0 findings")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """A JSON array of ``{path, line, rule, message}`` objects."""
    return json.dumps(
        [
            {
                "path": finding.path,
                "line": finding.line,
                "rule": finding.rule,
                "message": finding.message,
            }
            for finding in findings
        ],
        indent=2,
    )


def render_sarif(
    findings: Sequence[Finding], rules: Optional[Dict[str, object]] = None
) -> str:
    """A SARIF 2.1.0 document for CI/code-review annotation.

    Every registered rule appears in the tool's rule table (so a clean
    run still documents what was checked); ``syntax-error`` — which is
    synthesized by the engine rather than registered — is appended with
    level ``error``, all other findings report as ``warning``.
    """
    if rules is None:
        from repro.analysis.registry import all_rules

        rules = all_rules()
    descriptions = {
        rule_id: rule.description  # type: ignore[attr-defined]
        for rule_id, rule in rules.items()
    }
    descriptions.setdefault("syntax-error", "file does not parse")
    rule_ids = sorted(set(descriptions) | {f.rule for f in findings})
    rule_index = {rule_id: index for index, rule_id in enumerate(rule_ids)}
    results = [
        {
            "ruleId": finding.rule,
            "ruleIndex": rule_index[finding.rule],
            "level": "error" if finding.rule == "syntax-error" else "warning",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": Path(finding.path).as_posix()
                        },
                        "region": {"startLine": max(1, finding.line)},
                    }
                }
            ],
        }
        for finding in findings
    ]
    document = {
        "$schema": SARIF_SCHEMA_URI,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analysis",
                        "rules": [
                            {
                                "id": rule_id,
                                "shortDescription": {
                                    "text": descriptions.get(rule_id, rule_id)
                                },
                            }
                            for rule_id in rule_ids
                        ],
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2)
