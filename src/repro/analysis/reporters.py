"""Finding reporters: plain text for humans/CI logs, JSON for tooling."""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.analysis.engine import Finding

__all__ = ["render_text", "render_json"]


def render_text(findings: Sequence[Finding]) -> str:
    """``path:line: [rule] message`` per finding, plus a summary line."""
    lines: List[str] = [finding.render() for finding in findings]
    if findings:
        by_rule: Dict[str, int] = {}
        for finding in findings:
            by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
        summary = ", ".join(
            f"{rule}: {count}" for rule, count in sorted(by_rule.items())
        )
        lines.append(f"{len(findings)} finding(s) ({summary})")
    else:
        lines.append("0 findings")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """A JSON array of ``{path, line, rule, message}`` objects."""
    return json.dumps(
        [
            {
                "path": finding.path,
                "line": finding.line,
                "rule": finding.rule,
                "message": finding.message,
            }
            for finding in findings
        ],
        indent=2,
    )
