"""AST-based invariant checker for the filter–verification pipeline.

GSimJoin's correctness rests on invariants the test suite can only
sample: every filter must stay a true GED lower bound, filters must
never mutate their inputs, library randomness must be seed-threaded,
and the package layering must stay acyclic.  This package enforces them
statically on every commit:

* :mod:`repro.analysis.engine` — the two-phase driver: file walking,
  AST parsing, per-line ``# repro: ignore[RULE]`` suppressions, and the
  ``unused-suppression`` synthesis;
* :mod:`repro.analysis.program` — the whole-program layer: per-module
  facts extraction, call graph + taint resolution
  (:class:`~repro.analysis.program.ProgramModel`), and the content-hash
  incremental cache;
* :mod:`repro.analysis.registry` — the rule base class and registry;
* :mod:`repro.analysis.rules` — the repo-specific rules: per-file
  (layering, filter purity, determinism, exception discipline,
  hot-path allocation, float equality, annotation coverage,
  docstrings) and whole-program (fork-safety, determinism-taint,
  budget-threading);
* :mod:`repro.analysis.reporters` — text, JSON, and SARIF output;
* ``python -m repro.analysis src/repro`` — the CI gate (exit 1 on any
  finding).

See ``docs/STATIC_ANALYSIS.md`` for each rule's rationale, the
dependency DAG the layering rule enforces, and the program-analysis
architecture.
"""

from __future__ import annotations

from repro.analysis.engine import Finding, ModuleInfo, run_analysis
from repro.analysis.program import AnalysisCache, CacheStats, ProgramModel
from repro.analysis.registry import Rule, all_rules, register
from repro.analysis.reporters import render_json, render_sarif, render_text

__all__ = [
    "AnalysisCache",
    "CacheStats",
    "Finding",
    "ModuleInfo",
    "ProgramModel",
    "Rule",
    "all_rules",
    "register",
    "render_json",
    "render_sarif",
    "render_text",
    "run_analysis",
]
