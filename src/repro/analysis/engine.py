"""Core of the repo-specific static-analysis pass.

The engine walks Python files, parses them into ASTs, hands each module
to every registered rule (:mod:`repro.analysis.registry`), and filters
the resulting findings through per-line suppression comments:

    ``# repro: ignore[RULE]``        suppress RULE on this line
    ``# repro: ignore[R1, R2]``      suppress several rules
    ``# repro: ignore``              suppress every rule on this line

Files that do not parse produce a single non-suppressible
``syntax-error`` finding, so a broken file can never silently pass the
gate.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence

from repro.exceptions import ParameterError

__all__ = [
    "Finding",
    "ModuleInfo",
    "iter_python_files",
    "load_module",
    "module_name",
    "run_analysis",
]

#: Matches a suppression comment; group 1 holds the bracketed rule list
#: (``None`` for the blanket ``# repro: ignore`` form).
_IGNORE_RE = re.compile(r"#\s*repro:\s*ignore(?:\[([A-Za-z0-9_\-, ]*)\])?")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        """The conventional ``path:line: [rule] message`` form."""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class ModuleInfo:
    """A parsed module plus everything rules need to inspect it."""

    path: Path
    module: str  #: dotted module name, e.g. ``repro.core.join``
    is_package: bool  #: whether the file is a package ``__init__.py``
    tree: ast.Module
    lines: List[str]  #: 1-indexed via ``lines[lineno - 1]``

    @property
    def layer(self) -> str:
        """The top-level component under ``repro``.

        ``repro.core.join`` -> ``core``; a top-level module such as
        ``repro.cli`` -> ``cli``; the root package itself -> ``""``.
        Modules outside the ``repro`` namespace return their first
        dotted component.
        """
        parts = self.module.split(".")
        if parts[0] != "repro":
            return parts[0]
        return parts[1] if len(parts) > 1 else ""


def module_name(path: Path) -> str:
    """Dotted module name of ``path``, found by walking up ``__init__.py``s."""
    path = path.resolve()
    parts = [] if path.name == "__init__.py" else [path.stem]
    directory = path.parent
    while (directory / "__init__.py").is_file():
        parts.insert(0, directory.name)
        parent = directory.parent
        if parent == directory:
            break
        directory = parent
    return ".".join(parts) if parts else path.stem


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` in sorted order."""
    for root in paths:
        if root.is_file():
            if root.suffix == ".py":
                yield root
            continue
        if not root.is_dir():
            raise ParameterError(f"no such file or directory: {root}")
        for candidate in sorted(root.rglob("*.py")):
            if "__pycache__" in candidate.parts:
                continue
            yield candidate


def load_module(path: Path) -> ModuleInfo:
    """Parse ``path``; raises :class:`SyntaxError` on unparseable source."""
    text = path.read_text(encoding="utf-8")
    tree = ast.parse(text, filename=str(path))
    return ModuleInfo(
        path=path,
        module=module_name(path),
        is_package=path.name == "__init__.py",
        tree=tree,
        lines=text.splitlines(),
    )


def _suppressed_rules(line: str) -> Optional[FrozenSet[str]]:
    """Rules suppressed by ``line``'s comment; ``None`` means "none"."""
    match = _IGNORE_RE.search(line)
    if match is None:
        return None
    listed = match.group(1)
    if listed is None:
        return frozenset()  # blanket: suppress everything
    return frozenset(rule.strip() for rule in listed.split(",") if rule.strip())


def _is_suppressed(finding: Finding, module: ModuleInfo) -> bool:
    if finding.rule == "syntax-error":
        return False
    if not 1 <= finding.line <= len(module.lines):
        return False
    rules = _suppressed_rules(module.lines[finding.line - 1])
    if rules is None:
        return False
    return not rules or finding.rule in rules


def run_analysis(
    paths: Sequence[Path],
    rules: Optional[Dict[str, object]] = None,
) -> List[Finding]:
    """Run ``rules`` (default: all registered) over ``paths``.

    Returns the surviving findings sorted by location.  Rules are
    instances exposing ``check(module) -> Iterator[Finding]`` (see
    :class:`repro.analysis.registry.Rule`).
    """
    if rules is None:
        from repro.analysis.registry import all_rules

        rules = all_rules()
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        try:
            module = load_module(path)
        except SyntaxError as error:
            findings.append(
                Finding(
                    path=str(path),
                    line=error.lineno or 1,
                    rule="syntax-error",
                    message=f"file does not parse: {error.msg}",
                )
            )
            continue
        for rule in rules.values():
            for finding in rule.check(module):  # type: ignore[attr-defined]
                if not _is_suppressed(finding, module):
                    findings.append(finding)
    findings.sort()
    return findings
