"""Core of the repo-specific static-analysis pass.

The engine runs in two phases plus a synthesis step:

1. **Per-file phase.**  Every Python file is parsed once; each
   ``scope == "module"`` rule checks the AST, and the whole-program
   *facts* (:func:`repro.analysis.program.facts.extract_facts`) are
   extracted.  With an :class:`~repro.analysis.program.AnalysisCache`,
   a file whose content hash is unchanged skips all of this — facts and
   raw findings replay from the cache without parsing.
2. **Whole-program phase.**  The facts of every parsed file build one
   :class:`~repro.analysis.program.ProgramModel`; each
   ``scope == "program"`` rule checks it.  Cached under a key over all
   modules' program-relevant facts, so e.g. a docstring edit re-parses
   one file but reuses the whole-program results.
3. **Report time.**  Raw findings are filtered through per-line
   suppression comments (recorded in the facts, so this works for
   cached files too), the rule selection is applied, and the
   ``unused-suppression`` meta rule is synthesized from suppression
   comments that caught nothing.

Suppression comments::

    # repro: ignore[RULE]        suppress RULE on this line
    # repro: ignore[R1, R2]      suppress several rules
    # repro: ignore              suppress every rule on this line

Raw findings are computed for **all** registered rules regardless of
``--select``/``--ignore`` so that the unused-suppression verdict (and
the cache contents) never depend on the selection; selection is a pure
report-time filter.  Files that do not parse produce a single
non-suppressible ``syntax-error`` finding, so a broken file can never
silently pass the gate.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence

from repro.exceptions import ParameterError

__all__ = [
    "Finding",
    "ModuleInfo",
    "iter_python_files",
    "load_module",
    "module_name",
    "run_analysis",
]

#: Matches a suppression comment; group 1 holds the bracketed rule list
#: (``None`` for the blanket ``# repro: ignore`` form).
_IGNORE_RE = re.compile(r"#\s*repro:\s*ignore(?:\[([A-Za-z0-9_\-, ]*)\])?")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        """The conventional ``path:line: [rule] message`` form."""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class ModuleInfo:
    """A parsed module plus everything rules need to inspect it."""

    path: Path
    module: str  #: dotted module name, e.g. ``repro.core.join``
    is_package: bool  #: whether the file is a package ``__init__.py``
    tree: ast.Module
    lines: List[str]  #: 1-indexed via ``lines[lineno - 1]``

    @property
    def layer(self) -> str:
        """The top-level component under ``repro``.

        ``repro.core.join`` -> ``core``; a top-level module such as
        ``repro.cli`` -> ``cli``; the root package itself -> ``""``.
        Modules outside the ``repro`` namespace return their first
        dotted component.
        """
        parts = self.module.split(".")
        if parts[0] != "repro":
            return parts[0]
        return parts[1] if len(parts) > 1 else ""


def module_name(path: Path) -> str:
    """Dotted module name of ``path``, found by walking up ``__init__.py``s."""
    path = path.resolve()
    parts = [] if path.name == "__init__.py" else [path.stem]
    directory = path.parent
    while (directory / "__init__.py").is_file():
        parts.insert(0, directory.name)
        parent = directory.parent
        if parent == directory:
            break
        directory = parent
    return ".".join(parts) if parts else path.stem


def iter_python_files(
    paths: Sequence[Path], exclude: Sequence[Path] = ()
) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` in sorted order.

    ``exclude`` lists files or directories to skip (matched on resolved
    paths, so ``--exclude tests/fixtures`` prunes the whole subtree).
    """
    excluded = [Path(entry).resolve() for entry in exclude]

    def is_excluded(candidate: Path) -> bool:
        if not excluded:
            return False
        resolved = candidate.resolve()
        return any(
            resolved == entry or entry in resolved.parents
            for entry in excluded
        )

    for root in paths:
        if root.is_file():
            if root.suffix == ".py" and not is_excluded(root):
                yield root
            continue
        if not root.is_dir():
            raise ParameterError(f"no such file or directory: {root}")
        for candidate in sorted(root.rglob("*.py")):
            if "__pycache__" in candidate.parts:
                continue
            if is_excluded(candidate):
                continue
            yield candidate


def load_module(path: Path) -> ModuleInfo:
    """Parse ``path``; raises :class:`SyntaxError` on unparseable source."""
    text = path.read_text(encoding="utf-8")
    tree = ast.parse(text, filename=str(path))
    return ModuleInfo(
        path=path,
        module=module_name(path),
        is_package=path.name == "__init__.py",
        tree=tree,
        lines=text.splitlines(),
    )


def _per_file_pass(path: Path, module_rules: Sequence[object]):
    """Parse one file: ``(facts | None, raw findings per rule id)``."""
    from repro.analysis.program.facts import extract_facts

    try:
        module = load_module(path)
    except SyntaxError as error:
        return None, {
            "syntax-error": [
                [error.lineno or 1, f"file does not parse: {error.msg}"]
            ]
        }
    findings = {
        rule.id: sorted(  # type: ignore[attr-defined]
            [finding.line, finding.message]
            for finding in rule.check(module)  # type: ignore[attr-defined]
        )
        for rule in module_rules
    }
    return extract_facts(module), findings


def run_analysis(
    paths: Sequence[Path],
    rules: Optional[Dict[str, object]] = None,
    cache: Optional[object] = None,
    exclude: Sequence[Path] = (),
) -> List[Finding]:
    """Run the two-phase analysis over ``paths``.

    ``rules`` (default: everything registered) is the report-time
    *selection*: all registered rules always run — so suppression-usage
    tracking and the cache are selection-independent — and only
    findings of selected rules (plus ``syntax-error``) are returned.
    ``cache`` is an optional
    :class:`repro.analysis.program.AnalysisCache`; its ``stats`` record
    what this run reused.  Returns surviving findings sorted by
    location.
    """
    from repro.analysis.program.cache import file_sha, program_key, rules_key
    from repro.analysis.program.callgraph import ProgramModel
    from repro.analysis.registry import all_rules

    registry = all_rules()
    selected_ids = set(registry if rules is None else rules)
    module_rules = [r for r in registry.values() if r.scope == "module"]
    program_rules = sorted(
        (r for r in registry.values() if r.scope == "program"),
        key=lambda rule: rule.id,
    )
    if cache is not None:
        cache.begin_run(rules_key(registry))

    # Phase 1: per-file rules + facts extraction (cache-aware).
    facts_by_path: Dict[str, Optional[dict]] = {}
    raw_findings: List[Finding] = []
    for path in iter_python_files(paths, exclude=exclude):
        path_str = str(path)
        entry = None
        sha = None
        if cache is not None:
            sha = file_sha(path)
            cache.stats.files_seen += 1
            entry = cache.lookup_file(path_str, sha)
        if entry is not None:
            cache.stats.reused_files += 1
            facts = entry["facts"]
            findings_map = entry["findings"]
        else:
            facts, findings_map = _per_file_pass(path, module_rules)
            if cache is not None:
                cache.stats.parsed_files += 1
                cache.store_file(path_str, sha, facts, findings_map)
        facts_by_path[path_str] = facts
        for rule_id, entries in findings_map.items():
            for line, message in entries:
                raw_findings.append(
                    Finding(
                        path=path_str,
                        line=int(line),
                        rule=rule_id,
                        message=message,
                    )
                )

    # Phase 2: whole-program rules over the combined facts (cache-aware).
    program_facts = [f for f in facts_by_path.values() if f is not None]
    if program_rules and program_facts:
        key = program_key(program_facts)
        cached = cache.lookup_program(key) if cache is not None else None
        if cached is not None:
            cache.stats.program_reused += 1
            rows = cached
        else:
            model = ProgramModel(program_facts)
            rows = [
                [finding.path, finding.line, finding.rule, finding.message]
                for rule in program_rules
                for finding in rule.check_program(model)
            ]
            if cache is not None:
                cache.stats.program_runs += 1
                cache.store_program(key, rows)
        for row_path, line, rule_id, message in rows:
            raw_findings.append(
                Finding(
                    path=row_path, line=int(line), rule=rule_id, message=message
                )
            )

    # Report time: suppressions, selection, unused-suppression synthesis.
    suppressions: Dict[str, Dict[int, Optional[FrozenSet[str]]]] = {}
    for path_str, facts in facts_by_path.items():
        if facts is None:
            continue
        suppressions[path_str] = {
            int(line): None if ids is None else frozenset(ids)
            for line, ids in facts["suppressions"].items()
        }

    used: set = set()
    final: List[Finding] = []

    def admit(finding: Finding) -> None:
        if finding.rule != "syntax-error":
            by_line = suppressions.get(finding.path, {})
            if finding.line in by_line:
                ids = by_line[finding.line]
                if ids is None or finding.rule in ids:
                    used.add((finding.path, finding.line))
                    return
        if finding.rule == "syntax-error" or finding.rule in selected_ids:
            final.append(finding)

    for finding in raw_findings:
        admit(finding)

    if "unused-suppression" in selected_ids:
        for path_str in sorted(suppressions):
            for line in sorted(suppressions[path_str]):
                if (path_str, line) in used:
                    continue
                ids = suppressions[path_str][line]
                # Only an *explicit* entry may waive this rule about its
                # own line — a blanket ignore must not self-excuse.
                if ids is not None and "unused-suppression" in ids:
                    continue
                label = (
                    "blanket # repro: ignore"
                    if ids is None
                    else "# repro: ignore[" + ", ".join(sorted(ids)) + "]"
                )
                final.append(
                    Finding(
                        path=path_str,
                        line=line,
                        rule="unused-suppression",
                        message=(
                            f"{label} suppresses no finding — remove the "
                            "stale waiver"
                        ),
                    )
                )

    final.sort()
    return final
