"""Rule base class and the global rule registry.

A rule is a small object with a stable ``id`` (used in reports and in
``# repro: ignore[...]`` suppressions), a one-line ``description``, and
a ``check`` method yielding :class:`~repro.analysis.engine.Finding`s for
one parsed module.  Decorating the class with :func:`register` makes the
CLI pick it up.
"""

from __future__ import annotations

from typing import Dict, Iterator, Type

from repro.analysis.engine import Finding, ModuleInfo
from repro.exceptions import ParameterError

__all__ = ["Rule", "register", "all_rules"]


class Rule:
    """Base class for repo-specific static-analysis rules.

    ``scope`` selects the phase the engine runs the rule in:

    * ``"module"`` — the classic per-file phase; ``check(module)`` is
      called once per parsed :class:`~repro.analysis.engine.ModuleInfo`.
    * ``"program"`` — the whole-program phase; ``check_program(model)``
      is called once with the :class:`repro.analysis.program.ProgramModel`
      built from every analysed file's facts.
    * ``"meta"`` — rules the engine itself synthesizes from the other
      phases' raw output (currently only ``unused-suppression``); the
      class exists so the rule is listable, selectable and ignorable,
      but neither ``check`` hook is invoked.
    """

    id: str = ""
    description: str = ""
    scope: str = "module"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        """Yield every violation of this rule in ``module``."""
        raise NotImplementedError

    def check_program(self, model: object) -> Iterator[Finding]:
        """Yield every violation over a whole :class:`ProgramModel`."""
        raise NotImplementedError

    def finding(self, module: ModuleInfo, line: int, message: str) -> Finding:
        """Convenience constructor stamped with this rule's id."""
        return Finding(path=str(module.path), line=line, rule=self.id, message=message)


_REGISTRY: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding one instance of ``cls`` to the registry."""
    rule = cls()
    if not rule.id:
        raise ParameterError(f"rule {cls.__name__} has an empty id")
    if rule.id in _REGISTRY:
        raise ParameterError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return cls


def all_rules() -> Dict[str, Rule]:
    """All registered rules by id (importing the rule modules on demand)."""
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    return dict(_REGISTRY)
