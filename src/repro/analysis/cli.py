"""Command line interface: ``python -m repro.analysis [paths]``.

Exits 0 when the tree is clean, 1 when any finding survives
suppressions — suitable as a CI gate (see ``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional

from repro.analysis.engine import run_analysis
from repro.analysis.registry import all_rules
from repro.analysis.reporters import render_json, render_text
from repro.exceptions import ParameterError

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Repo-specific static analysis for the GSimJoin codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyse (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Run the analysis; returns the process exit code."""
    parser = _build_parser()
    options = parser.parse_args(argv)

    rules = all_rules()
    if options.list_rules:
        width = max(len(rule_id) for rule_id in rules)
        for rule_id in sorted(rules):
            print(f"{rule_id:<{width}}  {rules[rule_id].description}")
        return 0

    if options.select is not None:
        selected = {rule.strip() for rule in options.select.split(",") if rule.strip()}
        unknown = selected - set(rules)
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        rules = {rule_id: rules[rule_id] for rule_id in selected}

    try:
        findings = run_analysis([Path(p) for p in options.paths], rules)
    except ParameterError as exc:
        parser.error(str(exc))
    renderer = render_json if options.format == "json" else render_text
    print(renderer(findings))
    return 1 if findings else 0
