"""Command line interface: ``python -m repro.analysis [paths]``.

Exits 0 when the tree is clean, 1 when any finding survives
suppressions, 2 on usage errors (including unknown rule ids passed to
``--select``/``--ignore``) — suitable as a CI gate (see
``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Set

from repro.analysis.engine import run_analysis
from repro.analysis.program.cache import AnalysisCache
from repro.analysis.registry import all_rules
from repro.analysis.reporters import render_json, render_sarif, render_text
from repro.exceptions import ParameterError

__all__ = ["main"]

_RENDERERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Repo-specific static analysis for the GSimJoin codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyse (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=tuple(_RENDERERS),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--exclude",
        action="append",
        default=[],
        metavar="PATH",
        help="file or directory to skip (repeatable)",
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="FILE",
        help="incremental-cache file (created if missing)",
    )
    parser.add_argument(
        "--cache-stats",
        action="store_true",
        help="print cache hit/parse counters to stderr (needs --cache)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def _parse_rule_ids(
    value: str, known: Set[str], parser: argparse.ArgumentParser, flag: str
) -> Set[str]:
    """The validated rule-id set named by a ``--select``/``--ignore`` value."""
    ids = {token.strip() for token in value.split(",") if token.strip()}
    unknown = ids - known
    if unknown:
        parser.error(
            f"unknown rule id(s) for {flag}: {', '.join(sorted(unknown))}; "
            f"valid ids: {', '.join(sorted(known))}"
        )
    return ids


def main(argv: Optional[List[str]] = None) -> int:
    """Run the analysis; returns the process exit code."""
    parser = _build_parser()
    options = parser.parse_args(argv)

    rules = all_rules()
    if options.list_rules:
        width = max(len(rule_id) for rule_id in rules)
        for rule_id in sorted(rules):
            print(f"{rule_id:<{width}}  {rules[rule_id].description}")
        return 0

    selected = set(rules)
    if options.select is not None:
        selected = _parse_rule_ids(
            options.select, set(rules), parser, "--select"
        )
    if options.ignore is not None:
        selected -= _parse_rule_ids(
            options.ignore, set(rules), parser, "--ignore"
        )
    rules = {rule_id: rules[rule_id] for rule_id in selected}

    cache = AnalysisCache(options.cache) if options.cache else None
    try:
        findings = run_analysis(
            [Path(p) for p in options.paths],
            rules,
            cache=cache,
            exclude=[Path(p) for p in options.exclude],
        )
    except ParameterError as exc:
        parser.error(str(exc))
    if cache is not None:
        cache.save()
        if options.cache_stats:
            stats = cache.stats.as_dict()
            print(
                "cache: "
                + ", ".join(f"{k}={v}" for k, v in sorted(stats.items())),
                file=sys.stderr,
            )

    report = _RENDERERS[options.format](findings)
    if options.output is not None:
        Path(options.output).write_text(report + "\n", encoding="utf-8")
        print(f"{len(findings)} finding(s) written to {options.output}")
    else:
        print(report)
    return 1 if findings else 0
