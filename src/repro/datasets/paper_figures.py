"""The running-example molecules from the paper's figures.

These tiny graphs anchor the test suite to numbers the paper states
explicitly (Examples 1–8): the Figure 1 pair has ``ged = 3``, four/five
1-grams, a count filtering bound of 2, a minimum-edit prefix of 2 for
``s`` at ``τ = 1``, and so on.
"""

from __future__ import annotations

from typing import Tuple

from repro.graph.graph import Graph

__all__ = ["figure1_graphs", "figure4_graphs"]


def figure1_graphs() -> Tuple[Graph, Graph]:
    """Cyclopropanone (``r``) and 2-aminocyclopropanol (``s``), Figure 1.

    ``r``: a C3 ring with a double-bonded oxygen on C1.
    ``s``: a C3 ring with a single-bonded oxygen on C1 and a
    single-bonded nitrogen on C2.  ``ged(r, s) = 3`` (Example 1):
    relabel the C=O bond to C-O, insert N, insert the C-N edge.
    """
    r = Graph("cyclopropanone")
    for v, label in enumerate(["C", "C", "C", "O"]):
        r.add_vertex(v, label)
    r.add_edge(0, 1, "-")
    r.add_edge(1, 2, "-")
    r.add_edge(0, 2, "-")
    r.add_edge(0, 3, "=")

    s = Graph("2-aminocyclopropanol")
    for v, label in enumerate(["C", "C", "C", "O", "N"]):
        s.add_vertex(v, label)
    s.add_edge(0, 1, "-")
    s.add_edge(1, 2, "-")
    s.add_edge(0, 2, "-")
    s.add_edge(0, 3, "-")
    s.add_edge(1, 4, "-")
    return r, s


def figure4_graphs() -> Tuple[Graph, Graph]:
    """Phenol (``r``) and toluidine (``s``), Figure 4.

    Both carry a benzene ring with alternating single/double bonds;
    phenol attaches an oxygen, toluidine a methyl carbon and an amino
    nitrogen.  The paper's figure is reconstructed up to the exact
    Kekulé drawing: the amine sits meta to the methyl so that — as in
    Example 6 — the mismatching 2-grams from ``s`` to ``r`` include
    ``C-C-C``, ``C-C-N`` and ``C=C-N`` and require exactly *two*
    minimum edit operations (one per substituent neighbourhood).
    """
    r = Graph("phenol")
    for v in range(6):
        r.add_vertex(v, "C")
    r.add_vertex(6, "O")
    bonds = ["-", "=", "-", "=", "-", "="]
    for v in range(6):
        r.add_edge(v, (v + 1) % 6, bonds[v])
    r.add_edge(0, 6, "-")

    s = Graph("toluidine")
    for v in range(6):
        s.add_vertex(v, "C")
    s.add_vertex(6, "C")  # methyl carbon
    s.add_vertex(7, "N")  # amino nitrogen
    for v in range(6):
        s.add_edge(v, (v + 1) % 6, bonds[v])
    s.add_edge(0, 6, "-")
    s.add_edge(2, 7, "-")
    return r, s
