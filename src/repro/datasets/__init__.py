"""Workload builders for the benchmarks and examples."""

from repro.datasets.paper_figures import figure1_graphs, figure4_graphs
from repro.datasets.synthetic import aids_like, protein_like

__all__ = ["aids_like", "protein_like", "figure1_graphs", "figure4_graphs"]
