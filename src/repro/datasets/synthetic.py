"""Synthetic stand-ins for the paper's evaluation datasets.

The original AIDS antivirus screen dump and the IAM PROTEIN database are
not redistributable here (DESIGN.md, "Substituted resources"), so these
builders generate seeded collections matching the Table I profile:

* :func:`aids_like` — sparse molecule graphs, avg ``|V| ≈ 25.6`` /
  ``|E| ≈ 27.5``, 44 vertex labels with heavy carbon skew, 3 edge labels;
* :func:`protein_like` — dense backbone+contact graphs, avg
  ``|V| ≈ 32.6`` / ``|E| ≈ 62.1``, 3 vertex labels, 2 edge labels.

Real graph-similarity workloads contain near-duplicates (that is the
point of the join), so a ``cluster_fraction`` of each collection is
generated as bounded perturbations of seed graphs: every perturbed copy
is within ``cluster_radius`` edit operations of its seed, guaranteeing a
small but non-empty, quadratically growing result — the paper's §VII-G
observation.  All randomness flows from a single ``seed``.
"""

from __future__ import annotations

import random
from typing import List

from repro.exceptions import ParameterError
from repro.graph.generators import (
    ATOM_LABELS,
    BOND_LABELS,
    PROTEIN_VERTEX_LABELS,
    random_molecule,
    random_protein,
)
from repro.graph.graph import Graph
from repro.graph.io import assign_ids
from repro.graph.operations import perturb

__all__ = ["aids_like", "protein_like"]


def _clustered(
    seeds: List[Graph],
    num_graphs: int,
    rng: random.Random,
    cluster_fraction: float,
    cluster_radius: int,
    vertex_labels,
    edge_labels,
) -> List[Graph]:
    """Mix seed graphs with bounded perturbations of them."""
    graphs: List[Graph] = list(seeds)
    num_clones = num_graphs - len(seeds)
    for _ in range(num_clones):
        base = rng.choice(seeds)
        edits = rng.randint(1, cluster_radius)
        graphs.append(perturb(base, edits, rng, vertex_labels, edge_labels))
    rng.shuffle(graphs)
    return assign_ids(graphs)


def aids_like(
    num_graphs: int = 800,
    seed: int = 42,
    avg_vertices: float = 25.6,
    cluster_fraction: float = 0.25,
    cluster_radius: int = 4,
) -> List[Graph]:
    """An AIDS-like molecule collection (see module docstring).

    ``cluster_fraction`` of the graphs are perturbed near-duplicates of
    seed molecules (within ``cluster_radius`` edits); the rest are
    independent seeds.

    Raises
    ------
    ParameterError
        On non-positive sizes or a fraction outside ``[0, 1)``.
    """
    if num_graphs < 1:
        raise ParameterError(f"num_graphs must be >= 1, got {num_graphs}")
    if not 0.0 <= cluster_fraction < 1.0:
        raise ParameterError(f"cluster_fraction must be in [0, 1), got {cluster_fraction}")
    rng = random.Random(seed)
    num_seeds = max(1, int(round(num_graphs * (1.0 - cluster_fraction))))
    seeds = []
    for _ in range(num_seeds):
        size = max(4, int(rng.gauss(avg_vertices, avg_vertices * 0.35)))
        seeds.append(random_molecule(rng, size))
    return _clustered(
        seeds, num_graphs, rng, cluster_fraction, cluster_radius,
        ATOM_LABELS, BOND_LABELS,
    )


def protein_like(
    num_graphs: int = 150,
    seed: int = 7,
    avg_vertices: float = 32.6,
    avg_degree: float = 3.8,
    cluster_fraction: float = 0.3,
    cluster_radius: int = 4,
) -> List[Graph]:
    """A PROTEIN-like dense collection (see module docstring)."""
    if num_graphs < 1:
        raise ParameterError(f"num_graphs must be >= 1, got {num_graphs}")
    if not 0.0 <= cluster_fraction < 1.0:
        raise ParameterError(f"cluster_fraction must be in [0, 1), got {cluster_fraction}")
    rng = random.Random(seed)
    num_seeds = max(1, int(round(num_graphs * (1.0 - cluster_fraction))))
    seeds = []
    for _ in range(num_seeds):
        size = max(5, int(rng.gauss(avg_vertices, avg_vertices * 0.25)))
        seeds.append(random_protein(rng, size, avg_degree=avg_degree))
    return _clustered(
        seeds, num_graphs, rng, cluster_fraction, cluster_radius,
        PROTEIN_VERTEX_LABELS, ("seq", "space"),
    )
