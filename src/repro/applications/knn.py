"""k-nearest-neighbour classification by graph edit distance.

The classic GED application (Bunke et al.): a structural pattern is
classified by the majority label among its ``k`` nearest training
graphs.  Neighbour search runs over a :class:`~repro.core.search.
GSimIndex`, so the filter stack — not an all-pairs GED scan — does the
heavy lifting.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, List, Optional, Sequence, Tuple

from repro.core.join import GSimJoinOptions
from repro.core.search import GSimIndex
from repro.engine.result import JoinStatistics
from repro.exceptions import ParameterError
from repro.graph.graph import Graph

__all__ = ["GedKnnClassifier"]


class GedKnnClassifier:
    """Majority-vote k-NN over graph edit distance.

    Parameters
    ----------
    k:
        Number of neighbours consulted.
    tau_max:
        Neighbour search radius; graphs further than this from every
        training example are classified as ``default_label``.
    options:
        Filtering configuration for the underlying index.
    default_label:
        Returned when no training neighbour lies within ``tau_max``.

    Examples
    --------
    >>> clf = GedKnnClassifier(k=3, tau_max=4)
    >>> clf.fit(train_graphs, train_labels)   # doctest: +SKIP
    >>> clf.predict(query_graph)              # doctest: +SKIP
    """

    def __init__(
        self,
        k: int = 3,
        tau_max: int = 4,
        options: Optional[GSimJoinOptions] = None,
        default_label: Hashable = None,
    ) -> None:
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        self.k = k
        self.default_label = default_label
        self._index = GSimIndex(tau_max=tau_max, options=options)
        self._labels: dict = {}
        #: Accrued over every probe; the index's verdict memo makes the
        #: growing-radius top-k search and repeated probes of one query
        #: graph reuse earlier verdicts, visible here as ``memo_hits``
        #: rising while ``ged_calls`` stalls.
        self.stats = JoinStatistics()

    def fit(
        self, graphs: Sequence[Graph], labels: Sequence[Hashable]
    ) -> "GedKnnClassifier":
        """Index the training graphs with their class labels.

        May be called repeatedly to add more training data.

        Raises
        ------
        ParameterError
            If the lengths differ or graphs lack distinct ids.
        """
        graphs = list(graphs)
        labels = list(labels)
        if len(graphs) != len(labels):
            raise ParameterError(
                f"{len(graphs)} graphs vs {len(labels)} labels"
            )
        for g, label in zip(graphs, labels):
            self._index.add(g)
            self._labels[g.graph_id] = label
        return self

    def neighbors(self, g: Graph) -> List[Tuple[Hashable, int]]:
        """The query's ``k`` nearest training graphs as (id, distance).

        Probes reuse the index's verdict memo: pairs decided during an
        earlier radius (or an earlier probe of the same query graph)
        are answered without re-running the search backend.
        """
        return self._index.query_top_k(g, self.k, stats=self.stats)

    def predict(self, g: Graph) -> Hashable:
        """Majority label among the nearest neighbours.

        Ties break toward the closer neighbour set (the vote counts are
        compared first, then the minimum distance per label).
        """
        found = self.neighbors(g)
        if not found:
            return self.default_label
        votes = Counter(self._labels[gid] for gid, _ in found)
        best_distance = {}
        for gid, distance in found:
            label = self._labels[gid]
            best_distance.setdefault(label, distance)
        return min(
            votes,
            key=lambda label: (-votes[label], best_distance[label], repr(label)),
        )

    def predict_many(self, graphs: Sequence[Graph]) -> List[Hashable]:
        """Vectorized :meth:`predict`."""
        return [self.predict(g) for g in graphs]

    def __len__(self) -> int:
        return len(self._index)
