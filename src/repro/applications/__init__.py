"""GED-powered applications: clustering and classification.

The paper motivates graph edit distance with "classification and
clustering tasks in various application domains" (Section I).  This
package provides the two standard constructions on top of the join and
selection machinery:

* :func:`threshold_clusters` — single-link clustering at an edit
  distance threshold (connected components of the similarity-join
  graph), with medoid extraction;
* :class:`GedKnnClassifier` — k-nearest-neighbour classification over
  a :class:`~repro.core.search.GSimIndex`.
"""

from repro.applications.clustering import cluster_medoid, threshold_clusters
from repro.applications.knn import GedKnnClassifier

__all__ = ["threshold_clusters", "cluster_medoid", "GedKnnClassifier"]
