"""Threshold clustering over the similarity join.

``threshold_clusters`` runs the GSimJoin and returns the connected
components of the resulting similarity graph — single-link clustering
at radius ``τ`` (the standard construction for near-duplicate grouping:
two graphs land in one cluster iff a chain of ``≤ τ``-neighbours links
them).  ``cluster_medoid`` picks a cluster's most central member by
total edit distance, useful as the canonical representative.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence

from repro.core.join import GSimJoinOptions, gsim_join
from repro.exceptions import ParameterError
from repro.ged.astar import graph_edit_distance
from repro.graph.graph import Graph

__all__ = ["threshold_clusters", "cluster_medoid"]


def threshold_clusters(
    graphs: Sequence[Graph],
    tau: int,
    options: Optional[GSimJoinOptions] = None,
    min_size: int = 1,
) -> List[List[Graph]]:
    """Single-link clusters at edit distance threshold ``tau``.

    Returns clusters as lists of graphs, largest first (ties by the
    smallest member id's repr, for determinism); singletons are included
    unless ``min_size`` filters them out.

    Raises
    ------
    ParameterError
        Propagated from the join (ids, tau, mixed directedness), or if
        ``min_size < 1``.
    """
    if min_size < 1:
        raise ParameterError(f"min_size must be >= 1, got {min_size}")
    result = gsim_join(graphs, tau, options=options)

    parent: Dict[Hashable, Hashable] = {g.graph_id: g.graph_id for g in graphs}

    def find(x: Hashable) -> Hashable:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for a, b in result.pairs:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    groups: Dict[Hashable, List[Graph]] = {}
    for g in graphs:
        groups.setdefault(find(g.graph_id), []).append(g)
    clusters = [
        members for members in groups.values() if len(members) >= min_size
    ]
    clusters.sort(key=lambda ms: (-len(ms), repr(min(repr(g.graph_id) for g in ms))))
    return clusters


def cluster_medoid(cluster: Sequence[Graph], tau_cap: Optional[int] = None) -> Graph:
    """The cluster member minimizing the total edit distance to the rest.

    ``tau_cap`` bounds each pairwise computation (distances beyond the
    cap saturate at ``tau_cap + 1``) — for clusters produced by
    :func:`threshold_clusters` a cap of ``τ·diameter`` is safe and much
    faster than exact all-pairs GED.

    Raises
    ------
    ParameterError
        If the cluster is empty.
    """
    members = list(cluster)
    if not members:
        raise ParameterError("cannot take the medoid of an empty cluster")
    if len(members) == 1:
        return members[0]
    best_graph = members[0]
    best_total = None
    for candidate in members:
        total = 0
        for other in members:
            if other is candidate:
                continue
            total += graph_edit_distance(candidate, other, threshold=tau_cap)
            if best_total is not None and total >= best_total:
                break
        if best_total is None or total < best_total:
            best_total = total
            best_graph = candidate
    return best_graph
