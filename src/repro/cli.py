"""Command-line interface for GSimJoin.

Four subcommands::

    python -m repro join   <collection.txt> --tau 2 [--q 4] [--variant full]
    python -m repro ged    <collection.txt> <id1> <id2> [--tau N]
    python -m repro stats  <collection.txt>
    python -m repro generate --kind aids --n 100 --seed 0 -o out.txt

Collections are in the library's line-oriented text format (see
:mod:`repro.graph.io`).  ``join`` prints the result pairs and the filter
statistics; ``--algorithm kat|appfull|naive`` switches to a baseline.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import List, Optional

from repro.baselines import appfull_join, kat_join, naive_join
from repro.core.join import GSimJoinOptions, gsim_join
from repro.datasets import aids_like, protein_like
from repro.exceptions import ReproError
from repro.ged import graph_edit_distance
from repro.ged.portfolio import registered_names
from repro.graph import assign_ids, collection_statistics, load_graphs, save_graphs
from repro.runtime import VerificationBudget

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro`` argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GSimJoin: graph similarity joins with edit distance constraints",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    join = sub.add_parser("join", help="self-join a collection")
    join.add_argument("collection", help="path to a graph collection file")
    join.add_argument("--tau", type=int, required=True, help="edit distance threshold")
    join.add_argument("--q", type=int, default=4, help="q-gram length (default 4)")
    join.add_argument(
        "--variant",
        choices=["basic", "minedit", "full"],
        default="full",
        help="GSimJoin filtering level (default full)",
    )
    join.add_argument(
        "--algorithm",
        choices=["gsimjoin", "kat", "appfull", "naive"],
        default="gsimjoin",
        help="join algorithm (default gsimjoin)",
    )
    join.add_argument(
        "--workers",
        type=int,
        default=1,
        help="parallel verification processes (gsimjoin only; default 1)",
    )
    join.add_argument(
        "--verifier",
        choices=registered_names(),
        default=None,
        help="GED backend from the portfolio registry: 'compiled' "
        "(default), 'astar'/'object', 'dfs', or 'auto' (per-pair "
        "hardness dispatch; gsimjoin only)",
    )
    join.add_argument(
        "--budget-expansions",
        type=int,
        default=None,
        metavar="N",
        help="cap search expansions per pair; undecided pairs get GED "
        "bounds",
    )
    join.add_argument(
        "--budget-seconds",
        type=float,
        default=None,
        metavar="S",
        help="cap search wall-clock seconds per pair",
    )
    join.add_argument(
        "--checkpoint",
        default=None,
        metavar="FILE",
        help="journal verifications to FILE; re-running resumes from it",
    )
    join.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="chunk re-dispatches before in-process fallback (workers > 1)",
    )
    join.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="out-of-core sharded join over N size bands (streams the "
        "collection; requires --spill-dir)",
    )
    join.add_argument(
        "--spill-dir",
        default=None,
        metavar="DIR",
        help="working directory for the sharded join: shard files, "
        "per-pair journals, spill queues and the recovery manifest",
    )
    join.add_argument(
        "--memory-budget-mb",
        type=float,
        default=None,
        metavar="MB",
        help="cap resident graph data; over-budget shard pairs degrade "
        "to smaller sub-shards (sharded join only)",
    )
    join.add_argument(
        "--resume",
        action="store_true",
        help="resume the sharded-join run recorded in --spill-dir after "
        "a crash or kill",
    )
    join.add_argument(
        "--auto-plan",
        action="store_true",
        help="let the adaptive cost-based planner pick and re-tune the "
        "filter cascade order (gsimjoin only; same result pairs, see "
        "docs/PERFORMANCE.md)",
    )
    join.add_argument(
        "--explain-plan",
        nargs="?",
        const="table",
        choices=["table", "json"],
        default=None,
        help="print the staged execution plan and the per-stage "
        "survivor/timing table to stderr (gsimjoin only); "
        "'json' emits a machine-readable report with estimated vs "
        "observed selectivity/cost and re-plan events instead",
    )
    join.add_argument("--quiet", action="store_true", help="print only the pairs")
    join.add_argument(
        "--json",
        dest="json_path",
        metavar="FILE",
        default=None,
        help="also write pairs and statistics to a JSON file",
    )

    ged = sub.add_parser("ged", help="edit distance between two graphs of a collection")
    ged.add_argument("collection")
    ged.add_argument("id1", help="graph id (as in the file) or 0-based position")
    ged.add_argument("id2")
    ged.add_argument("--tau", type=int, default=None, help="optional threshold")

    stats = sub.add_parser("stats", help="Table-I style collection statistics")
    stats.add_argument("collection")

    gen = sub.add_parser("generate", help="generate a synthetic collection")
    gen.add_argument("--kind", choices=["aids", "protein"], default="aids")
    gen.add_argument("--n", type=int, default=100, help="number of graphs")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("-o", "--output", required=True, help="output file")
    return parser


def _load(path: str):
    if str(path).lower().endswith(".gxl"):
        from repro.graph.gxl import load_gxl

        graphs = assign_ids(load_gxl(path))
    else:
        graphs = assign_ids(load_graphs(path))
    if not graphs:
        raise ReproError(f"no graphs found in {path}")
    return graphs


def _find_graph(graphs, token: str):
    for g in graphs:
        if str(g.graph_id) == token:
            return g
    if token.isdigit() and int(token) < len(graphs):
        return graphs[int(token)]
    raise ReproError(f"no graph with id {token!r}")


def _print_result(result, args) -> int:
    for rid, sid in result.pairs:
        print(f"{rid}\t{sid}")
    if args.json_path:
        from repro.reporting import save_result_json

        save_result_json(result, args.json_path)
    explain = getattr(args, "explain_plan", None)
    if explain == "json":
        print(
            json.dumps(result.stats.plan_report(), indent=2),
            file=sys.stderr,
        )
    elif explain:
        print(result.stats.stage_table(), file=sys.stderr)
    if not args.quiet:
        print(result.stats.summary(), file=sys.stderr)
    return 0


def _cmd_join_sharded(args, budget) -> int:
    if args.spill_dir is None:
        raise ReproError("--shards requires --spill-dir")
    if args.algorithm != "gsimjoin":
        raise ReproError("--shards requires --algorithm gsimjoin")
    if args.checkpoint is not None:
        raise ReproError(
            "--shards journals per shard pair under --spill-dir; "
            "--checkpoint does not apply"
        )
    from repro.core.sharded import gsim_join_sharded

    options = getattr(GSimJoinOptions, args.variant)(q=args.q)
    if args.verifier is not None:
        options = dataclasses.replace(options, verifier=args.verifier)
    if args.auto_plan:
        options = dataclasses.replace(options, plan="auto")
    result = gsim_join_sharded(
        args.collection,
        args.tau,
        options=options,
        spill_dir=args.spill_dir,
        shards=args.shards,
        memory_budget_mb=args.memory_budget_mb,
        resume=args.resume,
        budget=budget,
        workers=args.workers,
        max_retries=args.max_retries,
    )
    return _print_result(result, args)


def _cmd_join(args) -> int:
    budget = None
    if args.budget_expansions is not None or args.budget_seconds is not None:
        budget = VerificationBudget(args.budget_expansions, args.budget_seconds)
    if args.algorithm != "gsimjoin" and (
        budget is not None
        or args.checkpoint is not None
        or args.explain_plan
        or args.auto_plan
        or args.verifier is not None
    ):
        raise ReproError(
            "--budget-*/--checkpoint/--explain-plan/--auto-plan/--verifier "
            "require --algorithm gsimjoin"
        )
    if args.shards is not None:
        # Out-of-core path: the collection file is streamed, not loaded.
        return _cmd_join_sharded(args, budget)
    if args.resume or args.spill_dir or args.memory_budget_mb is not None:
        raise ReproError(
            "--spill-dir/--memory-budget-mb/--resume require --shards"
        )
    graphs = _load(args.collection)
    if args.algorithm == "gsimjoin":
        options = getattr(GSimJoinOptions, args.variant)(q=args.q)
        if args.verifier is not None:
            options = dataclasses.replace(options, verifier=args.verifier)
        if args.auto_plan:
            options = dataclasses.replace(options, plan="auto")
        if args.explain_plan == "table":
            from repro.engine.plan import build_plan

            print(build_plan(options).describe(), file=sys.stderr)
        if args.workers > 1:
            from repro.core.parallel import gsim_join_parallel

            result = gsim_join_parallel(
                graphs,
                args.tau,
                options=options,
                workers=args.workers,
                budget=budget,
                checkpoint=args.checkpoint,
                max_retries=args.max_retries,
            )
        else:
            result = gsim_join(
                graphs,
                args.tau,
                options=options,
                budget=budget,
                checkpoint=args.checkpoint,
            )
    elif args.algorithm == "kat":
        result = kat_join(graphs, args.tau, q=1)
    elif args.algorithm == "appfull":
        result = appfull_join(graphs, args.tau)
    else:
        result = naive_join(graphs, args.tau)
    return _print_result(result, args)


def _cmd_ged(args) -> int:
    graphs = _load(args.collection)
    r = _find_graph(graphs, args.id1)
    s = _find_graph(graphs, args.id2)
    distance = graph_edit_distance(r, s, threshold=args.tau)
    if args.tau is not None and distance > args.tau:
        print(f"> {args.tau}")
    else:
        print(distance)
    return 0


def _cmd_stats(args) -> int:
    graphs = _load(args.collection)
    print(collection_statistics(graphs).as_table_row(args.collection))
    return 0


def _cmd_generate(args) -> int:
    builder = aids_like if args.kind == "aids" else protein_like
    graphs = builder(num_graphs=args.n, seed=args.seed)
    save_graphs(graphs, args.output)
    print(f"wrote {len(graphs)} graphs to {args.output}", file=sys.stderr)
    return 0


_COMMANDS = {
    "join": _cmd_join,
    "ged": _cmd_ged,
    "stats": _cmd_stats,
    "generate": _cmd_generate,
}


#: Exit code for an interrupted run (mirrors the shell's 128 + SIGINT).
EXIT_INTERRUPTED = 130


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code.

    ``0`` on success, ``1`` on a :class:`~repro.exceptions.ReproError`
    or OS error, and :data:`EXIT_INTERRUPTED` (130) on Ctrl-C.  An
    interrupted ``join --checkpoint`` run leaves a valid journal behind
    (every record is flushed as it is written), so re-running the same
    command resumes where it stopped.
    """
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        checkpoint = getattr(args, "checkpoint", None)
        if checkpoint:
            print(
                f"interrupted; resume with the same command "
                f"(journal: {checkpoint})",
                file=sys.stderr,
            )
        else:
            print("interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
