"""The AppFull baseline (Zeng et al., VLDB 2009) — star-structure bounds.

AppFull works pair-at-a-time with no index: for each pair it computes
the star mapping distance ``μ`` via bipartite matching, prunes when the
derived lower bound exceeds ``τ``, accepts immediately when the
matching-induced mapping's edit cost (an upper bound) is within ``τ``,
and otherwise leaves the pair as a candidate (*Cand-2*).  The paper ran
the authors' binary, which only reports candidates and filtering time;
our reimplementation can additionally verify the candidates with A*,
completing the join.

Two reproduction notes: edge labels are ignored in the star signatures
(as in the released binary — the paper strips edge labels for this
comparison), and the nested loop gives the characteristic
near-constant-in-``τ`` filtering time of Figures 7(m)–(n).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.result import JoinResult, JoinStatistics
from repro.exceptions import ParameterError
from repro.ged.astar import graph_edit_distance_detailed
from repro.ged.cost import induced_edit_cost
from repro.graph.graph import Graph
from repro.matching.stars import mapping_distance, star_ged_lower_bound

__all__ = ["appfull_bounds", "appfull_join", "AppFullPairBounds"]


@dataclass(frozen=True)
class AppFullPairBounds:
    """Star-based GED bounds for one pair."""

    mapping_distance: float  #: μ(r, s)
    lower_bound: int  #: ⌈μ / max(4, γ+1)⌉  <=  ged
    upper_bound: int  #: induced cost of the optimal star assignment >= ged


def appfull_bounds(r: Graph, s: Graph) -> AppFullPairBounds:
    """Compute AppFull's lower and upper GED bounds for ``(r, s)``."""
    mu, mapping = mapping_distance(r, s)
    lower = star_ged_lower_bound(r, s, mu=mu)
    upper = induced_edit_cost(r, s, mapping)
    return AppFullPairBounds(mu, lower, upper)


def appfull_join(
    graphs: Sequence[Graph],
    tau: int,
    verify: bool = True,
) -> JoinResult:
    """AppFull self-join in nested-loop mode.

    With ``verify=True`` the Cand-2 pairs (lower bound ≤ τ < upper
    bound) are resolved with the A* verifier so the result is complete;
    with ``verify=False`` only the bound tests run (the behaviour of the
    released binary the paper compared against) and Cand-2 pairs are
    *excluded* from the results — ``stats.cand2`` then tells how much is
    left unresolved.

    Phase accounting: the bound computations are ``candidate_time`` (the
    paper's "filtering time"); A* verification is ``verify_time``.
    """
    if tau < 0:
        raise ParameterError(f"tau must be >= 0, got {tau}")
    ids = [g.graph_id for g in graphs]
    if any(gid is None for gid in ids) or len(set(ids)) != len(ids):
        raise ParameterError("graphs need distinct ids; use assign_ids() first")
    if any(g.is_directed for g in graphs):
        raise ParameterError("the AppFull baseline supports undirected graphs only")

    stats = JoinStatistics(num_graphs=len(graphs), tau=tau, q=0)
    result = JoinResult(stats=stats)
    pending: List[Tuple[int, int]] = []

    started = time.perf_counter()
    n = len(graphs)
    for i in range(n):
        for j in range(i + 1, n):
            stats.cand1 += 1
            bounds = appfull_bounds(graphs[i], graphs[j])
            if bounds.lower_bound > tau:
                stats.pruned_by_count += 1
                continue
            if bounds.upper_bound <= tau:
                result.pairs.append((graphs[i].graph_id, graphs[j].graph_id))
                continue
            stats.cand2 += 1
            pending.append((i, j))
    stats.candidate_time += time.perf_counter() - started

    if verify:
        started = time.perf_counter()
        for i, j in pending:
            ged_started = time.perf_counter()
            search = graph_edit_distance_detailed(graphs[i], graphs[j], threshold=tau)
            stats.ged_time += time.perf_counter() - ged_started
            stats.ged_calls += 1
            stats.ged_expansions += search.expanded
            if search.distance <= tau:
                result.pairs.append((graphs[i].graph_id, graphs[j].graph_id))
        stats.verify_time += time.perf_counter() - started

    stats.results = len(result.pairs)
    return result
