"""Competitor algorithms from the paper's evaluation: κ-AT, AppFull, naive."""

from repro.baselines.appfull import AppFullPairBounds, appfull_bounds, appfull_join
from repro.baselines.kat import (
    KatProfile,
    d_tree,
    kat_join,
    tree_gram_key,
    tree_gram_multiset,
)
from repro.baselines.naive import naive_join

__all__ = [
    "kat_join",
    "tree_gram_key",
    "tree_gram_multiset",
    "d_tree",
    "KatProfile",
    "appfull_join",
    "appfull_bounds",
    "AppFullPairBounds",
    "naive_join",
]
