"""Naive all-pairs join — the ground truth.

Verifies every pair (optionally after the provably sound size filter)
with the threshold-bounded A*.  Quadratic in the collection and
exponential per pair: used for the "Real Result" series in the figures
and as the oracle the test suite compares every filtered join against.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.core.count_filter import passes_size_filter
from repro.core.result import JoinResult, JoinStatistics
from repro.exceptions import ParameterError
from repro.ged.astar import graph_edit_distance_detailed
from repro.graph.graph import Graph

__all__ = ["naive_join"]


def naive_join(
    graphs: Sequence[Graph],
    tau: int,
    use_size_filter: bool = True,
) -> JoinResult:
    """All-pairs threshold join.

    ``use_size_filter=False`` disables even the size filter, making the
    run a pure oracle (slower; meant for small test collections).
    """
    if tau < 0:
        raise ParameterError(f"tau must be >= 0, got {tau}")
    ids = [g.graph_id for g in graphs]
    if any(gid is None for gid in ids) or len(set(ids)) != len(ids):
        raise ParameterError("graphs need distinct ids; use assign_ids() first")

    stats = JoinStatistics(num_graphs=len(graphs), tau=tau, q=0)
    result = JoinResult(stats=stats)
    started = time.perf_counter()
    n = len(graphs)
    for i in range(n):
        for j in range(i + 1, n):
            if use_size_filter and not passes_size_filter(graphs[i], graphs[j], tau):
                stats.pruned_by_size += 1
                continue
            stats.cand1 += 1
            stats.cand2 += 1
            ged_started = time.perf_counter()
            search = graph_edit_distance_detailed(graphs[i], graphs[j], threshold=tau)
            stats.ged_time += time.perf_counter() - ged_started
            stats.ged_calls += 1
            stats.ged_expansions += search.expanded
            if search.distance <= tau:
                result.pairs.append((graphs[i].graph_id, graphs[j].graph_id))
    stats.verify_time += time.perf_counter() - started
    stats.results = len(result.pairs)
    return result
