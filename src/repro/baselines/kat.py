"""The κ-AT baseline (Wang et al., TKDE 2010) — tree-based q-grams.

κ-AT defines one q-gram per vertex: the depth-``q`` tree unfolding
rooted there (for ``q = 1``, the star of the vertex).  An edit operation
affects at most

    ``D_tree = 1 + γ·Σ_{i=0}^{q−1} (γ−1)^i``

q-grams (``γ`` = maximum degree), giving the count filtering bound
``LB_tree = max(|V(r)| − τ·D_tree(r), |V(s)| − τ·D_tree(s))``.  The
paper's key criticism — which the benchmarks reproduce — is that
``D_tree`` explodes with density and ``q``, so ``LB_tree`` *underflows*
(≤ 0) and κ-AT degenerates to an all-pair comparison unless ``q`` is
kept very small.

The join below follows the experimental setup of Section VII-A: size
filtering, prefix filtering (document-frequency ordering) and global
label filtering, then A* GED verification.  Tree q-grams are encoded as
depth-bounded unfoldings with parent-blocking, which is isomorphism
invariant (two isomorphic graphs produce identical key multisets), so
count filtering stays sound for every ``q``.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.count_filter import passes_size_filter
from repro.core.inverted_index import InvertedIndex
from repro.grams.labels import global_label_lower_bound
from repro.core.result import JoinResult, JoinStatistics
from repro.exceptions import ParameterError
from repro.ged.astar import graph_edit_distance_detailed
from repro.graph.graph import Graph, Vertex

__all__ = ["tree_gram_key", "tree_gram_multiset", "d_tree", "kat_join", "KatProfile"]


def tree_gram_key(g: Graph, root: Vertex, q: int):
    """Canonical key of the tree-based q-gram rooted at ``root``.

    The depth-``q`` unfolding with parent-blocking: children of a vertex
    are all neighbours except the one it was reached from, recursively
    encoded and sorted — a rooted-tree canonical form.
    """

    def encode(v: Vertex, parent: Optional[Vertex], depth: int):
        label = repr(g.vertex_label(v))
        if depth == 0:
            return (label,)
        children = sorted(
            (repr(edge_label), encode(u, v, depth - 1))
            for u, edge_label in g.neighbor_items(v)
            if u != parent
        )
        return (label, tuple(children))

    return encode(root, None, q)


def tree_gram_multiset(g: Graph, q: int) -> Counter:
    """The multiset of tree-based q-grams of ``g`` (one per vertex)."""
    if q < 0:
        raise ParameterError(f"q must be >= 0, got {q}")
    return Counter(tree_gram_key(g, v, q) for v in g.vertices())


def _neighbourhood_size(max_degree: int, q: int) -> int:
    """``N_q(γ) = 1 + γ·Σ_{i=0}^{q−1}(γ−1)^i`` — unfolded q-ball size."""
    if q == 0 or max_degree == 0:
        return 1
    return 1 + max_degree * sum((max_degree - 1) ** i for i in range(q))


def d_tree(max_degree: int, q: int) -> int:
    """``D_tree``: max tree q-grams affected by one edit operation.

    The κ-AT paper's formula is ``N_q(γ) = 1 + γ·Σ_{i<q}(γ−1)^i`` — the
    number of roots whose depth-``q`` unfolding can contain a given
    vertex.  That covers relabelings and deletions, but an *edge
    insertion* changes the unfolding of every root within ``q−1`` hops
    of either new endpoint — up to ``2·N_{q−1}(γ)`` grams — which
    exceeds ``N_q(γ)`` on very sparse graphs (e.g. two grams on a
    degree-0 graph at ``q = 1``).  We take the maximum of both, which
    keeps κ-AT's count filter sound for every input; on the
    moderate-degree graphs of the paper's datasets the two coincide.
    (Path-based q-grams avoid the issue altogether: an edge insertion
    leaves every existing simple path intact — Theorem 1.)
    """
    if q < 0:
        raise ParameterError(f"q must be >= 0, got {q}")
    if q == 0:
        return 1
    return max(
        _neighbourhood_size(max_degree, q),
        2 * _neighbourhood_size(max_degree, q - 1),
    )


@dataclass
class KatProfile:
    """Per-graph κ-AT signature: sorted keys, counts, and ``D_tree``."""

    graph: Graph
    keys: List  #: tree-gram keys sorted in the global ordering
    key_counts: Counter
    d_tree: int

    @property
    def size(self) -> int:
        return len(self.keys)


def _common_count(a: Counter, b: Counter) -> int:
    if len(b) < len(a):
        a, b = b, a
    return sum(min(c, b[k]) for k, c in a.items() if k in b)


def kat_join(
    graphs: Sequence[Graph],
    tau: int,
    q: int = 1,
) -> JoinResult:
    """κ-AT self-join with size, prefix, global label and count filtering.

    The paper benchmarks κ-AT at ``q = 1`` (its best setting); other
    lengths are supported for the underflow experiments.
    """
    if tau < 0:
        raise ParameterError(f"tau must be >= 0, got {tau}")
    ids = [g.graph_id for g in graphs]
    if any(gid is None for gid in ids) or len(set(ids)) != len(ids):
        raise ParameterError("graphs need distinct ids; use assign_ids() first")
    if any(g.is_directed for g in graphs):
        raise ParameterError("the kappa-AT baseline supports undirected graphs only")

    stats = JoinStatistics(num_graphs=len(graphs), tau=tau, q=q)
    result = JoinResult(stats=stats)

    started = time.perf_counter()
    profiles: List[KatProfile] = []
    document_frequency: Dict[object, int] = {}
    for g in graphs:
        counts = tree_gram_multiset(g, q)
        profiles.append(
            KatProfile(graph=g, keys=[], key_counts=counts, d_tree=d_tree(g.max_degree(), q))
        )
        for key in counts:
            document_frequency[key] = document_frequency.get(key, 0) + 1

    def token(key):
        return (document_frequency[key], repr(key))

    prefix_lengths: List[int] = []
    prunable_flags: List[bool] = []
    labels: List[Tuple[Counter, Counter]] = []
    for profile in profiles:
        keys = [k for k, c in profile.key_counts.items() for _ in range(c)]
        keys.sort(key=token)
        profile.keys = keys
        ideal = tau * profile.d_tree + 1
        prunable = profile.size >= ideal
        length = ideal if prunable else profile.size
        prefix_lengths.append(length)
        prunable_flags.append(prunable)
        stats.total_prefix_length += length
        if not prunable:
            stats.unprunable_graphs += 1
        g = profile.graph
        labels.append((g.vertex_label_multiset(), g.edge_label_multiset()))
    stats.index_time += time.perf_counter() - started

    index = InvertedIndex()
    unprunable: List[int] = []

    for i, profile in enumerate(profiles):
        r = profile.graph

        started = time.perf_counter()
        candidate_ids: Dict[int, bool] = {}
        if prunable_flags[i]:
            for key in profile.keys[: prefix_lengths[i]]:
                for j in index.probe(key):
                    if j not in candidate_ids and passes_size_filter(
                        r, profiles[j].graph, tau
                    ):
                        candidate_ids[j] = True
            for j in unprunable:
                if j not in candidate_ids and passes_size_filter(
                    r, profiles[j].graph, tau
                ):
                    candidate_ids[j] = True
        else:
            for j in range(i):
                if passes_size_filter(r, profiles[j].graph, tau):
                    candidate_ids[j] = True
        stats.cand1 += len(candidate_ids)
        stats.candidate_time += time.perf_counter() - started

        started = time.perf_counter()
        for j in candidate_ids:
            other = profiles[j]
            s = other.graph
            if global_label_lower_bound(r, s, labels[i], labels[j]) > tau:
                stats.pruned_by_global_label += 1
                continue
            bound = max(
                profile.size - tau * profile.d_tree,
                other.size - tau * other.d_tree,
            )
            if bound > 0 and _common_count(profile.key_counts, other.key_counts) < bound:
                stats.pruned_by_count += 1
                continue
            stats.cand2 += 1
            ged_started = time.perf_counter()
            search = graph_edit_distance_detailed(r, s, threshold=tau)
            stats.ged_time += time.perf_counter() - ged_started
            stats.ged_calls += 1
            stats.ged_expansions += search.expanded
            if search.distance <= tau:
                result.pairs.append((s.graph_id, r.graph_id))
        stats.verify_time += time.perf_counter() - started

        started = time.perf_counter()
        if prunable_flags[i]:
            for key in profile.keys[: prefix_lengths[i]]:
                index.add(key, i)
        else:
            unprunable.append(i)
        stats.index_time += time.perf_counter() - started

    stats.results = len(result.pairs)
    stats.index_distinct_keys = index.num_distinct_keys
    stats.index_postings = index.num_postings
    stats.index_bytes = index.size_bytes
    return result
