"""Backwards-compatible re-export; the code moved to
:mod:`repro.engine.ordering`.

The object-key global q-gram ordering is part of the staged execution
engine's prepare stage (``repro.engine``); ``repro.core`` re-exports it
so the public import surface is unchanged.
"""

from __future__ import annotations

from repro.engine.ordering import QGramOrdering, build_ordering

__all__ = ["QGramOrdering", "build_ordering"]
