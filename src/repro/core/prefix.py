"""Backwards-compatible re-export; the code moved to
:mod:`repro.engine.prefix`.

The prefix-length decision (Lemmas 2–3, Algorithm 4) is the ``prefix``
stage of the staged execution engine (``repro.engine``); ``repro.core``
re-exports it so the public import surface is unchanged.
"""

from __future__ import annotations

from repro.engine.prefix import PrefixInfo, basic_prefix, minedit_prefix

__all__ = ["PrefixInfo", "basic_prefix", "minedit_prefix"]
