"""Backwards-compatible re-export; the code moved to
:mod:`repro.engine.inverted_index`.

The prefix inverted index is part of the staged execution engine's
candidate-generation stage (``repro.engine``); ``repro.core``
re-exports it so the public import surface is unchanged.
"""

from __future__ import annotations

from repro.engine.inverted_index import InvertedIndex

__all__ = ["InvertedIndex"]
