"""Backwards-compatible re-export; the code moved to
:mod:`repro.engine.verify` (and :mod:`repro.engine.stages`).

Candidate verification (Section VI, Algorithm 6) is the per-pair filter
cascade plus the GED stage of the staged execution engine
(``repro.engine``); ``repro.core`` re-exports :func:`verify_pair` — the
historical flat-argument entry point — so the public import surface is
unchanged.
"""

from __future__ import annotations

from repro.engine.stages import BUDGETED_VERIFIERS
from repro.engine.verify import VerifyOutcome, verify_pair

__all__ = ["VerifyOutcome", "verify_pair"]
