"""Candidate verification (Section VI, Algorithm 6).

Candidates pass through a cascade of increasingly expensive filters —
global label filtering, count filtering (via mismatching q-gram counts),
local label filtering — and only survivors reach the A*-based GED
computation, itself accelerated by the improved vertex order
(Algorithm 7) and improved heuristic (Algorithm 8) when enabled.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.grams.labels import (
    global_label_lower_bound,
    local_label_lower_bound,
    multicover_min_edit_bound,
)
from repro.grams.mismatch import compare_qgrams
from repro.grams.qgrams import QGramProfile
from repro.core.result import JoinStatistics
from repro.exceptions import ParameterError
from repro.ged.astar import graph_edit_distance_detailed
from repro.ged.compiled import VerificationCache, compiled_ged_detailed
from repro.ged.heuristics import label_heuristic, make_local_label_heuristic
from repro.ged.vertex_order import input_vertex_order, mismatch_vertex_order
from repro.runtime.budget import VerificationBudget

__all__ = ["VerifyOutcome", "verify_pair"]

#: Verifiers that support :class:`VerificationBudget` bounded verdicts.
BUDGETED_VERIFIERS = frozenset({"astar", "object", "compiled"})

LabelPair = Tuple[Counter, Counter]


@dataclass(frozen=True)
class VerifyOutcome:
    """Why a pair was accepted or rejected.

    ``pruned_by`` is one of ``"global_label"``, ``"count"``,
    ``"local_label"``, ``"multicover"``, ``"ged"`` or ``None``
    (accepted); ``ged`` is the (threshold-capped) distance when the
    computation ran and decided exactly.

    Budgeted verification adds three fields: ``undecided`` marks a pair
    whose A* exhausted its budget with ``lower ≤ tau < upper`` (the
    join routes it to the ``undecided`` channel), and
    ``lower``/``upper`` carry the bounded verdict whenever the budget
    ran out — including for pairs the bounds *did* decide (accepted
    because ``upper ≤ tau``, or rejected because ``lower > tau``).
    ``expansions``/``ged_seconds`` record the A* cost of this single
    pair so the outcome can be journaled and replayed exactly.
    """

    is_result: bool
    pruned_by: Optional[str]
    ged: Optional[int] = None
    undecided: bool = False
    lower: Optional[int] = None
    upper: Optional[int] = None
    expansions: int = 0
    ged_seconds: float = 0.0


def verify_pair(
    p_r: QGramProfile,
    p_s: QGramProfile,
    tau: int,
    labels_r: LabelPair,
    labels_s: LabelPair,
    use_local_label: bool,
    improved_order: bool,
    improved_h: bool,
    stats: Optional[JoinStatistics] = None,
    use_multicover: bool = False,
    verifier: str = "astar",
    budget: Optional[VerificationBudget] = None,
    cache: Optional[VerificationCache] = None,
    anchor_bound: bool = False,
) -> VerifyOutcome:
    """Run Algorithm 6 on one candidate pair.

    Parameters mirror the join variants: ``use_local_label`` enables the
    ε₄/ε₅ tests, ``improved_order``/``improved_h`` select the GED
    optimizations of Section VI-B.  ``use_multicover`` additionally
    applies the set-multicover minimum-edit bound over partially matched
    surplus keys — an extension beyond the paper's Algorithm 5 (see
    :func:`repro.grams.labels.multicover_min_edit_bound`).
    ``stats``, when given, accrues the Cand-2 counter, filter prune
    counters, and GED timings.

    ``verifier`` selects the GED backend: ``"compiled"`` (the
    integer-array A* of :mod:`repro.ged.compiled`, bit-identical to the
    object backend), ``"astar"``/``"object"`` (the object-graph A* of
    :mod:`repro.ged.astar`; two names for one backend), or ``"dfs"``.
    ``cache`` supplies the per-collection :class:`VerificationCache`
    for the compiled backend (one is created ad hoc when omitted, which
    forfeits cross-pair compilation reuse).  ``anchor_bound`` enables
    the compiled backend's optional anchor-aware lower bound — same
    results, potentially fewer expansions.

    ``budget`` caps the A* effort; on exhaustion the outcome is decided
    from the bounded verdict when possible (``upper <= tau`` accepts,
    ``lower > tau`` rejects) and marked ``undecided`` otherwise — never
    an exception or a hang.  Budgets require an A*-family verifier
    (``"astar"``/``"object"``/``"compiled"``).

    Raises
    ------
    ParameterError
        On an unknown verifier, a ``budget`` combined with the
        ``"dfs"`` verifier (which has no bounded-verdict mode), or
        ``anchor_bound`` with a non-compiled verifier.
    """
    r, s = p_r.graph, p_s.graph

    # Global label filtering (Lemma 5).
    eps1 = global_label_lower_bound(r, s, labels_r, labels_s)
    if eps1 > tau:
        if stats:
            stats.pruned_by_global_label += 1
        return VerifyOutcome(False, "global_label")

    # Count filtering, via mismatching q-gram counts (Lemma 1 restated:
    # |Q_r \ Q_s| <= tau * D_path(r), symmetrically for s).  Passing tau
    # lets the interned merge bail out as soon as a bound is exceeded.
    mismatch = compare_qgrams(p_r, p_s, tau)
    if mismatch.count_pruned:
        if stats:
            stats.pruned_by_count += 1
        return VerifyOutcome(False, "count")

    # Local label filtering (Algorithm 5), both directions.
    if use_local_label:
        eps4 = local_label_lower_bound(
            mismatch.mismatch_r, r, s, tau,
            other_labels=labels_s, required_mask=mismatch.required_mask_r,
        )
        if eps4 > tau:
            if stats:
                stats.pruned_by_local_label += 1
            return VerifyOutcome(False, "local_label")
        eps5 = local_label_lower_bound(
            mismatch.mismatch_s, s, r, tau,
            other_labels=labels_r, required_mask=mismatch.required_mask_s,
        )
        if eps5 > tau:
            if stats:
                stats.pruned_by_local_label += 1
            return VerifyOutcome(False, "local_label")

    # Multicover extension: bounds over partially matched surplus keys.
    if use_multicover:
        if (
            multicover_min_edit_bound(mismatch.surplus_groups_r(p_r, p_s), tau) > tau
            or multicover_min_edit_bound(mismatch.surplus_groups_s(p_r, p_s), tau) > tau
        ):
            if stats:
                stats.pruned_by_local_label += 1
            return VerifyOutcome(False, "multicover")

    # GED computation on the survivors (Cand-2).
    if stats:
        stats.cand2 += 1
    order = (
        mismatch_vertex_order(r, mismatch.mismatch_r)
        if improved_order
        else input_vertex_order(r)
    )
    if anchor_bound and verifier != "compiled":
        raise ParameterError(
            "anchor_bound requires the 'compiled' verifier"
        )
    started = time.perf_counter()
    if verifier == "dfs":
        if budget is not None:
            raise ParameterError(
                "budgeted verification requires an A*-family verifier "
                "('astar'/'object'/'compiled')"
            )
        from repro.ged.dfs import dfs_ged

        heuristic = (
            make_local_label_heuristic(p_r.q, tau) if improved_h else label_heuristic
        )
        search = dfs_ged(
            r, s, threshold=tau, heuristic=heuristic, vertex_order=order
        )
    elif verifier == "compiled":
        if cache is None:
            cache = VerificationCache()
        cr = cache.compile(r)
        cs = cache.compile(s)
        index_of = cr.index_of
        int_order = [index_of[v] for v in order]
        search = compiled_ged_detailed(
            cr, cs, threshold=tau, vertex_order=int_order, budget=budget,
            improved_h=improved_h, q=p_r.q, h_tau=tau,
            subgraph_cache=cache.subgraph_cache, anchor_bound=anchor_bound,
        )
    elif verifier in ("astar", "object"):
        heuristic = (
            make_local_label_heuristic(p_r.q, tau) if improved_h else label_heuristic
        )
        search = graph_edit_distance_detailed(
            r, s, threshold=tau, heuristic=heuristic, vertex_order=order,
            budget=budget,
        )
    else:
        raise ParameterError(f"unknown verifier {verifier!r}")
    elapsed = time.perf_counter() - started
    if stats:
        stats.ged_time += elapsed
        stats.ged_calls += 1
        stats.ged_expansions += search.expanded
    if getattr(search, "budget_exhausted", False):
        lower, upper = search.lower, search.upper
        if upper is not None and upper <= tau:
            # ged <= upper <= tau: membership decided despite exhaustion.
            return VerifyOutcome(
                True, None, None, lower=lower, upper=upper,
                expansions=search.expanded, ged_seconds=elapsed,
            )
        if lower is not None and lower > tau:
            # tau < lower <= ged: decided rejection.
            return VerifyOutcome(
                False, "ged", None, lower=lower, upper=upper,
                expansions=search.expanded, ged_seconds=elapsed,
            )
        if stats:
            stats.undecided += 1
        return VerifyOutcome(
            False, None, None, undecided=True, lower=lower, upper=upper,
            expansions=search.expanded, ged_seconds=elapsed,
        )
    if search.distance <= tau:
        return VerifyOutcome(
            True, None, search.distance,
            expansions=search.expanded, ged_seconds=elapsed,
        )
    return VerifyOutcome(
        False, "ged", search.distance,
        expansions=search.expanded, ged_seconds=elapsed,
    )
