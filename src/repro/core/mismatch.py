"""Deprecated re-export; the code moved to :mod:`repro.grams.mismatch`.

``CompareQGrams`` feeds both the Verify cascade (``repro.core``) and the
improved A* heuristic (``repro.ged``); it now lives in
:mod:`repro.grams` so that ``ged`` never imports ``core`` (see
``docs/STATIC_ANALYSIS.md`` for the dependency DAG).  Importing this
module warns; import :mod:`repro.grams.mismatch` instead.
"""

from __future__ import annotations

import warnings

from repro.grams.mismatch import MismatchResult, compare_qgrams, mismatching_grams

warnings.warn(
    "repro.core.mismatch is deprecated; import repro.grams.mismatch instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["MismatchResult", "compare_qgrams", "mismatching_grams"]
