"""Deprecated re-export; the code moved to :mod:`repro.grams.labels`.

Label filtering (Lemmas 4–5, Algorithm 5) is used both by the Verify
cascade (``repro.core``) and by the improved A* heuristic
(``repro.ged.heuristics``); it now lives in :mod:`repro.grams` so that
``ged`` never imports ``core`` (see ``docs/STATIC_ANALYSIS.md`` for the
dependency DAG).  Importing this module warns; import
:mod:`repro.grams.labels` instead.
"""

from __future__ import annotations

import warnings

from repro.grams.labels import (
    connected_gram_components,
    gamma,
    global_label_lower_bound,
    local_label_lower_bound,
    multicover_min_edit_bound,
)

warnings.warn(
    "repro.core.label_filter is deprecated; import repro.grams.labels instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = [
    "gamma",
    "global_label_lower_bound",
    "connected_gram_components",
    "local_label_lower_bound",
    "multicover_min_edit_bound",
]
