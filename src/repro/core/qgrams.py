"""Backwards-compatible re-export; the code moved to :mod:`repro.grams.qgrams`.

The q-gram primitives are shared by the filter layer (``repro.core``)
and the GED layer (``repro.ged``); they now live in :mod:`repro.grams`
so that ``ged`` never imports ``core`` (see ``docs/STATIC_ANALYSIS.md``
for the dependency DAG).
"""

from __future__ import annotations

from repro.grams.qgrams import Key, QGram, QGramProfile, extract_qgrams, qgram_key

__all__ = ["Key", "QGram", "QGramProfile", "extract_qgrams", "qgram_key"]
