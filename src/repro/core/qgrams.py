"""Deprecated re-export; the code moved to :mod:`repro.grams.qgrams`.

The q-gram primitives are shared by the filter layer (``repro.core``)
and the GED layer (``repro.ged``); they now live in :mod:`repro.grams`
so that ``ged`` never imports ``core`` (see ``docs/STATIC_ANALYSIS.md``
for the dependency DAG).  Importing this module warns; import
:mod:`repro.grams.qgrams` instead.
"""

from __future__ import annotations

import warnings

from repro.grams.qgrams import Key, QGram, QGramProfile, extract_qgrams, qgram_key

warnings.warn(
    "repro.core.qgrams is deprecated; import repro.grams.qgrams instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["Key", "QGram", "QGramProfile", "extract_qgrams", "qgram_key"]
