"""Public entry point of the out-of-core sharded self-join.

:func:`gsim_join_sharded` is the bounded-memory sibling of
:func:`repro.core.join.gsim_join`: same join semantics — identical
result pairs, asserted by :func:`repro.engine.sharded.
result_fingerprint` — but the collection is streamed from disk, banded
by size so the size filter prunes whole shard pairs, processed shard
pair by shard pair under a memory budget with spill-to-disk queues, and
recoverable from a crash at any point via the atomically-updated run
manifest (see :mod:`repro.engine.sharded` and ``docs/ROBUSTNESS.md``).
"""

from __future__ import annotations

import os
from typing import Optional, Sequence, Union

from repro.engine.options import GSimJoinOptions
from repro.engine.result import JoinResult
from repro.engine.sharded import execute_sharded_join, result_fingerprint
from repro.graph.graph import Graph
from repro.runtime.budget import VerificationBudget
from repro.runtime.faults import FaultPlan

__all__ = ["gsim_join_sharded", "result_fingerprint"]


def gsim_join_sharded(
    source: Union[str, os.PathLike, Sequence[Graph]],
    tau: int,
    options: Optional[GSimJoinOptions] = None,
    *,
    spill_dir: Union[str, os.PathLike],
    shards: int = 4,
    memory_budget_mb: Optional[float] = None,
    resume: bool = False,
    budget: Optional[VerificationBudget] = None,
    workers: int = 1,
    fault: Optional[FaultPlan] = None,
    max_retries: int = 2,
    retry_backoff: float = 0.1,
    fsync_interval: Optional[int] = None,
    on_error: str = "raise",
) -> JoinResult:
    """Out-of-core self-join: Algorithm 1 over size-banded shards.

    ``source`` is preferably the *path* of a collection file in the
    library's text format — it is streamed, never fully loaded — or a
    graph sequence for convenience (scattered through the same shard
    files; labels round-trip as strings).  All working state lives
    under ``spill_dir``: the shard files, one journal and two
    JSONL spill queues per shard pair, and ``manifest.json``, the
    atomically-updated recovery manifest.

    Knobs
    -----
    ``shards``
        Number of size bands.  Band pairs whose size gap exceeds
        ``tau`` are skipped without opening either file (the size
        filter, lifted to the partition level).
    ``memory_budget_mb``
        Logical cap on resident graph data.  A shard pair that cannot
        fit degrades to sub-shard combos (split level doubles each
        retry) until it fits or single-graph sub-shards still exceed
        the cap (:class:`~repro.exceptions.MemoryBudgetError`).
    ``resume``
        Continue the run recorded in ``spill_dir`` after a crash or
        kill: ``done`` shard pairs are trusted from the manifest,
        interrupted ones replay their journal and verify only the
        remainder — the merged result is bit-identical to an
        uninterrupted run.  Without ``resume``, an existing manifest
        raises :class:`~repro.exceptions.CheckpointError`.
    ``workers``
        Verify each shard pair's fresh candidates on a process pool
        (reusing the fault-tolerant parallel chunk runner).
    ``max_retries`` / ``retry_backoff``
        Transient-``OSError`` policy per shard pair (capped exponential
        backoff), and the worker pool's chunk retry policy.
    ``fsync_interval``
        Per-pair journal durability (see :class:`~repro.runtime.
        journal.JoinJournal`).
    ``on_error``
        ``"skip"`` streams past corrupt graphs exactly like
        :func:`repro.graph.io.load_graphs` lenient mode.

    ``budget`` and ``fault`` carry the usual robustness semantics of
    :func:`~repro.core.join.gsim_join`.
    """
    return execute_sharded_join(
        source,
        tau,
        options,
        spill_dir=spill_dir,
        shards=shards,
        memory_budget_mb=memory_budget_mb,
        resume=resume,
        budget=budget,
        workers=workers,
        fault=fault,
        max_retries=max_retries,
        retry_backoff=retry_backoff,
        fsync_interval=fsync_interval,
        on_error=on_error,
    )
