"""The paper's contribution: path q-grams, filter cascade, GSimJoin."""

from repro.core.estimate import JoinSizeEstimate, estimate_join_size
from repro.core.count_filter import (
    common_qgram_count,
    count_lower_bound,
    passes_count_filter,
    passes_size_filter,
    size_lower_bound,
)
from repro.core.inverted_index import InvertedIndex
from repro.core.join import GSimJoinOptions, gsim_join, gsim_join_rs
from repro.grams.labels import (
    connected_gram_components,
    gamma,
    global_label_lower_bound,
    local_label_lower_bound,
)
from repro.grams.minedit import min_edit_exact, min_edit_lower_bound, min_prefix_length
from repro.grams.mismatch import MismatchResult, compare_qgrams, mismatching_grams
from repro.core.ordering import QGramOrdering, build_ordering
from repro.grams.vocab import QGramVocabulary, build_vocabulary
from repro.core.parallel import gsim_join_parallel
from repro.core.prefix import PrefixInfo, basic_prefix, minedit_prefix
from repro.grams.qgrams import QGram, QGramProfile, extract_qgrams, qgram_key
from repro.core.result import (
    BoundedPair,
    JoinResult,
    JoinStatistics,
    StageStatistics,
)
from repro.core.search import GSimIndex
from repro.core.sharded import gsim_join_sharded, result_fingerprint
from repro.core.verify import VerifyOutcome, verify_pair

__all__ = [
    "gsim_join",
    "gsim_join_rs",
    "gsim_join_parallel",
    "gsim_join_sharded",
    "result_fingerprint",
    "GSimIndex",
    "GSimJoinOptions",
    "BoundedPair",
    "JoinResult",
    "JoinStatistics",
    "StageStatistics",
    "QGram",
    "QGramProfile",
    "extract_qgrams",
    "qgram_key",
    "common_qgram_count",
    "count_lower_bound",
    "passes_count_filter",
    "size_lower_bound",
    "passes_size_filter",
    "QGramOrdering",
    "build_ordering",
    "QGramVocabulary",
    "build_vocabulary",
    "PrefixInfo",
    "basic_prefix",
    "minedit_prefix",
    "min_edit_exact",
    "min_edit_lower_bound",
    "min_prefix_length",
    "MismatchResult",
    "compare_qgrams",
    "mismatching_grams",
    "gamma",
    "global_label_lower_bound",
    "local_label_lower_bound",
    "connected_gram_components",
    "InvertedIndex",
    "VerifyOutcome",
    "verify_pair",
    "estimate_join_size",
    "JoinSizeEstimate",
]
