"""Backwards-compatible re-export; the code moved to
:mod:`repro.engine.result`.

Join results and statistics (including the per-stage
:class:`~repro.engine.result.StageStatistics` rows) are defined by the
staged execution engine (``repro.engine``); ``repro.core`` re-exports
them so the public import surface is unchanged.
"""

from __future__ import annotations

from repro.engine.result import (
    BoundedPair,
    JoinResult,
    JoinStatistics,
    StageStatistics,
)

__all__ = ["JoinStatistics", "JoinResult", "BoundedPair", "StageStatistics"]
