"""The GSimJoin algorithm (Algorithm 1) and its variants.

``gsim_join`` performs the self-join ``{⟨r_i, r_j⟩ | ged(r_i, r_j) ≤ τ,
i < j}`` in index-nested-loop style: graphs are scanned once; each graph
probes an in-memory inverted index with its (globally sorted) q-gram
prefix to collect candidates among the *earlier* graphs, verifies them
(Algorithm 6), and then inserts its own prefix into the index.

Three variants reproduce the paper's lines:

* ``GSimJoinOptions.basic()``   — "Basic GSimJoin": basic prefixes
  (``τ·D_path + 1``), size + global label + count filtering, plain A*;
* ``GSimJoinOptions.minedit()`` — "+ MinEdit": Algorithm 4 prefixes and
  the improved A* vertex order;
* ``GSimJoinOptions.full()``    — "+ Local Label": additionally the
  local label filter and the improved A* heuristic.

Graphs whose whole q-gram multiset can be affected by ``τ`` edits
(including graphs with fewer than ``q+1`` vertices, which have *no*
q-grams) cannot be pruned by any prefix argument; they are kept on an
*unprunable* list and paired with every graph, which keeps the join
exact on heterogeneous collections.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.count_filter import passes_size_filter
from repro.core.inverted_index import InvertedIndex
from repro.core.ordering import QGramOrdering, build_ordering
from repro.core.prefix import PrefixInfo, basic_prefix, minedit_prefix
from repro.grams.qgrams import QGramProfile, extract_qgrams
from repro.grams.vocab import QGramVocabulary, build_vocabulary
from repro.core.result import JoinResult, JoinStatistics
from repro.core.verify import verify_pair
from repro.exceptions import ParameterError
from repro.graph.graph import Graph

__all__ = ["GSimJoinOptions", "gsim_join", "gsim_join_rs"]


@dataclass(frozen=True)
class GSimJoinOptions:
    """Configuration of a GSimJoin run.

    Attributes
    ----------
    q:
        Path q-gram length (the paper uses 4 on AIDS, 3 on PROTEIN).
    minedit_prefix:
        Shrink prefixes with minimum edit filtering (Algorithm 4).
    local_label:
        Apply local label filtering during verification (Algorithm 5).
    improved_order:
        Map mismatching-q-gram vertices first in A* (Algorithm 7).
    improved_h:
        Use the local-label-enhanced heuristic in A* (Algorithm 8).
    multicover:
        Additionally apply the set-multicover minimum-edit bound over
        partially matched surplus keys — a sound extension beyond the
        paper (off in the paper-faithful variants).
    interned:
        Run the pipeline on interned integer q-gram signatures — the
        global ordering becomes a pure integer sort, the inverted index
        is keyed by small ints, and ``CompareQGrams`` is a linear merge
        over sorted id arrays (see :mod:`repro.grams.vocab`).  Results
        are bit-identical to the object-key reference path
        (``interned=False``, retained for the parity property tests);
        only speed differs.
    verifier:
        Exact GED engine for the surviving candidates: ``"astar"``
        (the paper's best-first search) or ``"dfs"`` (depth-first
        branch-and-bound with a bipartite incumbent — an extension;
        same answers, O(|V|) memory).
    """

    q: int = 4
    minedit_prefix: bool = True
    local_label: bool = True
    improved_order: bool = True
    improved_h: bool = True
    multicover: bool = False
    interned: bool = True
    verifier: str = "astar"

    @classmethod
    def basic(cls, q: int = 4, interned: bool = True) -> "GSimJoinOptions":
        """The paper's *Basic GSimJoin* configuration."""
        return cls(q=q, minedit_prefix=False, local_label=False,
                   improved_order=False, improved_h=False, interned=interned)

    @classmethod
    def minedit(cls, q: int = 4, interned: bool = True) -> "GSimJoinOptions":
        """The paper's *+ MinEdit* configuration."""
        return cls(q=q, minedit_prefix=True, local_label=False,
                   improved_order=True, improved_h=False, interned=interned)

    @classmethod
    def full(cls, q: int = 4, interned: bool = True) -> "GSimJoinOptions":
        """The paper's *+ Local Label* (complete GSimJoin) configuration."""
        return cls(q=q, minedit_prefix=True, local_label=True,
                   improved_order=True, improved_h=True, interned=interned)

    @classmethod
    def extended(cls, q: int = 4, interned: bool = True) -> "GSimJoinOptions":
        """``full()`` plus this library's multicover filter extension."""
        return cls(q=q, minedit_prefix=True, local_label=True,
                   improved_order=True, improved_h=True, multicover=True,
                   interned=interned)

    def with_q(self, q: int) -> "GSimJoinOptions":
        """This configuration with a different q-gram length."""
        return replace(self, q=q)


def _validate(graphs: Sequence[Graph], tau: int, options: GSimJoinOptions) -> None:
    if tau < 0:
        raise ParameterError(f"tau must be >= 0, got {tau}")
    if options.q < 0:
        raise ParameterError(f"q must be >= 0, got {options.q}")
    ids = [g.graph_id for g in graphs]
    if any(gid is None for gid in ids):
        raise ParameterError(
            "all graphs need ids; use repro.graph.assign_ids(graphs) first"
        )
    if len(set(ids)) != len(ids):
        raise ParameterError("graph ids must be distinct")
    if len({g.is_directed for g in graphs}) > 1:
        raise ParameterError("cannot mix directed and undirected graphs in a join")


#: Either global-ordering implementation — both expose ``sort_profile``.
Sorter = Union[QGramVocabulary, QGramOrdering]


def _build_sorter(
    profiles: Sequence[QGramProfile], options: GSimJoinOptions
) -> Sorter:
    """The configured global-ordering implementation over ``profiles``."""
    if options.interned:
        return build_vocabulary(profiles)
    return build_ordering(profiles)


def _prepare_profiles(
    graphs: Sequence[Graph], tau: int, options: GSimJoinOptions, stats: JoinStatistics
) -> Tuple[List[QGramProfile], List[PrefixInfo], List[Tuple], Sorter]:
    """Extract q-grams, build the global ordering, sort, compute prefixes."""
    profiles = [extract_qgrams(g, options.q) for g in graphs]
    sorter = _build_sorter(profiles, options)
    prefixes: List[PrefixInfo] = []
    for profile in profiles:
        sorter.sort_profile(profile)
        info = (
            minedit_prefix(profile, tau)
            if options.minedit_prefix
            else basic_prefix(profile, tau)
        )
        prefixes.append(info)
        stats.total_prefix_length += info.length
        if not info.prunable:
            stats.unprunable_graphs += 1
    labels = [
        (g.vertex_label_multiset(), g.edge_label_multiset()) for g in graphs
    ]
    return profiles, prefixes, labels, sorter


def gsim_join(
    graphs: Sequence[Graph],
    tau: int,
    options: Optional[GSimJoinOptions] = None,
) -> JoinResult:
    """Self-join: all pairs within edit distance ``tau`` (Algorithm 1).

    Graphs must carry distinct ids (:func:`repro.graph.assign_ids`).
    Returns a :class:`~repro.core.result.JoinResult` whose ``pairs`` hold
    ``(r.graph_id, s.graph_id)`` tuples ordered by scan position, and
    whose ``stats`` carry every quantity the paper's figures plot.

    Raises
    ------
    ParameterError
        On negative ``tau``/``q``, missing ids, or duplicate ids.
    """
    if options is None:
        options = GSimJoinOptions()
    _validate(graphs, tau, options)

    stats = JoinStatistics(num_graphs=len(graphs), tau=tau, q=options.q)
    result = JoinResult(stats=stats)

    started = time.perf_counter()
    profiles, prefixes, labels, _sorter = _prepare_profiles(
        graphs, tau, options, stats
    )
    stats.index_time += time.perf_counter() - started

    index = InvertedIndex()
    unprunable: List[int] = []

    for i, profile in enumerate(profiles):
        info = prefixes[i]
        r = profile.graph

        # --- Candidate generation -----------------------------------
        started = time.perf_counter()
        candidate_ids: Dict[int, bool] = {}
        if info.prunable:
            for key in profile.prefix_keys(info.length):
                for j in index.probe(key):
                    if j not in candidate_ids and passes_size_filter(
                        r, profiles[j].graph, tau
                    ):
                        candidate_ids[j] = True
            for j in unprunable:
                if j not in candidate_ids and passes_size_filter(
                    r, profiles[j].graph, tau
                ):
                    candidate_ids[j] = True
        else:
            for j in range(i):
                if passes_size_filter(r, profiles[j].graph, tau):
                    candidate_ids[j] = True
        stats.cand1 += len(candidate_ids)
        stats.candidate_time += time.perf_counter() - started

        # --- Verification -------------------------------------------
        started = time.perf_counter()
        for j in candidate_ids:
            outcome = verify_pair(
                profile,
                profiles[j],
                tau,
                labels[i],
                labels[j],
                use_local_label=options.local_label,
                improved_order=options.improved_order,
                improved_h=options.improved_h,
                stats=stats,
                use_multicover=options.multicover,
                verifier=options.verifier,
            )
            if outcome.is_result:
                result.pairs.append((profiles[j].graph.graph_id, r.graph_id))
        stats.verify_time += time.perf_counter() - started

        # --- Index maintenance --------------------------------------
        started = time.perf_counter()
        if info.prunable:
            for key in profile.prefix_keys(info.length):
                index.add(key, i)
        else:
            unprunable.append(i)
        stats.index_time += time.perf_counter() - started

    stats.results = len(result.pairs)
    stats.index_distinct_keys = index.num_distinct_keys
    stats.index_postings = index.num_postings
    stats.index_bytes = index.size_bytes
    return result


def gsim_join_rs(
    outer: Sequence[Graph],
    inner: Sequence[Graph],
    tau: int,
    options: Optional[GSimJoinOptions] = None,
) -> JoinResult:
    """R×S join: ``{⟨r, s⟩ | ged(r, s) ≤ τ, r ∈ outer, s ∈ inner}``.

    The inner collection is fully indexed first, then each outer graph
    probes.  The global q-gram ordering is built over both collections so
    prefixes are comparable.  Result pairs are ``(r.graph_id,
    s.graph_id)``; ids must be distinct within each collection.
    """
    if options is None:
        options = GSimJoinOptions()
    _validate(outer, tau, options)
    _validate(inner, tau, options)

    stats = JoinStatistics(
        num_graphs=len(outer) + len(inner), tau=tau, q=options.q
    )
    result = JoinResult(stats=stats)

    started = time.perf_counter()
    all_graphs = list(outer) + list(inner)
    profiles_all = [extract_qgrams(g, options.q) for g in all_graphs]
    sorter = _build_sorter(profiles_all, options)
    prefixes_all: List[PrefixInfo] = []
    for profile in profiles_all:
        sorter.sort_profile(profile)
        info = (
            minedit_prefix(profile, tau)
            if options.minedit_prefix
            else basic_prefix(profile, tau)
        )
        prefixes_all.append(info)
        stats.total_prefix_length += info.length
        if not info.prunable:
            stats.unprunable_graphs += 1
    labels_all = [
        (g.vertex_label_multiset(), g.edge_label_multiset()) for g in all_graphs
    ]
    n_outer = len(outer)
    outer_profiles = profiles_all[:n_outer]
    inner_profiles = profiles_all[n_outer:]

    index = InvertedIndex()
    inner_unprunable: List[int] = []
    for j, profile in enumerate(inner_profiles):
        info = prefixes_all[n_outer + j]
        if info.prunable:
            for key in profile.prefix_keys(info.length):
                index.add(key, j)
        else:
            inner_unprunable.append(j)
    stats.index_time += time.perf_counter() - started

    for i, profile in enumerate(outer_profiles):
        info = prefixes_all[i]
        r = profile.graph

        started = time.perf_counter()
        candidate_ids: Dict[int, bool] = {}
        if info.prunable:
            for key in profile.prefix_keys(info.length):
                for j in index.probe(key):
                    if j not in candidate_ids and passes_size_filter(
                        r, inner_profiles[j].graph, tau
                    ):
                        candidate_ids[j] = True
            for j in inner_unprunable:
                if j not in candidate_ids and passes_size_filter(
                    r, inner_profiles[j].graph, tau
                ):
                    candidate_ids[j] = True
        else:
            for j in range(len(inner_profiles)):
                if passes_size_filter(r, inner_profiles[j].graph, tau):
                    candidate_ids[j] = True
        stats.cand1 += len(candidate_ids)
        stats.candidate_time += time.perf_counter() - started

        started = time.perf_counter()
        for j in candidate_ids:
            outcome = verify_pair(
                profile,
                inner_profiles[j],
                tau,
                labels_all[i],
                labels_all[n_outer + j],
                use_local_label=options.local_label,
                improved_order=options.improved_order,
                improved_h=options.improved_h,
                stats=stats,
                use_multicover=options.multicover,
                verifier=options.verifier,
            )
            if outcome.is_result:
                result.pairs.append(
                    (r.graph_id, inner_profiles[j].graph.graph_id)
                )
        stats.verify_time += time.perf_counter() - started

    stats.results = len(result.pairs)
    stats.index_distinct_keys = index.num_distinct_keys
    stats.index_postings = index.num_postings
    stats.index_bytes = index.size_bytes
    return result
