"""The GSimJoin algorithm (Algorithm 1) and its variants.

``gsim_join`` performs the self-join ``{⟨r_i, r_j⟩ | ged(r_i, r_j) ≤ τ,
i < j}`` in index-nested-loop style: graphs are scanned once; each graph
probes an in-memory inverted index with its (globally sorted) q-gram
prefix to collect candidates among the *earlier* graphs, verifies them
(Algorithm 6), and then inserts its own prefix into the index.

Three variants reproduce the paper's lines:

* ``GSimJoinOptions.basic()``   — "Basic GSimJoin": basic prefixes
  (``τ·D_path + 1``), size + global label + count filtering, plain A*;
* ``GSimJoinOptions.minedit()`` — "+ MinEdit": Algorithm 4 prefixes and
  the improved A* vertex order;
* ``GSimJoinOptions.full()``    — "+ Local Label": additionally the
  local label filter and the improved A* heuristic.

Graphs whose whole q-gram multiset can be affected by ``τ`` edits
(including graphs with fewer than ``q+1`` vertices, which have *no*
q-grams) cannot be pruned by any prefix argument; they are kept on an
*unprunable* list and paired with every graph, which keeps the join
exact on heterogeneous collections.

Both joins are thin wrappers over the staged execution engine
(:mod:`repro.engine`): ``build_plan(options)`` assembles the stage
list, one :class:`repro.engine.executor.Executor` drives it, and every
stage reports survivor counts and wall time into
``result.stats.stages`` (see ``docs/ARCHITECTURE.md`` and the CLI's
``--explain-plan``).
"""

from __future__ import annotations

import os
from typing import Optional, Sequence, Union

from repro.engine.executor import execute_rs_join, execute_self_join
from repro.engine.options import GSimJoinOptions, Sorter
from repro.engine.result import JoinResult
from repro.graph.graph import Graph
from repro.runtime.budget import VerificationBudget
from repro.runtime.faults import FaultPlan

__all__ = ["GSimJoinOptions", "gsim_join", "gsim_join_rs"]


def gsim_join(
    graphs: Sequence[Graph],
    tau: int,
    options: Optional[GSimJoinOptions] = None,
    budget: Optional[VerificationBudget] = None,
    checkpoint: Optional[Union[str, os.PathLike]] = None,
    fault: Optional[FaultPlan] = None,
) -> JoinResult:
    """Self-join: all pairs within edit distance ``tau`` (Algorithm 1).

    Graphs must carry distinct ids (:func:`repro.graph.assign_ids`).
    Returns a :class:`~repro.core.result.JoinResult` whose ``pairs`` hold
    ``(r.graph_id, s.graph_id)`` tuples ordered by scan position, and
    whose ``stats`` carry every quantity the paper's figures plot —
    including one :class:`~repro.core.result.StageStatistics` row per
    plan stage in ``stats.stages``.

    Robustness knobs (``docs/ROBUSTNESS.md``) — all default-off, and
    with the defaults results are bit-identical to the classic join:

    ``budget``
        Caps each pair's A* effort; pairs the budget cannot decide land
        in ``result.undecided`` with GED bounds instead of hanging.
    ``checkpoint``
        Path of an append-only journal written through as pairs verify;
        re-running with the same arguments resumes, replaying journaled
        outcomes so the result equals an uninterrupted run's.
    ``fault``
        Deterministic fault injection (tests/chaos only): the plan's
        fault fires at its configured verification step.

    Raises
    ------
    ParameterError
        On negative ``tau``/``q``, missing ids, duplicate ids, or an
        invalid ``options.plan``.
    CheckpointError
        When ``checkpoint`` names a journal from a different run.
    """
    return execute_self_join(
        graphs, tau, options=options, budget=budget,
        checkpoint=checkpoint, fault=fault,
    )


def gsim_join_rs(
    outer: Sequence[Graph],
    inner: Sequence[Graph],
    tau: int,
    options: Optional[GSimJoinOptions] = None,
    budget: Optional[VerificationBudget] = None,
    checkpoint: Optional[Union[str, os.PathLike]] = None,
    fault: Optional[FaultPlan] = None,
) -> JoinResult:
    """R×S join: ``{⟨r, s⟩ | ged(r, s) ≤ τ, r ∈ outer, s ∈ inner}``.

    The inner collection is fully indexed first, then each outer graph
    probes.  The global q-gram ordering is built over both collections so
    prefixes are comparable.  Result pairs are ``(r.graph_id,
    s.graph_id)``; ids must be distinct within each collection.

    ``budget``, ``checkpoint`` and ``fault`` work exactly as in
    :func:`gsim_join`: budgeted verification routes undecided pairs to
    ``result.undecided``, and a checkpoint journal (keyed by
    ``(outer_position, inner_position)``) makes an interrupted R×S join
    resumable with results identical to an uninterrupted run's.

    Raises
    ------
    ParameterError
        Same validation as :func:`gsim_join`, applied to both
        collections.
    CheckpointError
        When ``checkpoint`` names a journal from a different run.
    """
    return execute_rs_join(
        outer, inner, tau, options=options, budget=budget,
        checkpoint=checkpoint, fault=fault,
    )
