"""The GSimJoin algorithm (Algorithm 1) and its variants.

``gsim_join`` performs the self-join ``{⟨r_i, r_j⟩ | ged(r_i, r_j) ≤ τ,
i < j}`` in index-nested-loop style: graphs are scanned once; each graph
probes an in-memory inverted index with its (globally sorted) q-gram
prefix to collect candidates among the *earlier* graphs, verifies them
(Algorithm 6), and then inserts its own prefix into the index.

Three variants reproduce the paper's lines:

* ``GSimJoinOptions.basic()``   — "Basic GSimJoin": basic prefixes
  (``τ·D_path + 1``), size + global label + count filtering, plain A*;
* ``GSimJoinOptions.minedit()`` — "+ MinEdit": Algorithm 4 prefixes and
  the improved A* vertex order;
* ``GSimJoinOptions.full()``    — "+ Local Label": additionally the
  local label filter and the improved A* heuristic.

Graphs whose whole q-gram multiset can be affected by ``τ`` edits
(including graphs with fewer than ``q+1`` vertices, which have *no*
q-grams) cannot be pruned by any prefix argument; they are kept on an
*unprunable* list and paired with every graph, which keeps the join
exact on heterogeneous collections.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.count_filter import passes_size_filter
from repro.core.inverted_index import InvertedIndex
from repro.core.ordering import QGramOrdering, build_ordering
from repro.core.prefix import PrefixInfo, basic_prefix, minedit_prefix
from repro.grams.qgrams import QGramProfile, extract_qgrams
from repro.grams.vocab import QGramVocabulary, build_vocabulary
from repro.core.result import BoundedPair, JoinResult, JoinStatistics
from repro.core.verify import BUDGETED_VERIFIERS, VerifyOutcome, verify_pair
from repro.ged.compiled import VerificationCache
from repro.exceptions import ParameterError
from repro.graph.graph import Graph
from repro.runtime.budget import VerificationBudget
from repro.runtime.faults import FaultPlan
from repro.runtime.journal import JoinJournal, VerificationRecord

__all__ = ["GSimJoinOptions", "gsim_join", "gsim_join_rs"]


@dataclass(frozen=True)
class GSimJoinOptions:
    """Configuration of a GSimJoin run.

    Attributes
    ----------
    q:
        Path q-gram length (the paper uses 4 on AIDS, 3 on PROTEIN).
    minedit_prefix:
        Shrink prefixes with minimum edit filtering (Algorithm 4).
    local_label:
        Apply local label filtering during verification (Algorithm 5).
    improved_order:
        Map mismatching-q-gram vertices first in A* (Algorithm 7).
    improved_h:
        Use the local-label-enhanced heuristic in A* (Algorithm 8).
    multicover:
        Additionally apply the set-multicover minimum-edit bound over
        partially matched surplus keys — a sound extension beyond the
        paper (off in the paper-faithful variants).
    interned:
        Run the pipeline on interned integer q-gram signatures — the
        global ordering becomes a pure integer sort, the inverted index
        is keyed by small ints, and ``CompareQGrams`` is a linear merge
        over sorted id arrays (see :mod:`repro.grams.vocab`).  Results
        are bit-identical to the object-key reference path
        (``interned=False``, retained for the parity property tests);
        only speed differs.
    verifier:
        Exact GED engine for the surviving candidates: ``"compiled"``
        (the default — the integer-array A* of
        :mod:`repro.ged.compiled`, with per-collection graph
        compilation cached across candidate pairs; bit-identical
        results), ``"object"``/``"astar"`` (the object-graph A*
        reference implementation, two names for one backend) or
        ``"dfs"`` (depth-first branch-and-bound with a bipartite
        incumbent — an extension; same answers, O(|V|) memory).
    anchor_bound:
        Enable the compiled backend's optional anchor-aware lower
        bound: identical pairs and distances, potentially fewer A*
        expansions (off by default so expansion counts stay comparable
        with the object backend).  Requires ``verifier="compiled"``.
    """

    q: int = 4
    minedit_prefix: bool = True
    local_label: bool = True
    improved_order: bool = True
    improved_h: bool = True
    multicover: bool = False
    interned: bool = True
    verifier: str = "compiled"
    anchor_bound: bool = False

    @classmethod
    def basic(cls, q: int = 4, interned: bool = True) -> "GSimJoinOptions":
        """The paper's *Basic GSimJoin* configuration."""
        return cls(q=q, minedit_prefix=False, local_label=False,
                   improved_order=False, improved_h=False, interned=interned)

    @classmethod
    def minedit(cls, q: int = 4, interned: bool = True) -> "GSimJoinOptions":
        """The paper's *+ MinEdit* configuration."""
        return cls(q=q, minedit_prefix=True, local_label=False,
                   improved_order=True, improved_h=False, interned=interned)

    @classmethod
    def full(cls, q: int = 4, interned: bool = True) -> "GSimJoinOptions":
        """The paper's *+ Local Label* (complete GSimJoin) configuration."""
        return cls(q=q, minedit_prefix=True, local_label=True,
                   improved_order=True, improved_h=True, interned=interned)

    @classmethod
    def extended(cls, q: int = 4, interned: bool = True) -> "GSimJoinOptions":
        """``full()`` plus this library's multicover filter extension."""
        return cls(q=q, minedit_prefix=True, local_label=True,
                   improved_order=True, improved_h=True, multicover=True,
                   interned=interned)

    def with_q(self, q: int) -> "GSimJoinOptions":
        """This configuration with a different q-gram length."""
        return replace(self, q=q)


def _validate(graphs: Sequence[Graph], tau: int, options: GSimJoinOptions) -> None:
    if tau < 0:
        raise ParameterError(f"tau must be >= 0, got {tau}")
    if options.q < 0:
        raise ParameterError(f"q must be >= 0, got {options.q}")
    ids = [g.graph_id for g in graphs]
    if any(gid is None for gid in ids):
        raise ParameterError(
            "all graphs need ids; use repro.graph.assign_ids(graphs) first"
        )
    if len(set(ids)) != len(ids):
        raise ParameterError("graph ids must be distinct")
    if len({g.is_directed for g in graphs}) > 1:
        raise ParameterError("cannot mix directed and undirected graphs in a join")
    if options.anchor_bound and options.verifier != "compiled":
        raise ParameterError(
            "anchor_bound requires the 'compiled' verifier"
        )


#: Either global-ordering implementation — both expose ``sort_profile``.
Sorter = Union[QGramVocabulary, QGramOrdering]


def _build_sorter(
    profiles: Sequence[QGramProfile], options: GSimJoinOptions
) -> Sorter:
    """The configured global-ordering implementation over ``profiles``."""
    if options.interned:
        return build_vocabulary(profiles)
    return build_ordering(profiles)


#: Which JoinStatistics counter each filter's ``pruned_by`` tag feeds
#: (``multicover`` shares the local-label counter, as in verify_pair).
_PRUNE_COUNTERS: Dict[str, str] = {
    "global_label": "pruned_by_global_label",
    "count": "pruned_by_count",
    "local_label": "pruned_by_local_label",
    "multicover": "pruned_by_local_label",
}


def _journal_meta(
    graphs: Sequence[Graph],
    tau: int,
    options: GSimJoinOptions,
    budget: Optional[VerificationBudget],
) -> dict:
    """The journal header identifying one join run.

    A resumed join must re-derive exactly the same meta, so it contains
    only deterministic inputs: a collection fingerprint (id sequence
    plus per-graph sizes and vertex labels — enough to catch a swapped
    collection whose ids happen to coincide), ``tau``, the full
    options, and the budget.
    """
    ids_blob = repr(
        [
            (
                g.graph_id,
                g.num_vertices,
                g.num_edges,
                sorted(g.vertex_label_multiset().items()),
            )
            for g in graphs
        ]
    ).encode("utf-8")
    return {
        "kind": "self-join",
        "n": len(graphs),
        "tau": tau,
        "ids_sha": hashlib.sha256(ids_blob).hexdigest()[:16],
        "options": dataclasses.asdict(options),
        "budget": (
            None
            if budget is None
            else [budget.max_expansions, budget.max_seconds]
        ),
    }


def _record_of(i: int, j: int, outcome: VerifyOutcome) -> VerificationRecord:
    """Freeze one verification outcome into a journal record."""
    return VerificationRecord(
        i=i,
        j=j,
        is_result=outcome.is_result,
        pruned_by=outcome.pruned_by,
        ged=outcome.ged,
        expansions=outcome.expansions,
        ged_seconds=outcome.ged_seconds,
        undecided=outcome.undecided,
        lower=outcome.lower,
        upper=outcome.upper,
    )


def _replay_record(stats: JoinStatistics, rec: VerificationRecord) -> None:
    """Apply a journaled outcome's statistics exactly as verify_pair would."""
    counter = _PRUNE_COUNTERS.get(rec.pruned_by or "")
    if counter is not None:
        setattr(stats, counter, getattr(stats, counter) + 1)
    if rec.ran_ged:
        stats.cand2 += 1
        stats.ged_calls += 1
        stats.ged_expansions += rec.expansions
        stats.ged_time += rec.ged_seconds
    if rec.undecided:
        stats.undecided += 1
    stats.replayed_pairs += 1


def _prepare_profiles(
    graphs: Sequence[Graph], tau: int, options: GSimJoinOptions, stats: JoinStatistics
) -> Tuple[List[QGramProfile], List[PrefixInfo], List[Tuple], Sorter]:
    """Extract q-grams, build the global ordering, sort, compute prefixes."""
    profiles = [extract_qgrams(g, options.q) for g in graphs]
    sorter = _build_sorter(profiles, options)
    prefixes: List[PrefixInfo] = []
    for profile in profiles:
        sorter.sort_profile(profile)
        info = (
            minedit_prefix(profile, tau)
            if options.minedit_prefix
            else basic_prefix(profile, tau)
        )
        prefixes.append(info)
        stats.total_prefix_length += info.length
        if not info.prunable:
            stats.unprunable_graphs += 1
    labels = [
        (g.vertex_label_multiset(), g.edge_label_multiset()) for g in graphs
    ]
    return profiles, prefixes, labels, sorter


def gsim_join(
    graphs: Sequence[Graph],
    tau: int,
    options: Optional[GSimJoinOptions] = None,
    budget: Optional[VerificationBudget] = None,
    checkpoint: Optional[Union[str, os.PathLike]] = None,
    fault: Optional[FaultPlan] = None,
) -> JoinResult:
    """Self-join: all pairs within edit distance ``tau`` (Algorithm 1).

    Graphs must carry distinct ids (:func:`repro.graph.assign_ids`).
    Returns a :class:`~repro.core.result.JoinResult` whose ``pairs`` hold
    ``(r.graph_id, s.graph_id)`` tuples ordered by scan position, and
    whose ``stats`` carry every quantity the paper's figures plot.

    Robustness knobs (``docs/ROBUSTNESS.md``) — all default-off, and
    with the defaults results are bit-identical to the classic join:

    ``budget``
        Caps each pair's A* effort; pairs the budget cannot decide land
        in ``result.undecided`` with GED bounds instead of hanging.
    ``checkpoint``
        Path of an append-only journal written through as pairs verify;
        re-running with the same arguments resumes, replaying journaled
        outcomes so the result equals an uninterrupted run's.
    ``fault``
        Deterministic fault injection (tests/chaos only): the plan's
        fault fires at its configured verification step.

    Raises
    ------
    ParameterError
        On negative ``tau``/``q``, missing ids, or duplicate ids.
    CheckpointError
        When ``checkpoint`` names a journal from a different run.
    """
    if options is None:
        options = GSimJoinOptions()
    _validate(graphs, tau, options)
    if budget is not None and options.verifier not in BUDGETED_VERIFIERS:
        raise ParameterError(
            "budgeted verification requires an A*-family verifier "
            "('astar'/'object'/'compiled')"
        )

    stats = JoinStatistics(num_graphs=len(graphs), tau=tau, q=options.q)
    result = JoinResult(stats=stats)

    started = time.perf_counter()
    profiles, prefixes, labels, _sorter = _prepare_profiles(
        graphs, tau, options, stats
    )
    stats.index_time += time.perf_counter() - started

    index = InvertedIndex()
    unprunable: List[int] = []
    # One compilation cache for the whole join: every graph appears in
    # many candidate pairs, so each is compiled at most once per run.
    cache = VerificationCache() if options.verifier == "compiled" else None
    journal = (
        JoinJournal.open(checkpoint, _journal_meta(graphs, tau, options, budget))
        if checkpoint is not None
        else None
    )
    injector = fault.start() if fault is not None else None

    try:
        for i, profile in enumerate(profiles):
            info = prefixes[i]
            r = profile.graph

            # --- Candidate generation -----------------------------------
            started = time.perf_counter()
            candidate_ids: Dict[int, bool] = {}
            if info.prunable:
                for key in profile.prefix_keys(info.length):
                    for j in index.probe(key):
                        if j not in candidate_ids and passes_size_filter(
                            r, profiles[j].graph, tau
                        ):
                            candidate_ids[j] = True
                for j in unprunable:
                    if j not in candidate_ids and passes_size_filter(
                        r, profiles[j].graph, tau
                    ):
                        candidate_ids[j] = True
            else:
                for j in range(i):
                    if passes_size_filter(r, profiles[j].graph, tau):
                        candidate_ids[j] = True
            stats.cand1 += len(candidate_ids)
            stats.candidate_time += time.perf_counter() - started

            # --- Verification -------------------------------------------
            started = time.perf_counter()
            for j in candidate_ids:
                rec = (
                    journal.completed.get((i, j))
                    if journal is not None
                    else None
                )
                if rec is None:
                    if injector is not None:
                        injector.step()
                    outcome = verify_pair(
                        profile,
                        profiles[j],
                        tau,
                        labels[i],
                        labels[j],
                        use_local_label=options.local_label,
                        improved_order=options.improved_order,
                        improved_h=options.improved_h,
                        stats=stats,
                        use_multicover=options.multicover,
                        verifier=options.verifier,
                        budget=budget,
                        cache=cache,
                        anchor_bound=options.anchor_bound,
                    )
                    if journal is not None:
                        journal.append(_record_of(i, j, outcome))
                    is_result, undecided = outcome.is_result, outcome.undecided
                    lower, upper = outcome.lower, outcome.upper
                else:
                    _replay_record(stats, rec)
                    is_result, undecided = rec.is_result, rec.undecided
                    lower, upper = rec.lower, rec.upper
                if is_result:
                    result.pairs.append((profiles[j].graph.graph_id, r.graph_id))
                elif undecided:
                    result.undecided.append(
                        BoundedPair(
                            profiles[j].graph.graph_id, r.graph_id, lower, upper
                        )
                    )
            stats.verify_time += time.perf_counter() - started

            # --- Index maintenance --------------------------------------
            started = time.perf_counter()
            if info.prunable:
                for key in profile.prefix_keys(info.length):
                    index.add(key, i)
            else:
                unprunable.append(i)
            stats.index_time += time.perf_counter() - started
    finally:
        if journal is not None:
            journal.close()

    stats.results = len(result.pairs)
    stats.index_distinct_keys = index.num_distinct_keys
    stats.index_postings = index.num_postings
    stats.index_bytes = index.size_bytes
    if cache is not None:
        stats.compile_time = cache.compile_seconds
        stats.compiled_graphs = len(cache)
    return result


def gsim_join_rs(
    outer: Sequence[Graph],
    inner: Sequence[Graph],
    tau: int,
    options: Optional[GSimJoinOptions] = None,
    budget: Optional[VerificationBudget] = None,
) -> JoinResult:
    """R×S join: ``{⟨r, s⟩ | ged(r, s) ≤ τ, r ∈ outer, s ∈ inner}``.

    The inner collection is fully indexed first, then each outer graph
    probes.  The global q-gram ordering is built over both collections so
    prefixes are comparable.  Result pairs are ``(r.graph_id,
    s.graph_id)``; ids must be distinct within each collection.

    ``budget``, when given, caps per-pair A* effort exactly as in
    :func:`gsim_join`; undecided pairs land in ``result.undecided``.
    """
    if options is None:
        options = GSimJoinOptions()
    _validate(outer, tau, options)
    _validate(inner, tau, options)
    if budget is not None and options.verifier not in BUDGETED_VERIFIERS:
        raise ParameterError(
            "budgeted verification requires an A*-family verifier "
            "('astar'/'object'/'compiled')"
        )

    stats = JoinStatistics(
        num_graphs=len(outer) + len(inner), tau=tau, q=options.q
    )
    result = JoinResult(stats=stats)

    started = time.perf_counter()
    all_graphs = list(outer) + list(inner)
    profiles_all = [extract_qgrams(g, options.q) for g in all_graphs]
    sorter = _build_sorter(profiles_all, options)
    prefixes_all: List[PrefixInfo] = []
    for profile in profiles_all:
        sorter.sort_profile(profile)
        info = (
            minedit_prefix(profile, tau)
            if options.minedit_prefix
            else basic_prefix(profile, tau)
        )
        prefixes_all.append(info)
        stats.total_prefix_length += info.length
        if not info.prunable:
            stats.unprunable_graphs += 1
    labels_all = [
        (g.vertex_label_multiset(), g.edge_label_multiset()) for g in all_graphs
    ]
    n_outer = len(outer)
    outer_profiles = profiles_all[:n_outer]
    inner_profiles = profiles_all[n_outer:]

    index = InvertedIndex()
    cache = VerificationCache() if options.verifier == "compiled" else None
    inner_unprunable: List[int] = []
    for j, profile in enumerate(inner_profiles):
        info = prefixes_all[n_outer + j]
        if info.prunable:
            for key in profile.prefix_keys(info.length):
                index.add(key, j)
        else:
            inner_unprunable.append(j)
    stats.index_time += time.perf_counter() - started

    for i, profile in enumerate(outer_profiles):
        info = prefixes_all[i]
        r = profile.graph

        started = time.perf_counter()
        candidate_ids: Dict[int, bool] = {}
        if info.prunable:
            for key in profile.prefix_keys(info.length):
                for j in index.probe(key):
                    if j not in candidate_ids and passes_size_filter(
                        r, inner_profiles[j].graph, tau
                    ):
                        candidate_ids[j] = True
            for j in inner_unprunable:
                if j not in candidate_ids and passes_size_filter(
                    r, inner_profiles[j].graph, tau
                ):
                    candidate_ids[j] = True
        else:
            for j in range(len(inner_profiles)):
                if passes_size_filter(r, inner_profiles[j].graph, tau):
                    candidate_ids[j] = True
        stats.cand1 += len(candidate_ids)
        stats.candidate_time += time.perf_counter() - started

        started = time.perf_counter()
        for j in candidate_ids:
            outcome = verify_pair(
                profile,
                inner_profiles[j],
                tau,
                labels_all[i],
                labels_all[n_outer + j],
                use_local_label=options.local_label,
                improved_order=options.improved_order,
                improved_h=options.improved_h,
                stats=stats,
                use_multicover=options.multicover,
                verifier=options.verifier,
                budget=budget,
                cache=cache,
                anchor_bound=options.anchor_bound,
            )
            if outcome.is_result:
                result.pairs.append(
                    (r.graph_id, inner_profiles[j].graph.graph_id)
                )
            elif outcome.undecided:
                result.undecided.append(
                    BoundedPair(
                        r.graph_id,
                        inner_profiles[j].graph.graph_id,
                        outcome.lower,
                        outcome.upper,
                    )
                )
        stats.verify_time += time.perf_counter() - started

    stats.results = len(result.pairs)
    stats.index_distinct_keys = index.num_distinct_keys
    stats.index_postings = index.num_postings
    stats.index_bytes = index.size_bytes
    if cache is not None:
        stats.compile_time = cache.compile_seconds
        stats.compiled_graphs = len(cache)
    return result
