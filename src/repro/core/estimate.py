"""Join-size (selectivity) estimation by pair sampling.

Query optimizers want the expected result size of a similarity join
*before* paying for it.  :func:`estimate_join_size` samples pairs
uniformly from the ``n·(n−1)/2`` pair space, decides each sampled
pair's membership as cheaply as possible — size filter, global label
filter, the approximate GED bracket (:func:`repro.ged.approximate.
ged_bounds`), and only then the threshold A* — and scales the positive
rate back up, with a Wilson score interval for the uncertainty.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence

from repro.core.count_filter import passes_size_filter
from repro.grams.labels import global_label_lower_bound
from repro.exceptions import ParameterError
from repro.ged.approximate import ged_bounds
from repro.ged.astar import graph_edit_distance
from repro.graph.graph import Graph

__all__ = ["JoinSizeEstimate", "estimate_join_size"]


@dataclass(frozen=True)
class JoinSizeEstimate:
    """Outcome of a sampling-based join-size estimation.

    ``estimate`` scales the sample's positive rate to the full pair
    space; ``low``/``high`` are the Wilson 95% interval bounds scaled
    the same way; ``exact_ged_calls`` counts how often the expensive
    verifier actually ran (the filters/bounds decide the rest).
    """

    total_pairs: int
    sampled: int
    positives: int
    estimate: float
    low: float
    high: float
    exact_ged_calls: int

    def __str__(self) -> str:
        return (
            f"~{self.estimate:.1f} pairs "
            f"(95% CI [{self.low:.1f}, {self.high:.1f}]) "
            f"from {self.positives}/{self.sampled} sampled positives"
        )


def _wilson(positives: int, n: int, z: float = 1.96):
    if n == 0:
        return 0.0, 1.0
    p = positives / n
    denom = 1 + z * z / n
    centre = (p + z * z / (2 * n)) / denom
    margin = (z / denom) * math.sqrt(p * (1 - p) / n + z * z / (4 * n * n))
    return max(0.0, centre - margin), min(1.0, centre + margin)


def _pair_within(r: Graph, s: Graph, tau: int) -> (bool, bool):
    """(is_result, used_exact_ged) with cheap deciders first."""
    if not passes_size_filter(r, s, tau):
        return False, False
    if global_label_lower_bound(r, s) > tau:
        return False, False
    lower, upper = ged_bounds(r, s, beam_width=8)
    if lower > tau:
        return False, False
    if upper <= tau:
        return True, False
    return graph_edit_distance(r, s, threshold=tau) <= tau, True


def estimate_join_size(
    graphs: Sequence[Graph],
    tau: int,
    sample_pairs: int = 200,
    seed: int = 0,
) -> JoinSizeEstimate:
    """Estimate ``|{⟨r, s⟩ : ged ≤ τ}|`` from a uniform pair sample.

    Sampling is without replacement when the pair space is small enough
    (≤ 4× the requested sample), in which case small spaces are simply
    evaluated exhaustively and the interval collapses onto the exact
    count.

    Raises
    ------
    ParameterError
        On a negative ``tau`` or non-positive ``sample_pairs``.
    """
    if tau < 0:
        raise ParameterError(f"tau must be >= 0, got {tau}")
    if sample_pairs < 1:
        raise ParameterError(f"sample_pairs must be >= 1, got {sample_pairs}")

    n = len(graphs)
    total = n * (n - 1) // 2
    if total == 0:
        return JoinSizeEstimate(0, 0, 0, 0.0, 0.0, 0.0, 0)

    rng = random.Random(seed)
    exhaustive = total <= 4 * sample_pairs
    if exhaustive:
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    else:
        chosen = set()
        while len(chosen) < sample_pairs:
            i = rng.randrange(n)
            j = rng.randrange(n)
            if i != j:
                chosen.add((min(i, j), max(i, j)))
        pairs = sorted(chosen)

    positives = 0
    exact_calls = 0
    for i, j in pairs:
        hit, used_exact = _pair_within(graphs[i], graphs[j], tau)
        positives += hit
        exact_calls += used_exact

    if exhaustive:
        exact = float(positives)
        return JoinSizeEstimate(total, len(pairs), positives, exact, exact, exact, exact_calls)

    low_p, high_p = _wilson(positives, len(pairs))
    rate = positives / len(pairs)
    return JoinSizeEstimate(
        total_pairs=total,
        sampled=len(pairs),
        positives=positives,
        estimate=rate * total,
        low=low_p * total,
        high=high_p * total,
        exact_ged_calls=exact_calls,
    )
