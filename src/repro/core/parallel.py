"""Multi-core GSimJoin with a fault-tolerant verification executor.

A thin wrapper over :mod:`repro.engine.parallel`: the sequential scan
collects candidate pairs via the staged execution engine, verification
fans out in chunks over a ``concurrent.futures`` process pool, and the
parent accrues worker records — results and per-pair statistics are
identical to the sequential join (asserted by the test suite) while
wall-clock phase timings reflect the parent's view.  See the engine
module for the full mechanics (worker state, retry/timeout handling,
the in-process fallback) and ``docs/ROBUSTNESS.md`` for the fault
model.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence, Union

from repro.engine.parallel import DEFAULT_FALLBACK_BUDGET, execute_parallel_join
from repro.engine.options import GSimJoinOptions
from repro.engine.result import JoinResult
from repro.graph.graph import Graph
from repro.runtime.budget import VerificationBudget
from repro.runtime.faults import FaultPlan

__all__ = ["gsim_join_parallel", "DEFAULT_FALLBACK_BUDGET"]


def gsim_join_parallel(
    graphs: Sequence[Graph],
    tau: int,
    options: Optional[GSimJoinOptions] = None,
    workers: int = 2,
    chunk_size: int = 8,
    budget: Optional[VerificationBudget] = None,
    checkpoint: Optional[Union[str, os.PathLike]] = None,
    fault: Optional[FaultPlan] = None,
    max_retries: int = 2,
    chunk_timeout: Optional[float] = None,
    retry_backoff: float = 0.1,
    fallback_budget: Optional[VerificationBudget] = None,
) -> JoinResult:
    """Self-join with verification parallelized over ``workers`` processes.

    Produces exactly the pairs of :func:`repro.core.join.gsim_join`;
    result order follows the candidate scan.  ``workers=1`` degrades to
    an in-process loop (useful for debugging without a pool).

    Robustness knobs (all default-off; see ``docs/ROBUSTNESS.md``):

    ``budget``/``checkpoint``/``fault``
        As in :func:`repro.core.join.gsim_join` — budgeted verification
        with an ``undecided`` channel, a write-through resume journal,
        and deterministic fault injection (armed inside pool workers).
    ``chunk_timeout``
        Seconds to wait for one chunk before declaring its worker hung;
        must comfortably exceed the legitimate worst-case chunk time.
    ``max_retries``
        Re-dispatches of a failed chunk (fresh pool each time, capped
        exponential backoff of ``retry_backoff·2^attempt`` seconds)
        before its pairs are verified in-process under
        ``fallback_budget`` (default :data:`DEFAULT_FALLBACK_BUDGET`).

    Raises
    ------
    ParameterError
        Same validation as the sequential join, plus ``workers >= 1``,
        ``chunk_size >= 1``, ``max_retries >= 0`` and positive
        ``chunk_timeout``/non-negative ``retry_backoff``.
    """
    return execute_parallel_join(
        graphs,
        tau,
        options=options,
        workers=workers,
        chunk_size=chunk_size,
        budget=budget,
        checkpoint=checkpoint,
        fault=fault,
        max_retries=max_retries,
        chunk_timeout=chunk_timeout,
        retry_backoff=retry_backoff,
        fallback_budget=fallback_budget,
    )
