"""Multi-core GSimJoin.

The join's phases have very different parallelism profiles: index
construction and candidate generation are cheap and inherently
sequential (the index-nested-loop consumes its own output), while
verification — the filter cascade plus A* — dominates the runtime and
is embarrassingly parallel across candidate pairs.
:func:`gsim_join_parallel` therefore runs Algorithm 1's scan once to
*collect* the candidate pairs, then verifies them on a
``multiprocessing`` pool.

Each worker lazily builds its own q-gram profile cache, so graphs are
profiled at most once per worker regardless of how many candidate pairs
they participate in.  The parent ships the frozen global ordering (the
interning vocabulary, or the object-key ordering on the reference path)
to every worker via the pool initializer, and workers sort each profile
in it — mismatch-instance selection and the improved A* vertex order
therefore match the sequential join exactly (historically they did not:
workers re-extracted profiles but never applied the global ordering, so
``ged_expansions`` diverged from :func:`repro.core.join.gsim_join`).
Results and per-pair statistics are identical to the sequential join
(asserted by the test suite); wall-clock phase timings reflect the
parent's view (``verify_time`` is the elapsed pool time).
"""

from __future__ import annotations

import time
from multiprocessing import Pool
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.count_filter import passes_size_filter
from repro.core.inverted_index import InvertedIndex
from repro.core.join import GSimJoinOptions, Sorter, _prepare_profiles, _validate
from repro.grams.qgrams import extract_qgrams
from repro.core.result import JoinResult, JoinStatistics
from repro.core.verify import verify_pair
from repro.exceptions import ParameterError
from repro.graph.graph import Graph

__all__ = ["gsim_join_parallel"]

# Per-worker state, populated by the pool initializer.
_worker: dict = {}


def _init_worker(
    graphs: Sequence[Graph],
    tau: int,
    options: GSimJoinOptions,
    sorter: Sorter,
) -> None:
    _worker["graphs"] = list(graphs)
    _worker["tau"] = tau
    _worker["options"] = options
    _worker["sorter"] = sorter
    _worker["profiles"] = {}
    _worker["labels"] = {}


def _profile_of(i: int):
    cached = _worker["profiles"].get(i)
    if cached is None:
        g = _worker["graphs"][i]
        cached = extract_qgrams(g, _worker["options"].q)
        _worker["sorter"].sort_profile(cached)
        _worker["profiles"][i] = cached
        _worker["labels"][i] = (
            g.vertex_label_multiset(), g.edge_label_multiset()
        )
    return cached, _worker["labels"][i]


def _verify_chunk(chunk: List[Tuple[int, int]]):
    """Verify a batch of candidate pairs inside a worker process."""
    options: GSimJoinOptions = _worker["options"]
    tau: int = _worker["tau"]
    stats = JoinStatistics()
    accepted: List[Tuple[int, int]] = []
    for i, j in chunk:
        p_i, labels_i = _profile_of(i)
        p_j, labels_j = _profile_of(j)
        outcome = verify_pair(
            p_i,
            p_j,
            tau,
            labels_i,
            labels_j,
            use_local_label=options.local_label,
            improved_order=options.improved_order,
            improved_h=options.improved_h,
            stats=stats,
            use_multicover=options.multicover,
            verifier=options.verifier,
        )
        if outcome.is_result:
            accepted.append((i, j))
    return accepted, stats


def _merge_stats(total: JoinStatistics, part: JoinStatistics) -> None:
    total.cand2 += part.cand2
    total.pruned_by_global_label += part.pruned_by_global_label
    total.pruned_by_count += part.pruned_by_count
    total.pruned_by_local_label += part.pruned_by_local_label
    total.ged_calls += part.ged_calls
    total.ged_expansions += part.ged_expansions
    total.ged_time += part.ged_time  # summed CPU time across workers


def gsim_join_parallel(
    graphs: Sequence[Graph],
    tau: int,
    options: Optional[GSimJoinOptions] = None,
    workers: int = 2,
    chunk_size: int = 8,
) -> JoinResult:
    """Self-join with verification parallelized over ``workers`` processes.

    Produces exactly the pairs of :func:`repro.core.join.gsim_join`;
    result order follows the candidate scan.  ``workers=1`` degrades to
    an in-process loop (useful for debugging without a pool).

    Raises
    ------
    ParameterError
        Same validation as the sequential join, plus ``workers >= 1``
        and ``chunk_size >= 1``.
    """
    if options is None:
        options = GSimJoinOptions()
    if workers < 1:
        raise ParameterError(f"workers must be >= 1, got {workers}")
    if chunk_size < 1:
        raise ParameterError(f"chunk_size must be >= 1, got {chunk_size}")
    _validate(graphs, tau, options)

    stats = JoinStatistics(num_graphs=len(graphs), tau=tau, q=options.q)
    result = JoinResult(stats=stats)

    # --- Phase 1: sequential scan, collecting candidate pairs ---------
    started = time.perf_counter()
    profiles, prefixes, _labels, sorter = _prepare_profiles(graphs, tau, options, stats)
    stats.index_time += time.perf_counter() - started

    started = time.perf_counter()
    index = InvertedIndex()
    unprunable: List[int] = []
    pairs: List[Tuple[int, int]] = []
    for i, profile in enumerate(profiles):
        info = prefixes[i]
        r = profile.graph
        candidate_ids: Dict[int, bool] = {}
        if info.prunable:
            for key in profile.prefix_keys(info.length):
                for j in index.probe(key):
                    if j not in candidate_ids and passes_size_filter(
                        r, profiles[j].graph, tau
                    ):
                        candidate_ids[j] = True
            for j in unprunable:
                if j not in candidate_ids and passes_size_filter(
                    r, profiles[j].graph, tau
                ):
                    candidate_ids[j] = True
        else:
            for j in range(i):
                if passes_size_filter(r, profiles[j].graph, tau):
                    candidate_ids[j] = True
        pairs.extend((i, j) for j in candidate_ids)
        if info.prunable:
            for key in profile.prefix_keys(info.length):
                index.add(key, i)
        else:
            unprunable.append(i)
    stats.cand1 = len(pairs)
    stats.candidate_time += time.perf_counter() - started
    stats.index_distinct_keys = index.num_distinct_keys
    stats.index_postings = index.num_postings
    stats.index_bytes = index.size_bytes

    # --- Phase 2: parallel verification --------------------------------
    started = time.perf_counter()
    chunks = [pairs[k : k + chunk_size] for k in range(0, len(pairs), chunk_size)]
    accepted: List[Tuple[int, int]] = []
    if workers == 1 or not chunks:
        _init_worker(graphs, tau, options, sorter)
        for chunk in chunks:
            got, part = _verify_chunk(chunk)
            accepted.extend(got)
            _merge_stats(stats, part)
        _worker.clear()
    else:
        with Pool(
            processes=workers,
            initializer=_init_worker,
            initargs=(list(graphs), tau, options, sorter),
        ) as pool:
            for got, part in pool.imap(_verify_chunk, chunks):
                accepted.extend(got)
                _merge_stats(stats, part)
    stats.verify_time += time.perf_counter() - started

    for i, j in accepted:
        result.pairs.append((graphs[j].graph_id, graphs[i].graph_id))
    stats.results = len(result.pairs)
    return result
