"""Graph similarity *selection* — the query-at-a-time counterpart.

The paper positions the join as "a batch version of the graph
similarity selection problem" (Section I).  :class:`GSimIndex` provides
that selection interface with the same machinery: build an inverted
index over the collection's q-gram prefixes once, then answer
``query(g, tau)`` requests — each runs prefix probing, the Verify
cascade (Algorithm 6) and the optimized A* on the survivors.

The index is built for a maximum threshold ``tau_max``; any query with
``tau <= tau_max`` is answered exactly.  Data graphs are indexed with
their ``tau_max`` prefixes, a superset of every smaller-τ prefix, which
keeps prefix filtering sound for all admissible thresholds (at the cost
of a few extra candidates for small τ).  Graphs are also insertable
incrementally — the global q-gram ordering is frozen at construction,
and unseen q-gram keys conservatively sort last.

Queries run on the staged execution engine: the index builds its
:class:`~repro.engine.plan.JoinPlan` once and drives a per-query
:class:`~repro.engine.executor.Executor` over it, so a caller-supplied
:class:`~repro.core.result.JoinStatistics` accumulates per-stage
survivor counts and timings across queries exactly like a join run's.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence, Tuple

from repro.engine.executor import Executor
from repro.engine.inverted_index import InvertedIndex
from repro.engine.options import GSimJoinOptions, Sorter, build_sorter
from repro.engine.plan import JoinPlan, build_plan, reorder_pair_filters
from repro.engine.planner import static_choice
from repro.engine.prefix import PrefixInfo
from repro.engine.result import JoinStatistics
from repro.exceptions import ParameterError
from repro.ged.compiled import VerificationCache
from repro.graph.graph import Graph
from repro.grams.columnar import ColumnarStore, build_columnar_store
from repro.grams.qgrams import QGramProfile, extract_qgrams

__all__ = ["GSimIndex"]


class GSimIndex:
    """A graph similarity search index with edit distance thresholds.

    Parameters
    ----------
    graphs:
        Initial collection (each graph needs a distinct id).
    tau_max:
        Largest threshold the index will serve.
    options:
        Filtering configuration (defaults to ``GSimJoinOptions.full()``).

    Examples
    --------
    >>> from repro.datasets import aids_like
    >>> index = GSimIndex(aids_like(50, seed=1), tau_max=3)
    >>> matches = index.query(index.graphs[0], tau=2)
    """

    def __init__(
        self,
        graphs: Sequence[Graph] = (),
        tau_max: int = 2,
        options: Optional[GSimJoinOptions] = None,
    ) -> None:
        if tau_max < 0:
            raise ParameterError(f"tau_max must be >= 0, got {tau_max}")
        self.tau_max = tau_max
        self.options = options if options is not None else GSimJoinOptions()
        self._plan: JoinPlan = build_plan(self.options)
        # plan="auto": the index re-picks the cascade order from the
        # static cost/selectivity model whenever the collection changed
        # (lazily, on the next query).  Queries themselves run a fixed
        # plan — per-query adaptation would mutate state shared across
        # queries, and a single probe rarely sees enough pairs to
        # calibrate on anyway.
        self._auto = self.options.plan == "auto"
        self._plan_stale = self._auto
        self.graphs: List[Graph] = []
        self._profiles: List[QGramProfile] = []
        self._labels: List[Tuple] = []
        self._ids: set = set()
        self._index = InvertedIndex()
        self._unprunable: List[int] = []
        self._prefix_lengths: List[int] = []
        # Columnar store for the batch kernels, built lazily on the
        # first batched query and invalidated by every insert.
        self._store: Optional[ColumnarStore] = None
        # Verification cache, living as long as the index: data graphs
        # are compiled on first query touching them and reused by every
        # later query (indexed graphs are never mutated), and the
        # pair-level verdict memo lets overlapping queries and top-k
        # probes reuse exact and bounded verdicts across calls.
        self._cache: Optional[VerificationCache] = VerificationCache()

        initial = list(graphs)
        initial_profiles = [extract_qgrams(g, self.options.q) for g in initial]
        # Freeze the ordering on the initial collection (or empty):
        # either an interning vocabulary (ids in global-ordering rank,
        # the default) or the repr-tokenized object-key ordering.
        self._sorter: Sorter = build_sorter(initial_profiles, self.options)
        for g, profile in zip(initial, initial_profiles):
            self._validate_new(g)
            self._insert(g, profile)

    def __len__(self) -> int:
        return len(self.graphs)

    def _validate_new(self, g: Graph) -> None:
        if g.graph_id is None:
            raise ParameterError("indexed graphs need an id")
        if g.graph_id in self._ids:
            raise ParameterError(f"duplicate graph id {g.graph_id!r}")

    def _insert(self, g: Graph, profile: QGramProfile) -> None:
        self._sorter.sort_profile(profile)
        info = self._prefix(profile, self.tau_max)
        position = len(self.graphs)
        self.graphs.append(g)
        self._profiles.append(profile)
        self._labels.append((g.vertex_label_multiset(), g.edge_label_multiset()))
        self._ids.add(g.graph_id)
        self._prefix_lengths.append(info.length)
        self._store = None
        self._plan_stale = self._auto
        if info.prunable:
            for key in profile.prefix_keys(info.length):
                self._index.add(key, position)
        else:
            self._unprunable.append(position)

    def add(self, g: Graph) -> None:
        """Insert a graph into the index.

        Q-gram keys unseen at construction get overflow ids past the
        vocabulary's frozen range — they sort after every frozen key
        (among themselves by ``repr``), preserving the "unknown sorts
        last" contract of the frozen global ordering.

        Raises
        ------
        ParameterError
            If the graph has no id or a duplicate id.
        """
        self._validate_new(g)
        self._insert(g, extract_qgrams(g, self.options.q))

    def _prefix(self, profile: QGramProfile, tau: int) -> PrefixInfo:
        return self._plan.prefix.prefix_info(profile, tau)

    def _refresh_auto_plan(self) -> None:
        """Re-pick the static auto cascade order after collection changes.

        Runs the planner's static model (:func:`repro.engine.planner.
        static_choice`) over the indexed profiles at ``tau_max`` and
        re-orders the shared plan's pair filters in place.  Deterministic
        for a given collection, so repeated builds agree; result pairs
        are unaffected (every order is sound) — only prune attribution
        shifts.
        """
        if not self._plan_stale:
            return
        self._plan_stale = False
        if not self._profiles:
            return
        order, _rates, _costs = static_choice(
            self._profiles, self._labels, self.tau_max,
            self._plan.pair_filters,
        )
        self._plan = reorder_pair_filters(self._plan, order)

    def query(
        self,
        g: Graph,
        tau: int,
        stats: Optional[JoinStatistics] = None,
    ) -> List[Tuple[Hashable, int]]:
        """All indexed graphs within edit distance ``tau`` of ``g``.

        Returns ``(graph_id, distance)`` pairs (the query graph itself is
        excluded when indexed, by id).  ``stats`` optionally accrues
        candidate counts, GED timings and per-stage survivor rows
        across queries.

        Raises
        ------
        ParameterError
            If ``tau`` exceeds the index's ``tau_max`` or is negative.
        """
        if tau < 0:
            raise ParameterError(f"tau must be >= 0, got {tau}")
        if tau > self.tau_max:
            raise ParameterError(
                f"tau={tau} exceeds the index's tau_max={self.tau_max}"
            )
        self._refresh_auto_plan()
        executor = Executor(
            tau,
            self.options,
            stats if stats is not None else JoinStatistics(),
            cache=self._cache,
            plan=self._plan,
        )
        if executor.batch and self.graphs:
            if self._store is None:
                self._store = build_columnar_store(
                    self._profiles,
                    self._labels,
                    prefix_lengths=self._prefix_lengths,
                )
            executor.attach_store(self._store)
        profile = extract_qgrams(g, self.options.q)
        self._sorter.sort_profile(profile)
        info = self._prefix(profile, tau)

        candidates = executor.collect_candidates(
            profile, info, self._index, self._unprunable, self._profiles,
            len(self.graphs),
        )

        g_labels = (g.vertex_label_multiset(), g.edge_label_multiset())
        # The query graph is external to the store: its probe-side row
        # is assembled ad hoc (unseen labels can never intersect).
        js = [
            j for j in candidates if self.graphs[j].graph_id != g.graph_id
        ]
        block = (
            executor.batch_prefilter(
                self._store.external_row(profile, g_labels), js
            )
            if self._store is not None and executor.batch and js
            else None
        )
        block_pos = (
            {j: t for t, j in enumerate(js)} if block is not None else {}
        )
        matches: List[Tuple[Hashable, int]] = []
        for j in js:
            tag = block.tags[block_pos[j]] if block is not None else None
            if tag is not None:
                continue
            outcome = executor.verify_candidate(
                profile, self._profiles[j], g_labels, self._labels[j],
                hinted=(
                    block.hint_for(block_pos[j])
                    if block is not None
                    else None
                ),
            )
            if outcome.is_result:
                matches.append((self.graphs[j].graph_id, outcome.ged))
        matches.sort(key=lambda pair: (pair[1], repr(pair[0])))
        return matches

    def query_top_k(
        self,
        g: Graph,
        k: int,
        stats: Optional[JoinStatistics] = None,
    ) -> List[Tuple[Hashable, int]]:
        """The ``k`` nearest indexed graphs by edit distance.

        Thresholds are grown incrementally (``τ = 0, 1, ..., tau_max``)
        until ``k`` matches exist — the standard range-to-top-k
        reduction: every graph at distance ``<= τ`` is found by the
        ``τ`` query, so once ``>= k`` matches are in hand the ``k``
        smallest are globally correct.  If fewer than ``k`` graphs lie
        within ``tau_max``, all found matches are returned (possibly
        fewer than ``k``).

        Raises
        ------
        ParameterError
            If ``k < 1``.
        """
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        matches: List[Tuple[Hashable, int]] = []
        for tau in range(self.tau_max + 1):
            matches = self.query(g, tau, stats=stats)
            if len(matches) >= k:
                break
        return matches[:k]
