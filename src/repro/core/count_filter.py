"""Backwards-compatible re-export; the code moved to
:mod:`repro.engine.count_filter`.

The size and count filters are stages of the staged execution engine
(``repro.engine``); ``repro.core`` re-exports them so the public import
surface is unchanged.
"""

from __future__ import annotations

from repro.engine.count_filter import (
    common_qgram_count,
    count_lower_bound,
    passes_count_filter,
    passes_size_filter,
    size_lower_bound,
)

__all__ = [
    "common_qgram_count",
    "count_lower_bound",
    "passes_count_filter",
    "size_lower_bound",
    "passes_size_filter",
]
