"""Deprecated re-export; the code moved to :mod:`repro.grams.minedit`.

The bounded minimum-edit (hitting set) solvers back both minimum edit
filtering (``repro.core``) and local label filtering inside the improved
A* heuristic (``repro.ged``); they now live in :mod:`repro.grams` so
that ``ged`` never imports ``core`` (see ``docs/STATIC_ANALYSIS.md`` for
the dependency DAG).  Importing this module warns; import
:mod:`repro.grams.minedit` instead.
"""

from __future__ import annotations

import warnings

from repro.grams.minedit import (
    min_edit_exact,
    min_edit_lower_bound,
    min_prefix_length,
)

warnings.warn(
    "repro.core.minedit is deprecated; import repro.grams.minedit instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["min_edit_exact", "min_edit_lower_bound", "min_prefix_length"]
