"""Backwards-compatible re-export; the code moved to :mod:`repro.grams.minedit`.

The bounded minimum-edit (hitting set) solvers back both minimum edit
filtering (``repro.core``) and local label filtering inside the improved
A* heuristic (``repro.ged``); they now live in :mod:`repro.grams` so
that ``ged`` never imports ``core`` (see ``docs/STATIC_ANALYSIS.md`` for
the dependency DAG).
"""

from __future__ import annotations

from repro.grams.minedit import (
    min_edit_exact,
    min_edit_lower_bound,
    min_prefix_length,
)

__all__ = ["min_edit_exact", "min_edit_lower_bound", "min_prefix_length"]
