"""Path-based q-grams (Definition 1) and per-graph q-gram profiles.

A path-based q-gram is a simple path of length ``q``.  Reading the vertex
and edge labels from either end produces two label sequences; the
lexicographically smaller one is the q-gram's *key* (so the two
orientations of the same undirected path compare equal).  A graph's
q-grams form a *multiset* — unlike string q-grams they carry no starting
position, so equal-label paths are genuinely duplicated.

:class:`QGramProfile` bundles everything the filters need about one
graph: the instance list (with concrete vertex tuples, required by
minimum edit filtering and local label filtering), the key multiset, the
per-vertex counts ``|Q_u|`` and their maximum ``D_path`` (Theorem 1).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.exceptions import ParameterError
from repro.graph.graph import Graph, Vertex

__all__ = ["QGram", "QGramProfile", "extract_qgrams", "qgram_key"]

#: A q-gram key: the canonical interleaved label sequence
#: ``(l(v0), l(e01), l(v1), ..., l(vq))``.
Key = Tuple[object, ...]


def qgram_key(g: Graph, path: Tuple[Vertex, ...]) -> Key:
    """Canonical label sequence of a path.

    Undirected: the lexicographically smaller of the two reading
    directions (label types may be heterogeneous, so the comparison is on
    ``repr`` strings; the returned key keeps the original label objects).
    Directed: the forward sequence — a directed path has only one
    reading.
    """
    labels: List[object] = []
    for i, v in enumerate(path):
        if i:
            labels.append(g.edge_label(path[i - 1], v))
        labels.append(g.vertex_label(v))
    forward = tuple(labels)
    if g.is_directed:
        return forward
    backward = tuple(reversed(labels))
    if tuple(map(repr, backward)) < tuple(map(repr, forward)):
        return backward
    return forward


@dataclass(frozen=True)
class QGram:
    """One q-gram instance: a canonical key plus its concrete path."""

    key: Key
    path: Tuple[Vertex, ...]

    @property
    def vertex_set(self) -> FrozenSet[Vertex]:
        """The vertices covered by this q-gram (hitting-set elements)."""
        return frozenset(self.path)

    def edge_pairs(self) -> List[Tuple[Vertex, Vertex]]:
        """The path's edges as endpoint pairs, in traversal order.

        Callers that need duplicate-free edge sets across q-grams should
        canonicalize each pair with ``graph.canonical_edge`` (directed
        graphs keep the orientation, undirected graphs normalize it).
        """
        return [
            (self.path[i], self.path[i + 1]) for i in range(len(self.path) - 1)
        ]


@dataclass
class QGramProfile:
    """All q-gram derived quantities of one graph.

    Attributes
    ----------
    graph:
        The profiled graph.
    q:
        The q-gram length used.
    grams:
        Every q-gram instance (the multiset ``Q_r``), in enumeration
        order until :meth:`repro.core.ordering.QGramOrdering.sort_profile`
        reorders them in the global q-gram ordering.
    key_counts:
        The key multiset as a :class:`collections.Counter`.
    vertex_counts:
        ``|Q_u|`` for every vertex ``u`` (vertices in no q-gram included
        with count 0).
    d_path:
        ``D_path = max_u |Q_u|`` — the maximum number of q-grams a single
        edit operation can affect (Theorem 1); 0 for a gram-less graph.
    signature:
        Interned integer ids of the (sorted) grams, aligned index by
        index — attached by :meth:`repro.grams.vocab.QGramVocabulary.
        sort_profile`; ``None`` until then (the object-key reference
        path never attaches one).
    signature_total:
        ``True`` when the signature contains only frozen-range ids, so
        ascending id *is* the global ordering and two such signatures
        from the same vocabulary can be compared by a pure integer
        merge.  ``False`` when overflow ids are present (streaming
        inserts/queries) — pairwise comparison then falls back to the
        object-key path.
    signature_source:
        The vocabulary that interned the signature (identity-compared by
        :func:`repro.grams.mismatch.compare_qgrams` so signatures from
        different vocabularies are never merged).
    """

    graph: Graph
    q: int
    grams: List[QGram]
    key_counts: Counter = field(repr=False)
    vertex_counts: Dict[Vertex, int] = field(repr=False)
    d_path: int
    signature: Optional[List[int]] = field(default=None, repr=False)
    signature_total: bool = field(default=False, repr=False)
    signature_source: Optional[object] = field(default=None, repr=False)

    @property
    def size(self) -> int:
        """``|Q_r|`` — the total number of q-gram instances."""
        return len(self.grams)

    def count_lower_bound(self, tau: int) -> int:
        """This graph's side of the count filtering bound: |Q_r| − τ·D_path."""
        return self.size - tau * self.d_path

    def attach_signature(
        self,
        ids: List[int],
        source: Optional[object] = None,
        sort_token: Optional[Callable[[int], Tuple[int, int, str]]] = None,
    ) -> None:
        """Sort ``grams`` by interned id and record the aligned signature.

        ``ids[k]`` must be the interned id of ``grams[k].key``.  Without
        ``sort_token`` ascending id is taken to be the global ordering
        (a pure integer sort — the fast path); with it, each id is
        ranked by its token instead (used for overflow ids, which rank
        by key ``repr``) and the signature is marked non-mergeable.
        Equal ids keep their enumeration order: the sort is stable,
        matching the historical object-key sort exactly.
        """
        if sort_token is None:
            order = sorted(range(len(ids)), key=ids.__getitem__)
            self.signature_total = True
        else:
            order = sorted(range(len(ids)), key=lambda k: sort_token(ids[k]))
            self.signature_total = False
        self.grams = [self.grams[k] for k in order]
        self.signature = [ids[k] for k in order]
        self.signature_source = source

    def prefix_keys(self, length: int) -> Sequence[object]:
        """The first ``length`` index/probe keys in the global ordering.

        Interned ids when a signature is attached (the fast pipeline),
        otherwise the grams' object keys — both are valid inverted-index
        keys, so join/search code is agnostic to the representation.
        """
        signature = self.signature
        if signature is not None:
            return signature[:length]
        return [gram.key for gram in self.grams[:length]]


def _walk_grams(g: Graph, q: int, vertex_counts: Dict[Vertex, int]) -> List[QGram]:
    """Fused path walk + key construction.

    Carries the interleaved label sequence (and its repr view, for the
    canonical-orientation comparison) along the DFS so shared path
    prefixes never re-fetch labels — extraction is the hottest loop of
    the whole system (it runs per graph at index time and per state in
    the improved heuristic).
    """
    grams: List[QGram] = []
    append_gram = grams.append
    directed = g.is_directed
    position = {v: i for i, v in enumerate(g.vertices())}
    # Per-vertex (label, repr) and per-neighbor (u, position, label, repr)
    # are resolved once up front, so the walk never calls repr() or
    # touches the graph's label maps.
    vlabel = {v: g.vertex_label(v) for v in g.vertices()}
    vrepr = {v: repr(label) for v, label in vlabel.items()}
    adjacency = {
        v: [
            (u, position[u], label, repr(label))
            for u, label in g.neighbor_items(v)
        ]
        for v in g.vertices()
    }

    path: List[Vertex] = []
    labels: List[object] = []
    reprs: List[str] = []
    on_path = set()
    last_depth = q + 1

    def extend(v: Vertex, depth: int) -> None:
        path.append(v)
        on_path.add(v)
        labels.append(vlabel[v])
        reprs.append(vrepr[v])
        if depth == last_depth:
            forward = tuple(labels)
            if directed:
                key = forward
            else:
                backward_r = reprs[::-1]
                key = tuple(reversed(labels)) if backward_r < reprs else forward
            append_gram(QGram(key, tuple(path)))
            for u in path:
                vertex_counts[u] += 1
        elif depth == q:
            # Final step: apply the undirected orientation filter before
            # descending, so discarded-orientation leaves are never built.
            start_position = position[path[0]]
            for u, u_position, edge_label, edge_repr in adjacency[v]:
                if u not in on_path and (directed or start_position < u_position):
                    labels.append(edge_label)
                    reprs.append(edge_repr)
                    extend(u, last_depth)
                    labels.pop()
                    reprs.pop()
        else:
            for u, _, edge_label, edge_repr in adjacency[v]:
                if u not in on_path:
                    labels.append(edge_label)
                    reprs.append(edge_repr)
                    extend(u, depth + 1)
                    labels.pop()
                    reprs.pop()
        on_path.discard(v)
        path.pop()
        labels.pop()
        reprs.pop()

    for start in g.vertices():
        extend(start, 1)
    return grams


def extract_qgrams(g: Graph, q: int) -> QGramProfile:
    """Extract the path-based q-gram profile of ``g``.

    For ``q = 0`` every vertex is its own q-gram and ``D_path = 1``
    (relabeling or deleting a vertex affects exactly its own 0-gram).

    Raises
    ------
    ParameterError
        If ``q`` is negative.
    """
    if q < 0:
        raise ParameterError(f"q must be >= 0, got {q}")
    vertex_counts: Dict[Vertex, int] = {v: 0 for v in g.vertices()}
    if q == 0:
        grams = [QGram((g.vertex_label(v),), (v,)) for v in g.vertices()]
        for v in vertex_counts:
            vertex_counts[v] = 1
    else:
        grams = _walk_grams(g, q, vertex_counts)
    key_counts = Counter(gram.key for gram in grams)
    d_path = max(vertex_counts.values(), default=0)
    return QGramProfile(
        graph=g,
        q=q,
        grams=grams,
        key_counts=key_counts,
        vertex_counts=vertex_counts,
        d_path=d_path,
    )
