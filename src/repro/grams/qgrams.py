"""Path-based q-grams (Definition 1) and per-graph q-gram profiles.

A path-based q-gram is a simple path of length ``q``.  Reading the vertex
and edge labels from either end produces two label sequences; the
lexicographically smaller one is the q-gram's *key* (so the two
orientations of the same undirected path compare equal).  A graph's
q-grams form a *multiset* — unlike string q-grams they carry no starting
position, so equal-label paths are genuinely duplicated.

:class:`QGramProfile` bundles everything the filters need about one
graph: the instance list (with concrete vertex tuples, required by
minimum edit filtering and local label filtering), the key multiset, the
per-vertex counts ``|Q_u|`` and their maximum ``D_path`` (Theorem 1).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

from repro.exceptions import ParameterError
from repro.graph.graph import Graph, Vertex

__all__ = ["QGram", "QGramProfile", "extract_qgrams", "qgram_key"]

#: A q-gram key: the canonical interleaved label sequence
#: ``(l(v0), l(e01), l(v1), ..., l(vq))``.
Key = Tuple[object, ...]


def qgram_key(g: Graph, path: Tuple[Vertex, ...]) -> Key:
    """Canonical label sequence of a path.

    Undirected: the lexicographically smaller of the two reading
    directions (label types may be heterogeneous, so the comparison is on
    ``repr`` strings; the returned key keeps the original label objects).
    Directed: the forward sequence — a directed path has only one
    reading.
    """
    labels: List[object] = []
    for i, v in enumerate(path):
        if i:
            labels.append(g.edge_label(path[i - 1], v))
        labels.append(g.vertex_label(v))
    forward = tuple(labels)
    if g.is_directed:
        return forward
    backward = tuple(reversed(labels))
    if tuple(map(repr, backward)) < tuple(map(repr, forward)):
        return backward
    return forward


@dataclass(frozen=True)
class QGram:
    """One q-gram instance: a canonical key plus its concrete path."""

    key: Key
    path: Tuple[Vertex, ...]

    @property
    def vertex_set(self) -> FrozenSet[Vertex]:
        """The vertices covered by this q-gram (hitting-set elements)."""
        return frozenset(self.path)

    def edge_pairs(self) -> List[Tuple[Vertex, Vertex]]:
        """The path's edges as endpoint pairs, in traversal order.

        Callers that need duplicate-free edge sets across q-grams should
        canonicalize each pair with ``graph.canonical_edge`` (directed
        graphs keep the orientation, undirected graphs normalize it).
        """
        return [
            (self.path[i], self.path[i + 1]) for i in range(len(self.path) - 1)
        ]


@dataclass
class QGramProfile:
    """All q-gram derived quantities of one graph.

    Attributes
    ----------
    graph:
        The profiled graph.
    q:
        The q-gram length used.
    grams:
        Every q-gram instance (the multiset ``Q_r``), in enumeration
        order until :meth:`repro.core.ordering.QGramOrdering.sort_profile`
        reorders them in the global q-gram ordering.
    key_counts:
        The key multiset as a :class:`collections.Counter`.
    vertex_counts:
        ``|Q_u|`` for every vertex ``u`` (vertices in no q-gram included
        with count 0).
    d_path:
        ``D_path = max_u |Q_u|`` — the maximum number of q-grams a single
        edit operation can affect (Theorem 1); 0 for a gram-less graph.
    """

    graph: Graph
    q: int
    grams: List[QGram]
    key_counts: Counter = field(repr=False)
    vertex_counts: Dict[Vertex, int] = field(repr=False)
    d_path: int

    @property
    def size(self) -> int:
        """``|Q_r|`` — the total number of q-gram instances."""
        return len(self.grams)

    def count_lower_bound(self, tau: int) -> int:
        """This graph's side of the count filtering bound: |Q_r| − τ·D_path."""
        return self.size - tau * self.d_path


def _walk_grams(g: Graph, q: int, vertex_counts: Dict[Vertex, int]) -> List[QGram]:
    """Fused path walk + key construction.

    Carries the interleaved label sequence (and its repr view, for the
    canonical-orientation comparison) along the DFS so shared path
    prefixes never re-fetch labels — extraction is the hottest loop of
    the whole system (it runs per graph at index time and per state in
    the improved heuristic).
    """
    grams: List[QGram] = []
    directed = g.is_directed
    position = {v: i for i, v in enumerate(g.vertices())}
    adjacency = {v: list(g.neighbor_items(v)) for v in g.vertices()}
    vlabel = {v: g.vertex_label(v) for v in g.vertices()}

    path: List[Vertex] = []
    labels: List[object] = []
    reprs: List[str] = []
    on_path = set()

    def extend(v: Vertex) -> None:
        path.append(v)
        on_path.add(v)
        label = vlabel[v]
        labels.append(label)
        reprs.append(repr(label))
        if len(path) == q + 1:
            if directed or position[path[0]] < position[path[-1]]:
                forward = tuple(labels)
                if directed:
                    key = forward
                else:
                    backward_r = reprs[::-1]
                    key = tuple(reversed(labels)) if backward_r < reprs else forward
                gram = QGram(key, tuple(path))
                grams.append(gram)
                for u in path:
                    vertex_counts[u] += 1
        else:
            for u, edge_label in adjacency[v]:
                if u not in on_path:
                    labels.append(edge_label)
                    reprs.append(repr(edge_label))
                    extend(u)
                    labels.pop()
                    reprs.pop()
        on_path.discard(v)
        path.pop()
        labels.pop()
        reprs.pop()

    for start in g.vertices():
        extend(start)
    return grams


def extract_qgrams(g: Graph, q: int) -> QGramProfile:
    """Extract the path-based q-gram profile of ``g``.

    For ``q = 0`` every vertex is its own q-gram and ``D_path = 1``
    (relabeling or deleting a vertex affects exactly its own 0-gram).

    Raises
    ------
    ParameterError
        If ``q`` is negative.
    """
    if q < 0:
        raise ParameterError(f"q must be >= 0, got {q}")
    vertex_counts: Dict[Vertex, int] = {v: 0 for v in g.vertices()}
    if q == 0:
        grams = [QGram((g.vertex_label(v),), (v,)) for v in g.vertices()]
        for v in vertex_counts:
            vertex_counts[v] = 1
    else:
        grams = _walk_grams(g, q, vertex_counts)
    key_counts = Counter(gram.key for gram in grams)
    d_path = max(vertex_counts.values(), default=0)
    return QGramProfile(
        graph=g,
        q=q,
        grams=grams,
        key_counts=key_counts,
        vertex_counts=vertex_counts,
        d_path=d_path,
    )
