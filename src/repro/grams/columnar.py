"""Columnar (CSR-style) signature store over a profile collection.

The per-pair filter cascade consumes interned q-gram signatures and
label multisets one Python object at a time; the batch kernels of
:mod:`repro.engine.batch` instead evaluate whole candidate blocks as
numpy array operations.  This module owns the data layout those kernels
read: the entire collection laid out as contiguous int64 arrays.

Multisets are stored *compressed*: each CSR row is a sorted run of
distinct values with a parallel count column, so a row costs
``O(distinct)`` elements rather than ``O(multiplicity)`` — label
multisets over a handful of distinct labels shrink ~10×, and the
intersection kernel (:func:`repro.engine.batch.block_multiset_intersections`)
reduces to ``Σ min(count_row, count_r)`` over matched values.

* ``sig_offsets``/``sig_values``/``sig_counts`` — compressed rows of
  each graph's interned q-gram multiset (``sig_size`` keeps the total
  with multiplicity);
* ``lab_offsets``/``lab_values``/``lab_counts`` — compressed rows of
  the *combined* vertex+edge label multisets: vertex labels interned to
  ``2·id``, edge labels to ``2·id + 1`` (disjoint even/odd ranges), so
  the global label filter's two per-type intersections collapse into
  one kernel call — ``Γ_v + Γ_e = max(|Av|,|Bv|) + max(|Ae|,|Be|) −
  |A ∩ B|`` with the per-type sizes kept in the ``vlab_len``/
  ``elab_len`` columns;
* parallel scalar columns ``num_vertices``, ``num_edges``, ``d_path``,
  ``sig_size`` and ``prefix_length``, plus a ``mergeable`` flag marking
  rows whose signature ids come from the store's vocabulary (the
  precondition for the batch count kernel).

The store is immutable after construction and safe to ship to worker
processes (plain ndarrays and label dicts).  A graph outside the store
(an index query, the outer side of a future out-of-core shard) enters
the kernels through :meth:`ColumnarStore.external_row`, which maps
unseen labels to unique *negative* ids — never colliding with the
store's non-negative ids, so multiset intersections stay exact.

Requires numpy; import the module freely, but call
:func:`build_columnar_store` only when :data:`HAVE_NUMPY` is true (the
engine's scalar path never touches this module).
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.grams.qgrams import QGramProfile

if TYPE_CHECKING:
    import numpy as np
else:
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - exercised by the no-numpy job
        np = None

#: Whether numpy is importable — the batch pipeline's availability flag.
HAVE_NUMPY = np is not None

__all__ = ["HAVE_NUMPY", "SignatureRow", "ColumnarStore", "build_columnar_store"]


class SignatureRow:
    """One graph's columns, as the batch kernels consume them.

    Either a zero-copy view into a :class:`ColumnarStore` row
    (:meth:`ColumnarStore.row`) or a store-compatible encoding of an
    outside graph (:meth:`ColumnarStore.external_row`).
    ``sig_values``/``sig_counts`` hold the compressed interned q-gram
    multiset (sorted distinct ids + multiplicities, ``sig_size`` the
    total), ``lab_values``/``lab_counts`` the compressed combined
    even/odd label multiset (``vlab_len``/``elab_len`` the per-type
    totals); ``mergeable`` is true when the signature is drawn from the
    store's vocabulary so the batch count kernel may intersect it
    against store rows.
    """

    __slots__ = (
        "sig_values",
        "sig_counts",
        "sig_size",
        "num_vertices",
        "num_edges",
        "d_path",
        "lab_values",
        "lab_counts",
        "vlab_len",
        "elab_len",
        "mergeable",
    )

    def __init__(
        self,
        sig_values: "np.ndarray",
        sig_counts: "np.ndarray",
        sig_size: int,
        num_vertices: int,
        num_edges: int,
        d_path: int,
        lab_values: "np.ndarray",
        lab_counts: "np.ndarray",
        vlab_len: int,
        elab_len: int,
        mergeable: bool,
    ) -> None:
        """Bind one row's columns (arrays are not copied)."""
        self.sig_values = sig_values
        self.sig_counts = sig_counts
        self.sig_size = sig_size
        self.num_vertices = num_vertices
        self.num_edges = num_edges
        self.d_path = d_path
        self.lab_values = lab_values
        self.lab_counts = lab_counts
        self.vlab_len = vlab_len
        self.elab_len = elab_len
        self.mergeable = mergeable


def _compress(counts: Counter) -> Tuple["np.ndarray", "np.ndarray"]:
    """A ``{value: count}`` mapping as sorted (values, counts) arrays."""
    if not counts:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    items = sorted(counts.items())
    values = np.asarray([v for v, _ in items], dtype=np.int64)
    cnts = np.asarray([c for _, c in items], dtype=np.int64)
    return values, cnts


def _csr(
    rows: List[Tuple["np.ndarray", "np.ndarray"]],
) -> Tuple["np.ndarray", "np.ndarray", "np.ndarray"]:
    """Stack per-row (values, counts) pairs into CSR columns."""
    offsets = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum([values.shape[0] for values, _ in rows], out=offsets[1:])
    if rows:
        flat_values = np.concatenate([values for values, _ in rows])
        flat_counts = np.concatenate([cnts for _, cnts in rows])
    else:
        flat_values = np.zeros(0, dtype=np.int64)
        flat_counts = np.zeros(0, dtype=np.int64)
    return offsets, flat_values, flat_counts


def _combined_labels(
    labels: Tuple,
    vlabel_ids: Dict[object, int],
    elabel_ids: Dict[object, int],
) -> Counter:
    """One graph's label pair as a combined even/odd id Counter.

    Grows the interners as needed; vertex labels encode to ``2·id``,
    edge labels to ``2·id + 1``.
    """
    combined: Counter = Counter()
    for counts, interner, parity in zip(
        labels, (vlabel_ids, elabel_ids), (0, 1)
    ):
        for label, count in counts.items():
            combined[2 * interner.setdefault(label, len(interner)) + parity] = (
                count
            )
    return combined


class ColumnarStore:
    """The whole collection as contiguous parallel numpy columns.

    Built by :func:`build_columnar_store`; immutable afterwards.  Row
    order is the profile order the store was built from, so join/search
    drivers index it by the same positions they use for ``profiles``
    (plus a caller-side base offset for concatenated collections).
    """

    __slots__ = (
        "source",
        "sig_offsets",
        "sig_values",
        "sig_counts",
        "lab_offsets",
        "lab_values",
        "lab_counts",
        "num_vertices",
        "num_edges",
        "d_path",
        "sig_size",
        "vlab_len",
        "elab_len",
        "prefix_length",
        "mergeable",
        "vlabel_ids",
        "elabel_ids",
    )

    def __init__(
        self,
        source: Optional[object],
        sig_offsets: "np.ndarray",
        sig_values: "np.ndarray",
        sig_counts: "np.ndarray",
        lab_offsets: "np.ndarray",
        lab_values: "np.ndarray",
        lab_counts: "np.ndarray",
        num_vertices: "np.ndarray",
        num_edges: "np.ndarray",
        d_path: "np.ndarray",
        sig_size: "np.ndarray",
        vlab_len: "np.ndarray",
        elab_len: "np.ndarray",
        prefix_length: "np.ndarray",
        mergeable: "np.ndarray",
        vlabel_ids: Dict[object, int],
        elabel_ids: Dict[object, int],
    ) -> None:
        """Bind the finished columns (see :func:`build_columnar_store`)."""
        self.source = source
        self.sig_offsets = sig_offsets
        self.sig_values = sig_values
        self.sig_counts = sig_counts
        self.lab_offsets = lab_offsets
        self.lab_values = lab_values
        self.lab_counts = lab_counts
        self.num_vertices = num_vertices
        self.num_edges = num_edges
        self.d_path = d_path
        self.sig_size = sig_size
        self.vlab_len = vlab_len
        self.elab_len = elab_len
        self.prefix_length = prefix_length
        self.mergeable = mergeable
        self.vlabel_ids = vlabel_ids
        self.elabel_ids = elabel_ids

    def __len__(self) -> int:
        """Number of rows (graphs) in the store."""
        return len(self.num_vertices)

    def row(self, i: int) -> SignatureRow:
        """Row ``i`` as a :class:`SignatureRow` of zero-copy views.

        Scalar fields stay numpy scalars (no ``int()`` round-trips —
        the kernels only feed them back into array arithmetic, and the
        conversion cost is measurable at one row per probe).
        """
        sig_span = slice(self.sig_offsets[i], self.sig_offsets[i + 1])
        lab_span = slice(self.lab_offsets[i], self.lab_offsets[i + 1])
        return SignatureRow(
            sig_values=self.sig_values[sig_span],
            sig_counts=self.sig_counts[sig_span],
            sig_size=self.sig_size[i],
            num_vertices=self.num_vertices[i],
            num_edges=self.num_edges[i],
            d_path=self.d_path[i],
            lab_values=self.lab_values[lab_span],
            lab_counts=self.lab_counts[lab_span],
            vlab_len=self.vlab_len[i],
            elab_len=self.elab_len[i],
            mergeable=bool(self.mergeable[i]),
        )

    def external_row(self, profile: QGramProfile, labels: Tuple) -> SignatureRow:
        """Encode a graph *outside* the store for batching against it.

        ``labels`` is the graph's ``(vertex, edge)`` label-multiset
        pair, as the drivers cache it.  Labels the store never saw map
        to unique negative ids of the matching parity (the same unseen
        label always maps to the same negative id within this row), so
        they can never match a store id and the intersection kernels
        stay exact.  The row is ``mergeable`` only when the profile
        carries a signature from the store's own vocabulary.
        """
        mergeable = (
            profile.signature is not None
            and self.source is not None
            and profile.signature_source is self.source
        )
        if mergeable:
            sig_values, sig_counts = _compress(Counter(profile.signature))
        else:
            sig_values = sig_counts = np.zeros(0, dtype=np.int64)
        combined: Counter = Counter()
        lens = []
        for counts, interner, parity in zip(
            labels, (self.vlabel_ids, self.elabel_ids), (0, 1)
        ):
            unseen: Dict[object, int] = {}
            size = 0
            for label, count in counts.items():
                label_id = interner.get(label)
                if label_id is None:
                    label_id = unseen.setdefault(label, -1 - len(unseen))
                combined[2 * label_id + parity] = count
                size += count
            lens.append(size)
        lab_values, lab_counts = _compress(combined)
        g = profile.graph
        return SignatureRow(
            sig_values=sig_values,
            sig_counts=sig_counts,
            sig_size=profile.size,
            num_vertices=g.num_vertices,
            num_edges=g.num_edges,
            d_path=profile.d_path,
            lab_values=lab_values,
            lab_counts=lab_counts,
            vlab_len=lens[0],
            elab_len=lens[1],
            mergeable=mergeable,
        )


def build_columnar_store(
    profiles: Sequence[QGramProfile],
    labels: Sequence[Tuple],
    prefix_lengths: Optional[Sequence[int]] = None,
) -> ColumnarStore:
    """Lay ``profiles`` (with their cached label pairs) out columnar.

    ``labels[i]`` is the ``(vertex, edge)`` label-multiset pair of
    ``profiles[i].graph``; ``prefix_lengths`` optionally records each
    profile's chosen prefix length (zero when not supplied — the column
    is informational, no kernel reads it).  The store's signature
    vocabulary is the profiles' common ``signature_source``; rows whose
    profile carries no signature from it are stored with an empty
    signature segment and ``mergeable=False`` (the batch count kernel
    skips them, the scalar cascade takes over).
    """
    source = next(
        (p.signature_source for p in profiles if p.signature is not None), None
    )
    n = len(profiles)
    sig_rows: List[Tuple["np.ndarray", "np.ndarray"]] = []
    lab_rows: List[Tuple["np.ndarray", "np.ndarray"]] = []
    vlabel_ids: Dict[object, int] = {}
    elabel_ids: Dict[object, int] = {}
    num_vertices = np.zeros(n, dtype=np.int64)
    num_edges = np.zeros(n, dtype=np.int64)
    d_path = np.zeros(n, dtype=np.int64)
    sig_size = np.zeros(n, dtype=np.int64)
    vlab_len = np.zeros(n, dtype=np.int64)
    elab_len = np.zeros(n, dtype=np.int64)
    prefix_length = np.zeros(n, dtype=np.int64)
    mergeable = np.zeros(n, dtype=bool)
    for i, profile in enumerate(profiles):
        g = profile.graph
        num_vertices[i] = g.num_vertices
        num_edges[i] = g.num_edges
        d_path[i] = profile.d_path
        sig_size[i] = profile.size
        row_mergeable = (
            profile.signature is not None
            and source is not None
            and profile.signature_source is source
        )
        mergeable[i] = row_mergeable
        sig_rows.append(
            _compress(Counter(profile.signature) if row_mergeable else Counter())
        )
        vlab_len[i] = sum(labels[i][0].values())
        elab_len[i] = sum(labels[i][1].values())
        lab_rows.append(
            _compress(_combined_labels(labels[i], vlabel_ids, elabel_ids))
        )
    if prefix_lengths is not None:
        prefix_length[:] = np.asarray(prefix_lengths, dtype=np.int64)
    sig_offsets, sig_values, sig_counts = _csr(sig_rows)
    lab_offsets, lab_values, lab_counts = _csr(lab_rows)
    return ColumnarStore(
        source=source,
        sig_offsets=sig_offsets,
        sig_values=sig_values,
        sig_counts=sig_counts,
        lab_offsets=lab_offsets,
        lab_values=lab_values,
        lab_counts=lab_counts,
        num_vertices=num_vertices,
        num_edges=num_edges,
        d_path=d_path,
        sig_size=sig_size,
        vlab_len=vlab_len,
        elab_len=elab_len,
        prefix_length=prefix_length,
        mergeable=mergeable,
        vlabel_ids=vlabel_ids,
        elabel_ids=elabel_ids,
    )
