"""Shared q-gram and label-filter primitives.

This package is the *cycle-free* home of everything both the filter
layer (:mod:`repro.core`) and the GED layer (:mod:`repro.ged`) need:
path-based q-gram extraction, mismatching-q-gram comparison, the
bounded minimum-edit (hitting set) solvers, and the label lower
bounds.  It sits below ``ged`` in the dependency DAG

    ``graph -> {strings, setcover} -> grams -> ged -> core -> ...``

so that ``repro.ged.heuristics`` / ``repro.ged.vertex_order`` no longer
import ``repro.core`` (the historical ``core <-> ged`` import cycle;
see ``docs/STATIC_ANALYSIS.md``).  The former homes —
``repro.core.qgrams``, ``repro.core.mismatch``, ``repro.core.minedit``
and ``repro.core.label_filter`` — remain as deprecated re-export
shims that emit a :class:`DeprecationWarning` on import.
"""

from __future__ import annotations

from repro.grams.labels import (
    connected_gram_components,
    gamma,
    global_label_lower_bound,
    local_label_lower_bound,
    multicover_min_edit_bound,
)
from repro.grams.minedit import (
    min_edit_exact,
    min_edit_lower_bound,
    min_prefix_length,
)
from repro.grams.mismatch import MismatchResult, compare_qgrams, mismatching_grams
from repro.grams.qgrams import Key, QGram, QGramProfile, extract_qgrams, qgram_key
from repro.grams.vocab import QGramVocabulary, build_vocabulary

__all__ = [
    "Key",
    "MismatchResult",
    "QGram",
    "QGramProfile",
    "QGramVocabulary",
    "build_vocabulary",
    "compare_qgrams",
    "connected_gram_components",
    "extract_qgrams",
    "gamma",
    "global_label_lower_bound",
    "local_label_lower_bound",
    "min_edit_exact",
    "min_edit_lower_bound",
    "min_prefix_length",
    "mismatching_grams",
    "multicover_min_edit_bound",
    "qgram_key",
]
