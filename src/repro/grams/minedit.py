"""Minimum edit filtering (Section IV, Algorithms 2–4).

The *minimum graph edit operation* problem asks, for a multiset ``Q`` of
q-gram instances, the minimum number of edit operations affecting every
q-gram in ``Q``.  Since the q-grams affected by any edit operation are a
subset of those affected by relabeling one of its vertices (Theorem 2's
key observation), the problem is exactly a minimum *hitting set* over the
q-grams' vertex sets — NP-hard in general, but only its comparison with
``τ`` matters, so a bounded exact search is cheap.  A greedy run divided
by the Slavík ratio gives a fast certified lower bound (Algorithm 2).

``min_prefix_length`` (Algorithm 4) shrinks the basic prefix
``τ·D_path + 1`` to the shortest prefix whose q-grams already require
``τ + 1`` edit operations — Lemma 3 then allows probing only that prefix.

Two implementations of Algorithm 4 coexist.  ``min_prefix_length`` is
the paper's double binary search (greedy bracket, then exact), kept
verbatim as the reference-path oracle.  ``min_prefix_length_direct``
computes the same prefix with a single bounded branch-and-bound over
hitting vertices — the interned fast path uses it (see
``docs/PERFORMANCE.md``); both return bit-identical results, asserted
property-style in ``tests/test_vocab.py``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from repro.grams.qgrams import QGram
from repro.exceptions import ParameterError
from repro.graph.graph import Vertex
from repro.setcover import exact_min_hitting_set, greedy_lower_bound

__all__ = [
    "min_edit_exact",
    "min_edit_lower_bound",
    "min_prefix_length",
    "min_prefix_length_direct",
]


def min_edit_exact(grams: Sequence[QGram], cap: int) -> int:
    """Exact ``min-edit(Q)``, cut off at ``cap`` (Algorithm 3).

    Returns the exact minimum number of edit operations affecting every
    q-gram in ``grams`` if it is ``<= cap``, else ``cap + 1``.
    """
    if not grams:
        return 0
    return exact_min_hitting_set([g.vertex_set for g in grams], cap)


def min_edit_lower_bound(grams: Sequence[QGram]) -> int:
    """Greedy/Slavík lower bound on ``min-edit(Q)`` (Algorithm 2)."""
    if not grams:
        return 0
    return greedy_lower_bound([g.vertex_set for g in grams])


def min_prefix_length(
    sorted_grams: Sequence[QGram],
    tau: int,
    d_path: int,
) -> Optional[int]:
    """Minimum edit filtering prefix length (Algorithm 4).

    Parameters
    ----------
    sorted_grams:
        The graph's q-gram instances sorted in the global ordering.
    tau:
        The edit distance threshold.
    d_path:
        The graph's ``D_path`` (bounds the basic prefix).

    Returns
    -------
    The smallest prefix length ``p`` such that affecting all q-grams in
    the ``p``-prefix requires at least ``τ + 1`` edit operations, or
    ``None`` when no prefix achieves that (*underflow*: fewer than
    ``τ·D_path + 1`` q-grams exist and even the full multiset can be
    wiped out by ``τ`` operations, so the graph cannot be pruned by
    prefix filtering at all).

    Notes
    -----
    Exactly as in the paper, a first binary search with the cheap greedy
    lower bound narrows the range, and a second with the exact solver
    pins the answer.  The exact predicate is monotone (Proposition 1),
    making the second search correct; the first merely supplies an upper
    bracket, which we re-validate with the exact solver since the greedy
    bound itself need not be monotone.
    """
    if tau < 0:
        raise ParameterError(f"tau must be >= 0, got {tau}")
    total = len(sorted_grams)
    hard_right = min(tau * d_path + 1, total)
    if hard_right == 0:
        return None

    def exact_exceeds(p: int) -> bool:
        return min_edit_exact(sorted_grams[:p], tau) > tau

    # Underflow: even the longest admissible prefix can be affected by
    # <= tau operations -> prefix filtering cannot prune this graph.
    if not exact_exceeds(hard_right):
        return None

    lo = min(tau + 1, hard_right)

    # Round 1: greedy lower bound narrows the right bracket.
    left, right = lo, hard_right
    while left < right:
        mid = (left + right) // 2
        if min_edit_lower_bound(sorted_grams[:mid]) <= tau:
            left = mid + 1
        else:
            right = mid
    bracket = left
    if not exact_exceeds(bracket):
        # The greedy bound under-shot here (it is not monotone); fall
        # back to the guaranteed bracket.
        bracket = hard_right

    # Round 2: exact binary search within [lo, bracket].
    left, right = lo, bracket
    while left < right:
        mid = (left + right) // 2
        if exact_exceeds(mid):
            right = mid
        else:
            left = mid + 1
    return left


def _longest_hit_prefix(
    paths: Sequence[Tuple[Vertex, ...]], tau: int, cap: int
) -> int:
    """Longest prefix of ``paths`` hittable by ``<= tau`` vertices.

    Branch and bound: scan forward past grams already hit by the chosen
    vertices; at the first unhit gram, any hitting set must contain one
    of its vertices, so branch on them (depth ``tau``, branching at most
    ``q + 1``).  Saturates at ``cap`` — once a prefix of length ``cap``
    is hittable the exact maximum no longer matters to the caller.
    """
    best = 0
    chosen: Set[Vertex] = set()
    disjoint = chosen.isdisjoint

    def walk(start: int, budget: int) -> bool:
        nonlocal best
        i = start
        while i < cap and not disjoint(paths[i]):
            i += 1
        if i > best:
            best = i
        if i >= cap:
            return True  # saturated: the whole admissible prefix is hittable
        if budget == 0:
            return False
        for v in paths[i]:
            chosen.add(v)
            saturated = walk(i + 1, budget - 1)
            chosen.discard(v)
            if saturated:
                return True
        return False

    walk(0, tau)
    return best


def min_prefix_length_direct(
    sorted_grams: Sequence[QGram],
    tau: int,
    d_path: int,
) -> Optional[int]:
    """Algorithm 4 as a single bounded search (the interned fast path).

    Same contract and bit-identical results as
    :func:`min_prefix_length`, computed without binary searching: the
    answer ``p`` is one more than the longest prefix hittable by ``τ``
    vertices (min-edit is exactly a minimum hitting set over the grams'
    vertex sets, and a simple path never repeats a vertex, so the path
    tuples serve as the sets directly).  One branch-and-bound sweep
    replaces ``O(log p)`` greedy *and* exact hitting-set solves, each of
    which rebuilt its instance from scratch.
    """
    if tau < 0:
        raise ParameterError(f"tau must be >= 0, got {tau}")
    total = len(sorted_grams)
    hard_right = min(tau * d_path + 1, total)
    if hard_right == 0:
        return None
    paths = [gram.path for gram in sorted_grams[:hard_right]]
    hittable = _longest_hit_prefix(paths, tau, hard_right)
    if hittable >= hard_right:
        return None  # underflow: prefix filtering cannot prune this graph
    return hittable + 1
