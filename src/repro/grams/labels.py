"""Label filtering (Section V, Lemmas 4–5, Algorithm 5).

*Global label filtering* lower-bounds GED by the label-multiset
mismatch of the whole graphs:

    ``Γ(L_V(r), L_V(s)) + Γ(L_E(r), L_E(s)) <= ged(r, s)``

with ``Γ(A, B) = max(|A|, |B|) − |A ∩ B|`` on multisets.

*Local label filtering* sharpens this using mismatching q-grams: the
mismatching instances are grouped into connected components (q-grams
sharing a vertex); within each component both the exact minimum edit
count (Algorithm 3) and the label mismatch against the *other whole
graph* (Lemma 4) are lower bounds, so the larger is taken, and —
because the components are vertex- and edge-disjoint
(Proposition 2) — the per-component bounds add up.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.grams.minedit import min_edit_exact, min_edit_lower_bound
from repro.grams.qgrams import QGram
from repro.graph.graph import Graph, Vertex
from repro.setcover import exact_min_multicover, multicover_coverage_bound

__all__ = [
    "gamma",
    "global_label_lower_bound",
    "connected_gram_components",
    "local_label_lower_bound",
    "multicover_min_edit_bound",
]


def gamma(a: Counter, b: Counter) -> int:
    """``Γ(A, B) = max(|A|, |B|) − |A ∩ B|`` on label multisets."""
    size_a = sum(a.values())
    size_b = sum(b.values())
    inter = sum(min(count, b[label]) for label, count in a.items() if label in b)
    return max(size_a, size_b) - inter


def global_label_lower_bound(
    r: Graph,
    s: Graph,
    r_labels: Optional[Tuple[Counter, Counter]] = None,
    s_labels: Optional[Tuple[Counter, Counter]] = None,
) -> int:
    """Lemma 5's GED lower bound ``Γ(L_V) + Γ(L_E)``.

    Label multisets can be passed precomputed (joins cache them per
    graph); otherwise they are derived on the fly.
    """
    rv, re = r_labels if r_labels is not None else (
        r.vertex_label_multiset(), r.edge_label_multiset())
    sv, se = s_labels if s_labels is not None else (
        s.vertex_label_multiset(), s.edge_label_multiset())
    return gamma(rv, sv) + gamma(re, se)


def _component_index_groups(grams: Sequence[QGram]) -> List[List[int]]:
    """Indices of ``grams`` grouped into vertex-connected components.

    Two instances are connected when they share a vertex; components are
    the transitive closure.  Union–find over the instances' path
    vertices (a simple path never repeats a vertex, so the path tuple is
    already duplicate-free).
    """
    parent: Dict[Vertex, Vertex] = {}

    def find(x: Vertex) -> Vertex:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(x: Vertex, y: Vertex) -> None:
        rx, ry = find(x), find(y)
        if rx != ry:
            parent[rx] = ry

    for gram in grams:
        vertices = gram.path
        for v in vertices:
            parent.setdefault(v, v)
        for v in vertices[1:]:
            union(vertices[0], v)

    groups: Dict[Vertex, List[int]] = {}
    for index, gram in enumerate(grams):
        root = find(gram.path[0])
        groups.setdefault(root, []).append(index)
    return list(groups.values())


def connected_gram_components(grams: Sequence[QGram]) -> List[List[QGram]]:
    """Group q-gram instances into vertex-connected components.

    Two instances are connected when they share a vertex; components are
    the transitive closure.  Union–find over the instances' vertices.
    """
    return [
        [grams[i] for i in group] for group in _component_index_groups(grams)
    ]


def _component_label_multisets(
    graph: Graph, component: Sequence[QGram]
) -> Tuple[Counter, Counter]:
    """Vertex/edge label multisets of the subgraph formed by a component.

    The subgraph consists of the union of the component's path vertices
    and path edges; each vertex/edge contributes its label once.
    """
    vertices: Set[Vertex] = set()
    edges: Set[Tuple[Vertex, Vertex]] = set()
    for gram in component:
        vertices.update(gram.path)
        edges.update(graph.canonical_edge(u, v) for u, v in gram.edge_pairs())
    vertex_labels = Counter(graph.vertex_label(v) for v in vertices)
    edge_labels = Counter(graph.edge_label(u, v) for u, v in edges)
    return vertex_labels, edge_labels


def _multiset_difference_size(a: Counter, b: Counter) -> int:
    """``|A \\ B|`` on multisets."""
    return sum(max(0, count - b.get(label, 0)) for label, count in a.items())


def local_label_lower_bound(
    mismatch_grams: Sequence[QGram],
    graph: Graph,
    other: Graph,
    tau: int,
    other_labels: Optional[Tuple[Counter, Counter]] = None,
    exact: bool = True,
    required_keys: Optional[frozenset] = None,
    required_mask: Optional[Sequence[bool]] = None,
) -> int:
    """Algorithm 5: a GED lower bound from mismatching q-grams.

    Parameters
    ----------
    mismatch_grams:
        Instances of ``Q_graph \\ Q_other``.
    graph / other:
        The graph owning the mismatching instances, and the comparison
        graph whose labels bound the *edit-con* term.
    tau:
        Caps the per-component exact min-edit search (values above
        ``tau`` saturate — the caller only compares the total to
        ``tau``).
    other_labels:
        Optional precomputed ``(L_V(other), L_E(other))``.
    exact:
        Use the exact bounded min-edit per component (the paper's
        choice); ``False`` switches to the greedy lower bound for very
        large components.
    required_keys:
        Keys whose instances are *guaranteed affected* by any edit
        script — in practice the keys absent from ``other``
        (:attr:`~repro.grams.mismatch.MismatchResult.absent_keys_r`).
        Only those instances enter the *edit-loc* hitting set; for a key
        present in both graphs with a surplus, which instances an edit
        script affected is unknowable, so counting a specific choice
        would over-estimate and wrongly prune (graph q-grams carry no
        positions — the paper's Section III footnote 2 caveat).  With
        ``None`` every instance is treated as required, which is only
        sound when the caller knows the whole multiset must be affected.
    required_mask:
        Per-instance flags aligned with ``mismatch_grams`` — the
        interned pipeline's form of the same information
        (:attr:`~repro.grams.mismatch.MismatchResult.required_mask_r`),
        avoiding key hashing entirely.  Takes precedence over
        ``required_keys`` when given.

    Notes
    -----
    The instances are grouped into vertex-connected components; within
    each, both the hitting-set bound over required instances and the
    label-surplus bound (Lemma 4) hold, so the larger counts, and the
    components' vertex/edge-disjointness (Proposition 2) lets the
    per-component bounds add up.
    """
    if not mismatch_grams:
        return 0
    ov, oe = other_labels if other_labels is not None else (
        other.vertex_label_multiset(), other.edge_label_multiset())
    total = 0
    for indices in _component_index_groups(mismatch_grams):
        component = [mismatch_grams[i] for i in indices]
        if required_mask is not None:
            required = [mismatch_grams[i] for i in indices if required_mask[i]]
        elif required_keys is None:
            required = component
        else:
            required = [g for g in component if g.key in required_keys]
        if not required:
            edit_loc = 0
        elif exact:
            edit_loc = min_edit_exact(required, tau)
        else:
            edit_loc = min_edit_lower_bound(required)
        cv, ce = _component_label_multisets(graph, component)
        edit_con = _multiset_difference_size(cv, ov) + _multiset_difference_size(ce, oe)
        total += max(edit_loc, edit_con)
        if total > tau:
            break  # already enough to prune; saturate early
    return total


def multicover_min_edit_bound(
    groups: Sequence[Tuple[Sequence[QGram], int]],
    tau: int,
    exact_instance_limit: int = 150,
) -> int:
    """Sound min-edit lower bound over *partially matched* surplus keys.

    ``groups`` come from
    :meth:`repro.grams.mismatch.MismatchResult.surplus_groups_r`: per
    surplus key, all its instances and the surplus count.  Any edit
    script must affect at least the surplus count of each group, so the
    minimum multicover over the instances' vertex sets lower-bounds the
    edit distance (see :mod:`repro.setcover.multicover`).

    The cheap coverage bound runs first; the exact bounded search only
    when the instance volume stays under ``exact_instance_limit``
    (branch-and-bound cost grows with the candidate vertex pool).
    """
    if not groups:
        return 0
    vertex_groups = [
        ([g.vertex_set for g in instances], need) for instances, need in groups
    ]
    bound = multicover_coverage_bound(vertex_groups)
    if bound > tau:
        return bound
    total_instances = sum(len(instances) for instances, _ in vertex_groups)
    if total_instances > exact_instance_limit:
        return bound
    return min(exact_min_multicover(vertex_groups, tau), tau + 1)
