"""Interned integer q-gram signatures — the global ordering as ids.

Every hot loop of the pipeline used to manipulate q-gram keys as tuples
of arbitrary label objects: the global ordering called ``repr`` inside
every sort comparison, the inverted index hashed full label tuples, and
``compare_qgrams`` rebuilt Counter dictionaries for every candidate
pair.  :class:`QGramVocabulary` removes all of that by interning each
distinct key to a dense integer id *assigned in global-ordering rank*
(ascending document frequency, deterministic lexicographic tie-break on
``repr``), so the ids **are** the ordering:

* :meth:`QGramVocabulary.sort_profile` is a pure integer sort with zero
  ``repr`` calls;
* the inverted index is keyed by small ints instead of label tuples;
* ``compare_qgrams`` becomes a single linear merge over two sorted id
  arrays (see :mod:`repro.grams.mismatch`).

Keys unseen at build time (streaming :meth:`repro.core.search.GSimIndex.
add` / ``query``) get fresh *overflow* ids past the frozen range.  They
preserve the "unknown sorts last" contract exactly: overflow ids rank
after every frozen id and among themselves by the key's ``repr`` (the
historical tie-break), and a profile containing any overflow id is
marked non-mergeable so pairwise comparison falls back to the object-key
reference path for that profile only.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.grams.qgrams import Key, QGram, QGramProfile

__all__ = ["QGramVocabulary", "build_vocabulary"]


class QGramVocabulary:
    """Dense integer ids for q-gram keys, in global-ordering rank.

    The constructor takes the key universe *already ranked* (ascending
    document frequency, ``repr`` tie-break) — use
    :func:`build_vocabulary` to derive the ranking from a profile
    collection.  Ids ``0 .. frozen_size-1`` are the frozen range;
    :meth:`intern` assigns overflow ids past it to unseen keys.
    """

    __slots__ = ("_ids", "_keys", "_overflow_reprs", "frozen_size")

    def __init__(self, keys_in_rank_order: Iterable[Key] = ()) -> None:
        self._keys: List[Key] = list(keys_in_rank_order)
        self._ids: Dict[Key, int] = {key: i for i, key in enumerate(self._keys)}
        #: Number of ids frozen at construction; smaller ids sort by value.
        self.frozen_size: int = len(self._keys)
        # repr of each overflow key, parallel to _keys[frozen_size:];
        # overflow ids sort by it (the historical unknown-key tie-break).
        self._overflow_reprs: List[str] = []

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: Key) -> bool:
        return key in self._ids

    def intern(self, key: Key) -> int:
        """Id of ``key``, assigning a fresh overflow id when unseen."""
        key_id = self._ids.get(key)
        if key_id is None:
            key_id = len(self._keys)
            self._ids[key] = key_id
            self._keys.append(key)
            self._overflow_reprs.append(repr(key))
        return key_id

    def get(self, key: Key) -> Optional[int]:
        """Id of ``key`` if already interned, else ``None`` (no mutation)."""
        return self._ids.get(key)

    def key_of(self, key_id: int) -> Key:
        """Inverse lookup: the key interned as ``key_id``."""
        return self._keys[key_id]

    def sort_token(self, key_id: int) -> Tuple[int, int, str]:
        """Sortable token ranking overflow ids after frozen ones by repr."""
        if key_id < self.frozen_size:
            return (0, key_id, "")
        return (1, 0, self._overflow_reprs[key_id - self.frozen_size])

    def sort_profile(self, profile: QGramProfile) -> List[QGram]:
        """Intern and sort a profile's q-grams in the global ordering.

        The profile's ``grams`` list is reordered (equal keys keep their
        enumeration order — the sort is stable) and its ``signature``
        array is attached, aligned with the sorted grams.  On the common
        all-frozen path this is a pure integer sort; overflow ids take
        the ``repr``-ranked token path and mark the signature
        non-mergeable (``signature_total=False``).
        """
        frozen = self.frozen_size
        ids = [self.intern(gram.key) for gram in profile.grams]
        if not ids or max(ids) < frozen:
            profile.attach_signature(ids, source=self)
        else:
            profile.attach_signature(ids, source=self, sort_token=self.sort_token)
        return profile.grams


def build_vocabulary(profiles: Iterable[QGramProfile]) -> QGramVocabulary:
    """Build the vocabulary over ``profiles`` in global-ordering rank.

    The rank is the same ordering :func:`repro.core.ordering.
    build_ordering` sorts by — ascending document frequency (number of
    profiles containing the key) with a deterministic lexicographic
    tie-break on ``repr`` — computed once here instead of inside every
    later sort comparison.
    """
    df: Dict[Key, int] = {}
    for profile in profiles:
        for key in profile.key_counts:
            df[key] = df.get(key, 0) + 1
    ranked = sorted(df, key=lambda key: (df[key], repr(key)))
    return QGramVocabulary(ranked)
