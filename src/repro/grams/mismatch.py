"""Mismatching q-gram extraction — the paper's ``CompareQGrams``.

For a candidate pair the *mismatching* q-grams from ``r`` to ``s`` are
the multiset difference ``Q_r \\ Q_s``: for every key, the instances of
``r`` exceeding ``s``'s count of that key.  Their sizes ``ε₂ = |Q_r\\Q_s|``
and ``ε₃ = |Q_s\\Q_r|`` re-express count filtering (``ε₂ ≤ τ·D_path(r)``),
and the concrete instances feed minimum edit filtering (Section IV) and
local label filtering (Section V).

Which concrete instances are chosen for a key with partial overlap is
immaterial to correctness: any ``c_r − c_s`` of them are unmatched under
every key-level alignment, and the filters only use the instances'
vertices and labels.  We keep the instances earliest in the global
ordering for determinism.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.grams.qgrams import Key, QGram, QGramProfile

__all__ = ["MismatchResult", "compare_qgrams", "mismatching_grams"]


@dataclass(frozen=True)
class MismatchResult:
    """Output of ``CompareQGrams`` for an ordered pair of profiles.

    ``absent_keys_r`` are the keys of ``r`` that do not occur in ``s`` at
    all: *every* instance of such a key is guaranteed to be affected by
    any edit script between the graphs, which is the precondition for
    running minimum-edit reasoning on concrete instances (see
    :func:`repro.grams.labels.local_label_lower_bound`).  For keys
    present in both graphs with a surplus, only *some* unknown instances
    are affected, so they contribute to counts and labels but not to the
    per-instance hitting set.
    """

    mismatch_r: List[QGram]  #: instances of ``Q_r \ Q_s``
    mismatch_s: List[QGram]  #: instances of ``Q_s \ Q_r``
    epsilon_r: int  #: ``|Q_r \ Q_s|``
    epsilon_s: int  #: ``|Q_s \ Q_r|``
    absent_keys_r: frozenset  #: keys of r with zero occurrences in s
    absent_keys_s: frozenset  #: keys of s with zero occurrences in r

    def surplus_groups_r(
        self, p_r: "QGramProfile", p_s: "QGramProfile"
    ) -> List[Tuple[Sequence[QGram], int]]:
        """Demand groups for the multicover bound, direction r -> s.

        For every surplus key: (*all* of r's instances of the key, the
        surplus count).  Any edit script must affect at least the
        surplus count of instances of each group — the sound
        generalization of instance-level min-edit to partially matched
        keys (see :mod:`repro.setcover.multicover`).
        """
        return _surplus_groups(p_r, p_s)

    def surplus_groups_s(
        self, p_r: "QGramProfile", p_s: "QGramProfile"
    ) -> List[Tuple[Sequence[QGram], int]]:
        """Demand groups for the multicover bound, direction s -> r."""
        return _surplus_groups(p_s, p_r)


def _surplus_groups(
    p: QGramProfile, other: QGramProfile
) -> List[Tuple[Sequence[QGram], int]]:
    surplus: Dict[Key, int] = {}
    for key, count in p.key_counts.items():
        extra = count - other.key_counts.get(key, 0)
        if extra > 0:
            surplus[key] = extra
    if not surplus:
        return []
    by_key: Dict[Key, List[QGram]] = defaultdict(list)
    for gram in p.grams:
        if gram.key in surplus:
            by_key[gram.key].append(gram)
    return [(by_key[key], need) for key, need in surplus.items()]


def mismatching_grams(p: QGramProfile, other: QGramProfile) -> List[QGram]:
    """Instances of ``Q_p \\ Q_other`` (one direction of the difference)."""
    surplus: Dict[Key, int] = {}
    other_counts = other.key_counts
    for key, count in p.key_counts.items():
        extra = count - other_counts.get(key, 0)
        if extra > 0:
            surplus[key] = extra

    if not surplus:
        return []
    picked: List[QGram] = []
    taken: Dict[Key, int] = defaultdict(int)
    for gram in p.grams:
        want = surplus.get(gram.key, 0)
        if taken[gram.key] < want:
            taken[gram.key] += 1
            picked.append(gram)
    return picked


def compare_qgrams(p_r: QGramProfile, p_s: QGramProfile) -> MismatchResult:
    """Bidirectional mismatching q-grams with their counts (Algorithm 6)."""
    mr = mismatching_grams(p_r, p_s)
    ms = mismatching_grams(p_s, p_r)
    absent_r = frozenset(
        key for key in p_r.key_counts if key not in p_s.key_counts
    )
    absent_s = frozenset(
        key for key in p_s.key_counts if key not in p_r.key_counts
    )
    return MismatchResult(mr, ms, len(mr), len(ms), absent_r, absent_s)
