"""Mismatching q-gram extraction — the paper's ``CompareQGrams``.

For a candidate pair the *mismatching* q-grams from ``r`` to ``s`` are
the multiset difference ``Q_r \\ Q_s``: for every key, the instances of
``r`` exceeding ``s``'s count of that key.  Their sizes ``ε₂ = |Q_r\\Q_s|``
and ``ε₃ = |Q_s\\Q_r|`` re-express count filtering (``ε₂ ≤ τ·D_path(r)``),
and the concrete instances feed minimum edit filtering (Section IV) and
local label filtering (Section V).

Which concrete instances are chosen for a key with partial overlap is
immaterial to correctness: any ``c_r − c_s`` of them are unmatched under
every key-level alignment, and the filters only use the instances'
vertices and labels.  We keep the instances earliest in the global
ordering for determinism.

Two implementations produce bit-identical results:

* the **merge path** — when both profiles carry a total interned
  signature from the same :class:`repro.grams.vocab.QGramVocabulary`,
  one linear merge over the two sorted id arrays yields ε₂/ε₃, the
  mismatch instances, the absent-key flags and the surplus runs in a
  single pass, bailing out early once a count bound is exceeded;
* the **object-key reference path** — the historical Counter-based
  computation, kept both for un-interned profiles (e.g. the subgraph
  profiles of the improved A* heuristic) and as the oracle the property
  tests compare the merge against.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.grams.qgrams import Key, QGram, QGramProfile

__all__ = ["MismatchResult", "compare_qgrams", "mismatching_grams"]

#: A surplus run in a sorted gram list: (start, stop, surplus count).
SurplusRun = Tuple[int, int, int]


class MismatchResult:
    """Output of ``CompareQGrams`` for an ordered pair of profiles.

    ``required_mask_r[k]`` is ``True`` iff ``mismatch_r[k]``'s key does
    not occur in ``s`` at all: *every* instance of such a key is
    guaranteed to be affected by any edit script between the graphs,
    which is the precondition for running minimum-edit reasoning on
    concrete instances (see :func:`repro.grams.labels.
    local_label_lower_bound`).  For keys present in both graphs with a
    surplus, only *some* unknown instances are affected, so they
    contribute to counts and labels but not to the per-instance hitting
    set.  :attr:`absent_keys_r` / :attr:`absent_keys_s` expose the same
    information as key sets (derived lazily on the merge path).

    ``count_pruned`` is ``True`` when :func:`compare_qgrams` was given a
    ``tau`` and a count bound was exceeded — the merge then stopped
    early, so the epsilons are lower bounds and the instance lists are
    partial; callers must treat the pair as count-pruned and read
    nothing else.
    """

    __slots__ = (
        "mismatch_r",
        "mismatch_s",
        "epsilon_r",
        "epsilon_s",
        "required_mask_r",
        "required_mask_s",
        "count_pruned",
        "_absent_r",
        "_absent_s",
        "_runs_r",
        "_runs_s",
        "_surplus_r",
        "_surplus_s",
    )

    def __init__(
        self,
        mismatch_r: List[QGram],
        mismatch_s: List[QGram],
        epsilon_r: int,
        epsilon_s: int,
        required_mask_r: List[bool],
        required_mask_s: List[bool],
        count_pruned: bool = False,
        absent_keys_r: Optional[frozenset] = None,
        absent_keys_s: Optional[frozenset] = None,
        runs_r: Optional[List[SurplusRun]] = None,
        runs_s: Optional[List[SurplusRun]] = None,
        surplus_r: Optional[Dict[Key, int]] = None,
        surplus_s: Optional[Dict[Key, int]] = None,
    ) -> None:
        self.mismatch_r = mismatch_r  #: instances of ``Q_r \ Q_s``
        self.mismatch_s = mismatch_s  #: instances of ``Q_s \ Q_r``
        self.epsilon_r = epsilon_r  #: ``|Q_r \ Q_s|``
        self.epsilon_s = epsilon_s  #: ``|Q_s \ Q_r|``
        self.required_mask_r = required_mask_r
        self.required_mask_s = required_mask_s
        self.count_pruned = count_pruned
        self._absent_r = absent_keys_r
        self._absent_s = absent_keys_s
        self._runs_r = runs_r
        self._runs_s = runs_s
        self._surplus_r = surplus_r
        self._surplus_s = surplus_s

    @property
    def absent_keys_r(self) -> frozenset:
        """Keys of ``r`` with zero occurrences in ``s``."""
        if self._absent_r is None:
            self._absent_r = frozenset(
                gram.key
                for gram, required in zip(self.mismatch_r, self.required_mask_r)
                if required
            )
        return self._absent_r

    @property
    def absent_keys_s(self) -> frozenset:
        """Keys of ``s`` with zero occurrences in ``r``."""
        if self._absent_s is None:
            self._absent_s = frozenset(
                gram.key
                for gram, required in zip(self.mismatch_s, self.required_mask_s)
                if required
            )
        return self._absent_s

    def surplus_groups_r(
        self, p_r: "QGramProfile", p_s: "QGramProfile"
    ) -> List[Tuple[Sequence[QGram], int]]:
        """Demand groups for the multicover bound, direction r -> s.

        For every surplus key: (*all* of r's instances of the key, the
        surplus count).  Any edit script must affect at least the
        surplus count of instances of each group — the sound
        generalization of instance-level min-edit to partially matched
        keys (see :mod:`repro.setcover.multicover`).  On the merge path
        the groups are slices of the contiguous surplus runs recorded
        during the one-pass merge; on the reference path they are built
        from the surplus counts cached by :func:`compare_qgrams`
        (computed once, not re-derived per call).
        """
        if self._runs_r is not None:
            return [(p_r.grams[a:b], need) for a, b, need in self._runs_r]
        surplus = self._surplus_r
        if surplus is None:
            surplus = _surplus_counts(p_r, p_s)
        return _groups_from_surplus(p_r, surplus)

    def surplus_groups_s(
        self, p_r: "QGramProfile", p_s: "QGramProfile"
    ) -> List[Tuple[Sequence[QGram], int]]:
        """Demand groups for the multicover bound, direction s -> r."""
        if self._runs_s is not None:
            return [(p_s.grams[a:b], need) for a, b, need in self._runs_s]
        surplus = self._surplus_s
        if surplus is None:
            surplus = _surplus_counts(p_s, p_r)
        return _groups_from_surplus(p_s, surplus)


def _surplus_counts(p: QGramProfile, other: QGramProfile) -> Dict[Key, int]:
    """Per-key surplus ``max(0, c_p − c_other)`` (positive entries only)."""
    surplus: Dict[Key, int] = {}
    other_counts = other.key_counts
    for key, count in p.key_counts.items():
        extra = count - other_counts.get(key, 0)
        if extra > 0:
            surplus[key] = extra
    return surplus


def _pick_instances(p: QGramProfile, surplus: Dict[Key, int]) -> List[QGram]:
    """First ``surplus[key]`` instances of each surplus key, in gram order."""
    if not surplus:
        return []
    picked: List[QGram] = []
    taken: Dict[Key, int] = defaultdict(int)
    for gram in p.grams:
        want = surplus.get(gram.key, 0)
        if taken[gram.key] < want:
            taken[gram.key] += 1
            picked.append(gram)
    return picked


def _groups_from_surplus(
    p: QGramProfile, surplus: Dict[Key, int]
) -> List[Tuple[Sequence[QGram], int]]:
    if not surplus:
        return []
    by_key: Dict[Key, List[QGram]] = defaultdict(list)
    for gram in p.grams:
        if gram.key in surplus:
            by_key[gram.key].append(gram)
    return [(by_key[key], need) for key, need in surplus.items()]


def mismatching_grams(p: QGramProfile, other: QGramProfile) -> List[QGram]:
    """Instances of ``Q_p \\ Q_other`` (one direction of the difference)."""
    return _pick_instances(p, _surplus_counts(p, other))


def _counter_compare(
    p_r: QGramProfile, p_s: QGramProfile, tau: Optional[int]
) -> MismatchResult:
    """The object-key reference path (historical Counter computation)."""
    surplus_r = _surplus_counts(p_r, p_s)
    surplus_s = _surplus_counts(p_s, p_r)
    mr = _pick_instances(p_r, surplus_r)
    ms = _pick_instances(p_s, surplus_s)
    absent_r = frozenset(
        key for key in p_r.key_counts if key not in p_s.key_counts
    )
    absent_s = frozenset(
        key for key in p_s.key_counts if key not in p_r.key_counts
    )
    mask_r = [gram.key in absent_r for gram in mr]
    mask_s = [gram.key in absent_s for gram in ms]
    pruned = tau is not None and (
        len(mr) > tau * p_r.d_path or len(ms) > tau * p_s.d_path
    )
    return MismatchResult(
        mr,
        ms,
        len(mr),
        len(ms),
        mask_r,
        mask_s,
        count_pruned=pruned,
        absent_keys_r=absent_r,
        absent_keys_s=absent_s,
        surplus_r=surplus_r,
        surplus_s=surplus_s,
    )


def _merge_compare(
    p_r: QGramProfile, p_s: QGramProfile, tau: Optional[int]
) -> MismatchResult:
    """One-pass linear merge over two sorted interned id arrays.

    Produces ε₂/ε₃, the mismatch instances (earliest in the global
    ordering, exactly the reference path's selection — surplus runs are
    contiguous in the sorted gram lists), the absent-key masks and the
    surplus runs together, bailing out as soon as a count bound is
    exceeded when ``tau`` is given (the pair is then pruned whatever the
    final epsilons would be, since they only grow).
    """
    sig_r, sig_s = p_r.signature, p_s.signature
    grams_r, grams_s = p_r.grams, p_s.grams
    n, m = len(sig_r), len(sig_s)
    bound_r = bound_s = -1
    bounded = tau is not None
    if bounded:
        bound_r = tau * p_r.d_path
        bound_s = tau * p_s.d_path
    mismatch_r: List[QGram] = []
    mismatch_s: List[QGram] = []
    mask_r: List[bool] = []
    mask_s: List[bool] = []
    runs_r: List[SurplusRun] = []
    runs_s: List[SurplusRun] = []
    eps_r = eps_s = 0
    i = j = 0
    pruned = False
    while i < n and j < m:
        a = sig_r[i]
        b = sig_s[j]
        if a == b:
            i0, j0 = i, j
            i += 1
            while i < n and sig_r[i] == a:
                i += 1
            j += 1
            while j < m and sig_s[j] == a:
                j += 1
            c_r = i - i0
            c_s = j - j0
            if c_r > c_s:
                d = c_r - c_s
                eps_r += d
                runs_r.append((i0, i, d))
                mismatch_r.extend(grams_r[i0 : i0 + d])
                mask_r += [False] * d
            elif c_s > c_r:
                d = c_s - c_r
                eps_s += d
                runs_s.append((j0, j, d))
                mismatch_s.extend(grams_s[j0 : j0 + d])
                mask_s += [False] * d
        elif a < b:
            i0 = i
            i += 1
            while i < n and sig_r[i] == a:
                i += 1
            c_r = i - i0
            eps_r += c_r
            runs_r.append((i0, i, c_r))
            mismatch_r.extend(grams_r[i0:i])
            mask_r += [True] * c_r
        else:
            j0 = j
            j += 1
            while j < m and sig_s[j] == b:
                j += 1
            c_s = j - j0
            eps_s += c_s
            runs_s.append((j0, j, c_s))
            mismatch_s.extend(grams_s[j0:j])
            mask_s += [True] * c_s
        if bounded and (eps_r > bound_r or eps_s > bound_s):
            pruned = True
            break
    while not pruned and i < n:
        a = sig_r[i]
        i0 = i
        i += 1
        while i < n and sig_r[i] == a:
            i += 1
        c_r = i - i0
        eps_r += c_r
        runs_r.append((i0, i, c_r))
        mismatch_r.extend(grams_r[i0:i])
        mask_r += [True] * c_r
        if bounded and eps_r > bound_r:
            pruned = True
    while not pruned and j < m:
        b = sig_s[j]
        j0 = j
        j += 1
        while j < m and sig_s[j] == b:
            j += 1
        c_s = j - j0
        eps_s += c_s
        runs_s.append((j0, j, c_s))
        mismatch_s.extend(grams_s[j0:j])
        mask_s += [True] * c_s
        if bounded and eps_s > bound_s:
            pruned = True
    return MismatchResult(
        mismatch_r,
        mismatch_s,
        eps_r,
        eps_s,
        mask_r,
        mask_s,
        count_pruned=pruned,
        runs_r=None if pruned else runs_r,
        runs_s=None if pruned else runs_s,
    )


def compare_qgrams(
    p_r: QGramProfile, p_s: QGramProfile, tau: Optional[int] = None
) -> MismatchResult:
    """Bidirectional mismatching q-grams with their counts (Algorithm 6).

    When both profiles carry a total interned signature from the same
    vocabulary, the comparison is a single linear merge over the sorted
    id arrays; otherwise the object-key reference path runs.  Both
    produce identical results.  ``tau``, when given, enables the count
    filter's early bailout: once ``ε > τ·D_path`` on either side the
    result comes back with ``count_pruned=True`` (and possibly partial
    instance lists) — exactly the pairs the count filter rejects.
    """
    if (
        p_r.signature_total
        and p_s.signature_total
        and p_r.signature_source is p_s.signature_source
        and p_r.signature_source is not None
    ):
        return _merge_compare(p_r, p_s, tau)
    return _counter_compare(p_r, p_s, tau)
