"""Hitting-set / set-cover solvers.

The paper's *minimum graph edit operation* problem (Section IV-A) reduces
to a minimum hitting set: the elements to hit are the mismatching q-grams,
and each graph vertex "hits" the q-grams containing it (Theorem 2 shows
vertex relabelings dominate all other operations).  This package provides
the two solvers the paper needs:

* an exact solver, feasible because the answer only matters up to the
  threshold ``τ`` — branch-and-bound over the (≤ q+1) vertices of an
  uncovered q-gram is FPT in the solution size;
* the classic greedy, whose Slavík approximation ratio
  ``ln n − ln ln n + 0.78`` turns the greedy value into a certified
  *lower bound* on the optimum (the paper's Algorithm 2).
"""

from repro.setcover.hitting import (
    exact_min_hitting_set,
    greedy_hitting_set,
    greedy_lower_bound,
    slavik_ratio,
)
from repro.setcover.multicover import (
    exact_min_multicover,
    multicover_coverage_bound,
)

__all__ = [
    "greedy_hitting_set",
    "exact_min_hitting_set",
    "greedy_lower_bound",
    "slavik_ratio",
    "exact_min_multicover",
    "multicover_coverage_bound",
]
