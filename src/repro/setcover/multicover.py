"""Bounded exact set multicover for partial-surplus minimum edits.

When a q-gram key occurs ``c_r`` times in ``r`` but only ``c_s < c_r``
times in ``s``, an edit script must affect at least ``c_r − c_s`` of its
instances — but *which* instances is unknowable.  The sound lower bound
on the edit operations causing the observed mismatch is therefore a
*multicover*: pick a minimum set of vertices such that, for every
surplus key, the picked vertices hit at least the surplus count of that
key's instances.  (With every demand equal to the group size this
degenerates to the plain hitting set of :mod:`repro.setcover.hitting`.)

The exact solver is a depth-bounded branch-and-bound (depth ≤ cap, the
caller's τ+1), pruned with the coverage bound ``⌈demand / max-gain⌉``.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Hashable, List, Sequence, Tuple

from repro.exceptions import ParameterError

__all__ = ["exact_min_multicover", "multicover_coverage_bound"]

Element = Hashable
#: One demand group: (instance vertex sets, how many must be hit).
Group = Tuple[Sequence[FrozenSet[Element]], int]


def _validate(groups: Sequence[Group]) -> None:
    for instances, need in groups:
        if need < 0:
            raise ParameterError(f"group demand must be >= 0, got {need}")
        if need > len(instances):
            raise ParameterError(
                f"group demand {need} exceeds its {len(instances)} instances"
            )
        for inst in instances:
            if not inst:
                raise ParameterError("cannot hit an empty instance")


def _max_gain(groups: Sequence[Group], hit: List[List[bool]]) -> int:
    """Best possible demand reduction by a single vertex."""
    gain: Dict[Element, int] = {}
    for gi, (instances, need) in enumerate(groups):
        unmet = need - sum(hit[gi])
        if unmet <= 0:
            continue
        per_vertex: Dict[Element, int] = {}
        for ii, inst in enumerate(instances):
            if hit[gi][ii]:
                continue
            for v in inst:
                per_vertex[v] = per_vertex.get(v, 0) + 1
        for v, count in per_vertex.items():
            gain[v] = gain.get(v, 0) + min(count, unmet)
    return max(gain.values(), default=0)


def multicover_coverage_bound(groups: Sequence[Group]) -> int:
    """Cheap lower bound: total demand over the best single-vertex gain."""
    _validate(groups)
    demand = sum(need for _, need in groups)
    if demand == 0:
        return 0
    hit = [[False] * len(instances) for instances, _ in groups]
    best = _max_gain(groups, hit)
    if best == 0:
        return 0
    return math.ceil(demand / best)


def exact_min_multicover(groups: Sequence[Group], cap: int) -> int:
    """Exact minimum multicover size, cut off at ``cap``.

    Returns the optimum when it is ``<= cap`` and ``cap + 1`` otherwise.

    Raises
    ------
    ParameterError
        On a negative cap, negative/unsatisfiable demands, or empty
        instances.
    """
    if cap < 0:
        raise ParameterError(f"cap must be >= 0, got {cap}")
    _validate(groups)
    groups = [(list(instances), need) for instances, need in groups if need > 0]
    if not groups:
        return 0

    hit = [[False] * len(instances) for instances, _ in groups]
    best_found = cap + 1

    def remaining_demand() -> int:
        return sum(
            max(0, need - sum(hit[gi])) for gi, (_, need) in enumerate(groups)
        )

    def solve(budget: int, chosen: int) -> None:
        nonlocal best_found
        demand = remaining_demand()
        if demand == 0:
            best_found = min(best_found, chosen)
            return
        if budget == 0:
            return
        gain = _max_gain(groups, hit)
        if gain == 0 or chosen + math.ceil(demand / gain) >= best_found:
            return
        # Branch on the group with the fewest unhit instances (smallest
        # candidate vertex pool) among the unmet ones.
        target = None
        target_pool: List[Element] = []
        for gi, (instances, need) in enumerate(groups):
            if sum(hit[gi]) >= need:
                continue
            pool = sorted(
                {v for ii, inst in enumerate(instances) if not hit[gi][ii] for v in inst},
                key=repr,
            )
            if target is None or len(pool) < len(target_pool):
                target, target_pool = gi, pool
        for v in target_pool:
            flipped: List[Tuple[int, int]] = []
            for gi, (instances, _) in enumerate(groups):
                for ii, inst in enumerate(instances):
                    if not hit[gi][ii] and v in inst:
                        hit[gi][ii] = True
                        flipped.append((gi, ii))
            solve(budget - 1, chosen + 1)
            for gi, ii in flipped:
                hit[gi][ii] = False
            if best_found <= chosen + 1:
                break

    solve(cap, 0)
    return best_found
