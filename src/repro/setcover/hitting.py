"""Exact (bounded) and greedy minimum hitting set.

A *hitting set* instance is a list of non-empty element sets; a hitting
set is a set of elements intersecting every input set.  We look for the
minimum-cardinality one.  In the paper's use each input set is the vertex
set of a mismatching q-gram, so every set has at most ``q + 1`` elements
— small, which makes the bounded exact search cheap.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Hashable, List, Sequence

from repro.exceptions import ParameterError

__all__ = [
    "greedy_hitting_set",
    "exact_min_hitting_set",
    "greedy_lower_bound",
    "slavik_ratio",
]

Element = Hashable


def greedy_hitting_set(sets: Sequence[FrozenSet[Element]]) -> List[Element]:
    """Greedy hitting set: repeatedly pick the element in most unhit sets.

    Ties are broken deterministically by ``repr`` of the element, so runs
    are reproducible.  Empty input yields an empty hitting set; an empty
    *set* in the input is unhittable and raises.

    Raises
    ------
    ParameterError
        If any input set is empty.
    """
    remaining = [s for s in sets]
    for s in remaining:
        if not s:
            raise ParameterError("cannot hit an empty set")
    chosen: List[Element] = []
    while remaining:
        counts: Dict[Element, int] = {}
        for s in remaining:
            for e in s:
                counts[e] = counts.get(e, 0) + 1
        best = max(counts.items(), key=lambda kv: (kv[1], repr(kv[0])))
        element = best[0]
        chosen.append(element)
        remaining = [s for s in remaining if element not in s]
    return chosen


def exact_min_hitting_set(
    sets: Sequence[FrozenSet[Element]], cap: int
) -> int:
    """Exact minimum hitting set size, cut off at ``cap``.

    Returns the optimum if it is ``<= cap`` and ``cap + 1`` otherwise
    (the caller only needs to know whether the answer exceeds the edit
    distance threshold).  The search branches on the elements of a
    smallest uncovered set, so its depth is bounded by ``cap`` and its
    branching factor by the largest set size — FPT for the q-gram sets
    used here.

    Raises
    ------
    ParameterError
        If ``cap`` is negative or any input set is empty.
    """
    if cap < 0:
        raise ParameterError(f"cap must be >= 0, got {cap}")
    for s in sets:
        if not s:
            raise ParameterError("cannot hit an empty set")

    work = [frozenset(s) for s in sets]

    def solve(active: List[FrozenSet[Element]], budget: int) -> int:
        if not active:
            return 0
        if budget == 0:
            return cap + 1  # sentinel: exceeds the remaining budget
        # Branch on a smallest set: every hitting set must contain one of
        # its elements.
        pivot = min(active, key=len)
        best = cap + 1
        for e in sorted(pivot, key=repr):
            rest = [s for s in active if e not in s]
            sub = solve(rest, min(budget, best) - 1)
            if sub + 1 < best:
                best = sub + 1
                if best == 1:
                    break
        return best

    result = solve(work, cap)
    return min(result, cap + 1)


def slavik_ratio(num_sets: int) -> float:
    """Slavík's tight greedy set-cover ratio ``ln n − ln ln n + 0.78``.

    For tiny instances where the formula dips below 1 (it is only
    meaningful asymptotically) the ratio is clamped to 1, keeping the
    derived lower bound valid: greedy is trivially optimal for ``n <= 1``
    and the clamp only weakens, never invalidates, the bound.
    """
    if num_sets < 2:
        return 1.0
    ln_n = math.log(num_sets)
    if num_sets < 3:
        return max(1.0, ln_n + 0.78)
    return max(1.0, ln_n - math.log(ln_n) + 0.78)


def greedy_lower_bound(sets: Sequence[FrozenSet[Element]]) -> int:
    """A certified lower bound on the minimum hitting set size.

    Runs the greedy algorithm and divides by the Slavík ratio (the
    paper's Algorithm 2): since ``greedy <= ratio * OPT``, we have
    ``OPT >= ceil(greedy / ratio)``.
    """
    if not sets:
        return 0
    greedy = len(greedy_hitting_set(sets))
    return max(1, math.ceil(greedy / slavik_ratio(len(sets)) - 1e-12))
