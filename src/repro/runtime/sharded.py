"""Out-of-core substrate: memory budgets, spill queues, shard manifests.

The sharded join (:mod:`repro.engine.sharded`) processes a collection
too large for RAM as a sequence of *shard pairs*, each small enough to
fit.  This module provides the three substrate pieces, kept free of any
graph/engine dependency so the whole runtime layer stays at the bottom
of the layering DAG:

* :class:`MemoryBudget` — logical working-set accounting with a hard
  cap; exceeding it raises
  :class:`~repro.exceptions.MemoryBudgetError`, which the driver treats
  as a *degrade* signal (retry the shard pair at a finer split level),
  not a failure;
* :class:`SpillQueue` — an append-only JSONL queue on disk with an
  end-of-queue sentinel, so candidate pairs and shard results stream
  through bounded memory and a torn queue is detectable on resume;
* :class:`ShardManifest` — the run's single source of recovery truth: a
  JSON document updated *atomically* on every state change (tempfile +
  ``os.replace`` + fsync, via
  :func:`repro.runtime.journal.replace_file`), recording the partition
  and each shard pair's status, attempts, split level and statistics
  snapshot.  A crash at any point — mid-shard, mid-merge, mid-manifest
  — leaves either the previous or the next manifest state, never a torn
  one;
* :func:`plan_bands` / :func:`qualifying_shard_pairs` — the size-band
  partitioning arithmetic: graphs are banded by total size
  (``|V| + |E|``), and a pair of bands whose size gap exceeds ``tau``
  is skipped wholesale because the size filter would prune every cross
  pair (``||V_r|−|V_s|| + ||E_r|−|E_s|| ≥ |size_r − size_s| > τ``).
"""

from __future__ import annotations

import json
import os
from typing import Dict, IO, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import CheckpointError, MemoryBudgetError, ParameterError
from repro.runtime.journal import replace_file

__all__ = [
    "MemoryBudget",
    "SpillQueue",
    "ShardManifest",
    "plan_bands",
    "qualifying_shard_pairs",
]


class MemoryBudget:
    """Logical working-set accounting against a hard byte cap.

    The driver *charges* the budget with size estimates before
    materializing each resident structure (shard graphs, q-gram
    profiles, the inverted index) and *releases* when the structure is
    dropped.  A charge that would exceed the cap raises
    :class:`~repro.exceptions.MemoryBudgetError` **before** the
    allocation happens, so the join can degrade to smaller sub-shards
    instead of being OOM-killed mid-flight.  ``limit=None`` disables
    the cap but keeps the accounting (``peak`` is still tracked).
    """

    __slots__ = ("limit", "used", "peak")

    def __init__(self, limit: Optional[int] = None) -> None:
        """A budget capped at ``limit`` bytes (``None``: unlimited)."""
        if limit is not None and limit <= 0:
            raise ParameterError(f"memory limit must be > 0, got {limit}")
        self.limit = limit
        self.used = 0
        self.peak = 0

    @classmethod
    def from_mb(cls, megabytes: Optional[float]) -> "MemoryBudget":
        """A budget capped at ``megabytes`` MiB (``None``: unlimited)."""
        if megabytes is None:
            return cls(None)
        return cls(int(megabytes * 1024 * 1024))

    def charge(self, nbytes: int, what: str = "working set") -> None:
        """Account ``nbytes`` of residency; raise before exceeding the cap."""
        if nbytes < 0:
            raise ParameterError(f"charge must be >= 0, got {nbytes}")
        if self.limit is not None and self.used + nbytes > self.limit:
            raise MemoryBudgetError(
                f"{what}: {self.used + nbytes} bytes would exceed the "
                f"{self.limit}-byte memory budget"
            )
        self.used += nbytes
        if self.used > self.peak:
            self.peak = self.used

    def release(self, nbytes: int) -> None:
        """Return ``nbytes`` of residency to the budget."""
        self.used = max(0, self.used - nbytes)

    def reset(self) -> None:
        """Drop all residency accounting (a new shard pair starts clean)."""
        self.used = 0


#: The sentinel key terminating a complete spill queue.
_END_KEY = "spill-end"


class SpillQueue:
    """Append-only JSONL queue of records on disk.

    The writer appends one JSON object per line (single ``write`` +
    flush, exactly the journal's torn-write discipline) and finishes
    with a sentinel line recording the record count, fsynced — so a
    reader can distinguish a *complete* queue from one a crash tore.
    Queues are recreated from scratch on every shard-pair attempt
    (their contents are deterministic replays), so no truncation-repair
    logic is needed: an incomplete queue is simply discarded.
    """

    def __init__(self, path: str, handle: IO[str]) -> None:
        """Internal; use :meth:`create`."""
        self.path = path
        self._handle: Optional[IO[str]] = handle
        self.count = 0

    @classmethod
    def create(cls, path: "str | os.PathLike") -> "SpillQueue":
        """Open a fresh queue at ``path``, truncating any previous one."""
        return cls(os.fspath(path), open(path, "w", encoding="utf-8"))

    def append(self, record: dict) -> None:
        """Append one record (a JSON-representable dict) durably."""
        if self._handle is None:
            raise CheckpointError(f"{self.path}: spill queue is closed")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        self.count += 1

    def finish(self) -> None:
        """Write the completeness sentinel, fsync, and close."""
        if self._handle is None:
            raise CheckpointError(f"{self.path}: spill queue is closed")
        self._handle.write(json.dumps({_END_KEY: self.count}) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.close()

    def close(self) -> None:
        """Close the underlying file without finishing (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SpillQueue":
        """Context-manager support; closes (unfinished) on exit."""
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        """Close the queue even when the producer dies mid-write."""
        self.close()

    @staticmethod
    def replay(path: "str | os.PathLike") -> Iterator[dict]:
        """Stream the records of a *complete* queue.

        Raises :class:`~repro.exceptions.CheckpointError` if the queue
        lacks its sentinel (the writer crashed mid-queue) or the
        sentinel count disagrees with the records present.
        """
        count = 0
        finished = False
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                if not line.endswith("\n"):
                    break  # torn tail: fall through to the sentinel check
                payload = json.loads(line)
                if _END_KEY in payload:
                    if payload[_END_KEY] != count:
                        raise CheckpointError(
                            f"{path}: spill queue sentinel claims "
                            f"{payload[_END_KEY]} records, found {count}"
                        )
                    finished = True
                    break
                count += 1
                yield payload
        if not finished:
            raise CheckpointError(
                f"{path}: spill queue has no completeness sentinel "
                "(the writer crashed mid-queue)"
            )

    @staticmethod
    def is_complete(path: "str | os.PathLike") -> bool:
        """True when ``path`` holds a finished queue (sentinel present)."""
        try:
            for _ in SpillQueue.replay(path):
                pass
        except (OSError, ValueError, CheckpointError):
            return False
        return True


def plan_bands(sizes: Sequence[int], shards: int) -> List[List[int]]:
    """Partition positions ``0..len(sizes)-1`` into ``shards`` size bands.

    Positions are ordered by ``(size, position)`` — a total,
    deterministic order — and cut into ``shards`` contiguous chunks of
    near-equal cardinality (the first ``len % shards`` bands take one
    extra).  Every position lands in exactly one band; empty bands are
    dropped (fewer graphs than shards).
    """
    if shards < 1:
        raise ParameterError(f"shards must be >= 1, got {shards}")
    order = sorted(range(len(sizes)), key=lambda pos: (sizes[pos], pos))
    n = len(order)
    base, extra = divmod(n, shards)
    bands: List[List[int]] = []
    start = 0
    for k in range(shards):
        width = base + (1 if k < extra else 0)
        if width == 0:
            continue
        bands.append(order[start : start + width])
        start += width
    return bands


def qualifying_shard_pairs(
    ranges: Sequence[Tuple[int, int]], tau: int
) -> List[Tuple[int, int]]:
    """The shard pairs ``(a, b), a <= b`` the size filter cannot skip.

    ``ranges[k]`` is band ``k``'s ``(min_size, max_size)``.  A cross
    pair of bands ``a <= b`` qualifies iff some ``r ∈ a, s ∈ b`` could
    pass the size filter, i.e. the smallest possible size gap
    ``max(0, min_b − max_a, min_a − max_b)`` is at most ``tau``; the
    diagonal always qualifies.  Every globally qualifying graph pair
    therefore falls in exactly one qualifying shard pair (each graph
    lives in exactly one band).
    """
    if tau < 0:
        raise ParameterError(f"tau must be >= 0, got {tau}")
    pairs: List[Tuple[int, int]] = []
    for a in range(len(ranges)):
        for b in range(a, len(ranges)):
            lo_a, hi_a = ranges[a]
            lo_b, hi_b = ranges[b]
            gap = max(0, lo_b - hi_a, lo_a - hi_b)
            if gap <= tau:
                pairs.append((a, b))
    return pairs


_MANIFEST_KIND = "gsimjoin-shard-manifest"
_MANIFEST_VERSION = 1

#: Shard-pair lifecycle states recorded in the manifest.
PAIR_PENDING = "pending"
PAIR_RUNNING = "running"
PAIR_DONE = "done"


class ShardManifest:
    """The sharded join's atomically-updated recovery manifest.

    One JSON document per run, living in the spill directory.  Every
    mutation rewrites the whole document through
    :func:`~repro.runtime.journal.replace_file` (tempfile +
    ``os.replace`` + fsync), so the on-disk manifest is always a
    consistent snapshot of some prefix of the run: shard-pair statuses
    move ``pending → running → done`` and a pair is marked ``done``
    only after its results queue carries its completeness sentinel —
    therefore resume can trust ``done`` pairs completely and simply
    re-run the rest (their journals make the re-run a cheap replay).
    """

    def __init__(self, path: str, data: dict) -> None:
        """Internal; use :meth:`create` or :meth:`load`."""
        self.path = path
        self.data = data

    # --- Construction ---------------------------------------------------

    @classmethod
    def create(cls, path: "str | os.PathLike", meta: dict) -> "ShardManifest":
        """Create a fresh manifest for run ``meta`` (atomic write)."""
        manifest = cls(
            os.fspath(path),
            {
                "kind": _MANIFEST_KIND,
                "version": _MANIFEST_VERSION,
                "meta": json.loads(json.dumps(meta, sort_keys=True)),
                "partition": None,
                "pairs": {},
                "complete": None,
            },
        )
        manifest._write()
        return manifest

    @classmethod
    def load(cls, path: "str | os.PathLike", meta: dict) -> "ShardManifest":
        """Load an existing manifest, validating it belongs to ``meta``.

        Raises :class:`~repro.exceptions.CheckpointError` on a missing
        or foreign manifest — resuming someone else's run would merge
        unrelated results.
        """
        path = os.fspath(path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except OSError as exc:
            raise CheckpointError(f"{path}: cannot read manifest: {exc}") from exc
        except ValueError as exc:
            raise CheckpointError(f"{path}: corrupt manifest: {exc}") from exc
        if not isinstance(data, dict) or data.get("kind") != _MANIFEST_KIND:
            raise CheckpointError(f"{path}: not a sharded-join manifest")
        if data.get("version") != _MANIFEST_VERSION:
            raise CheckpointError(
                f"{path}: manifest version {data.get('version')!r}, "
                f"expected {_MANIFEST_VERSION}"
            )
        expected = json.loads(json.dumps(meta, sort_keys=True))
        if data.get("meta") != expected:
            raise CheckpointError(
                f"{path}: manifest was written by a different run "
                "(collection/tau/options/shards mismatch); refusing to resume"
            )
        return cls(path, data)

    @staticmethod
    def exists(path: "str | os.PathLike") -> bool:
        """True when a manifest file is present at ``path``."""
        return os.path.exists(path)

    def _write(self) -> None:
        """Atomically publish the current state to disk."""
        replace_file(self.path, json.dumps(self.data, sort_keys=True) + "\n")

    # --- Partition ------------------------------------------------------

    @property
    def partition(self) -> Optional[List[dict]]:
        """The recorded shard descriptors, or ``None`` before banding."""
        return self.data["partition"]

    def set_partition(
        self, shards: List[dict], pair_keys: Sequence[str]
    ) -> None:
        """Record the banding outcome and seed every shard pair pending.

        Called exactly once, *after* all shard files are written and
        fsynced — a crash before this write re-partitions from scratch,
        a crash after it trusts the shard files on disk.
        """
        self.data["partition"] = shards
        self.data["pairs"] = {
            key: {"status": PAIR_PENDING, "attempts": 0, "split": 0}
            for key in pair_keys
        }
        self._write()

    # --- Shard pairs ----------------------------------------------------

    @property
    def pairs(self) -> Dict[str, dict]:
        """Per-shard-pair state, keyed ``"<a>-<b>"``."""
        return self.data["pairs"]

    def pair(self, key: str) -> dict:
        """The state dict of shard pair ``key``."""
        return self.data["pairs"][key]

    def update_pair(self, key: str, **fields: object) -> None:
        """Merge ``fields`` into pair ``key``'s state and publish."""
        self.data["pairs"][key].update(fields)
        self._write()

    # --- Completion -----------------------------------------------------

    @property
    def complete(self) -> Optional[dict]:
        """The merge summary, or ``None`` until the merge has finished."""
        return self.data["complete"]

    def set_complete(self, summary: dict) -> None:
        """Record that the merge finished (the run's final state)."""
        self.data["complete"] = summary
        self._write()
