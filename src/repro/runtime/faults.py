"""Deterministic fault injection for join execution tests.

The fault-tolerant executor's recovery paths (worker crash, worker
hang, verification exception) are impossible to exercise reliably with
real faults, so this module provides a deterministic injector: a
:class:`FaultPlan` armed on a join fires exactly once, at the ``at``-th
verification observed by the process executing it.

Kinds
-----
``"raise"``
    Raise :class:`~repro.exceptions.InjectedFaultError`.
``"hang"``
    Sleep ``hang_seconds`` (simulating a wedged A*/worker; the
    executor's chunk timeout is what rescues the join).
``"kill"``
    ``os._exit(1)`` — the process dies without cleanup, exactly like an
    OOM kill.  Only meaningful in a worker process or a sacrificial
    subprocess.

Plans are immutable and picklable, so the parent can arm them on pool
workers.  A ``latch_path`` makes a plan *fire once globally*: firing
atomically creates the latch file first, so when the executor retries
the poisoned chunk (possibly in a fresh process) the plan stays quiet
and the retry succeeds — the deterministic "crash once, recover" script
the tests are built on.  ``seeded_at`` derives a reproducible firing
point from a seed when a test wants variety without nondeterminism.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from random import Random
from typing import Optional

from repro.exceptions import InjectedFaultError, ParameterError

__all__ = ["FaultPlan", "FaultInjector", "seeded_at"]

_KINDS = ("raise", "hang", "kill")


def seeded_at(seed: int, max_at: int) -> int:
    """A reproducible firing point in ``[1, max_at]`` derived from ``seed``."""
    if max_at < 1:
        raise ParameterError(f"max_at must be >= 1, got {max_at}")
    return Random(seed).randint(1, max_at)


@dataclass(frozen=True)
class FaultPlan:
    """Fire one fault at the ``at``-th verification (1-based).

    ``latch_path``, when set, names a file used as a fire-once latch
    across processes and retries; without it the plan fires every time
    a fresh process's verification counter reaches ``at``.
    """

    kind: str
    at: int
    hang_seconds: float = 30.0
    latch_path: Optional[str] = None

    def __post_init__(self) -> None:
        """Validate the plan's kind and firing point."""
        if self.kind not in _KINDS:
            raise ParameterError(
                f"fault kind must be one of {_KINDS}, got {self.kind!r}"
            )
        if self.at < 1:
            raise ParameterError(f"fault 'at' must be >= 1, got {self.at}")

    def start(self) -> "FaultInjector":
        """A fresh per-process injector (verification counter at zero)."""
        return FaultInjector(self)


class FaultInjector:
    """Per-process counter that fires its plan's fault at the right step."""

    __slots__ = ("plan", "count")

    def __init__(self, plan: FaultPlan) -> None:
        """Arm ``plan`` with the verification counter at zero."""
        self.plan = plan
        self.count = 0

    def _claim_latch(self) -> bool:
        """Atomically claim the fire-once latch; True if we may fire."""
        if self.plan.latch_path is None:
            return True
        try:
            fd = os.open(
                self.plan.latch_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def step(self) -> None:
        """Count one verification; fire the fault when the plan says so."""
        self.count += 1
        if self.count != self.plan.at or not self._claim_latch():
            return
        if self.plan.kind == "raise":
            raise InjectedFaultError(
                f"injected fault at verification #{self.plan.at}"
            )
        if self.plan.kind == "hang":
            time.sleep(self.plan.hang_seconds)
            return
        # "kill": die like an OOM-killed worker -- no cleanup, no excuses.
        os._exit(1)
