"""Deterministic fault injection for join execution tests.

The fault-tolerant executor's recovery paths (worker crash, worker
hang, verification exception, full disk) are impossible to exercise
reliably with real faults, so this module provides a deterministic
injector: a :class:`FaultPlan` armed on a join fires at the ``at``-th
*event* observed by the process executing it.  Plans come in two
channels:

* **verification faults** (``"raise"``/``"hang"``/``"kill"``) count
  verifications via :meth:`FaultInjector.step` and fire exactly once,
  at the ``at``-th verification;
* **I/O faults** (``"ioerror"``/``"enospc"``) count durable writes —
  journal appends and spill-queue appends — via
  :meth:`FaultInjector.step_io` and fire at *every* write from the
  ``at``-th onward (a full disk stays full), unless a latch limits them
  to firing once.

Kinds
-----
``"raise"``
    Raise :class:`~repro.exceptions.InjectedFaultError`.
``"hang"``
    Sleep ``hang_seconds`` (simulating a wedged A*/worker; the
    executor's chunk timeout is what rescues the join).
``"kill"``
    ``os._exit(1)`` — the process dies without cleanup, exactly like an
    OOM kill.  Only meaningful in a worker process or a sacrificial
    subprocess.
``"ioerror"``
    Raise ``IOError`` (= ``OSError``) from the write path, simulating a
    failing disk.
``"enospc"``
    Raise ``OSError`` with ``errno.ENOSPC``, simulating a full disk.

Plans are immutable and picklable, so the parent can arm them on pool
workers.  A ``latch_path`` makes a plan *fire once globally*: firing
atomically creates the latch file first, so when the executor retries
the poisoned chunk (possibly in a fresh process) — or the sharded
driver retries a shard pair whose spill write hit the injected ENOSPC
— the plan stays quiet and the retry succeeds: the deterministic
"crash once, recover" script the tests are built on.  ``seeded_at``
derives a reproducible firing point from a seed when a test wants
variety without nondeterminism.
"""

from __future__ import annotations

import errno
import os
import time
from dataclasses import dataclass
from random import Random
from typing import Optional

from repro.exceptions import InjectedFaultError, ParameterError

__all__ = ["FaultPlan", "FaultInjector", "seeded_at"]

_VERIFY_KINDS = ("raise", "hang", "kill")
_IO_KINDS = ("ioerror", "enospc")
_KINDS = _VERIFY_KINDS + _IO_KINDS


def seeded_at(seed: int, max_at: int) -> int:
    """A reproducible firing point in ``[1, max_at]`` derived from ``seed``."""
    if max_at < 1:
        raise ParameterError(f"max_at must be >= 1, got {max_at}")
    return Random(seed).randint(1, max_at)


@dataclass(frozen=True)
class FaultPlan:
    """Fire one fault at the ``at``-th event of the plan's channel.

    Verification kinds fire exactly once, at the ``at``-th verification
    (1-based); I/O kinds fire on every durable write from the ``at``-th
    onward.  ``latch_path``, when set, names a file used as a fire-once
    latch across processes and retries; without it a verification plan
    fires every time a fresh process's counter reaches ``at``, and an
    I/O plan fires on every write past ``at``.
    """

    kind: str
    at: int
    hang_seconds: float = 30.0
    latch_path: Optional[str] = None

    def __post_init__(self) -> None:
        """Validate the plan's kind and firing point."""
        if self.kind not in _KINDS:
            raise ParameterError(
                f"fault kind must be one of {_KINDS}, got {self.kind!r}"
            )
        if self.at < 1:
            raise ParameterError(f"fault 'at' must be >= 1, got {self.at}")

    @property
    def is_io(self) -> bool:
        """True for the I/O-channel kinds (``ioerror``/``enospc``)."""
        return self.kind in _IO_KINDS

    def start(self) -> "FaultInjector":
        """A fresh per-process injector (event counters at zero)."""
        return FaultInjector(self)


class FaultInjector:
    """Per-process counters that fire the plan's fault at the right step."""

    __slots__ = ("plan", "count", "io_count")

    def __init__(self, plan: FaultPlan) -> None:
        """Arm ``plan`` with both event counters at zero."""
        self.plan = plan
        self.count = 0
        self.io_count = 0

    def _claim_latch(self) -> bool:
        """Atomically claim the fire-once latch; True if we may fire."""
        if self.plan.latch_path is None:
            return True
        try:
            fd = os.open(
                self.plan.latch_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def step(self) -> None:
        """Count one verification; fire the fault when the plan says so.

        I/O-channel plans never fire here — they count writes, via
        :meth:`step_io`.
        """
        if self.plan.is_io:
            return
        self.count += 1
        if self.count != self.plan.at or not self._claim_latch():
            return
        if self.plan.kind == "raise":
            raise InjectedFaultError(
                f"injected fault at verification #{self.plan.at}"
            )
        if self.plan.kind == "hang":
            time.sleep(self.plan.hang_seconds)
            return
        # "kill": die like an OOM-killed worker -- no cleanup, no excuses.
        os._exit(1)

    def step_io(self) -> None:
        """Count one durable write; fire an I/O fault when armed.

        Unlike verification faults, an I/O fault is *persistent*: a full
        disk stays full, so the plan fires on every write from the
        ``at``-th onward.  A ``latch_path`` limits it to firing once —
        the "space was freed" recovery script.
        """
        if not self.plan.is_io:
            return
        self.io_count += 1
        if self.io_count < self.plan.at or not self._claim_latch():
            return
        # Injected I/O faults must be indistinguishable from the real
        # thing, so they raise genuine OS exception types — the one
        # deliberate exception to the library-exceptions-only rule.
        if self.plan.kind == "enospc":
            raise OSError(  # repro: ignore[exceptions]
                errno.ENOSPC,
                f"injected ENOSPC at write #{self.io_count}",
            )
        raise IOError(  # repro: ignore[exceptions]
            f"injected I/O fault at write #{self.io_count}"
        )
