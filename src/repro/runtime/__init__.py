"""Join execution runtime: budgets, checkpointing, fault injection.

This layer gives the join the survival properties a production system
needs (see ``docs/ROBUSTNESS.md``):

* :class:`VerificationBudget` — bounded-effort GED verification with
  graceful degradation to bounded verdicts;
* :class:`JoinJournal` / :class:`VerificationRecord` — append-only,
  torn-write-tolerant checkpoint journal enabling resume;
* :class:`FaultPlan` — deterministic fault injection used to lock down
  every recovery path of the fault-tolerant parallel executor.

It sits *below* :mod:`repro.core` in the layering DAG (it depends only
on :mod:`repro.exceptions`), so both :mod:`repro.ged` and
:mod:`repro.core` can use it.
"""

from repro.runtime.budget import BudgetMeter, VerificationBudget
from repro.runtime.faults import FaultInjector, FaultPlan, seeded_at
from repro.runtime.journal import JoinJournal, VerificationRecord, replace_file
from repro.runtime.sharded import (
    MemoryBudget,
    ShardManifest,
    SpillQueue,
    plan_bands,
    qualifying_shard_pairs,
)

__all__ = [
    "VerificationBudget",
    "BudgetMeter",
    "JoinJournal",
    "VerificationRecord",
    "replace_file",
    "FaultPlan",
    "FaultInjector",
    "seeded_at",
    "MemoryBudget",
    "SpillQueue",
    "ShardManifest",
    "plan_bands",
    "qualifying_shard_pairs",
]
