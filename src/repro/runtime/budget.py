"""Verification budgets: bounded effort for the NP-hard GED step.

GED verification is NP-hard (paper §V), so a single adversarial
candidate pair can otherwise stall an entire join.  A
:class:`VerificationBudget` caps the A* search in expansions and/or
wall-clock seconds; on exhaustion the search returns a *bounded
verdict* — a ``lower ≤ ged ≤ upper`` bracket — instead of running
forever (see :func:`repro.ged.astar.graph_edit_distance_detailed`).

The budget object itself is immutable configuration; each search
:meth:`~VerificationBudget.start`\\ s a fresh mutable
:class:`BudgetMeter` so one budget value can be shared across many
pairs (and shipped to worker processes — both classes are picklable).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.exceptions import ParameterError

__all__ = ["VerificationBudget", "BudgetMeter"]


@dataclass(frozen=True)
class VerificationBudget:
    """Effort cap for one GED verification.

    Attributes
    ----------
    max_expansions:
        Maximum A* states popped from the queue (``None`` = unlimited).
    max_seconds:
        Maximum wall-clock seconds for one search (``None`` = unlimited).

    A budget with both fields ``None`` is valid and never exhausts —
    equivalent to passing no budget at all.
    """

    max_expansions: Optional[int] = None
    max_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        """Validate the caps (negative caps are out of domain)."""
        if self.max_expansions is not None and self.max_expansions < 0:
            raise ParameterError(
                f"max_expansions must be >= 0, got {self.max_expansions}"
            )
        if self.max_seconds is not None and self.max_seconds < 0:
            raise ParameterError(
                f"max_seconds must be >= 0, got {self.max_seconds}"
            )

    @property
    def unlimited(self) -> bool:
        """True when this budget can never exhaust."""
        return self.max_expansions is None and self.max_seconds is None

    def start(self) -> "BudgetMeter":
        """Begin metering one search against this budget."""
        return BudgetMeter(self)


class BudgetMeter:
    """Mutable per-search meter for a :class:`VerificationBudget`.

    Call :meth:`tick` once per A* expansion; it returns ``False`` as
    soon as the budget is exhausted.  The wall clock starts at
    construction time (``time.monotonic``).
    """

    __slots__ = ("max_expansions", "deadline", "expansions")

    def __init__(self, budget: VerificationBudget) -> None:
        """Start the meter (the time budget begins counting now)."""
        self.max_expansions = budget.max_expansions
        self.deadline = (
            time.monotonic() + budget.max_seconds
            if budget.max_seconds is not None
            else None
        )
        self.expansions = 0

    def tick(self) -> bool:
        """Charge one expansion; ``True`` while the budget still holds."""
        if self.max_expansions is not None and self.expansions >= self.max_expansions:
            return False
        self.expansions += 1
        if self.deadline is not None and time.monotonic() > self.deadline:
            return False
        return True
