"""Append-only, torn-write-tolerant join journal (checkpoint/resume).

The journal is a JSONL file: one header line describing the run
(collection fingerprint, ``tau``, ``q``, options) followed by one line
per *verified* candidate pair recording the complete, deterministic
outcome of that verification.  A join opened with ``checkpoint=`` writes
through the journal as it verifies; a restarted join replays the
recorded outcomes and verifies only the remaining pairs, producing a
result identical to an uninterrupted run.

Crash-safety contract:

* every record is written as one ``write()`` of a full line ending in
  ``"\\n"`` and flushed before the join proceeds, so a crash loses at
  most the record being written;
* on open, a final line that does not parse — or parses but lacks its
  trailing newline — is treated as a *torn write*: it is truncated away
  and its pair is simply re-verified on resume;
* a bad line **before** the end of the file is real corruption and
  raises :class:`~repro.exceptions.CheckpointError`, as does a header
  that does not match the resuming run's parameters;
* a *new* journal's header line is published atomically — written to a
  temporary sibling file, fsynced, then ``os.replace``\\ d into place —
  so even a power loss mid-creation can never leave a half-written
  header behind for a resume to trip over (``replace_file``, shared
  with the sharded-join manifest);
* ``fsync_interval=N`` additionally fsyncs the journal every ``N``
  appended records (and on close), bounding post-power-loss record loss
  to ``N`` records instead of whatever the OS page cache held.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import asdict, dataclass
from typing import Dict, IO, Optional, Tuple

from repro.exceptions import CheckpointError, ParameterError

__all__ = ["VerificationRecord", "JoinJournal", "replace_file", "fsync_dir"]


def fsync_dir(path: str) -> None:
    """fsync the directory containing ``path`` (durability of renames).

    Silently skips platforms whose directories cannot be opened for
    reading — the rename itself is still atomic there.
    """
    try:
        fd = os.open(os.path.dirname(os.path.abspath(path)) or ".", os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def replace_file(path: str, data: str) -> None:
    """Atomically publish ``data`` as the contents of ``path``.

    Writes to a temporary sibling (same directory, so the rename stays
    on one filesystem), flushes and fsyncs it, ``os.replace``\\ s it over
    ``path``, then fsyncs the directory.  A crash at any point leaves
    either the old contents or the new — never a torn mixture.
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    fsync_dir(path)

_HEADER_KIND = "gsimjoin-journal"
_VERSION = 1


@dataclass(frozen=True)
class VerificationRecord:
    """The deterministic outcome of verifying one candidate pair.

    ``i``/``j`` are scan positions in the join's candidate enumeration
    (stable across runs because candidate generation is deterministic).
    ``pruned_by`` mirrors :class:`repro.core.verify.VerifyOutcome`;
    ``expansions``/``ged_seconds`` are the A* cost actually paid, so a
    resumed run's statistics replay what the original run measured.
    ``lower``/``upper`` carry the bounded verdict of a budget-exhausted
    search; ``undecided`` marks pairs whose membership the budget could
    not decide.  ``backend`` names the portfolio backend that produced
    the verdict (``"memo"`` for verdict-memo answers, ``None`` on
    filter prunes and in journals written before the portfolio existed).
    """

    i: int
    j: int
    is_result: bool
    pruned_by: Optional[str] = None
    ged: Optional[int] = None
    expansions: int = 0
    ged_seconds: float = 0.0
    undecided: bool = False
    lower: Optional[int] = None
    upper: Optional[int] = None
    backend: Optional[str] = None

    @property
    def ran_ged(self) -> bool:
        """True when the pair survived every filter and reached A*."""
        return self.pruned_by is None or self.pruned_by == "ged"

    def to_json(self) -> str:
        """One compact JSON line (without the newline)."""
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "VerificationRecord":
        """Parse a record line written by :meth:`to_json`."""
        return cls(**json.loads(line))


class JoinJournal:
    """Write-through journal of verified pairs for one join run.

    Use :meth:`open` — it creates the file with a header on first use,
    and on reopen validates the header against ``meta`` and loads every
    completed record (tolerating a torn final line, see module docs).
    """

    def __init__(
        self,
        path: str,
        handle: IO[str],
        completed: Dict[Tuple[int, int], VerificationRecord],
        fsync_interval: Optional[int] = None,
    ) -> None:
        """Internal; use :meth:`open`."""
        self.path = path
        self._handle: Optional[IO[str]] = handle
        self.completed = completed
        self._fsync_interval = fsync_interval
        self._since_fsync = 0

    @classmethod
    def open(
        cls,
        path: "str | os.PathLike",
        meta: dict,
        fsync_interval: Optional[int] = None,
    ) -> "JoinJournal":
        """Open (or create) the journal at ``path`` for run ``meta``.

        ``meta`` must be JSON-representable and deterministic for the
        run (collection fingerprint, tau, q, options); a mismatch with
        an existing journal's header raises
        :class:`~repro.exceptions.CheckpointError` rather than silently
        resuming the wrong join.  A new journal's header is published
        atomically (tempfile + ``os.replace`` + fsync).
        ``fsync_interval=N`` fsyncs every ``N`` appends and on close
        (``None``: flush-only, the historical behaviour; ``1``: every
        record hits the platter before the join proceeds).
        """
        if fsync_interval is not None and fsync_interval < 1:
            raise ParameterError(
                f"fsync_interval must be >= 1, got {fsync_interval}"
            )
        path = os.fspath(path)
        completed: Dict[Tuple[int, int], VerificationRecord] = {}
        keep_bytes = 0
        exists = os.path.exists(path) and os.path.getsize(path) > 0
        if exists:
            with open(path, "r", encoding="utf-8", newline="") as f:
                raw = f.read()
            lines = raw.split("\n")
            # A file of complete lines ends with "\n" -> last element "".
            torn_tail = lines.pop() if lines else ""
            offset = 0
            for lineno, line in enumerate(lines, start=1):
                nbytes = len(line.encode("utf-8")) + 1
                try:
                    payload = json.loads(line)
                    if lineno == 1:
                        cls._check_header(path, payload, meta)
                    else:
                        record = VerificationRecord(**payload)
                        completed[(record.i, record.j)] = record
                except (ValueError, TypeError) as exc:
                    if lineno == len(lines) and not torn_tail:
                        # Torn final line (despite its newline having
                        # made it to disk is impossible -- but a line
                        # cut before its newline lands in torn_tail;
                        # a cut *at* the newline parses fine).  Treat
                        # an unparseable true-last line as torn.
                        break
                    raise CheckpointError(
                        f"{path}:{lineno}: corrupt journal line: {exc}"
                    ) from exc
                offset += nbytes
            keep_bytes = offset
            if torn_tail:
                # Partial trailing write: drop it; its pair re-verifies.
                pass
            with open(path, "r+", encoding="utf-8") as f:
                f.truncate(keep_bytes)
            if keep_bytes == 0:
                exists = False
        if not exists:
            # Publish the header atomically: a crash mid-creation leaves
            # either no journal or a complete one-line journal, never a
            # half-written header that CheckpointErrors on resume.
            header = {"kind": _HEADER_KIND, "version": _VERSION, "meta": meta}
            replace_file(
                os.fspath(path), json.dumps(header, sort_keys=True) + "\n"
            )
        handle = open(path, "a", encoding="utf-8")
        return cls(path, handle, completed, fsync_interval=fsync_interval)

    @staticmethod
    def _check_header(path: str, payload: dict, meta: dict) -> None:
        if not isinstance(payload, dict) or payload.get("kind") != _HEADER_KIND:
            raise CheckpointError(f"{path}: not a gsimjoin journal")
        if payload.get("version") != _VERSION:
            raise CheckpointError(
                f"{path}: journal version {payload.get('version')!r}, "
                f"expected {_VERSION}"
            )
        # Round-trip the expected meta through JSON so tuple-vs-list and
        # similar representation differences do not cause false alarms.
        expected = json.loads(json.dumps(meta, sort_keys=True))
        if payload.get("meta") != expected:
            raise CheckpointError(
                f"{path}: journal was written by a different run "
                "(collection/tau/q/options mismatch); refusing to resume"
            )

    def append(self, record: VerificationRecord) -> None:
        """Durably record one verified pair (single write + flush).

        With ``fsync_interval=N`` the file is additionally fsynced
        every ``N`` appends, bounding what a power loss can take.
        """
        if self._handle is None:
            raise CheckpointError(f"{self.path}: journal is closed")
        self._handle.write(record.to_json() + "\n")
        self._handle.flush()
        self.completed[(record.i, record.j)] = record
        if self._fsync_interval is not None:
            self._since_fsync += 1
            if self._since_fsync >= self._fsync_interval:
                self.sync()

    def sync(self) -> None:
        """fsync the journal file (no-op when closed)."""
        if self._handle is not None:
            os.fsync(self._handle.fileno())
            self._since_fsync = 0

    def close(self) -> None:
        """Flush (and, under an fsync interval, sync) then close."""
        if self._handle is not None:
            self._handle.flush()
            if self._fsync_interval is not None:
                os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JoinJournal":
        """Context-manager support; closes on exit."""
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        """Close the journal even when the join dies mid-run."""
        self.close()
