"""Exact graph edit distance via A* search (Section VI-B).

The search explores partial mappings of ``r``'s vertices — in a fixed
order — onto vertices of ``s`` or onto ``ε`` (deletion).  ``g(x)`` is
the exact edit cost already incurred (vertex operations plus every edge
between mapped vertices); ``h(x)`` is a pluggable admissible estimate of
the remaining cost.  Because the mapping order is fixed, every state is
reachable along exactly one path (the space is a tree), so the first
goal popped from the priority queue is optimal even for inconsistent
(but admissible) heuristics.

A ``threshold`` turns the search into the verifier used by the join:
states with ``f > threshold`` are pruned and the function reports
``threshold + 1`` when the true distance exceeds the threshold — all the
join needs to know.

A ``budget`` (:class:`repro.runtime.budget.VerificationBudget`) caps the
search in expansions and/or seconds.  On exhaustion the search does not
fail: it returns a *bounded verdict* — ``lower`` is the minimum ``f``
over the open list (every goal descends from an open state or was
threshold-pruned, so ``lower ≤ ged``) and ``upper`` is the cost of a
greedy completion of the best open state (the cost of an actual mapping,
so ``ged ≤ upper``).  With ``budget=None`` behavior is unchanged.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.exceptions import ParameterError, SearchExhaustedError
from repro.ged.heuristics import Heuristic, label_heuristic
from repro.graph.graph import Graph, Vertex
from repro.runtime.budget import VerificationBudget

__all__ = ["graph_edit_distance", "graph_edit_distance_detailed", "ged_within", "GedSearchResult"]


@dataclass(frozen=True)
class GedSearchResult:
    """Outcome of one A* run.

    ``distance`` is exact when ``<= threshold`` (or when no threshold was
    given); ``threshold + 1`` signals "greater than the threshold".

    When ``budget_exhausted`` is set the search ran out of budget before
    deciding: ``lower ≤ ged ≤ upper`` brackets the true distance and
    ``distance`` equals ``upper`` (the best mapping actually found).
    """

    distance: int
    expanded: int  #: states popped from the queue
    generated: int  #: states pushed onto the queue
    exceeded_threshold: bool
    budget_exhausted: bool = False
    lower: Optional[int] = None  #: bounded-verdict lower bound on ged
    upper: Optional[int] = None  #: bounded-verdict upper bound on ged


def _extension_cost(
    r: Graph,
    s: Graph,
    order: Sequence[Vertex],
    mapping: Tuple[Optional[Vertex], ...],
    u: Vertex,
    v: Optional[Vertex],
) -> int:
    """Incremental cost of mapping ``u`` (next in order) to ``v`` (or ε).

    Examines only edges between ``u`` and previously mapped vertices, and
    s-edges between ``v`` and previously used images, so every edge pair
    is charged exactly once over the whole search.
    """
    delta = 0
    if v is None:
        delta += 1  # vertex deletion
    elif r.vertex_label(u) != s.vertex_label(v):
        delta += 1  # vertex relabel

    directed = r.is_directed
    for j, w in enumerate(mapping):
        u_j = order[j]
        # Undirected: one unordered pair per previously mapped vertex.
        # Directed: both orientations are independent edges.
        pairs = (((u, u_j), (v, w)), ((u_j, u), (w, v))) if directed else (
            ((u, u_j), (v, w)),
        )
        for (a, b), (x, y) in pairs:
            if r.has_edge(a, b):
                if x is None or y is None or not s.has_edge(x, y):
                    delta += 1  # edge deletion
                elif s.edge_label(x, y) != r.edge_label(a, b):
                    delta += 1  # edge relabel
            else:
                if x is not None and y is not None and s.has_edge(x, y):
                    delta += 1  # edge insertion
    return delta


def _completion_cost(s: Graph, used: frozenset) -> int:
    """Cost of inserting the part of ``s`` never matched."""
    cost = sum(1 for v in s.vertices() if v not in used)
    for a, b, _ in s.edges():
        if a not in used or b not in used:
            cost += 1
    return cost


def _greedy_upper_bound(
    r: Graph,
    s: Graph,
    order: Sequence[Vertex],
    s_vertices: Sequence[Vertex],
    mapping: Tuple[Optional[Vertex], ...],
    used: frozenset,
    g: int,
) -> int:
    """Cost of greedily completing a partial mapping (a true upper bound).

    Extends ``mapping`` one vertex at a time, always taking the locally
    cheapest image (or ε), then pays for the unmatched rest of ``s``.
    The result is the exact cost of one achievable mapping, hence
    ``ged(r, s) <= result`` regardless of how bad the greedy choices are.
    """
    total = g
    for k in range(len(mapping), len(order)):
        u = order[k]
        best_delta = _extension_cost(r, s, order, mapping, u, None)
        best_v: Optional[Vertex] = None
        for v in s_vertices:
            if v in used:
                continue
            delta = _extension_cost(r, s, order, mapping, u, v)
            if delta < best_delta:
                best_delta, best_v = delta, v
        total += best_delta
        mapping = mapping + (best_v,)
        if best_v is not None:
            used = used | {best_v}
    return total + _completion_cost(s, used)


def graph_edit_distance_detailed(
    r: Graph,
    s: Graph,
    threshold: Optional[int] = None,
    heuristic: Heuristic = label_heuristic,
    vertex_order: Optional[Sequence[Vertex]] = None,
    budget: Optional[VerificationBudget] = None,
) -> GedSearchResult:
    """Run the A* search and return the distance with search statistics.

    Parameters
    ----------
    threshold:
        If given, prune states with ``f > threshold`` and report
        ``threshold + 1`` when the distance exceeds it.
    heuristic:
        An admissible :data:`~repro.ged.heuristics.Heuristic`.
    vertex_order:
        Order in which ``r``'s vertices are mapped; defaults to insertion
        order.  Must be a permutation of ``V(r)``.
    budget:
        Optional effort cap.  On exhaustion the result carries
        ``budget_exhausted=True`` and a ``lower ≤ ged ≤ upper`` bracket
        instead of an exact distance (see the module docstring).

    Raises
    ------
    ParameterError
        On a negative threshold or an invalid vertex order.
    """
    if threshold is not None and threshold < 0:
        raise ParameterError(f"threshold must be >= 0, got {threshold}")
    if r.is_directed != s.is_directed:
        raise ParameterError("cannot compare a directed with an undirected graph")
    order: List[Vertex] = (
        list(r.vertices()) if vertex_order is None else list(vertex_order)
    )
    if set(order) != set(r.vertices()) or len(order) != r.num_vertices:
        raise ParameterError("vertex_order must be a permutation of V(r)")

    n = len(order)
    s_vertices = list(s.vertices())
    s_vertex_set = frozenset(s_vertices)
    empty_used: frozenset = frozenset()

    counter = itertools.count()
    expanded = 0
    generated = 0

    def initial_h() -> int:
        return heuristic(r, s, order, set(s_vertices))

    start_f = initial_h()
    if n == 0:
        # Nothing to map: the whole of s is inserted.
        distance = _completion_cost(s, empty_used)
        if threshold is not None and distance > threshold:
            return GedSearchResult(threshold + 1, 0, 0, True)
        return GedSearchResult(distance, 0, 0, False)

    # Each state carries the *running* completion cost — what
    # ``_completion_cost(s, used)`` would return — updated in O(deg) as
    # the mapping extends, so the last level never re-derives it from a
    # full scan of ``s``.
    directed = s.is_directed
    comp0 = s.num_vertices + s.num_edges

    heap: List[
        Tuple[int, int, int, int, int, Tuple[Optional[Vertex], ...], frozenset]
    ] = []
    if threshold is None or start_f <= threshold:
        heapq.heappush(heap, (start_f, -0, next(counter), 0, comp0, (), empty_used))
        generated += 1

    meter = budget.start() if budget is not None else None

    while heap:
        if meter is not None and not meter.tick():
            # Budget exhausted: degrade to a bounded verdict.  Every
            # goal descends from an open state (lower bound = min f over
            # the open list; threshold-pruned branches cost > threshold
            # >= that f) and greedily completing the best open state
            # yields an achievable mapping (upper bound).
            lower = heap[0][0]
            _bf, _bk, _bt, bg, _bc, bmapping, bused = heap[0]
            upper = _greedy_upper_bound(
                r, s, order, s_vertices, bmapping, bused, bg
            )
            return GedSearchResult(
                upper,
                expanded,
                generated,
                False,
                budget_exhausted=True,
                lower=lower,
                upper=upper,
            )
        f, _neg_k, _tie, g, comp, mapping, used = heapq.heappop(heap)
        k = len(mapping)
        expanded += 1
        if k == n:
            return GedSearchResult(g, expanded, generated, False)

        u = order[k]
        targets: List[Optional[Vertex]] = [v for v in s_vertices if v not in used]
        targets.append(None)
        for v in targets:
            delta = _extension_cost(r, s, order, mapping, u, v)
            g2 = g + delta
            if threshold is not None and g2 > threshold:
                continue
            new_mapping = mapping + (v,)
            if v is None:
                new_used = used
                comp2 = comp
            else:
                new_used = used | {v}
                # v's own insertion is no longer needed, nor are the
                # s-edges between v and already-used vertices.
                comp2 = comp - 1
                for w in s.neighbors(v):
                    if w in used:
                        comp2 -= 1
                if directed:
                    for w in s.in_neighbors(v):
                        if w in used:
                            comp2 -= 1
            if k + 1 == n:
                g2 += comp2
                h2 = 0
            else:
                h2 = heuristic(r, s, order[k + 1 :], s_vertex_set - new_used)
            f2 = g2 + h2
            if threshold is not None and f2 > threshold:
                continue
            heapq.heappush(
                heap, (f2, -(k + 1), next(counter), g2, comp2, new_mapping, new_used)
            )
            generated += 1

    if threshold is None:
        raise SearchExhaustedError(
            "unbounded GED search exhausted without a goal"
        )
    return GedSearchResult(threshold + 1, expanded, generated, True)


def graph_edit_distance(
    r: Graph,
    s: Graph,
    threshold: Optional[int] = None,
    heuristic: Heuristic = label_heuristic,
    vertex_order: Optional[Sequence[Vertex]] = None,
) -> int:
    """Graph edit distance between ``r`` and ``s``.

    With ``threshold=τ`` the result is exact when ``<= τ`` and ``τ + 1``
    otherwise (the bounded verifier of Algorithm 6); without a threshold
    the exact distance is always returned.
    """
    return graph_edit_distance_detailed(
        r, s, threshold=threshold, heuristic=heuristic, vertex_order=vertex_order
    ).distance


def ged_within(
    r: Graph,
    s: Graph,
    tau: int,
    heuristic: Heuristic = label_heuristic,
    vertex_order: Optional[Sequence[Vertex]] = None,
) -> bool:
    """True iff ``ged(r, s) <= tau``."""
    return (
        graph_edit_distance(
            r, s, threshold=tau, heuristic=heuristic, vertex_order=vertex_order
        )
        <= tau
    )
